"""Quickstart: SAXPY and a group dot product, straight from the paper.

Run with ``python examples/quickstart.py``.

The first kernel is Figure 3 of the paper (SAXPY); the second is the
Figure 4 dot product, which shows local (scratchpad) memory, barriers
and explicit global/local execution domains.
"""

import numpy as np

import repro.hpl as hpl
from repro.hpl import (LOCAL, Array, Double, Int, Local, barrier, double_,
                       endfor_, endif_, eval, float_, for_, gidx, idx,
                       if_, lidx)


def saxpy(y, x, a):
    """y = a*x + y, one element per work-item (paper Figure 3)."""
    y[idx] = a * x[idx] + y[idx]


def dotp(v1, v2, partial_sums):
    """Partial dot products per thread group (paper Figure 4)."""
    i = Int()
    shared = Array(float_, 32, mem=Local)
    shared[lidx] = v1[idx] * v2[idx]
    barrier(LOCAL)
    if_(lidx == 0)
    for_(i, 0, 32)
    partial_sums[gidx] += shared[i]
    endfor_()
    endif_()


def main():
    rng = np.random.default_rng(42)

    # ---- SAXPY -----------------------------------------------------------
    n = 1000
    x = Array(double_, n)
    y = Array(double_, n)
    x.data[:] = rng.random(n)
    y.data[:] = rng.random(n)
    x0, y0 = x.read().copy(), y.read().copy()
    a = Double(2.5)

    result = eval(saxpy)(y, x, a)

    print("SAXPY on", result.device.name)
    print("  correct:", np.allclose(y.read(), 2.5 * x0 + y0))
    print(f"  simulated kernel time: "
          f"{result.kernel_seconds * 1e6:.2f} us")
    print("  generated OpenCL C:")
    for line in result.source.strip().split("\n"):
        print("   |", line)

    # ---- dot product ------------------------------------------------------
    N, M = 256, 32
    v1 = Array(float_, N)
    v2 = Array(float_, N)
    psums = Array(float_, N // M)
    v1.data[:] = rng.random(N).astype(np.float32)
    v2.data[:] = rng.random(N).astype(np.float32)

    eval(dotp).global_(N).local_(M)(v1, v2, psums)

    total = sum(psums(i) for i in range(N // M))
    expected = float(np.dot(v1.read().astype(np.float64),
                            v2.read().astype(np.float64)))
    print(f"\nDot product = {total:.4f} (expected {expected:.4f})")

    # ---- runtime statistics ------------------------------------------------
    stats = hpl.get_runtime().stats
    print(f"\nHPL stats: {stats.kernels_built} kernels built, "
          f"{stats.cache_hits} cache hits, "
          f"{stats.h2d_transfers} uploads / "
          f"{stats.d2h_transfers} downloads")


if __name__ == "__main__":
    main()
