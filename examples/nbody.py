"""Gravitational N-body step: a compute-bound HPL kernel.

Run with ``python examples/nbody.py``.

Each work-item integrates one body against all others (the classic
all-pairs O(N^2) kernel), exercising loops, private scalars, math
builtins and softened inverse-square-root forces.  The example also
shows HPL's portability knob: the same kernel runs on every device of
the simulated platform, and the cost model shows how differently they
perform.
"""

import numpy as np

import repro.hpl as hpl
from repro.hpl import (Array, Float, Int, endfor_, eval, float_, for_,
                       idx, rsqrt)

SOFTENING = 1e-3


def nbody_step(px, py, vx, vy, mass, dt, n):
    """One explicit Euler step for the body handled by this work-item."""
    j = Int()
    ax = Float(0.0)
    ay = Float(0.0)
    for_(j, 0, n)
    dx = Float(); dx.assign(px[j] - px[idx])
    dy = Float(); dy.assign(py[j] - py[idx])
    r2 = Float(); r2.assign(dx * dx + dy * dy + SOFTENING)
    inv_r = Float(); inv_r.assign(rsqrt(r2))
    f = Float(); f.assign(mass[j] * inv_r * inv_r * inv_r)
    ax += f * dx
    ay += f * dy
    endfor_()
    vx[idx] += dt * ax
    vy[idx] += dt * ay


def apply_positions(px, py, vx, vy, dt):
    px[idx] += dt * vx[idx]
    py[idx] += dt * vy[idx]


def reference_step(px, py, vx, vy, mass, dt):
    dx = px[None, :] - px[:, None]
    dy = py[None, :] - py[:, None]
    r2 = dx * dx + dy * dy + SOFTENING
    inv_r3 = r2 ** -1.5
    ax = (mass[None, :] * inv_r3 * dx).sum(axis=1)
    ay = (mass[None, :] * inv_r3 * dy).sum(axis=1)
    vx2 = vx + dt * ax
    vy2 = vy + dt * ay
    return px + dt * vx2, py + dt * vy2, vx2, vy2


def main(n=512, steps=3, dt=1e-3):
    rng = np.random.default_rng(7)
    host = {k: rng.standard_normal(n).astype(np.float32)
            for k in ("px", "py", "vx", "vy")}
    host["mass"] = (rng.random(n).astype(np.float32) + 0.5)

    arrays = {k: Array(float_, n, data=v.copy())
              for k, v in host.items()}
    dt_s = Float(dt)
    n_s = Int(n)

    sim = 0.0
    for _ in range(steps):
        r1 = eval(nbody_step)(arrays["px"], arrays["py"], arrays["vx"],
                              arrays["vy"], arrays["mass"], dt_s, n_s)
        r2 = eval(apply_positions)(arrays["px"], arrays["py"],
                                   arrays["vx"], arrays["vy"], dt_s)
        sim += r1.kernel_seconds + r2.kernel_seconds

    # float64 reference
    ref = (host["px"].astype(np.float64), host["py"].astype(np.float64),
           host["vx"].astype(np.float64), host["vy"].astype(np.float64))
    for _ in range(steps):
        ref = reference_step(*ref, host["mass"].astype(np.float64), dt)

    err = max(float(np.abs(arrays[k].read() - r).max())
              for k, r in zip(("px", "py", "vx", "vy"), ref))
    print(f"nbody: {n} bodies x {steps} steps")
    print(f"  max deviation from float64 reference: {err:.2e}")
    print(f"  simulated time on default device: {sim * 1e3:.3f} ms")

    # portability: same kernels, every device
    print("  per-device simulated time for one force step:")
    for dev in hpl.get_devices():
        arr2 = {k: Array(float_, n, data=v.copy())
                for k, v in host.items()}
        r = eval(nbody_step).device(dev)(
            arr2["px"], arr2["py"], arr2["vx"], arr2["vy"],
            arr2["mass"], dt_s, n_s)
        print(f"    {dev.name:<35} {r.kernel_seconds * 1e3:9.3f} ms")
    assert err < 1e-2


if __name__ == "__main__":
    main()
