"""Figure 10 of the paper: the naive matrix transpose, HPL style.

Run with ``python examples/transpose_naive.py``.

The paper contrasts EPGPU (where the kernel is an OpenCL C string with
``__global`` qualifiers and hand-linearised indices) with HPL, where the
kernel is host-language code over multidimensional arrays.  This example
is the HPL side of that comparison — including a look at the OpenCL C
that HPL generates, which is essentially what the EPGPU user must write
by hand — plus the blocked variant used in the evaluation, to show the
performance difference the naive version leaves on the table.
"""

import numpy as np

from repro.benchsuite.transpose.driver import BLOCK, transpose_hpl_kernel
from repro.hpl import Array, Int, eval, float_, idx, idy


def naive_transpose(dest, src):
    """Paper Figure 10(b): one element per work-item, 2-D arrays."""
    dest[idx][idy] = src[idy][idx]


def main(h=512, w=512):
    rng = np.random.default_rng(1)
    data = rng.random((h, w)).astype(np.float32)

    src = Array(float_, h, w)
    dst = Array(float_, w, h)
    src.data[:] = data

    result = eval(naive_transpose)(dst, src)
    assert np.array_equal(dst.read(), data.T)

    print("naive transpose (paper Fig. 10b) — generated OpenCL C:")
    for line in result.source.strip().split("\n"):
        print("  |", line)
    print(f"  simulated kernel time: {result.kernel_seconds * 1e3:.3f} ms")
    naive_tx = result.kernel_event.counters.global_transactions

    # the blocked version from the evaluation, for contrast
    src1 = Array(float_, h * w, data=data.reshape(-1).copy())
    dst1 = Array(float_, w * h)
    blocked = eval(transpose_hpl_kernel).global_(w, h) \
        .local_(BLOCK, BLOCK)(dst1, src1, Int(w), Int(h))
    assert np.array_equal(dst1.read().reshape(w, h), data.T)

    blocked_tx = blocked.kernel_event.counters.global_transactions
    print(f"\nblocked transpose (evaluation version): "
          f"{blocked.kernel_seconds * 1e3:.3f} ms")
    print(f"memory transactions: naive={naive_tx}, blocked={blocked_tx} "
          f"({naive_tx / blocked_tx:.1f}x fewer with local-memory "
          "staging)")
    assert blocked_tx < naive_tx


if __name__ == "__main__":
    main()
