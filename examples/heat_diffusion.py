"""1-D heat diffusion: an iterative stencil workload on HPL.

Run with ``python examples/heat_diffusion.py``.

The explicit finite-difference update
``u[i] += alpha * (u[i-1] - 2 u[i] + u[i+1])`` runs entirely on the
(simulated) GPU: the rod stays resident in device memory across all time
steps thanks to HPL's transfer minimisation — only the initial upload
and the final download cross the PCIe bus, which the printed statistics
demonstrate.
"""

import numpy as np

import repro.hpl as hpl
from repro.hpl import Array, Float, Int, endif_, eval, float_, idx, if_


def diffuse(next_u, u, alpha, n):
    """One explicit time step with fixed (Dirichlet) boundaries."""
    if_((idx > 0) & (idx < n - 1))
    next_u[idx] = u[idx] + alpha * (u[idx - 1] - 2.0 * u[idx]
                                    + u[idx + 1])
    endif_()
    if_((idx == 0) | (idx == n - 1))
    next_u[idx] = u[idx]
    endif_()


def reference(u, alpha, steps):
    u = u.astype(np.float64).copy()
    for _ in range(steps):
        nxt = u.copy()
        nxt[1:-1] = u[1:-1] + alpha * (u[:-2] - 2 * u[1:-1] + u[2:])
        u = nxt
    return u


def main(n=4096, steps=200, alpha=0.25):
    # a hot spike in the middle of a cold rod
    initial = np.zeros(n, dtype=np.float32)
    initial[n // 2 - 8:n // 2 + 8] = 100.0

    u = Array(float_, n, data=initial.copy())
    nxt = Array(float_, n)
    a = Float(alpha)
    count = Int(n)

    sim_seconds = 0.0
    for _ in range(steps):
        result = eval(diffuse)(nxt, u, a, count)
        sim_seconds += result.kernel_seconds
        u, nxt = nxt, u   # ping-pong buffers, all on the device

    final = u.read()
    expected = reference(initial, alpha, steps)
    err = float(np.abs(final - expected).max())

    stats = hpl.get_runtime().stats
    print(f"heat diffusion: n={n}, {steps} steps on "
          f"{hpl.get_runtime().default_device.name}")
    print(f"  max deviation from NumPy reference: {err:.3e}")
    print(f"  simulated device time: {sim_seconds * 1e3:.3f} ms")
    print(f"  host->device transfers: {stats.h2d_transfers} "
          f"(one upload; the rod never leaves the device)")
    print(f"  peak temperature now: {final.max():.2f}")
    assert err < 1e-2


if __name__ == "__main__":
    main()
