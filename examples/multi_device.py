"""Multi-device execution: patterns and the cluster extension (§VII).

Run with ``python examples/multi_device.py``.

Shows the two layers built on top of core HPL:

* the *pattern* library (map / reduce / scan / stencil), and
* the *cluster* layer, which block-partitions arrays across all GPUs of
  the platform and runs one kernel per partition, owner-computes style —
  the distributed-memory direction the paper's conclusions sketch.
"""

import numpy as np

import repro.hpl as hpl
from repro.hpl import Array, Float, eval, float_, idx, sqrt
from repro.hpl.cluster import Cluster, DistributedArray, cluster_eval
from repro.hpl.patterns import map_arrays, reduce_array, scan_array


def main(n=100_000):
    rng = np.random.default_rng(3)

    # ---- patterns ---------------------------------------------------------
    a = Array(float_, n)
    b = Array(float_, n)
    a.data[:] = rng.random(n).astype(np.float32)
    b.data[:] = rng.random(n).astype(np.float32)

    dist = Array(float_, n)
    map_arrays(lambda x, y: sqrt(x * x + y * y), dist, a, b)
    total = reduce_array(dist, "+")
    longest = reduce_array(dist, "max")
    print(f"patterns over {n} elements:")
    print(f"  sum of magnitudes    = {total:.2f}  "
          f"(numpy: {np.hypot(a.read(), b.read()).sum():.2f})")
    print(f"  largest magnitude    = {longest:.4f}")

    running = scan_array(dist)
    print(f"  inclusive scan tail  = {running(n - 1):.2f}")

    # ---- cluster ----------------------------------------------------------
    cluster = Cluster()          # every non-CPU device of the platform
    print(f"\ncluster: {len(cluster)} device(s)")
    for d in cluster.devices:
        print(f"  - {d.name}")

    xs = rng.random(n).astype(np.float32)
    ys = rng.random(n).astype(np.float32)
    dx = DistributedArray(float_, n, cluster, data=xs)
    dy = DistributedArray(float_, n, cluster, data=ys)

    def saxpy_part(y, x, alpha, offset, count):
        y[idx] = alpha * x[idx] + y[idx]

    results = cluster_eval(saxpy_part, cluster, dy, dx, Float(2.0))
    print("per-partition simulated kernel times:")
    for r, (lo, hi) in zip(results, dx.bounds):
        print(f"  rows [{lo:6d}, {hi:6d}) on {r.device.name:<30} "
              f"{r.kernel_seconds * 1e6:8.2f} us")

    ok = np.allclose(dy.gather(), 2.0 * xs + ys, rtol=1e-5)
    print("distributed saxpy correct:", ok)
    assert ok


if __name__ == "__main__":
    main()
