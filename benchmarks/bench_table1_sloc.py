"""Table I — programmability: SLOC of OpenCL vs HPL versions (§V-A).

Paper values: OpenCL 1151/1170/455/1637/773 vs HPL 281/107/52/517/218
(68.4%-90.9% reduction, "3 to 10 times shorter").  The reproduction
counts the complete standalone program pairs in
``repro.benchsuite.table1`` with the same physical-SLOC definition.
"""

from repro.benchsuite import report, runner


def test_table1_sloc(benchmark):
    rows = benchmark.pedantic(runner.run_table1, rounds=1, iterations=1)
    print()
    print(report.format_table1(rows))
    # the paper's headline claims, as assertions:
    for row in rows:
        assert row["hpl_sloc"] < row["opencl_sloc"]
        assert row["reduction_pct"] > 33.0
