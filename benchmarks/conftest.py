"""Benchmark-suite fixtures.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module regenerates
one table or figure of the paper and prints it in the paper's layout; the
pytest-benchmark timings measure the wall-clock cost of the experiment
pipeline itself (capture + compile + simulated execution).
"""

import pytest

from repro.hpl import reset_runtime


@pytest.fixture(autouse=True)
def _fresh_runtime():
    reset_runtime()
    yield
    reset_runtime()
