"""§V-B in-text — kernel binary reuse.

Paper: "second and later invocations of an HPL kernel do not incur in
overheads of analysis, backend code generation and compilation, and as a
result they achieve runtimes virtually identical to those of OpenCL";
the first EP class-W call was 20.5% slower (0.044s -> 0.053s).
"""

from repro.benchsuite import report, runner


def test_warm_cache_binary_reuse(benchmark):
    row = benchmark.pedantic(lambda: runner.run_warm_cache("W"),
                             rounds=1, iterations=1)
    print()
    print(report.format_warm_cache(row))
    # the first call pays capture+codegen+compile; later calls do not
    assert row["cold_overhead_seconds"] > 0
    assert row["warm_overhead_seconds"] == 0
    assert row["warm_slowdown_pct"] < row["cold_slowdown_pct"]
    # warm calls are virtually identical to OpenCL (within 2%)
    assert abs(row["warm_slowdown_pct"]) < 2.0


def test_warm_cache_disk_cross_process(benchmark, tmp_path):
    """Persistent-cache extension of §V-B: the *second process* is warm.

    A fresh process with a populated ``HPL_CACHE_DIR`` must build every
    kernel from the disk cache — zero clc compiles — and produce results
    identical to the cold process.
    """
    row = benchmark.pedantic(
        lambda: runner.run_warm_cache_disk(cache_dir=tmp_path,
                                           output=None),
        rounds=1, iterations=1)
    print()
    print(report.format_warm_cache_disk(row))
    assert row["cold_clc_compiles"] >= 5
    assert row["warm_clc_compiles"] == 0
    assert row["warm_disk_cache_hits"] >= 5
    assert row["warm_disk_cache_misses"] == 0
    assert row["results_identical"]
    assert row["verified"]
    assert row["warm_build_seconds"] < row["cold_build_seconds"]
