"""§V-B in-text — kernel binary reuse.

Paper: "second and later invocations of an HPL kernel do not incur in
overheads of analysis, backend code generation and compilation, and as a
result they achieve runtimes virtually identical to those of OpenCL";
the first EP class-W call was 20.5% slower (0.044s -> 0.053s).
"""

from repro.benchsuite import report, runner


def test_warm_cache_binary_reuse(benchmark):
    row = benchmark.pedantic(lambda: runner.run_warm_cache("W"),
                             rounds=1, iterations=1)
    print()
    print(report.format_warm_cache(row))
    # the first call pays capture+codegen+compile; later calls do not
    assert row["cold_overhead_seconds"] > 0
    assert row["warm_overhead_seconds"] == 0
    assert row["warm_slowdown_pct"] < row["cold_slowdown_pct"]
    # warm calls are virtually identical to OpenCL (within 2%)
    assert abs(row["warm_slowdown_pct"]) < 2.0
