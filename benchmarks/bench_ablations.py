"""Ablations of the design choices DESIGN.md calls out.

1. **Transfer minimisation** (§VI): HPL's kernel analysis copies only
   the arguments a kernel reads.  Ablated by comparing the transfers a
   read/write-classified workflow performs against the copy-everything
   policy a naive library would use.
2. **Kernel binary cache** (§V-B): repeated invocations without the
   cache would pay capture+compile every time.
3. **Coalescing sensitivity** of the cost model: the same traffic with
   scattered addresses must be modelled slower — the mechanism that
   separates spmv from EP in Figure 7.
"""

import numpy as np

import repro.hpl as hpl
import repro.ocl as cl
from repro.hpl import Array, double_, idx
from tests.conftest import run_cl_kernel


def test_ablation_transfer_minimisation(benchmark):
    def chained_updates():
        hpl.reset_runtime()

        def step(a):
            a[idx] = a[idx] + 1.0

        a = Array(double_, 4096).fill(0.0)
        for _ in range(10):
            hpl.eval(step)(a)
        return hpl.get_runtime().stats

    stats = benchmark.pedantic(chained_updates, rounds=1, iterations=1)
    minimised = stats.h2d_transfers
    # the copy-everything policy would upload the argument before each
    # of the 10 launches
    naive = 10
    print(f"\nAblation: transfers with analysis = {minimised}, "
          f"copy-everything policy = {naive}")
    assert minimised == 1
    assert naive / minimised == 10


def test_ablation_kernel_cache(benchmark):
    def with_cache():
        hpl.reset_runtime()

        def k(a):
            a[idx] = a[idx] * 2.0

        a = Array(double_, 256).fill(1.0)
        overhead = 0.0
        for _ in range(8):
            r = hpl.eval(k)(a)
            overhead += r.overhead_seconds
        return overhead, hpl.get_runtime().stats

    overhead_cached, stats = benchmark.pedantic(with_cache, rounds=1,
                                                iterations=1)
    # without the cache every invocation would pay roughly the cold cost
    cold_cost = (stats.codegen_seconds + stats.build_seconds)
    uncached_estimate = 8 * cold_cost
    print(f"\nAblation: total overhead with cache = "
          f"{overhead_cached * 1e3:.2f} ms, without cache ~= "
          f"{uncached_estimate * 1e3:.2f} ms "
          f"({uncached_estimate / max(overhead_cached, 1e-9):.1f}x)")
    assert stats.kernels_built == 1
    assert stats.cache_hits == 7
    assert uncached_estimate > 4 * overhead_cached


def test_ablation_coalescing_sensitivity(benchmark):
    """Scattered traffic must cost more simulated time than streaming
    traffic of the same element count."""
    device = cl.Device(cl.TESLA_C2050, "vector")
    n = 1 << 14
    rng = np.random.default_rng(0)

    stream_src = """__kernel void f(__global float* o,
            __global const float* a) {
        int i = get_global_id(0);
        o[i] = a[i];
    }"""
    gather_src = """__kernel void f(__global float* o,
            __global const float* a, __global const int* idx) {
        int i = get_global_id(0);
        o[i] = a[idx[i]];
    }"""

    def run_both():
        a = rng.random(n).astype(np.float32)
        o = np.zeros(n, np.float32)
        ev_stream = run_cl_kernel(device, stream_src, "f", [o, a], (n,))
        perm = rng.permutation(n).astype(np.int32)
        ev_gather = run_cl_kernel(device, gather_src, "f",
                                  [o, a, perm], (n,))
        return ev_stream, ev_gather

    ev_stream, ev_gather = benchmark.pedantic(run_both, rounds=1,
                                              iterations=1)
    ratio = ev_gather.breakdown.memory / ev_stream.breakdown.memory
    print(f"\nAblation: scattered/streaming memory-time ratio = "
          f"{ratio:.1f}x")
    assert ratio > 4.0
