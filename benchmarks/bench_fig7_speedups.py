"""Figure 7 — GPU speedups of all five benchmarks (§V-B).

Paper: speedups range from 5.4x (spmv) to 257x (EP) on the Tesla, with
HPL matching OpenCL closely on every benchmark.
"""

from repro.benchsuite import report, runner


def test_fig7_all_benchmark_speedups(benchmark):
    rows = benchmark.pedantic(runner.run_fig7, rounds=1, iterations=1)
    print()
    print(report.format_fig7(rows))
    by_name = {r["benchmark"]: r for r in rows}
    # the paper's two published end-points, within a generous band
    assert 150 < by_name["EP"]["opencl_speedup"] < 400
    assert 2 < by_name["Spmv"]["opencl_speedup"] < 15
    # ordering: EP dominates, spmv trails everything
    for name, row in by_name.items():
        if name != "EP":
            assert row["opencl_speedup"] < \
                by_name["EP"]["opencl_speedup"]
        if name != "Spmv":
            assert row["opencl_speedup"] > \
                by_name["Spmv"]["opencl_speedup"]
    # HPL is on par with OpenCL everywhere
    for row in rows:
        assert row["hpl_speedup"] > 0.70 * row["opencl_speedup"]
