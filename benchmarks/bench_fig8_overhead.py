"""Figure 8 — slowdown of HPL vs OpenCL per benchmark (§V-B).

Paper: typical degradation below 4%, caused by the time HPL needs to
capture the kernel, analyse it and generate OpenCL C.  The in-text
variant that *counts transfers* dilutes matrix transpose's overhead from
3.47% to 0.41% — both variants are regenerated here.
"""

from repro.benchsuite import report, runner
from repro.hpl import reset_runtime


def test_fig8_overhead_without_transfers(benchmark):
    rows = benchmark.pedantic(runner.run_fig8, rounds=1, iterations=1)
    print()
    print(report.format_fig8(rows))
    for row in rows:
        # cold-call overhead stays bounded (paper: <4%; our Python
        # capture is constant-factor slower, see EXPERIMENTS.md)
        assert row["slowdown_pct"] < 40.0, row
        assert row["hpl_overhead_seconds"] < 0.1


def test_fig8_overhead_with_transfers(benchmark):
    def run():
        reset_runtime()
        return runner.run_fig8(include_transfers=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(report.format_fig8(rows, include_transfers=True))
    # with PCIe traffic counted the overhead is diluted below ~5%
    for row in rows:
        assert row["slowdown_pct"] < 5.0, row
