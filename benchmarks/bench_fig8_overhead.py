"""Figure 8 — slowdown of HPL vs OpenCL per benchmark (§V-B).

Paper: typical degradation below 4%, caused by the time HPL needs to
capture the kernel, analyse it and generate OpenCL C.  The in-text
variant that *counts transfers* dilutes matrix transpose's overhead from
3.47% to 0.41% — both variants are regenerated here.
"""

from repro.benchsuite import report, runner
from repro.hpl import reset_runtime


def test_fig8_overhead_without_transfers(benchmark):
    rows = benchmark.pedantic(runner.run_fig8, rounds=1, iterations=1)
    print()
    print(report.format_fig8(rows))
    for row in rows:
        # cold-call overhead stays bounded (paper: <4%; our Python
        # capture is constant-factor slower, see EXPERIMENTS.md)
        assert row["slowdown_pct"] < 40.0, row
        assert row["hpl_overhead_seconds"] < 0.1


def test_fig8_overhead_with_transfers(benchmark):
    def run():
        reset_runtime()
        return runner.run_fig8(include_transfers=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(report.format_fig8(rows, include_transfers=True))
    # with PCIe traffic counted the overhead is diluted below ~5%
    for row in rows:
        assert row["slowdown_pct"] < 5.0, row


def test_fig8_warm_disk_cache_skips_compiles(benchmark, tmp_path):
    """Figure 8 rerun against a warm persistent cache: the second pass
    performs zero clc compiles and spends less time in build."""
    import repro.hpl as hpl
    from repro import trace

    compiles = trace.get_registry().counter("clc.compiles")

    def run():
        hpl.configure(cache_dir=tmp_path)
        try:
            reset_runtime()
            cold = runner.run_fig8()
            before = compiles.value
            reset_runtime()
            warm = runner.run_fig8()
            return cold, warm, compiles.value - before
        finally:
            hpl.configure(cache_dir=None)

    cold, warm, warm_compiles = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    cold_build = sum(r["build_seconds"] for r in cold)
    warm_build = sum(r["build_seconds"] for r in warm)
    print()
    print(f"fig8 build time: cold {cold_build:.6f}s, "
          f"warm {warm_build:.6f}s, {warm_compiles} warm compile(s)")
    assert warm_compiles == 0
    assert warm_build < cold_build
