"""Figure 9 — portability: HPL overhead on Tesla *and* Quadro (§V-C).

Paper: the same HPL sources run unchanged on the Quadro FX 380 (reduced
problem sizes; EP excluded — no double support) with overhead that is
"minimal for both devices".
"""

from repro.benchsuite import report, runner


def test_fig9_portability(benchmark):
    rows = benchmark.pedantic(runner.run_fig9, rounds=1, iterations=1)
    print()
    print(report.format_fig9(rows))
    gpus = {r["gpu"] for r in rows}
    assert gpus == {"Tesla C2050/C2070", "Quadro FX 380"}
    # EP cannot run on the Quadro (no fp64)
    quadro_benchmarks = {r["benchmark"] for r in rows
                         if r["gpu"] == "Quadro FX 380"}
    assert "EP" not in quadro_benchmarks
    for row in rows:
        assert row["slowdown_pct"] < 40.0, row
