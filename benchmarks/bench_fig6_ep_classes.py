"""Figure 6 — EP speedup over serial CPU per problem class (§V-B).

Paper: GPU speedups grow with class; HPL is 20.5% slower than OpenCL at
class W but only 5.7% / 2.3% / 1.1% at A / B / C — the fixed capture +
codegen cost dilutes as the kernel runs longer.
"""

from repro.benchsuite import report, runner


def test_fig6_ep_speedups_by_class(benchmark):
    rows = benchmark.pedantic(
        lambda: runner.run_fig6(classes=("W", "A", "B", "C")),
        rounds=1, iterations=1)
    print()
    print(report.format_fig6(rows))
    # speedups grow with problem size and HPL tracks OpenCL ever closer
    speedups = [r["hpl_speedup"] for r in rows]
    assert speedups == sorted(speedups)
    gaps = [r["opencl_speedup"] / r["hpl_speedup"] for r in rows]
    assert gaps[-1] < gaps[0]
