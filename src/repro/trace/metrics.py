"""Metrics registry: counters, gauges and histograms (zero-dependency).

The registry subsumes the flat counter bag the HPL runtime has always
exposed (:class:`repro.hpl.runtime.RuntimeStats` is now backed by one of
these), and gives every other layer a place to record scalars that are
cheap to keep and easy to print: the benchsuite runner dumps a registry
summary after each run with ``--verbose``.

All three instrument types are thread-safe; a registry hands out one
instrument per name (get-or-create), so independent call sites aggregate
into the same series.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically *usable* accumulator (int or float increments)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self):
        return self._value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount
            return self._value

    def set(self, value) -> None:
        """Direct assignment (used by the RuntimeStats facade)."""
        with self._lock:
            self._value = value

    def reset(self) -> None:
        self.set(0)

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self):
        return self._value

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """Stores observations and answers count/sum/min/max/percentiles.

    Observations are kept exactly (these runs record thousands of
    samples, not millions), so percentiles are exact order statistics
    with linear interpolation between ranks.
    """

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        with self._lock:
            return sum(self._values)

    @property
    def min(self) -> float:
        with self._lock:
            return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return max(self._values) if self._values else 0.0

    @property
    def mean(self) -> float:
        with self._lock:
            if not self._values:
                return 0.0
            return sum(self._values) / len(self._values)

    def percentile(self, p: float) -> float:
        """Exact percentile ``p`` in [0, 100] with linear interpolation."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        frac = rank - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named instruments, get-or-create, with a printable summary."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    # -- aggregate views ---------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, c in sorted(counters.items()):
            out["counters"][name] = c.value
        for name, g in sorted(gauges.items()):
            out["gauges"][name] = g.value
        for name, h in sorted(histograms.items()):
            out["histograms"][name] = {
                "count": h.count, "sum": h.sum, "min": h.min,
                "max": h.max, "mean": h.mean,
                "p50": h.p50, "p95": h.p95, "p99": h.p99,
            }
        return out

    def summary(self, title: str = "metrics") -> str:
        """Human-readable table of everything in the registry."""
        snap = self.snapshot()
        width = 68
        out = [title, "-" * width]
        for name, value in snap["counters"].items():
            if isinstance(value, float):
                out.append(f"{name:<44}{value:>24.6f}")
            else:
                out.append(f"{name:<44}{value:>24}")
        for name, value in snap["gauges"].items():
            out.append(f"{name:<44}{value:>24.6f}")
        for name, h in snap["histograms"].items():
            out.append(f"{name:<44}{'n=' + str(h['count']):>24}")
            out.append(f"  {'mean/p50/p95/p99':<42}"
                       f"{h['mean']:>10.3g}{h['p50']:>10.3g}"
                       f"{h['p95']:>10.3g}{h['p99']:>10.3g}")
        if len(out) == 2:
            out.append("(empty)")
        out.append("-" * width)
        return "\n".join(out)

    def reset(self) -> None:
        """Zero every counter/gauge and drop histogram observations."""
        with self._lock:
            instruments = (list(self._counters.values())
                           + list(self._gauges.values())
                           + list(self._histograms.values()))
        for inst in instruments:
            if isinstance(inst, Gauge):
                inst.set(0.0)
            else:
                inst.reset()


#: process-global registry, used when callers don't bring their own
_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _global_registry
