"""Trace exporters: Chrome ``chrome://tracing`` JSON, JSONL, summary.

Chrome trace (catapult) format
------------------------------
:func:`chrome_trace` emits the JSON object format with complete ("X")
events.  Wall-clock spans go on one process track ("wall clock (host)"),
with one thread row per Python thread; each simulated device gets its
own process track ("sim device: <name>") whose timestamps are the
device's simulated nanoseconds (shown as microseconds, the unit catapult
expects).  Load the file at ``chrome://tracing`` or https://ui.perfetto.dev.

JSONL
-----
One span per line, the flat dict of :meth:`Span.to_dict`.  This is the
interchange format ``python -m repro.trace summarize`` consumes; it
round-trips through :func:`read_spans`.
"""

from __future__ import annotations

import json
from collections import defaultdict

from .core import Span

#: pid of the wall-clock (host) track in the Chrome trace
WALL_PID = 1
#: first pid handed to simulated-device tracks
DEVICE_PID_BASE = 2


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def chrome_trace(spans: list[Span]) -> dict:
    """The catapult JSON-object form of ``spans`` (see module docs)."""
    events: list[dict] = []
    device_pids: dict[str, int] = {}
    thread_tids: dict[int, int] = {}

    events.append({"name": "process_name", "ph": "M", "pid": WALL_PID,
                   "tid": 0, "args": {"name": "wall clock (host)"}})

    for span in spans:
        if span.clock == "sim":
            device = span.device or "device"
            pid = device_pids.get(device)
            if pid is None:
                pid = DEVICE_PID_BASE + len(device_pids)
                device_pids[device] = pid
                events.append({"name": "process_name", "ph": "M",
                               "pid": pid, "tid": 0,
                               "args": {"name": f"sim device: {device}"}})
                events.append({"name": "thread_name", "ph": "M",
                               "pid": pid, "tid": 0,
                               "args": {"name": "simulated timeline"}})
            tid = 0
        else:
            pid = WALL_PID
            tid = thread_tids.get(span.thread_id)
            if tid is None:
                tid = len(thread_tids)
                thread_tids[span.thread_id] = tid
                events.append({"name": "thread_name", "ph": "M",
                               "pid": pid, "tid": tid,
                               "args": {"name": span.thread_name
                                        or f"thread-{span.thread_id}"}})
        args = {k: _json_safe(v) for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_us,
            "dur": span.duration_us,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: list[Span]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans), fh, indent=1)
        fh.write("\n")


def write_jsonl(path: str, spans: list[Span]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(_json_safe(span.to_dict())))
            fh.write("\n")


def read_spans(path: str) -> list[Span]:
    """Load spans from a JSONL span log *or* a Chrome-trace JSON file."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        doc = json.loads(text)
        events = doc.get("traceEvents", [])
        pid_names = {ev["pid"]: ev.get("args", {}).get("name", "")
                     for ev in events
                     if ev.get("ph") == "M"
                     and ev.get("name") == "process_name"}
        spans = []
        for ev in events:
            if ev.get("ph") != "X":
                continue
            pid = ev.get("pid", WALL_PID)
            is_sim = pid != WALL_PID
            device = None
            if is_sim:
                device = pid_names.get(pid, "").removeprefix(
                    "sim device: ") or None
            span = Span(name=ev.get("name", "?"),
                        category=ev.get("cat", "app"),
                        span_id=ev.get("args", {}).get("span_id", 0),
                        parent_id=ev.get("args", {}).get("parent_id"),
                        thread_id=ev.get("tid", 0), thread_name="",
                        start_us=ev.get("ts", 0.0),
                        clock="sim" if is_sim else "wall",
                        device=device,
                        attrs={k: v for k, v in ev.get("args", {}).items()
                               if k not in ("span_id", "parent_id")})
            span.end_us = span.start_us + ev.get("dur", 0.0)
            spans.append(span)
        return spans
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def merge_spans(span_lists: list[list[Span]]) -> list[Span]:
    """Combine spans from several traces into one list with unique ids.

    Cold/warm benchsuite subprocess runs each write their own trace with
    span ids starting from 1; merging them verbatim would alias parents
    across files.  This renumbers every span, rewriting ``parent_id``
    within each input so nesting survives; a parent id that doesn't
    resolve inside its own file (truncated trace) becomes ``None``.
    """
    merged: list[Span] = []
    next_id = 1
    for spans in span_lists:
        idmap: dict[int, int] = {}
        for span in spans:
            idmap[span.span_id] = next_id
            next_id += 1
        for span in spans:
            span.span_id = idmap[span.span_id]
            if span.parent_id is not None:
                span.parent_id = idmap.get(span.parent_id)
            merged.append(span)
    return merged


# -- summary table -----------------------------------------------------------


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.3f}ms"
    return f"{us:.1f}us"


def summarize(spans: list[Span]) -> str:
    """Aggregate spans by (clock, category, name) into a readable table.

    Wall-clock rows show where the host spent real time (capture,
    codegen, build); sim rows show the modelled device timeline per
    device (transfers, kernel executions).
    """
    groups: dict[tuple, list[Span]] = defaultdict(list)
    for span in spans:
        track = (span.device or "host") if span.clock == "sim" else "wall"
        groups[(span.clock, track, span.category, span.name)].append(span)

    header = (f"{'clock':<6}{'track':<26}{'span':<28}{'count':>6}"
              f"{'total':>12}{'mean':>12}{'max':>12}")
    rule = "-" * len(header)
    out = [f"trace summary: {len(spans)} span(s)", rule, header, rule]
    for key in sorted(groups, key=lambda k: (k[0], k[1], k[2], k[3])):
        clock, track, category, name = key
        batch = groups[key]
        durations = [s.duration_us for s in batch]
        total = sum(durations)
        out.append(f"{clock:<6}{track[:24]:<26}"
                   f"{(category + '.' + name)[:26]:<28}"
                   f"{len(batch):>6}{_fmt_us(total):>12}"
                   f"{_fmt_us(total / len(batch)):>12}"
                   f"{_fmt_us(max(durations)):>12}")
    if not groups:
        out.append("(no spans)")
    out.append(rule)
    return "\n".join(out)
