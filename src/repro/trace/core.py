"""Span tracer: the measurement backbone of the repro (zero-dependency).

The paper's evaluation (Figs. 6-9) decomposes end-to-end time into
capture, code generation, OpenCL build, transfers and kernel execution.
This module provides the machinery to *observe* that decomposition in a
live run: lightweight nested spans on the host's wall clock, plus
completed "device events" carrying the simulator's per-device timeline
(:mod:`repro.ocl.queue` stamps those), so a single trace interleaves both
notions of time.

Two clocks
----------
``wall``
    Host wall-clock time measured with :func:`time.perf_counter`,
    relative to the tracer's epoch.  Capture, codegen and OpenCL builds
    are real work the host performs, so their spans live here.
``sim``
    The per-device simulated timeline SimCL advances on each enqueue
    (see :class:`repro.ocl.queue.CommandQueue`).  Transfers and kernel
    executions cost nothing on the host but have modelled durations;
    their spans carry ``clock="sim"`` and the owning device's name.

Thread safety
-------------
Each thread has its own context stack (``threading.local``), so nesting
is tracked per thread; the finished-span list is guarded by a lock.

Overhead
--------
The tracer is disabled by default.  Disabled, :func:`repro.trace.span`
returns a shared no-op context manager without touching any lock, so
instrumented code costs one attribute check per call site.
"""

from __future__ import annotations

import itertools
import threading
import time


class Span:
    """One timed region, on either the wall or a simulated clock.

    Times are microseconds: wall spans are relative to the owning
    tracer's epoch, sim spans are relative to the device's simulated
    time zero.  ``end_us`` is ``None`` while the span is open.
    """

    __slots__ = ("name", "category", "span_id", "parent_id", "thread_id",
                 "thread_name", "start_us", "end_us", "attrs", "clock",
                 "device")

    def __init__(self, name: str, category: str, span_id: int,
                 parent_id: int | None, thread_id: int, thread_name: str,
                 start_us: float, clock: str = "wall",
                 device: str | None = None,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.start_us = start_us
        self.end_us: float | None = None
        self.clock = clock
        self.device = device
        self.attrs = dict(attrs) if attrs else {}

    # -- introspection -----------------------------------------------------

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    @property
    def duration_seconds(self) -> float:
        return self.duration_us * 1e-6

    def set_attr(self, key: str, value) -> "Span":
        """Attach one attribute; chainable."""
        self.attrs[key] = value
        return self

    def set_attrs(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """Flat JSON-serializable form (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "cat": self.category,
            "id": self.span_id,
            "parent": self.parent_id,
            "tid": self.thread_id,
            "thread": self.thread_name,
            "clock": self.clock,
            "device": self.device,
            "ts_us": self.start_us,
            "dur_us": self.duration_us,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "Span":
        span = cls(name=row["name"], category=row.get("cat", "app"),
                   span_id=row.get("id", 0), parent_id=row.get("parent"),
                   thread_id=row.get("tid", 0),
                   thread_name=row.get("thread", ""),
                   start_us=row.get("ts_us", 0.0),
                   clock=row.get("clock", "wall"),
                   device=row.get("device"),
                   attrs=row.get("attrs") or {})
        span.end_us = span.start_us + row.get("dur_us", 0.0)
        return span

    def __repr__(self) -> str:
        state = (f"{self.duration_us:.1f}us" if self.end_us is not None
                 else "open")
        return (f"<Span {self.category}:{self.name} {state} "
                f"clock={self.clock}>")


class NoopSpan:
    """Stateless stand-in used when tracing is disabled; reentrant."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> "NoopSpan":
        return self

    def set_attrs(self, **attrs) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class _SpanHandle:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects spans; one instance is the process-global default.

    ``enabled`` can be flipped at any time; spans opened while disabled
    are simply never recorded.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._epoch = time.perf_counter()
        #: wall-clock time of the epoch, for absolute timestamping
        self.epoch_unix = time.time()
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- time --------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since this tracer's epoch."""
        return (time.perf_counter() - self._epoch) * 1e6

    # -- context stack -----------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        span.start_us = self.now_us()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end_us = self.now_us()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:          # tolerate mis-nested exits
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    # -- span creation -----------------------------------------------------

    def span(self, name: str, category: str = "app", **attrs) -> _SpanHandle:
        """A context manager recording one wall-clock span."""
        thread = threading.current_thread()
        parent = self.current()
        span = Span(name=name, category=category,
                    span_id=next(self._ids),
                    parent_id=parent.span_id if parent else None,
                    thread_id=thread.ident or 0, thread_name=thread.name,
                    start_us=0.0, clock="wall", attrs=attrs)
        return _SpanHandle(self, span)

    def device_event(self, device: str, name: str, start_ns: int,
                     end_ns: int, category: str = "device",
                     parent_id: int | None = None, **attrs) -> Span:
        """Record a *completed* span on a device's simulated timeline.

        ``start_ns``/``end_ns`` are the simulated-clock stamps SimCL puts
        on its events.  By default the span is parented to the caller's
        innermost wall-clock span so host- and device-side views
        correlate; pass an explicit ``parent_id`` when the command was
        *recorded* under a different span than the one open when it
        finally executes (deferred queues snapshot the enqueue-time
        parent, so device work attributes to the eval that caused it).
        """
        thread = threading.current_thread()
        if parent_id is None:
            parent = self.current()
            parent_id = parent.span_id if parent else None
        span = Span(name=name, category=category,
                    span_id=next(self._ids),
                    parent_id=parent_id,
                    thread_id=thread.ident or 0, thread_name=thread.name,
                    start_us=start_ns / 1000.0, clock="sim",
                    device=device, attrs=attrs)
        span.end_us = end_ns / 1000.0
        with self._lock:
            self._finished.append(span)
        return span

    # -- results -----------------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot of every finished span, in completion order."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state}, {len(self)} span(s)>"
