"""``python -m repro.trace`` — inspect and convert trace files.

Subcommands::

    summarize <trace>            print the aggregated span table
    chrome <trace> <out.json>    convert a JSONL span log to Chrome JSON
    merge <out> <trace>...       combine traces into one JSONL span log

All accept either a JSONL span log or a Chrome-trace JSON file (the
format is sniffed).  ``merge`` renumbers span ids so parent links from
different files can't alias (cold/warm benchsuite subprocess runs each
start their ids at 1).
"""

from __future__ import annotations

import argparse
import sys

from .export import merge_spans, read_spans, summarize, write_chrome_trace, \
    write_jsonl


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect and convert repro trace files.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize",
                           help="print the aggregated span table")
    p_sum.add_argument("trace", help="JSONL span log or Chrome JSON file")

    p_chrome = sub.add_parser(
        "chrome", help="convert a span log to chrome://tracing JSON")
    p_chrome.add_argument("trace", help="JSONL span log")
    p_chrome.add_argument("output", help="Chrome JSON file to write")

    p_merge = sub.add_parser(
        "merge", help="combine several traces into one JSONL span log")
    p_merge.add_argument("output", help="JSONL span log to write")
    p_merge.add_argument("traces", nargs="+",
                         help="input trace files, in timeline order")

    ns = parser.parse_args(argv)
    inputs = ns.traces if ns.command == "merge" else [ns.trace]
    span_lists = []
    for path in inputs:
        try:
            span_lists.append(read_spans(path))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        except (ValueError, KeyError) as exc:
            print(f"error: {path} is not a trace file "
                  f"(JSONL span log or Chrome JSON): {exc}", file=sys.stderr)
            return 2

    if ns.command == "summarize":
        print(summarize(span_lists[0]))
    elif ns.command == "chrome":
        write_chrome_trace(ns.output, span_lists[0])
        print(f"wrote {len(span_lists[0])} span(s) to {ns.output}")
    else:
        spans = merge_spans(span_lists)
        write_jsonl(ns.output, spans)
        print(f"merged {len(spans)} span(s) from {len(span_lists)} "
              f"trace(s) into {ns.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
