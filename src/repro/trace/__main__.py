"""``python -m repro.trace`` — inspect and convert trace files.

Subcommands::

    summarize <trace>            print the aggregated span table
    chrome <trace> <out.json>    convert a JSONL span log to Chrome JSON

Both accept either a JSONL span log or a Chrome-trace JSON file (the
format is sniffed).
"""

from __future__ import annotations

import argparse
import sys

from .export import read_spans, summarize, write_chrome_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect and convert repro trace files.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize",
                           help="print the aggregated span table")
    p_sum.add_argument("trace", help="JSONL span log or Chrome JSON file")

    p_chrome = sub.add_parser(
        "chrome", help="convert a span log to chrome://tracing JSON")
    p_chrome.add_argument("trace", help="JSONL span log")
    p_chrome.add_argument("output", help="Chrome JSON file to write")

    ns = parser.parse_args(argv)
    try:
        spans = read_spans(ns.trace)
    except OSError as exc:
        print(f"error: cannot read {ns.trace}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"error: {ns.trace} is not a trace file "
              f"(JSONL span log or Chrome JSON): {exc}", file=sys.stderr)
        return 2

    if ns.command == "summarize":
        print(summarize(spans))
    else:
        write_chrome_trace(ns.output, spans)
        print(f"wrote {len(spans)} span(s) to {ns.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
