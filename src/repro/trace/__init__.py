"""``repro.trace`` — spans, metrics and trace exporters.

The observability layer for the reproduction: a zero-dependency span
tracer with a process-global default (disabled until :func:`enable` is
called), a metrics registry (counters / gauges / histograms), and
exporters for Chrome ``chrome://tracing`` JSON, flat JSONL span logs and
a human-readable summary table.

Typical use::

    from repro import trace

    trace.enable()
    ... run HPL / SimCL work ...
    spans = trace.get_tracer().spans()
    trace.write_chrome_trace("out.json", spans)
    print(trace.summarize(spans))

Instrumenting code::

    with trace.span("build", category="hpl", kernel=name) as sp:
        ...
        sp.set_attr("cache", "miss")

    @trace.traced("parse", category="clc")
    def parse(tokens): ...

When tracing is disabled (the default) every one of these entry points
takes a single-attribute-check fast path, so instrumentation may stay in
hot-ish code permanently; see ``tests/trace/test_overhead.py``.
"""

from __future__ import annotations

import functools

from .core import NOOP_SPAN, NoopSpan, Span, Tracer
from .export import (chrome_trace, merge_spans, read_spans, summarize,
                     write_chrome_trace, write_jsonl)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_registry)

__all__ = [
    "Span", "Tracer", "NoopSpan", "NOOP_SPAN",
    "get_tracer", "set_tracer", "enable", "disable", "is_enabled",
    "span", "device_event", "current_span", "traced",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "reset_metrics",
    "chrome_trace", "write_chrome_trace", "write_jsonl", "read_spans",
    "merge_spans", "summarize",
]

#: the process-global tracer; disabled until someone calls enable()
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (always exists; may be disabled)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-global tracer (tests, embedders)."""
    global _default_tracer
    _default_tracer = tracer
    return tracer


def enable(fresh: bool = False) -> Tracer:
    """Turn on the global tracer; ``fresh=True`` starts a new one."""
    global _default_tracer
    if fresh:
        _default_tracer = Tracer(enabled=True)
    else:
        _default_tracer.enabled = True
    return _default_tracer


def disable() -> None:
    _default_tracer.enabled = False


def is_enabled() -> bool:
    return _default_tracer.enabled


def span(name: str, category: str = "app", **attrs):
    """Context manager for one wall-clock span on the global tracer.

    Returns a shared no-op (no allocation, no locking) when tracing is
    disabled, so call sites need no guards.
    """
    tracer = _default_tracer
    if not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, category, **attrs)


def device_event(device: str, name: str, start_ns: int, end_ns: int,
                 category: str = "device", parent_id: int | None = None,
                 **attrs):
    """Record a completed simulated-clock span on the global tracer."""
    tracer = _default_tracer
    if not tracer.enabled:
        return None
    return tracer.device_event(device, name, start_ns, end_ns,
                               category, parent_id=parent_id, **attrs)


def current_span():
    """The calling thread's innermost open span, or None."""
    tracer = _default_tracer
    if not tracer.enabled:
        return None
    return tracer.current()


def reset_metrics() -> None:
    """Zero every instrument in the global metrics registry.

    Counters in the registry are process-global and survive
    :func:`repro.hpl.runtime.reset_runtime` by design (the opt-pipeline
    benchmark aggregates across runtime resets); tests that assert on
    absolute counter values should call this in their setup instead of
    relying on a fresh process.
    """
    get_registry().reset()


def traced(name: str | None = None, category: str = "app", **attrs):
    """Decorator form of :func:`span`; usable bare or with arguments."""
    def decorate(func, span_name=None):
        span_name = span_name or func.__name__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracer = _default_tracer
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(span_name, category, **attrs):
                return func(*args, **kwargs)
        return wrapper

    if callable(name):       # @traced with no parentheses
        func, name = name, None
        return decorate(func)
    return lambda func: decorate(func, name)
