"""Semantic analysis: untyped AST → typed :class:`ProgramIR`.

Responsibilities
----------------
* name resolution with block scoping,
* C type checking with the usual arithmetic conversions (every implicit
  conversion becomes an explicit :class:`ir.Convert` node),
* desugaring: ``for`` → ``While`` with an update list, augmented
  assignments and ``++/--`` → plain :class:`ir.Store`,
* address-space rules (``__constant`` is read-only, ``__local`` declarations
  only inside kernels, kernel pointer args must name an address space),
* read/write classification of kernel parameters (consumed by HPL's
  transfer-minimisation pass and by the cost model),
* propagation of ``uses_barrier`` / ``uses_fp64`` through the call graph,
* rejection of everything outside the subset with a located diagnostic.
"""

from __future__ import annotations

from ..errors import SemanticError
from . import ast_nodes as A
from . import ir as I
from .builtins import ATOMIC_FUNCTIONS, BUILTINS, WORKITEM_FUNCTIONS
from .types import (BOOL, CONSTANT, DOUBLE, FLOAT, GLOBAL, INT, LOCAL,
                    PRIVATE, SCALAR_TYPES, SIZE_T, UINT, VOID, ArrayType,
                    CLType, PointerType, ScalarType, can_convert, promote,
                    usual_arithmetic_conversion)

#: Names usable in kernels without declaration.
PREDEFINED_CONSTANTS: dict[str, tuple[object, ScalarType]] = {
    "CLK_LOCAL_MEM_FENCE": (1, UINT),
    "CLK_GLOBAL_MEM_FENCE": (2, UINT),
    "true": (1, INT),
    "false": (0, INT),
    "M_PI": (3.141592653589793, DOUBLE),
    "M_PI_F": (3.1415927, FLOAT),
    "M_E": (2.718281828459045, DOUBLE),
    "INFINITY": (float("inf"), FLOAT),
    "NAN": (float("nan"), FLOAT),
    "FLT_EPSILON": (1.1920929e-07, FLOAT),
    "DBL_EPSILON": (2.220446049250313e-16, DOUBLE),
    "FLT_MAX": (3.4028234663852886e+38, FLOAT),
    "DBL_MAX": (1.7976931348623157e+308, DOUBLE),
    "INT_MAX": (2147483647, INT),
    "INT_MIN": (-2147483648, INT),
}

_COMPARISONS = ("==", "!=", "<", ">", "<=", ">=")
_LOGICAL = ("&&", "||")
_BITWISE = ("&", "|", "^", "<<", ">>")


class _Scope:
    """A chained symbol table mapping names to (CLType, kind)."""

    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.symbols: dict[str, tuple[CLType, str]] = {}

    def declare(self, name: str, type_: CLType, kind: str,
                line: int, filename: str) -> None:
        if name in self.symbols:
            raise SemanticError(f"redeclaration of {name!r}", line, 0,
                                filename)
        self.symbols[name] = (type_, kind)

    def lookup(self, name: str) -> tuple[CLType, str] | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class _FunctionContext:
    """Per-function state collected while lowering a body."""

    def __init__(self, func: A.FunctionDef) -> None:
        self.func = func
        self.params: dict[str, I.Param] = {}
        self.local_arrays: list[str] = []
        self.uses_barrier = False
        self.uses_fp64 = False
        self.loop_depth = 0
        self.calls: set[str] = set()


class Sema:
    """Run semantic analysis over a parsed translation unit."""

    def __init__(self, unit: A.TranslationUnit,
                 filename: str = "<kernel>") -> None:
        self.unit = unit
        self.filename = filename
        self.functions: dict[str, I.Function] = {}
        self.contexts: dict[str, _FunctionContext] = {}
        self._current: _FunctionContext | None = None

    # -- public -----------------------------------------------------------------

    def run(self) -> I.ProgramIR:
        # first pass: register signatures so helpers can be called before
        # their definition point
        signatures: dict[str, tuple[CLType, list[I.Param], bool]] = {}
        for fn in self.unit.functions:
            if fn.name in signatures:
                raise self._err(f"redefinition of function {fn.name!r}", fn)
            signatures[fn.name] = self._signature(fn)
        self._signatures = signatures

        for fn in self.unit.functions:
            self._lower_function(fn)

        self._check_no_recursion()
        self._propagate_flags()
        self._propagate_param_access()
        return I.ProgramIR(functions=self.functions)

    # -- helpers ------------------------------------------------------------------

    def _err(self, msg: str, node) -> SemanticError:
        line = getattr(node, "line", 0)
        col = getattr(node, "col", 0)
        return SemanticError(msg, line, col, self.filename)

    def _resolve_scalar(self, name: str, node) -> ScalarType:
        t = SCALAR_TYPES.get(name)
        if t is None:
            raise self._err(f"unknown type {name!r}", node)
        return t

    def _resolve_type(self, spec: A.TypeSpec, *, param: bool,
                      in_kernel: bool) -> CLType:
        if spec.base == "void":
            if spec.pointer:
                raise self._err("void* is outside the subset", spec)
            return VOID
        scalar = self._resolve_scalar(spec.base, spec)
        if spec.pointer == 0:
            if spec.address_space in (GLOBAL, CONSTANT) and param:
                raise self._err(
                    "a by-value scalar parameter cannot have a global/"
                    "constant address space", spec)
            return scalar
        if spec.pointer > 1:
            raise self._err("pointer-to-pointer is outside the subset", spec)
        space = spec.address_space
        if space == PRIVATE:
            if param and in_kernel:
                raise self._err(
                    "kernel pointer arguments must be declared __global, "
                    "__local or __constant", spec)
            # helper-function pointer params default to global
            space = GLOBAL
        if spec.is_const and space == GLOBAL and param:
            # `const __global float*` behaves like constant for analysis
            pass
        return PointerType(scalar, space)

    def _signature(self, fn: A.FunctionDef):
        ret = self._resolve_type(fn.return_type, param=False,
                                 in_kernel=fn.is_kernel)
        if fn.is_kernel and not ret.is_void:
            raise self._err("kernel functions must return void", fn)
        if not ret.is_void and not ret.is_scalar:
            raise self._err("functions may only return scalars or void", fn)
        params: list[I.Param] = []
        seen: set[str] = set()
        for p in fn.params:
            if p.name in seen:
                raise self._err(f"duplicate parameter {p.name!r}", p)
            seen.add(p.name)
            ptype = self._resolve_type(p.type_spec, param=True,
                                       in_kernel=fn.is_kernel)
            if ptype.is_void:
                raise self._err("parameter cannot have void type", p)
            param = I.Param(p.name, ptype)
            if (isinstance(ptype, PointerType)
                    and (ptype.address_space == CONSTANT
                         or p.type_spec.is_const)):
                param.is_read = False  # set when actually read
            params.append(param)
        return ret, params, fn.is_kernel

    # -- function lowering ---------------------------------------------------------

    def _lower_function(self, fn: A.FunctionDef) -> None:
        ret, params, is_kernel = self._signatures[fn.name]
        ctx = _FunctionContext(fn)
        ctx.params = {p.name: p for p in params}
        self._current = ctx
        self.contexts[fn.name] = ctx

        scope = _Scope()
        for p in params:
            scope.declare(p.name, p.type, "param", fn.line, self.filename)
            if isinstance(p.type, ScalarType) and p.type is DOUBLE:
                ctx.uses_fp64 = True

        body = self._lower_block(fn.body, scope, ret)
        self.functions[fn.name] = I.Function(
            name=fn.name, return_type=ret, params=params, body=body,
            is_kernel=is_kernel, local_arrays=list(ctx.local_arrays),
            uses_barrier=ctx.uses_barrier, uses_fp64=ctx.uses_fp64)
        self._current = None

    # -- statements -------------------------------------------------------------------

    def _lower_block(self, stmts: list, scope: _Scope,
                     ret: CLType) -> list[I.Stmt]:
        inner = _Scope(scope)
        out: list[I.Stmt] = []
        for stmt in stmts:
            out.extend(self._lower_stmt(stmt, inner, ret))
        return out

    def _lower_stmt(self, stmt, scope: _Scope, ret: CLType) -> list[I.Stmt]:
        if isinstance(stmt, A.DeclStmt):
            return self._lower_decl(stmt, scope)
        if isinstance(stmt, A.ExprStmt):
            return [self._lower_expr_stmt(stmt.expr, scope)]
        if isinstance(stmt, A.IfStmt):
            cond = self._lower_condition(stmt.cond, scope)
            then = self._lower_block(stmt.then, scope, ret)
            other = self._lower_block(stmt.otherwise, scope, ret)
            return [I.If(cond=cond, then=then, otherwise=other,
                         line=stmt.line)]
        if isinstance(stmt, A.ForStmt):
            return self._lower_for(stmt, scope, ret)
        if isinstance(stmt, A.WhileStmt):
            cond = self._lower_condition(stmt.cond, scope)
            self._current.loop_depth += 1
            body = self._lower_block(stmt.body, scope, ret)
            self._current.loop_depth -= 1
            return [I.While(cond=cond, body=body, line=stmt.line)]
        if isinstance(stmt, A.DoWhileStmt):
            self._current.loop_depth += 1
            body = self._lower_block(stmt.body, scope, ret)
            self._current.loop_depth -= 1
            cond = self._lower_condition(stmt.cond, scope)
            return [I.While(cond=cond, body=body, is_do_while=True,
                            line=stmt.line)]
        if isinstance(stmt, A.BreakStmt):
            if self._current.loop_depth == 0:
                raise self._err("'break' outside a loop", stmt)
            return [I.Break(line=stmt.line)]
        if isinstance(stmt, A.ContinueStmt):
            if self._current.loop_depth == 0:
                raise self._err("'continue' outside a loop", stmt)
            return [I.Continue(line=stmt.line)]
        if isinstance(stmt, A.ReturnStmt):
            return [self._lower_return(stmt, scope, ret)]
        if isinstance(stmt, A.BlockStmt):
            return self._lower_block(stmt.body, scope, ret)
        raise self._err(f"unsupported statement {type(stmt).__name__}", stmt)

    def _lower_return(self, stmt: A.ReturnStmt, scope: _Scope,
                      ret: CLType) -> I.Stmt:
        if self._current.func.is_kernel:
            if stmt.value is not None:
                raise self._err("kernels cannot return a value", stmt)
            return I.Return(value=None, line=stmt.line)
        if ret.is_void:
            if stmt.value is not None:
                raise self._err("void function returning a value", stmt)
            return I.Return(value=None, line=stmt.line)
        if stmt.value is None:
            raise self._err("non-void function must return a value", stmt)
        value = self._lower_expr(stmt.value, scope)
        return I.Return(value=self._convert(value, ret, stmt),
                        line=stmt.line)

    def _lower_decl(self, stmt: A.DeclStmt, scope: _Scope) -> list[I.Stmt]:
        out: list[I.Stmt] = []
        for d in stmt.decls:
            spec = d.type_spec
            if d.array_size is not None:
                elem = self._resolve_scalar(spec.base, d)
                if spec.pointer:
                    raise self._err("arrays of pointers are unsupported", d)
                size = self._const_int(d.array_size, scope)
                if size <= 0:
                    raise self._err("array size must be a positive constant",
                                    d)
                space = spec.address_space
                if space in (GLOBAL, CONSTANT):
                    raise self._err(
                        "in-function arrays must be __private or __local", d)
                if space == LOCAL and not self._current.func.is_kernel:
                    raise self._err("__local variables are only allowed in "
                                    "kernel functions", d)
                if d.init is not None:
                    raise self._err("array initializers are unsupported", d)
                atype = ArrayType(elem, size, space)
                scope.declare(d.name, atype, "array", d.line, self.filename)
                if space == LOCAL:
                    self._current.local_arrays.append(d.name)
                if elem is DOUBLE:
                    self._current.uses_fp64 = True
                out.append(I.DeclArray(name=d.name, element=elem, size=size,
                                       space=space, line=d.line))
                continue

            vtype = self._resolve_type(spec, param=False,
                                       in_kernel=self._current.func.is_kernel)
            if isinstance(vtype, PointerType):
                raise self._err(
                    "pointer-typed local variables are outside the subset; "
                    "index the parameter directly", d)
            if vtype.is_void:
                raise self._err("variable cannot have void type", d)
            if vtype is DOUBLE:
                self._current.uses_fp64 = True
            init = None
            if d.init is not None:
                init = self._convert(self._lower_expr(d.init, scope),
                                     vtype, d)
            scope.declare(d.name, vtype, "var", d.line, self.filename)
            out.append(I.DeclVar(name=d.name, type=vtype, init=init,
                                 line=d.line))
        return out

    def _lower_for(self, stmt: A.ForStmt, scope: _Scope,
                   ret: CLType) -> list[I.Stmt]:
        loop_scope = _Scope(scope)
        out: list[I.Stmt] = []
        for init_stmt in stmt.init:
            out.extend(self._lower_stmt(init_stmt, loop_scope, ret))
        cond = (self._lower_condition(stmt.cond, loop_scope)
                if stmt.cond is not None
                else I.Const(value=1, type=INT, line=stmt.line))
        update = [self._lower_expr_stmt(u.expr, loop_scope)
                  for u in stmt.update]
        self._current.loop_depth += 1
        body = self._lower_block(stmt.body, loop_scope, ret)
        self._current.loop_depth -= 1
        out.append(I.While(cond=cond, body=body, update=update,
                           line=stmt.line))
        return out

    # -- expression statements (assignment / calls / inc-dec) -----------------------------

    def _lower_expr_stmt(self, expr, scope: _Scope) -> I.Stmt:
        if isinstance(expr, A.AssignExpr):
            return self._lower_assign(expr, scope)
        if isinstance(expr, A.PostfixOp):
            one = A.IntLiteral(value=1, line=expr.line, col=expr.col)
            op = "+=" if expr.op == "++" else "-="
            return self._lower_assign(
                A.AssignExpr(op=op, lhs=expr.operand, rhs=one,
                             line=expr.line, col=expr.col), scope)
        if isinstance(expr, A.CallExpr):
            if expr.name == "barrier":
                return self._lower_barrier(expr, scope)
            if expr.name in ("mem_fence", "read_mem_fence",
                             "write_mem_fence"):
                # fences are ordering-only; the simulator's engines are
                # sequentially consistent so they are no-ops
                return I.EvalExpr(expr=I.Const(value=0, type=INT,
                                               line=expr.line),
                                  line=expr.line)
            if expr.name in ATOMIC_FUNCTIONS:
                return self._lower_atomic(expr, scope)
            call = self._lower_expr(expr, scope)
            return I.EvalExpr(expr=call, line=expr.line)
        raise self._err(
            "only assignments, ++/--, and calls may be used as statements",
            expr)

    def _lower_assign(self, expr: A.AssignExpr, scope: _Scope) -> I.Stmt:
        if isinstance(expr.rhs, A.AssignExpr):
            raise self._err("chained assignment is outside the subset", expr)
        target = self._lower_lvalue(expr.lhs, scope)
        rhs = self._lower_expr(expr.rhs, scope)
        if expr.op != "=":
            binop = expr.op[:-1]
            current = self._lvalue_as_load(target)
            rhs = self._binary(binop, current, rhs, expr)
        value = self._convert(rhs, target.type, expr)
        return I.Store(target=target, value=value, line=expr.line)

    def _lower_lvalue(self, node, scope: _Scope) -> I.LValue:
        if isinstance(node, A.Identifier):
            sym = scope.lookup(node.name)
            if sym is None:
                raise self._err(f"use of undeclared name {node.name!r}", node)
            type_, kind = sym
            if isinstance(type_, (PointerType, ArrayType)):
                raise self._err(
                    f"cannot assign to array/pointer {node.name!r} itself; "
                    "assign to an element", node)
            if kind == "param" and self._current.func.is_kernel:
                raise self._err(
                    "assigning to a by-value kernel argument has no effect "
                    "visible to the host; SimCL rejects it", node)
            return I.LValue(name=node.name, index=None, space=PRIVATE,
                            type=type_, line=node.line)
        if isinstance(node, A.IndexExpr):
            base = node.base
            if not isinstance(base, A.Identifier):
                raise self._err(
                    "indexed stores must target a named array/pointer", node)
            sym = scope.lookup(base.name)
            if sym is None:
                raise self._err(f"use of undeclared name {base.name!r}",
                                base)
            type_, _kind = sym
            if isinstance(type_, PointerType):
                space, elem = type_.address_space, type_.pointee
            elif isinstance(type_, ArrayType):
                space, elem = type_.address_space, type_.element
            else:
                raise self._err(f"{base.name!r} is not indexable", node)
            if space == CONSTANT:
                raise self._err("__constant memory is read-only", node)
            index = self._index_expr(node.index, scope)
            self._note_param_access(base.name, written=True)
            return I.LValue(name=base.name, index=index, space=space,
                            type=elem, line=node.line)
        raise self._err("expression is not assignable", node)

    def _lvalue_as_load(self, lv: I.LValue) -> I.Expr:
        if lv.index is None:
            return I.Var(name=lv.name, type=lv.type, line=lv.line)
        self._note_param_access(lv.name, read=True)
        return I.Load(base=lv.name, index=lv.index, space=lv.space,
                      type=lv.type, line=lv.line)

    def _lower_barrier(self, expr: A.CallExpr, scope: _Scope) -> I.Stmt:
        if len(expr.args) != 1:
            raise self._err("barrier() takes exactly one flags argument",
                            expr)
        if not self._current.func.is_kernel:
            # allowed by OpenCL but our engines only join groups at kernel
            # level; helper barriers would need inlining
            raise SemanticError(
                "barrier() inside helper functions is not supported by "
                "SimCL; call it from the kernel body",
                expr.line, expr.col, self.filename)
        flags_expr = self._lower_expr(expr.args[0], scope)
        flags = self._fold(flags_expr)
        if flags is None:
            raise self._err("barrier flags must be a constant expression",
                            expr)
        self._current.uses_barrier = True
        return I.BarrierStmt(flags=int(flags), line=expr.line)

    def _lower_atomic(self, expr: A.CallExpr, scope: _Scope) -> I.Stmt:
        op = ATOMIC_FUNCTIONS[expr.name]
        want_args = 1 if op in ("inc", "dec") else 2
        if len(expr.args) != want_args:
            raise self._err(
                f"{expr.name}() expects {want_args} argument(s)", expr)
        ptr = expr.args[0]
        if not (isinstance(ptr, A.UnaryOp) and ptr.op == "&"
                and isinstance(ptr.operand, A.IndexExpr)):
            raise self._err(
                f"{expr.name}() expects '&array[index]' as first argument",
                expr)
        target = self._lower_lvalue(ptr.operand, scope)
        if target.space not in (GLOBAL, LOCAL):
            raise self._err("atomics require __global or __local memory",
                            expr)
        if not isinstance(target.type, ScalarType) or target.type.is_float:
            raise self._err("atomics operate on integer memory only", expr)
        value = None
        if want_args == 2:
            value = self._convert(self._lower_expr(expr.args[1], scope),
                                  target.type, expr)
        return I.AtomicRMW(op=op, target=target, value=value,
                           line=expr.line)

    # -- expressions -----------------------------------------------------------------------

    def _lower_condition(self, node, scope: _Scope) -> I.Expr:
        cond = self._lower_expr(node, scope)
        if not isinstance(cond.type, ScalarType):
            raise self._err("condition must have scalar type", node)
        return cond

    def _index_expr(self, node, scope: _Scope) -> I.Expr:
        index = self._lower_expr(node, scope)
        if not isinstance(index.type, ScalarType) or index.type.is_float:
            raise self._err("array index must have integer type", node)
        return index

    def _lower_expr(self, node, scope: _Scope) -> I.Expr:
        if isinstance(node, A.IntLiteral):
            t = self._int_literal_type(node)
            return I.Const(value=node.value, type=t, line=node.line)
        if isinstance(node, A.FloatLiteral):
            t = FLOAT if "f" in node.suffix else DOUBLE
            if t is DOUBLE:
                self._current.uses_fp64 = True
            return I.Const(value=node.value, type=t, line=node.line)
        if isinstance(node, A.Identifier):
            return self._lower_identifier(node, scope)
        if isinstance(node, A.UnaryOp):
            return self._lower_unary(node, scope)
        if isinstance(node, A.BinaryOp):
            lhs = self._lower_expr(node.lhs, scope)
            rhs = self._lower_expr(node.rhs, scope)
            return self._binary(node.op, lhs, rhs, node)
        if isinstance(node, A.TernaryOp):
            cond = self._lower_condition(node.cond, scope)
            then = self._lower_expr(node.then, scope)
            other = self._lower_expr(node.otherwise, scope)
            if not (isinstance(then.type, ScalarType)
                    and isinstance(other.type, ScalarType)):
                raise self._err("ternary branches must be scalars", node)
            t = usual_arithmetic_conversion(then.type, other.type)
            return I.Select(cond=cond, then=self._convert(then, t, node),
                            otherwise=self._convert(other, t, node),
                            type=t, line=node.line)
        if isinstance(node, A.CastExpr):
            target = self._resolve_type(node.type_name, param=False,
                                        in_kernel=False)
            if not isinstance(target, ScalarType):
                raise self._err("only scalar casts are supported", node)
            operand = self._lower_expr(node.operand, scope)
            if not isinstance(operand.type, ScalarType):
                raise self._err("cast operand must be scalar", node)
            if target is DOUBLE:
                self._current.uses_fp64 = True
            return I.Convert(operand=operand, type=target, line=node.line)
        if isinstance(node, A.IndexExpr):
            return self._lower_index_load(node, scope)
        if isinstance(node, A.CallExpr):
            return self._lower_call(node, scope)
        if isinstance(node, A.SizeofExpr):
            t = self._resolve_type(node.type_name, param=False,
                                   in_kernel=False)
            if not isinstance(t, ScalarType):
                raise self._err("sizeof only supports scalar types", node)
            return I.Const(value=t.size, type=SIZE_T, line=node.line)
        if isinstance(node, A.PostfixOp):
            raise self._err(
                "++/-- may only be used as a standalone statement or in a "
                "for-update clause", node)
        if isinstance(node, A.AssignExpr):
            raise self._err("assignment inside an expression is outside the "
                            "subset", node)
        raise self._err(f"unsupported expression {type(node).__name__}", node)

    @staticmethod
    def _int_literal_type(node: A.IntLiteral) -> ScalarType:
        from .types import LONG, ULONG
        s = node.suffix
        unsigned = "u" in s
        long_ = "l" in s
        value = node.value
        if long_ or value > 2**31 - 1 or value < -(2**31):
            return ULONG if unsigned else (
                ULONG if value > 2**63 - 1 else LONG)
        return UINT if unsigned else INT

    def _lower_identifier(self, node: A.Identifier, scope: _Scope) -> I.Expr:
        sym = scope.lookup(node.name)
        if sym is not None:
            type_, kind = sym
            if isinstance(type_, (PointerType, ArrayType)):
                # bare array/pointer name: only valid as a call argument;
                # represented as Var and validated by the caller
                return I.Var(name=node.name, type=type_, line=node.line)
            return I.Var(name=node.name, type=type_, line=node.line)
        if node.name in PREDEFINED_CONSTANTS:
            value, t = PREDEFINED_CONSTANTS[node.name]
            return I.Const(value=value, type=t, line=node.line)
        raise self._err(f"use of undeclared name {node.name!r}", node)

    def _lower_unary(self, node: A.UnaryOp, scope: _Scope) -> I.Expr:
        if node.op == "&":
            raise self._err("address-of is only valid in atomic builtins",
                            node)
        operand = self._lower_expr(node.operand, scope)
        if not isinstance(operand.type, ScalarType):
            raise self._err(f"unary {node.op!r} needs a scalar operand",
                            node)
        if node.op == "!":
            return I.Unary(op="!", operand=operand, type=INT, line=node.line)
        if node.op == "~":
            if operand.type.is_float:
                raise self._err("~ requires an integer operand", node)
            t = promote(operand.type)
            return I.Unary(op="~", operand=self._convert(operand, t, node),
                           type=t, line=node.line)
        t = promote(operand.type)
        if node.op == "+":
            return self._convert(operand, t, node)
        return I.Unary(op="-", operand=self._convert(operand, t, node),
                       type=t, line=node.line)

    def _lower_index_load(self, node: A.IndexExpr, scope: _Scope) -> I.Expr:
        base = node.base
        if not isinstance(base, A.Identifier):
            raise self._err("indexing must target a named array/pointer",
                            node)
        sym = scope.lookup(base.name)
        if sym is None:
            raise self._err(f"use of undeclared name {base.name!r}", base)
        type_, _kind = sym
        if isinstance(type_, PointerType):
            space, elem = type_.address_space, type_.pointee
        elif isinstance(type_, ArrayType):
            space, elem = type_.address_space, type_.element
        else:
            raise self._err(f"{base.name!r} is not indexable", node)
        index = self._index_expr(node.index, scope)
        self._note_param_access(base.name, read=True)
        return I.Load(base=base.name, index=index, space=space, type=elem,
                      line=node.line)

    def _lower_call(self, node: A.CallExpr, scope: _Scope) -> I.Expr:
        name = node.name
        if name == "barrier" or name in ATOMIC_FUNCTIONS:
            raise self._err(f"{name}() cannot be used inside an expression "
                            "in SimCL; use it as a statement", node)
        if name in WORKITEM_FUNCTIONS:
            if name == "get_work_dim":
                if node.args:
                    raise self._err("get_work_dim() takes no arguments",
                                    node)
                return I.CallBuiltin(name=name, args=[], type=UINT,
                                     line=node.line)
            if len(node.args) != 1:
                raise self._err(f"{name}() takes exactly one argument", node)
            arg = self._lower_expr(node.args[0], scope)
            dim = self._fold(arg)
            if dim is None or int(dim) not in (0, 1, 2):
                raise self._err(f"{name}() dimension must be the constant "
                                "0, 1 or 2", node)
            return I.CallBuiltin(name=name,
                                 args=[I.Const(value=int(dim), type=INT)],
                                 type=INT, line=node.line)
        if name in BUILTINS:
            return self._lower_builtin(node, scope)
        if name in self._signatures:
            return self._lower_user_call(node, scope)
        raise self._err(f"call to unknown function {name!r}", node)

    def _lower_builtin(self, node: A.CallExpr, scope: _Scope) -> I.Expr:
        b = BUILTINS[node.name]
        if len(node.args) != b.arity:
            raise self._err(f"{node.name}() expects {b.arity} argument(s), "
                            f"got {len(node.args)}", node)
        args = [self._lower_expr(a, scope) for a in node.args]
        for a, raw in zip(args, node.args):
            if not isinstance(a.type, ScalarType):
                raise self._err(f"{node.name}() arguments must be scalars",
                                raw)
        arg_types = [a.type for a in args]
        result = b.result_rule(arg_types)
        if b.float_only:
            args = [self._convert(a, result, node) for a in args]
        else:
            common = result
            args = [self._convert(a, common, node) for a in args]
        if result is DOUBLE:
            self._current.uses_fp64 = True
        return I.CallBuiltin(name=node.name, args=args, type=result,
                             line=node.line)

    def _lower_user_call(self, node: A.CallExpr, scope: _Scope) -> I.Expr:
        ret, params, is_kernel = self._signatures[node.name]
        if is_kernel:
            raise self._err("kernels cannot be called from device code in "
                            "SimCL", node)
        if len(node.args) != len(params):
            raise self._err(
                f"{node.name}() expects {len(params)} argument(s), got "
                f"{len(node.args)}", node)
        self._current.calls.add(node.name)
        args: list[I.Expr] = []
        for arg_node, param in zip(node.args, params):
            arg = self._lower_expr(arg_node, scope)
            if isinstance(param.type, PointerType):
                if not isinstance(arg, I.Var) or not isinstance(
                        arg.type, (PointerType, ArrayType)):
                    raise self._err(
                        f"argument for pointer parameter {param.name!r} "
                        "must be a named array/pointer", arg_node)
                elem = (arg.type.pointee
                        if isinstance(arg.type, PointerType)
                        else arg.type.element)
                if elem != param.type.pointee:
                    raise self._err(
                        f"pointer element type mismatch for parameter "
                        f"{param.name!r}: {elem} vs {param.type.pointee}",
                        arg_node)
                args.append(arg)
                # record aliasing for access propagation
                self._current.calls.add(node.name)
            else:
                if not isinstance(arg.type, ScalarType):
                    raise self._err(
                        f"scalar argument expected for {param.name!r}",
                        arg_node)
                args.append(self._convert(arg, param.type, arg_node))
        return I.CallFunction(name=node.name, args=args, type=ret,
                              line=node.line)

    # -- typing helpers ------------------------------------------------------------------------

    def _binary(self, op: str, lhs: I.Expr, rhs: I.Expr, node) -> I.Expr:
        if not (isinstance(lhs.type, ScalarType)
                and isinstance(rhs.type, ScalarType)):
            raise self._err(f"operands of {op!r} must be scalars", node)
        if op in _LOGICAL:
            return I.Binary(op=op, lhs=lhs, rhs=rhs, type=INT,
                            line=getattr(node, "line", 0))
        if op in _COMPARISONS:
            t = usual_arithmetic_conversion(lhs.type, rhs.type)
            return I.Binary(op=op, lhs=self._convert(lhs, t, node),
                            rhs=self._convert(rhs, t, node), type=INT,
                            line=getattr(node, "line", 0))
        if op in _BITWISE:
            if lhs.type.is_float or rhs.type.is_float:
                raise self._err(f"{op!r} requires integer operands", node)
            if op in ("<<", ">>"):
                t = promote(lhs.type)
                return I.Binary(op=op, lhs=self._convert(lhs, t, node),
                                rhs=self._convert(rhs, promote(rhs.type),
                                                  node),
                                type=t, line=getattr(node, "line", 0))
            t = usual_arithmetic_conversion(lhs.type, rhs.type)
            return I.Binary(op=op, lhs=self._convert(lhs, t, node),
                            rhs=self._convert(rhs, t, node), type=t,
                            line=getattr(node, "line", 0))
        if op == "%" and (lhs.type.is_float or rhs.type.is_float):
            raise self._err("'%' requires integer operands; use fmod()",
                            node)
        t = usual_arithmetic_conversion(lhs.type, rhs.type)
        if t is DOUBLE:
            self._current.uses_fp64 = True
        return I.Binary(op=op, lhs=self._convert(lhs, t, node),
                        rhs=self._convert(rhs, t, node), type=t,
                        line=getattr(node, "line", 0))

    def _convert(self, expr: I.Expr, target: CLType, node) -> I.Expr:
        if expr.type == target or expr.type is target:
            return expr
        if not can_convert(expr.type, target):
            raise self._err(f"cannot convert {expr.type} to {target}", node)
        if isinstance(expr, I.Const) and isinstance(target, ScalarType):
            value = expr.value
            if target.is_float:
                value = float(value)
            else:
                value = int(value)
            return I.Const(value=value, type=target, line=expr.line)
        return I.Convert(operand=expr, type=target, line=expr.line)

    def _const_int(self, node, scope: _Scope) -> int:
        expr = self._lower_expr(node, scope)
        value = self._fold(expr)
        if value is None:
            raise self._err("expected an integer constant expression", node)
        return int(value)

    def _fold(self, expr: I.Expr):
        """Evaluate a constant expression tree, or return None."""
        if isinstance(expr, I.Const):
            return expr.value
        if isinstance(expr, I.Convert):
            v = self._fold(expr.operand)
            if v is None:
                return None
            return float(v) if expr.type.is_float else int(v)
        if isinstance(expr, I.Unary):
            v = self._fold(expr.operand)
            if v is None:
                return None
            return {"-": lambda x: -x, "~": lambda x: ~int(x),
                    "!": lambda x: int(not x)}[expr.op](v)
        if isinstance(expr, I.Binary):
            a, b = self._fold(expr.lhs), self._fold(expr.rhs)
            if a is None or b is None:
                return None
            try:
                return {
                    "+": lambda: a + b, "-": lambda: a - b,
                    "*": lambda: a * b,
                    "/": lambda: (a / b if expr.type.is_float
                                  else int(a / b)),
                    "%": lambda: int(a - b * int(a / b)),
                    "<<": lambda: int(a) << int(b),
                    ">>": lambda: int(a) >> int(b),
                    "&": lambda: int(a) & int(b),
                    "|": lambda: int(a) | int(b),
                    "^": lambda: int(a) ^ int(b),
                }[expr.op]()
            except (KeyError, ZeroDivisionError):
                return None
        return None

    # -- access classification --------------------------------------------------------------------

    def _note_param_access(self, name: str, read: bool = False,
                           written: bool = False) -> None:
        param = self._current.params.get(name)
        if param is None:
            return
        if read:
            param.is_read = True
        if written:
            param.is_written = True

    def _check_no_recursion(self) -> None:
        # DFS over the call graph
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str, chain: list[str]) -> None:
            if name in done:
                return
            if name in visiting:
                raise SemanticError(
                    "recursion is not allowed in OpenCL C: "
                    + " -> ".join(chain + [name]),
                    0, 0, self.filename)
            visiting.add(name)
            for callee in self.contexts[name].calls:
                visit(callee, chain + [name])
            visiting.discard(name)
            done.add(name)

        for name in self.contexts:
            visit(name, [])

    def _propagate_flags(self) -> None:
        changed = True
        while changed:
            changed = False
            for name, ctx in self.contexts.items():
                fn = self.functions[name]
                for callee in ctx.calls:
                    cf = self.functions[callee]
                    if cf.uses_fp64 and not fn.uses_fp64:
                        fn.uses_fp64 = True
                        changed = True
                    if cf.uses_barrier and not fn.uses_barrier:
                        fn.uses_barrier = True
                        changed = True

    def _propagate_param_access(self) -> None:
        """Propagate pointer read/write facts from helpers into callers."""
        # map: function -> list of (call expr) is not retained, so walk IR
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                changed |= self._propagate_in_body(fn, fn.body)

    def _propagate_in_body(self, fn: I.Function, body: list) -> bool:
        changed = False
        params = {p.name: p for p in fn.params}

        def walk_expr(expr) -> None:
            nonlocal changed
            if isinstance(expr, I.CallFunction):
                callee = self.functions[expr.name]
                for arg, cp in zip(expr.args, callee.params):
                    if (isinstance(arg, I.Var) and arg.name in params
                            and isinstance(params[arg.name].type,
                                           (PointerType, ArrayType))):
                        p = params[arg.name]
                        if cp.is_read and not p.is_read:
                            p.is_read = True
                            changed = True
                        if cp.is_written and not p.is_written:
                            p.is_written = True
                            changed = True
                for a in expr.args:
                    walk_expr(a)
            elif isinstance(expr, (I.Unary, I.Convert)):
                walk_expr(expr.operand)
            elif isinstance(expr, I.Binary):
                walk_expr(expr.lhs)
                walk_expr(expr.rhs)
            elif isinstance(expr, I.Select):
                walk_expr(expr.cond)
                walk_expr(expr.then)
                walk_expr(expr.otherwise)
            elif isinstance(expr, I.CallBuiltin):
                for a in expr.args:
                    walk_expr(a)
            elif isinstance(expr, I.Load):
                walk_expr(expr.index)

        def walk_stmts(stmts: list) -> None:
            for s in stmts:
                if isinstance(s, I.DeclVar) and s.init is not None:
                    walk_expr(s.init)
                elif isinstance(s, I.Store):
                    if s.target.index is not None:
                        walk_expr(s.target.index)
                    walk_expr(s.value)
                elif isinstance(s, I.AtomicRMW):
                    if s.target.index is not None:
                        walk_expr(s.target.index)
                    if s.value is not None:
                        walk_expr(s.value)
                elif isinstance(s, I.EvalExpr):
                    walk_expr(s.expr)
                elif isinstance(s, I.If):
                    walk_expr(s.cond)
                    walk_stmts(s.then)
                    walk_stmts(s.otherwise)
                elif isinstance(s, I.While):
                    walk_expr(s.cond)
                    walk_stmts(s.body)
                    walk_stmts(s.update)
                elif isinstance(s, I.Return) and s.value is not None:
                    walk_expr(s.value)

        walk_stmts(body)
        return changed


def analyze(unit: A.TranslationUnit,
            filename: str = "<kernel>") -> I.ProgramIR:
    """Run semantic analysis and return the typed program IR."""
    return Sema(unit, filename).run()
