"""Strength reduction (O2): divisions and remainders by constants.

Three exact rewrites:

* unsigned ``x / 2**k``  ->  ``x >> k``
* unsigned ``x % 2**k``  ->  ``x & (2**k - 1)``
* float ``x / c`` with ``c`` an exact power of two -> ``x * (1/c)``
  (the reciprocal of a power of two is exact in binary floating point,
  so the product rounds identically to the quotient)

Signed integer division is deliberately left alone: C truncates toward
zero while ``>>`` floors, so the shift form differs for negative values.
"""

from __future__ import annotations

import math

import numpy as np

from .. import ir as I
from ..types import INT
from .manager import rewrite_stmt_exprs, walk_stmts


def _power_of_two_int(expr) -> int | None:
    """k when ``expr`` is a Const integer power of two ``2**k``, else None."""
    if not isinstance(expr, I.Const):
        return None
    try:
        v = int(expr.value)
    except (TypeError, ValueError):
        return None
    if v <= 0 or v & (v - 1):
        return None
    return v.bit_length() - 1


def _exact_float_reciprocal(expr):
    """``1/c`` when ``c`` is a Const float power of two whose reciprocal
    is exactly representable in the constant's dtype, else None."""
    if not isinstance(expr, I.Const):
        return None
    try:
        c = float(expr.value)
    except (TypeError, ValueError):
        return None
    if not math.isfinite(c) or c == 0.0:
        return None
    mantissa, _ = math.frexp(c)
    if abs(mantissa) != 0.5:
        return None
    recip = 1.0 / c
    typed = expr.type.np_dtype.type(recip)
    if not np.isfinite(typed) or typed == 0.0 or float(typed) != recip:
        return None
    return recip


class StrengthReducePass:
    name = "strength_reduce"

    def run(self, program: I.ProgramIR) -> bool:
        self._changed = False
        for func in program.functions.values():
            for stmt in walk_stmts(func.body):
                if not isinstance(stmt, (I.If, I.While)):
                    rewrite_stmt_exprs(stmt, self._reduce)
                else:
                    from .manager import map_expr
                    stmt.cond = map_expr(stmt.cond, self._reduce)
        return self._changed

    def _reduce(self, expr):
        out = self._reduce_node(expr)
        if out is not expr:
            self._changed = True
        return out

    def _reduce_node(self, expr):
        if not isinstance(expr, I.Binary):
            return expr
        t = expr.type
        if expr.lhs.type is not t:
            return expr
        if t.is_float:
            if expr.op == "/":
                recip = _exact_float_reciprocal(expr.rhs)
                if recip is not None:
                    return I.Binary(
                        type=t, line=expr.line, op="*", lhs=expr.lhs,
                        rhs=I.Const(type=t, line=expr.rhs.line,
                                    value=t.np_dtype.type(recip).item()))
            return expr
        if t.signed:
            return expr
        if expr.op == "/":
            k = _power_of_two_int(expr.rhs)
            if k is not None:
                return I.Binary(
                    type=t, line=expr.line, op=">>", lhs=expr.lhs,
                    rhs=I.Const(type=INT, line=expr.rhs.line, value=k))
        elif expr.op == "%":
            k = _power_of_two_int(expr.rhs)
            if k is not None:
                mask = t.np_dtype.type((1 << k) - 1).item()
                return I.Binary(
                    type=t, line=expr.line, op="&", lhs=expr.lhs,
                    rhs=I.Const(type=t, line=expr.rhs.line, value=mask))
        return expr
