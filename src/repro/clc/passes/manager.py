"""Pass manager and IR-walking helpers for the optimizing middle-end.

The pipeline rewrites the typed tree IR produced by sema *in place*
(every pass receives a :class:`~repro.clc.ir.ProgramIR` and mutates it),
then a final analysis pass tags work-item uniformity for the lowerer.
The rewriting passes are run to a fixpoint — constant folding exposes
dead branches, dead-code elimination exposes more foldable stores — and
each execution of a pass is observable: it runs under a ``pass:<name>``
trace span (category ``clc``) and bumps the ``clc.pass_<name>`` counter
plus a ``clc.pass_seconds_<name>`` accumulator, which is how the
benchsuite proves a warm cache start performed *zero* pass executions.
"""

from __future__ import annotations

import os
import time

from .. import ir as I

#: Version of the pass pipeline.  Part of the persistent kernel cache key
#: (together with the opt level and the bytecode version), so changing
#: what the passes do invalidates cached post-optimization artifacts.
PIPELINE_VERSION = 1

#: opt level used when neither build options nor configuration choose one
DEFAULT_OPT_LEVEL = 2

#: upper bound on fold/dce/strength fixpoint rounds (each round runs
#: every rewriting pass once; real kernels settle in 2-3)
MAX_PIPELINE_ROUNDS = 8

_opt_level_override: int | None = None


def _clamp(level: int) -> int:
    """Opt levels above 2 behave as 2 (like -O3 on a real driver)."""
    return max(0, min(2, int(level)))


def set_default_opt_level(level) -> None:
    """Set (or with ``None`` clear) the process-wide default opt level.

    This is what ``hpl.configure(opt_level=...)`` calls; an explicit
    override wins over the ``HPL_OPT_LEVEL`` environment variable.
    """
    global _opt_level_override
    _opt_level_override = None if level is None else _clamp(level)


def default_opt_level() -> int:
    """The opt level used by builds that do not pass ``-O<n>`` options."""
    if _opt_level_override is not None:
        return _opt_level_override
    env = os.environ.get("HPL_OPT_LEVEL")
    if env:
        try:
            return _clamp(int(env))
        except ValueError:
            pass
    return DEFAULT_OPT_LEVEL


def resolve_opt_level(options: str = "") -> int:
    """Effective opt level of one ``Program.build(options)`` call.

    ``-cl-opt-disable`` always wins (O0, the OpenCL-standard spelling);
    otherwise the last ``-O0``/``-O1``/``-O2``/``-O3`` option decides,
    falling back to :func:`default_opt_level`.
    """
    level = None
    for tok in (options or "").split():
        if tok == "-cl-opt-disable":
            return 0
        if len(tok) == 3 and tok[:2] == "-O" and tok[2] in "0123":
            level = int(tok[2])
    return default_opt_level() if level is None else _clamp(level)


def opt_signature(level: int) -> str:
    """Cache-key component describing the optimization configuration."""
    from ..lower import BYTECODE_VERSION
    return f"O{level}:pipe{PIPELINE_VERSION}:bc{BYTECODE_VERSION}"


# -- pipeline --------------------------------------------------------------

def pipeline_passes(level: int):
    """(rewriting passes, analysis passes) for an opt level."""
    from .dce import DeadCodePass
    from .fold import FoldPass
    from .strength import StrengthReducePass
    from .uniformity import UniformityPass

    rewriters = []
    if level >= 1:
        rewriters = [FoldPass(), DeadCodePass()]
    if level >= 2:
        rewriters.append(StrengthReducePass())
    return rewriters, [UniformityPass()]


def run_pipeline(program: I.ProgramIR, level: int, observer=None) -> None:
    """Run the pass pipeline for ``level`` over ``program`` in place.

    ``observer(name, program, changed)`` — when given — is called after
    every pass execution; the ``python -m repro.clc dump`` subcommand
    uses it to print the IR between passes.
    """
    rewriters, analyses = pipeline_passes(level)
    if rewriters:
        for _round in range(MAX_PIPELINE_ROUNDS):
            changed = False
            for p in rewriters:
                changed |= _run_pass(p, program, observer)
            if not changed:
                break
    for p in analyses:
        _run_pass(p, program, observer)


def _run_pass(p, program: I.ProgramIR, observer=None) -> bool:
    from ... import trace

    registry = trace.get_registry()
    start = time.perf_counter()
    with trace.span(f"pass:{p.name}", category="clc"):
        changed = bool(p.run(program))
    registry.counter(f"clc.pass_{p.name}").inc()
    registry.counter(f"clc.pass_seconds_{p.name}").inc(
        time.perf_counter() - start)
    if observer is not None:
        observer(p.name, program, changed)
    return changed


def optimize_program(program: I.ProgramIR, opt_level: int,
                     observer=None) -> I.ProgramIR:
    """Optimize ``program`` in place and attach its kernel bytecode.

    At O0 the tree IR is left untouched and no bytecode is produced —
    the engines then use their original tree interpreters, which is the
    pre-refactor behaviour ``-cl-opt-disable`` promises.  At O1+ the
    rewriting passes run to fixpoint and :func:`repro.clc.lower
    .lower_program` produces the flat register bytecode both engines
    execute.  The result (tree + bytecode + level) is what the
    persistent kernel cache serializes, so warm starts skip *both* the
    front-end and the middle-end.
    """
    from ... import trace
    from ..lower import lower_program

    level = _clamp(opt_level)
    program.opt_level = level
    if level <= 0:
        program.bytecode = None
        return program
    with trace.span("optimize", category="clc", opt_level=level):
        run_pipeline(program, level, observer)
        program.bytecode = lower_program(program, level, PIPELINE_VERSION)
        verify_line_info(program)
    return program


#: bytecode ops the lowerer legitimately emits without source lines:
#: parameter/constant materialization and work-item-id prologue queries.
_LINE_EXEMPT_OPS = ("const", "wiq")


def verify_line_info(program: I.ProgramIR) -> None:
    """Check that lowering preserved source-line debug info.

    The per-line profiler (:mod:`repro.prof`) attributes modeled cost to
    kernel source lines through the ``line`` field of each bytecode
    instruction, so an optimizer pass or the lowerer dropping line info
    silently degrades attribution.  For every function whose *tree* IR is
    fully line-annotated (all statements and expressions carry a
    positive ``line``), every emitted instruction other than the exempt
    prologue ops must carry one too.  Functions with incomplete tree
    annotations — synthetic IR built by tests or tools — are skipped
    rather than reported, since the lowerer cannot invent lines the
    front-end never recorded.
    """
    if program.bytecode is None:
        return
    for func in program.functions.values():
        annotated = True
        for stmt in walk_stmts(func.body):
            if getattr(stmt, "line", 0) <= 0:
                annotated = False
                break
            for top in stmt_exprs(stmt):
                for expr in walk_exprs(top):
                    # constants lower to the exempt "const" op, and the
                    # folding pass synthesizes them without lines
                    if isinstance(expr, I.Const):
                        continue
                    if getattr(expr, "line", 0) <= 0:
                        annotated = False
                        break
                if not annotated:
                    break
            if not annotated:
                break
        if not annotated:
            continue
        bc = program.bytecode.functions.get(func.name)
        if bc is None:
            continue
        for ins in bc.instrs:
            if ins.op in _LINE_EXEMPT_OPS:
                continue
            if ins.line <= 0:
                raise AssertionError(
                    f"lowering dropped line info: {func.name!r} emitted "
                    f"{ins.op!r} (dst r{ins.dst}) with line=0 although the "
                    "source tree is fully annotated")


# -- IR walking helpers shared by the passes -------------------------------

def map_expr(expr, fn):
    """Post-order rewrite: children first, then ``fn`` on the node."""
    if isinstance(expr, I.Load):
        expr.index = map_expr(expr.index, fn)
    elif isinstance(expr, (I.Unary, I.Convert)):
        expr.operand = map_expr(expr.operand, fn)
    elif isinstance(expr, I.Binary):
        expr.lhs = map_expr(expr.lhs, fn)
        expr.rhs = map_expr(expr.rhs, fn)
    elif isinstance(expr, I.Select):
        expr.cond = map_expr(expr.cond, fn)
        expr.then = map_expr(expr.then, fn)
        expr.otherwise = map_expr(expr.otherwise, fn)
    elif isinstance(expr, (I.CallBuiltin, I.CallFunction)):
        expr.args = [map_expr(a, fn) for a in expr.args]
    return fn(expr)


def rewrite_stmt_exprs(stmt, fn) -> None:
    """Apply ``map_expr(..., fn)`` to every expression site of ``stmt``
    (recursing into nested statement lists)."""
    if isinstance(stmt, I.DeclVar):
        if stmt.init is not None:
            stmt.init = map_expr(stmt.init, fn)
    elif isinstance(stmt, I.Store):
        if stmt.target.index is not None:
            stmt.target.index = map_expr(stmt.target.index, fn)
        stmt.value = map_expr(stmt.value, fn)
    elif isinstance(stmt, I.AtomicRMW):
        if stmt.target.index is not None:
            stmt.target.index = map_expr(stmt.target.index, fn)
        if stmt.value is not None:
            stmt.value = map_expr(stmt.value, fn)
    elif isinstance(stmt, I.EvalExpr):
        stmt.expr = map_expr(stmt.expr, fn)
    elif isinstance(stmt, I.If):
        stmt.cond = map_expr(stmt.cond, fn)
        rewrite_block_exprs(stmt.then, fn)
        rewrite_block_exprs(stmt.otherwise, fn)
    elif isinstance(stmt, I.While):
        stmt.cond = map_expr(stmt.cond, fn)
        rewrite_block_exprs(stmt.body, fn)
        rewrite_block_exprs(stmt.update, fn)
    elif isinstance(stmt, I.Return):
        if stmt.value is not None:
            stmt.value = map_expr(stmt.value, fn)


def rewrite_block_exprs(stmts: list, fn) -> None:
    for stmt in stmts:
        rewrite_stmt_exprs(stmt, fn)


def walk_stmts(stmts: list):
    """Yield every statement, depth first."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, I.If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.otherwise)
        elif isinstance(stmt, I.While):
            yield from walk_stmts(stmt.body)
            yield from walk_stmts(stmt.update)


def walk_exprs(expr):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, I.Load):
        yield from walk_exprs(expr.index)
    elif isinstance(expr, (I.Unary, I.Convert)):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, I.Binary):
        yield from walk_exprs(expr.lhs)
        yield from walk_exprs(expr.rhs)
    elif isinstance(expr, I.Select):
        yield from walk_exprs(expr.cond)
        yield from walk_exprs(expr.then)
        yield from walk_exprs(expr.otherwise)
    elif isinstance(expr, (I.CallBuiltin, I.CallFunction)):
        for a in expr.args:
            yield from walk_exprs(a)


def stmt_exprs(stmt):
    """Yield the top-level expressions a statement evaluates directly
    (not recursing into nested statement lists)."""
    if isinstance(stmt, I.DeclVar):
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, I.Store):
        if stmt.target.index is not None:
            yield stmt.target.index
        yield stmt.value
    elif isinstance(stmt, I.AtomicRMW):
        if stmt.target.index is not None:
            yield stmt.target.index
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, I.EvalExpr):
        yield stmt.expr
    elif isinstance(stmt, I.If):
        yield stmt.cond
    elif isinstance(stmt, I.While):
        yield stmt.cond
    elif isinstance(stmt, I.Return):
        if stmt.value is not None:
            yield stmt.value


def is_pure(expr) -> bool:
    """True when evaluating ``expr`` can neither fault nor have effects.

    Memory reads can trap on out-of-bounds indices and helper-function
    calls can do anything, so both pin an expression in place; every
    other node in the subset (arithmetic, selects, builtins, work-item
    queries) is total and side-effect free.
    """
    for e in walk_exprs(expr):
        if isinstance(e, (I.Load, I.CallFunction)):
            return False
    return True
