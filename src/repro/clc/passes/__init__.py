"""Optimizing middle-end: the pass pipeline over the typed tree IR.

See :mod:`repro.clc.passes.manager` for the pipeline itself and
``docs/compiler.md`` for the full middle-end story.
"""

from .dce import DeadCodePass
from .fold import FoldPass
from .manager import (DEFAULT_OPT_LEVEL, MAX_PIPELINE_ROUNDS,
                      PIPELINE_VERSION, default_opt_level, is_pure,
                      map_expr, opt_signature, optimize_program,
                      pipeline_passes, resolve_opt_level, run_pipeline,
                      set_default_opt_level, walk_exprs, walk_stmts)
from .strength import StrengthReducePass
from .uniformity import GROUP, LAUNCH, VARYING, UniformityPass

__all__ = [
    "DEFAULT_OPT_LEVEL", "MAX_PIPELINE_ROUNDS", "PIPELINE_VERSION",
    "default_opt_level", "set_default_opt_level", "resolve_opt_level",
    "opt_signature", "optimize_program", "run_pipeline", "pipeline_passes",
    "map_expr", "walk_exprs", "walk_stmts", "is_pure",
    "FoldPass", "DeadCodePass", "StrengthReducePass", "UniformityPass",
    "LAUNCH", "GROUP", "VARYING",
]
