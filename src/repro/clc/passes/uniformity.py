"""Work-item uniformity analysis.

Classifies every expression and scalar variable on a three-level
lattice:

* ``LAUNCH`` (2) — the value is identical for *every* work-item of the
  launch (constants, ``get_global_size``, loop counters of uniform
  loops, ...).
* ``GROUP`` (1) — identical within one work-group but not across groups
  (anything derived from ``get_group_id``).
* ``VARYING`` (0) — may differ between work-items (``get_global_id``,
  memory loads, helper-call results).

The analysis is a greatest-fixpoint dataflow: variables start at
``LAUNCH`` and are lowered by every assignment to the minimum of the
assigned value's level and the *control level* of the assignment (an
assignment under a varying branch makes the variable varying even if
the value is uniform, because some items skip it).  ``break`` /
``continue`` lower the control level of their loop, ``return`` lowers
the whole function — so a ``LAUNCH`` classification really does mean
"all lanes execute this in lock step with the same value", which is
what lets the vector engine compute such expressions once as scalars
instead of per-lane arrays.

Results are attached as ``expr._uniform`` (an ad-hoc attribute the IR
codec ignores) and ``func._uniform_vars``; the bytecode lowerer bakes
them into instruction flags.
"""

from __future__ import annotations

from .. import ir as I
from .manager import walk_stmts

LAUNCH = 2
GROUP = 1
VARYING = 0

#: work-item query functions by result level
_BUILTIN_LEVELS = {
    "get_global_size": LAUNCH, "get_local_size": LAUNCH,
    "get_num_groups": LAUNCH, "get_work_dim": LAUNCH,
    "get_global_offset": LAUNCH,
    "get_group_id": GROUP,
    "get_global_id": VARYING, "get_local_id": VARYING,
}


class UniformityPass:
    name = "uniformity"

    def run(self, program: I.ProgramIR) -> bool:
        for func in program.functions.values():
            self._analyze(func)
        return False   # analysis only — never rewrites the tree

    def _analyze(self, func: I.Function) -> None:
        levels: dict[str, int] = {}
        for p in func.params:
            # scalar kernel args are set once per launch; helper-function
            # parameters take per-call (hence potentially per-item) values
            levels[p.name] = LAUNCH if func.is_kernel else VARYING
        for stmt in walk_stmts(func.body):
            if isinstance(stmt, I.DeclVar):
                levels.setdefault(stmt.name, LAUNCH)
            elif isinstance(stmt, I.DeclArray):
                levels.setdefault(stmt.name, VARYING)
        self._levels = levels
        self._loop_floors: dict[int, int] = {}
        self._loop_stack: list[int] = []
        self._tagging = False
        self._func_floor = LAUNCH if func.is_kernel else VARYING

        for _ in range(64):   # |lattice| * |vars| bounds real iteration
            self._changed = False
            self._visit_block(func.body, self._func_floor)
            if not self._changed:
                break

        # final pass: tag every expression with its settled level
        self._tagging = True
        self._visit_block(func.body, self._func_floor)
        self._tagging = False
        func._uniform_vars = dict(levels)

    def _lower_var(self, name: str, level: int) -> None:
        old = self._levels.get(name, VARYING)
        if level < old:
            self._levels[name] = level
            self._changed = True

    def _lower_func(self, level: int) -> None:
        if level < self._func_floor:
            self._func_floor = level
            self._changed = True

    # -- statements ---------------------------------------------------------

    def _visit_block(self, stmts: list, ctrl: int) -> None:
        for stmt in stmts:
            ctrl = min(ctrl, self._func_floor)
            if isinstance(stmt, I.DeclVar):
                lvl = (self._expr(stmt.init) if stmt.init is not None
                       else LAUNCH)
                self._lower_var(stmt.name, min(lvl, ctrl))
            elif isinstance(stmt, I.Store):
                lvl = self._expr(stmt.value)
                if stmt.target.index is None:
                    self._lower_var(stmt.target.name, min(lvl, ctrl))
                else:
                    self._expr(stmt.target.index)
            elif isinstance(stmt, I.AtomicRMW):
                if stmt.target.index is not None:
                    self._expr(stmt.target.index)
                if stmt.value is not None:
                    self._expr(stmt.value)
            elif isinstance(stmt, I.EvalExpr):
                self._expr(stmt.expr)
            elif isinstance(stmt, I.If):
                inner = min(ctrl, self._expr(stmt.cond))
                self._visit_block(stmt.then, inner)
                self._visit_block(stmt.otherwise, inner)
            elif isinstance(stmt, I.While):
                floor = self._loop_floors.setdefault(id(stmt), LAUNCH)
                inner = min(ctrl, self._expr(stmt.cond), floor)
                self._loop_stack.append(id(stmt))
                self._visit_block(stmt.body, inner)
                self._visit_block(stmt.update, inner)
                self._loop_stack.pop()
            elif isinstance(stmt, (I.Break, I.Continue)):
                if self._loop_stack:
                    loop_id = self._loop_stack[-1]
                    if ctrl < self._loop_floors.get(loop_id, LAUNCH):
                        self._loop_floors[loop_id] = ctrl
                        self._changed = True
            elif isinstance(stmt, I.Return):
                if stmt.value is not None:
                    self._expr(stmt.value)
                self._lower_func(ctrl)

    # -- expressions --------------------------------------------------------

    def _expr(self, expr) -> int:
        lvl = self._expr_level(expr)
        if self._tagging:
            expr._uniform = lvl
        return lvl

    def _expr_level(self, expr) -> int:
        if isinstance(expr, I.Const):
            return LAUNCH
        if isinstance(expr, I.Var):
            return self._levels.get(expr.name, VARYING)
        if isinstance(expr, I.Load):
            self._expr(expr.index)
            return VARYING
        if isinstance(expr, (I.Unary, I.Convert)):
            return self._expr(expr.operand)
        if isinstance(expr, I.Binary):
            return min(self._expr(expr.lhs), self._expr(expr.rhs))
        if isinstance(expr, I.Select):
            return min(self._expr(expr.cond), self._expr(expr.then),
                       self._expr(expr.otherwise))
        if isinstance(expr, I.CallBuiltin):
            arg_lvl = LAUNCH
            for a in expr.args:
                arg_lvl = min(arg_lvl, self._expr(a))
            base = _BUILTIN_LEVELS.get(expr.name)
            if base is not None:
                return base
            return arg_lvl
        if isinstance(expr, I.CallFunction):
            for a in expr.args:
                self._expr(a)
            return VARYING
        return VARYING
