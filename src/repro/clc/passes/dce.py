"""Dead-code elimination: unused locals, dead stores, dead branches.

Runs interleaved with constant folding: folding turns conditions into
constants, this pass deletes the untaken branch, which exposes further
folds.  Liveness is name-based and deliberately conservative — a scalar
variable is removable only when *no* expression anywhere in the function
mentions it, so no flow analysis can be wrong about loops or barriers.
Dead stores go first; the declaration itself follows a round later once
nothing assigns it (the manager iterates the rewriters to a fixpoint).

``__local`` array declarations are always kept even when unused: they
participate in the engines' local-memory accounting (occupancy and
:class:`~repro.errors.OutOfResources` checks), which must not change
with the opt level.
"""

from __future__ import annotations

from ...ocl.engines.carith import truth
from .. import ir as I
from .manager import is_pure, stmt_exprs, walk_exprs, walk_stmts


def _collect_liveness(func: I.Function):
    """(reads, assigned): names any expression observes, and names that
    some remaining scalar store or declaration initializer assigns."""
    reads: set[str] = set()
    assigned: set[str] = set()
    for stmt in walk_stmts(func.body):
        if isinstance(stmt, (I.Store, I.AtomicRMW)):
            if stmt.target.index is not None:
                reads.add(stmt.target.name)
            elif isinstance(stmt, I.Store):
                assigned.add(stmt.target.name)
        for expr in stmt_exprs(stmt):
            for e in walk_exprs(expr):
                if isinstance(e, I.Var):
                    reads.add(e.name)
                elif isinstance(e, I.Load):
                    reads.add(e.base)
    return reads, assigned


def _const_truth(expr) -> bool | None:
    if isinstance(expr, I.Const):
        return bool(truth(expr.type.np_dtype.type(expr.value)))
    return None


class DeadCodePass:
    name = "dce"

    def run(self, program: I.ProgramIR) -> bool:
        changed = False
        for func in program.functions.values():
            self._reads, self._assigned = _collect_liveness(func)
            out, block_changed = self._clean_block(func.body)
            func.body[:] = out
            changed |= block_changed
        return changed

    def _clean_block(self, stmts: list):
        out: list = []
        changed = False
        for i, stmt in enumerate(stmts):
            kept, stmt_changed = self._clean_stmt(stmt)
            changed |= stmt_changed
            out.extend(kept)
            if kept and isinstance(kept[-1],
                                   (I.Return, I.Break, I.Continue)):
                if i + 1 < len(stmts):
                    changed = True   # drop unreachable trailing statements
                break
        return out, changed

    def _clean_stmt(self, stmt):
        if isinstance(stmt, I.DeclVar):
            if stmt.name not in self._reads \
                    and stmt.name not in self._assigned \
                    and (stmt.init is None or is_pure(stmt.init)):
                return [], True
            return [stmt], False
        if isinstance(stmt, I.DeclArray):
            if stmt.space != "local" and stmt.name not in self._reads:
                return [], True
            return [stmt], False
        if isinstance(stmt, I.Store):
            if stmt.target.index is None \
                    and stmt.target.name not in self._reads \
                    and is_pure(stmt.value):
                return [], True
            return [stmt], False
        if isinstance(stmt, I.EvalExpr):
            if is_pure(stmt.expr):
                return [], True
            return [stmt], False
        if isinstance(stmt, I.If):
            return self._clean_if(stmt)
        if isinstance(stmt, I.While):
            return self._clean_while(stmt)
        return [stmt], False

    def _clean_if(self, stmt: I.If):
        known = _const_truth(stmt.cond)
        if known is not None:
            taken = stmt.then if known else stmt.otherwise
            cleaned, _ = self._clean_block(taken)
            return cleaned, True
        then, c1 = self._clean_block(stmt.then)
        otherwise, c2 = self._clean_block(stmt.otherwise)
        stmt.then[:] = then
        stmt.otherwise[:] = otherwise
        if not then and not otherwise and is_pure(stmt.cond):
            return [], True
        return [stmt], c1 or c2

    def _clean_while(self, stmt: I.While):
        known = _const_truth(stmt.cond)
        if known is False and not stmt.is_do_while:
            return [], True
        body, c1 = self._clean_block(stmt.body)
        update, c2 = self._clean_block(stmt.update)
        stmt.body[:] = body
        stmt.update[:] = update
        return [stmt], c1 or c2
