"""Constant folding and algebraic simplification.

Folded results are computed with the *same* NumPy-backed C semantics the
engines use (:mod:`repro.ocl.engines.carith`), so a folded expression is
bit-identical to what either engine would have produced at run time —
including integer wraparound, truncating division, shift-modulo-width
and float rounding.  Identities are only applied where C semantics make
them exact: e.g. ``x + 0`` is *not* folded for floats (``-0.0 + 0.0``
is ``+0.0``) but ``x - 0.0`` and ``x * 1.0`` are.
"""

from __future__ import annotations

import numpy as np

from ...ocl.engines.carith import (c_div, c_imod, c_shl, c_shr, to_dtype,
                                   truth)
from .. import ir as I
from ..builtins import BUILTINS
from ..types import INT
from .manager import is_pure, map_expr, walk_stmts

_COMPARISONS = ("==", "!=", "<", ">", "<=", ">=")


def _const(type_, value, line):
    """A Const of ``type_`` holding ``value`` coerced to its dtype."""
    coerced = type_.np_dtype.type(np.asarray(to_dtype(value, type_.np_dtype)))
    return I.Const(type=type_, line=line, value=coerced.item())


def _typed(expr: I.Const):
    """Runtime value of a Const, exactly as the engines materialize it."""
    return expr.type.np_dtype.type(expr.value)


def _is_const(expr, value=None) -> bool:
    if not isinstance(expr, I.Const):
        return False
    if value is None:
        return True
    try:
        return _typed(expr) == value
    except (TypeError, ValueError):  # pragma: no cover
        return False


class FoldPass:
    name = "fold"

    def run(self, program: I.ProgramIR) -> bool:
        self._changed = False
        for func in program.functions.values():
            for stmt in walk_stmts(func.body):
                self._fold_stmt(stmt)
        return self._changed

    def _fold_stmt(self, stmt) -> None:
        from .manager import rewrite_stmt_exprs

        # rewrite only this statement's direct expressions; walk_stmts
        # already visits nested statements, so recursion here would fold
        # every inner statement once per nesting depth
        if isinstance(stmt, (I.If, I.While)):
            stmt.cond = map_expr(stmt.cond, self._fold)
        else:
            rewrite_stmt_exprs(stmt, self._fold)

    # -- the single-node rewrite (children already folded) ------------------

    def _fold(self, expr):
        out = self._fold_node(expr)
        if out is not expr:
            self._changed = True
        return out

    def _fold_node(self, expr):
        with np.errstate(all="ignore"):
            if isinstance(expr, I.Convert):
                return self._fold_convert(expr)
            if isinstance(expr, I.Unary):
                return self._fold_unary(expr)
            if isinstance(expr, I.Binary):
                return self._fold_binary(expr)
            if isinstance(expr, I.Select):
                if _is_const(expr.cond):
                    taken = (expr.then if truth(_typed(expr.cond))
                             else expr.otherwise)
                    if taken.type is expr.type:
                        return taken
                return expr
            if isinstance(expr, I.CallBuiltin):
                return self._fold_builtin(expr)
        return expr

    def _fold_convert(self, expr: I.Convert):
        if _is_const(expr.operand):
            return _const(expr.type, _typed(expr.operand), expr.line)
        return expr

    def _fold_unary(self, expr: I.Unary):
        if not _is_const(expr.operand):
            return expr
        x = _typed(expr.operand)
        if expr.op == "-":
            return _const(expr.type, -x, expr.line)
        if expr.op == "~":
            return _const(expr.type, ~x, expr.line)
        if expr.op == "!" and expr.type is INT:
            return _const(INT, 0 if truth(x) else 1, expr.line)
        return expr

    def _fold_binary(self, expr: I.Binary):
        op, lhs, rhs = expr.op, expr.lhs, expr.rhs
        if _is_const(lhs) and _is_const(rhs):
            folded = self._eval_binary(expr, _typed(lhs), _typed(rhs))
            if folded is not None:
                return folded
        return self._simplify_binary(expr)

    def _eval_binary(self, expr: I.Binary, x, y):
        """Mirror of SerialEngine._eval_binary over two constants."""
        op = expr.op
        if op in _COMPARISONS:
            if expr.type is not INT:
                return None
            table = {"==": x == y, "!=": x != y, "<": x < y,
                     ">": x > y, "<=": x <= y, ">=": x >= y}
            return _const(INT, 1 if table[op] else 0, expr.line)
        if op == "&&":
            if expr.type is not INT:
                return None
            return _const(INT, 1 if truth(x) and truth(y) else 0, expr.line)
        if op == "||":
            if expr.type is not INT:
                return None
            return _const(INT, 1 if truth(x) or truth(y) else 0, expr.line)
        if op == "+":
            result = x + y
        elif op == "-":
            result = x - y
        elif op == "*":
            result = x * y
        elif op == "/":
            result = c_div(x, y, expr.type.is_float)
        elif op == "%":
            result = c_imod(x, y)
        elif op == "<<":
            result = c_shl(x, y)
        elif op == ">>":
            result = c_shr(x, y)
        elif op == "&":
            result = x & y
        elif op == "|":
            result = x | y
        elif op == "^":
            result = x ^ y
        else:  # pragma: no cover
            return None
        return _const(expr.type, result, expr.line)

    def _simplify_binary(self, expr: I.Binary):
        op, lhs, rhs = expr.op, expr.lhs, expr.rhs
        t = expr.type
        is_int = not t.is_float

        def same(side):
            # identity rewrites may only drop the node when the kept
            # operand already has the result type (no hidden conversion)
            return side.type is t

        if op == "*":
            if _is_const(rhs, 1) and same(lhs):
                return lhs
            if _is_const(lhs, 1) and same(rhs):
                return rhs
            if is_int and _is_const(rhs, 0) and is_pure(lhs):
                return _const(t, 0, expr.line)
            if is_int and _is_const(lhs, 0) and is_pure(rhs):
                return _const(t, 0, expr.line)
        elif op == "+":
            if is_int and _is_const(rhs, 0) and same(lhs):
                return lhs
            if is_int and _is_const(lhs, 0) and same(rhs):
                return rhs
        elif op == "-":
            # x - 0 is exact for floats too (unlike x + 0 with -0.0)
            if _is_const(rhs, 0) and same(lhs):
                return lhs
        elif op == "/":
            if _is_const(rhs, 1) and same(lhs):
                return lhs
        elif op == "%":
            if is_int and _is_const(rhs, 1) and is_pure(lhs):
                return _const(t, 0, expr.line)
        elif op in ("<<", ">>"):
            if _is_const(rhs, 0) and same(lhs):
                return lhs
        elif op == "&":
            if _is_const(rhs, 0) and is_pure(lhs):
                return _const(t, 0, expr.line)
            if _is_const(lhs, 0) and is_pure(rhs):
                return _const(t, 0, expr.line)
        elif op in ("|", "^"):
            if _is_const(rhs, 0) and same(lhs):
                return lhs
            if _is_const(lhs, 0) and same(rhs):
                return rhs
        elif op == "&&" and t is INT:
            if _is_const(lhs) and not truth(_typed(lhs)):
                return _const(INT, 0, expr.line)
            if _is_const(rhs) and not truth(_typed(rhs)) and is_pure(lhs):
                return _const(INT, 0, expr.line)
        elif op == "||" and t is INT:
            if _is_const(lhs) and truth(_typed(lhs)):
                return _const(INT, 1, expr.line)
            if _is_const(rhs) and truth(_typed(rhs)) and is_pure(lhs):
                return _const(INT, 1, expr.line)
        return expr

    def _fold_builtin(self, expr: I.CallBuiltin):
        if expr.name.startswith("get_"):
            return expr
        b = BUILTINS.get(expr.name)
        if b is None or not all(_is_const(a) for a in expr.args):
            return expr
        args = [_typed(a) for a in expr.args]
        try:
            result = b.impl(*args)
        except Exception:  # pragma: no cover - defensive
            return expr
        return _const(expr.type, result, expr.line)
