"""Token definitions for the OpenCL C subset compiler.

The lexer produces a flat list of :class:`Token` objects.  Token kinds are
simple strings (an enum adds nothing here and string kinds keep the parser
tables readable).
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds -----------------------------------------------------------------

IDENT = "ident"
KEYWORD = "keyword"
INT_LIT = "int_lit"
FLOAT_LIT = "float_lit"
PUNCT = "punct"        # operators and punctuation
EOF = "eof"

#: All reserved words recognised by the subset.  Address-space qualifiers are
#: accepted both with and without the leading double underscore, as in real
#: OpenCL C.
KEYWORDS = frozenset({
    "void", "char", "uchar", "short", "ushort", "int", "uint",
    "long", "ulong", "float", "double", "bool", "size_t", "ptrdiff_t",
    "signed", "unsigned",
    "if", "else", "for", "while", "do", "break", "continue", "return",
    "const", "volatile", "restrict", "static", "inline",
    "__kernel", "kernel",
    "__global", "global", "__local", "local",
    "__constant", "constant", "__private", "private",
    "struct", "typedef", "switch", "case", "default", "goto", "sizeof",
})

#: Multi-character punctuation, longest first so the lexer can use greedy
#: matching.
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ";", ",", "?", ":", ".",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the raw spelling for identifiers/keywords/punctuators; for
    numeric literals it keeps the spelling while ``parsed`` holds the Python
    value and ``suffix`` the literal suffix (``f``, ``u``, ``ul``...).
    """

    kind: str
    value: str
    line: int
    col: int
    parsed: object = None
    suffix: str = ""

    def is_(self, kind: str, value: str | None = None) -> bool:
        """True when this token has the given kind (and value, if given)."""
        return self.kind == kind and (value is None or self.value == value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"
