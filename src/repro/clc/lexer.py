"""Tokenizer for the OpenCL C subset.

Operates on preprocessed source (see :mod:`repro.clc.preprocessor`), but is
self-contained: it also skips ``//`` and ``/* */`` comments so it can be used
directly on comment-bearing text in tests.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import (EOF, FLOAT_LIT, IDENT, INT_LIT, KEYWORD, KEYWORDS, PUNCT,
                     PUNCTUATORS, Token)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyz"
                         "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_DIGITS = frozenset("0123456789")
_IDENT_CONT = _IDENT_START | _DIGITS
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


class Lexer:
    """Single-pass tokenizer producing a list of :class:`Token`.

    Parameters
    ----------
    source:
        The text to tokenize.
    filename:
        Used in diagnostics only.
    """

    def __init__(self, source: str, filename: str = "<kernel>") -> None:
        self.src = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- public API ---------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Tokenize the whole input, appending a final EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_ws_and_comments()
            if self.pos >= len(self.src):
                tokens.append(Token(EOF, "", self.line, self.col))
                return tokens
            tokens.append(self._next_token())

    # -- internals ----------------------------------------------------------

    def _error(self, msg: str) -> LexError:
        return LexError(msg, self.line, self.col, self.filename)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.src) and self.src[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, off: int = 0) -> str:
        i = self.pos + off
        return self.src[i] if i < len(self.src) else ""

    def _skip_ws_and_comments(self) -> None:
        while self.pos < len(self.src):
            c = self.src[self.pos]
            if c in " \t\r\n\f\v":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self.src[self.pos] != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.src):
                    if self.src[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment",
                                   start_line, start_col, self.filename)
            else:
                return

    def _next_token(self) -> Token:
        line, col = self.line, self.col
        c = self.src[self.pos]

        if c in _IDENT_START:
            start = self.pos
            while self.pos < len(self.src) and self.src[self.pos] in _IDENT_CONT:
                self._advance()
            word = self.src[start:self.pos]
            kind = KEYWORD if word in KEYWORDS else IDENT
            return Token(kind, word, line, col)

        if c in _DIGITS or (c == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, col)

        for p in PUNCTUATORS:
            if self.src.startswith(p, self.pos):
                self._advance(len(p))
                return Token(PUNCT, p, line, col)

        raise self._error(f"unexpected character {c!r}")

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        src = self.src
        is_float = False

        if src[self.pos] == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise self._error("malformed hex literal")
            while self._peek() in _HEX_DIGITS:
                self._advance()
            digits = src[start:self.pos]
            value: object = int(digits, 16)
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() in ("e", "E"):
                save = self.pos
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                if self._peek() in _DIGITS:
                    is_float = True
                    while self._peek() in _DIGITS:
                        self._advance()
                else:  # not an exponent after all (e.g. `1e` then ident)
                    while self.pos > save:
                        self.pos -= 1
                        self.col -= 1
            digits = src[start:self.pos]
            value = float(digits) if is_float else int(digits, 10)

        suffix_start = self.pos
        while self._peek() and self._peek() in "uUlLfF":
            self._advance()
        suffix = src[suffix_start:self.pos].lower()

        if "f" in suffix:
            is_float = True
            value = float(value)

        kind = FLOAT_LIT if is_float else INT_LIT
        return Token(kind, src[start:self.pos], line, col,
                     parsed=value, suffix=suffix)


def tokenize(source: str, filename: str = "<kernel>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
