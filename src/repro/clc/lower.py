"""Lowering of the optimized tree IR into flat register bytecode.

The tree walked by the engines has two costs real drivers don't pay:
Python ``isinstance`` dispatch per node per work-item, and re-deriving
facts (operand dtypes, operator costs, memory spaces) on every visit.
This module flattens each function once into a register machine:

* every parameter and declared variable gets a *named register* (flat,
  name-keyed — inner-scope redeclarations share the outer register,
  exactly like the engines' name-keyed environments);
* every sub-expression gets a dedicated temp register, so register
  indices are fully static;
* constants and work-item queries are deduplicated and hoisted into a
  prologue executed once per activation;
* structured control flow stays structured: ``if`` and ``loop``
  instructions carry the lengths of their nested instruction spans,
  so the serial engine can still implement barriers by yielding from
  nested generators.

Only ``mov`` instructions ever target a variable register; each carries
the variable's uniformity level from the analysis pass, which is what
lets the vector engine keep launch-uniform values as true NumPy scalars
(one arithmetic op per *launch* instead of per work-item).

The bytecode is a set of plain dataclasses registered with the IR codec
in :mod:`repro.clc.ir`, so it serializes inside ``ProgramIR.to_bytes``
and the persistent kernel cache stores post-optimization artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .builtins import BUILTINS
from . import ir as I
from .types import DOUBLE, PointerType, ScalarType

#: Version of the bytecode encoding.  Part of the disk-cache key (via
#: ``opt_signature``) and checked by the engines before execution.
BYTECODE_VERSION = 1

#: uniformity level meaning "identical across the whole launch"
#: (mirrors repro.clc.passes.uniformity.LAUNCH without the import cycle)
UNIFORM_LAUNCH = 2


# -- serializable containers ------------------------------------------------

@dataclass
class Instr:
    """One flat instruction.  ``dst``/``a``/``b``/``c`` are register
    indices (-1 = unused); ``aux`` holds op-specific payload."""
    op: str = ""
    dst: int = -1
    a: int = -1
    b: int = -1
    c: int = -1
    aux: object = None
    dtype: str | None = None
    line: int = 0
    uniform: int = 0


@dataclass
class KernelBytecode:
    """Flat bytecode of one function (kernel or helper)."""
    name: str = ""
    params: list = field(default_factory=list)
    n_regs: int = 0
    n_mems: int = 0
    reg_names: list = field(default_factory=list)
    instrs: list = field(default_factory=list)
    ret_dtype: str | None = None
    is_kernel: bool = False


@dataclass
class ProgramBytecode:
    """All functions of a translation unit, post-optimization."""
    version: int = BYTECODE_VERSION
    opt_level: int = 0
    pipeline_version: int = 0
    functions: dict = field(default_factory=dict)


I.register_node_classes(Instr, KernelBytecode, ProgramBytecode)


# -- opcodes (explicit constants; linked code dispatches on these ints) -----

OP_CONST = 0
OP_MOV = 1
OP_CASTF = 2     # free cast: implicit conversion the tree never counted
OP_CAST = 3      # counted cast: an explicit Convert node
OP_NEG = 4
OP_BNOT = 5
OP_LNOT = 6
OP_ADD = 7
OP_SUB = 8
OP_MUL = 9
OP_DIV = 10
OP_MOD = 11
OP_SHL = 12
OP_SHR = 13
OP_BAND = 14
OP_BOR = 15
OP_BXOR = 16
OP_CEQ = 17
OP_CNE = 18
OP_CLT = 19
OP_CGT = 20
OP_CLE = 21
OP_CGE = 22
OP_LAND = 23
OP_LOR = 24
OP_SELECT = 25
OP_WIQ = 26
OP_BUILTIN = 27
OP_CALL = 28
OP_LD = 29
OP_ST = 30
OP_ATOMIC = 31
OP_DECLARR = 32
OP_IF = 33
OP_LOOP = 34
OP_BREAK = 35
OP_CONTINUE = 36
OP_RET = 37
OP_BARRIER = 38

_OPCODES = {
    "const": OP_CONST, "mov": OP_MOV, "castf": OP_CASTF, "cast": OP_CAST,
    "neg": OP_NEG, "bnot": OP_BNOT, "lnot": OP_LNOT,
    "add": OP_ADD, "sub": OP_SUB, "mul": OP_MUL, "div": OP_DIV,
    "mod": OP_MOD, "shl": OP_SHL, "shr": OP_SHR,
    "band": OP_BAND, "bor": OP_BOR, "bxor": OP_BXOR,
    "ceq": OP_CEQ, "cne": OP_CNE, "clt": OP_CLT, "cgt": OP_CGT,
    "cle": OP_CLE, "cge": OP_CGE, "land": OP_LAND, "lor": OP_LOR,
    "select": OP_SELECT, "wiq": OP_WIQ, "builtin": OP_BUILTIN,
    "call": OP_CALL, "ld": OP_LD, "st": OP_ST, "atomic": OP_ATOMIC,
    "declarr": OP_DECLARR, "if": OP_IF, "loop": OP_LOOP,
    "break": OP_BREAK, "continue": OP_CONTINUE, "ret": OP_RET,
    "barrier": OP_BARRIER,
}

_BINARY_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "<<": "shl", ">>": "shr", "&": "band", "|": "bor", "^": "bxor",
    "==": "ceq", "!=": "cne", "<": "clt", ">": "cgt", "<=": "cle",
    ">=": "cge", "&&": "land", "||": "lor",
}

#: work-item query codes: (qcode, needs dim)
_WIQ_CODES = {
    "get_global_id": 0, "get_local_id": 1, "get_group_id": 2,
    "get_work_dim": 3, "get_global_offset": 4,
    # every other get_* resolves through NDRange.size_of
}

#: address-space codes carried by ld/st/atomic/declarr
SPACE_GLOBAL = 0     # global or constant buffers
SPACE_LOCAL = 1
SPACE_PRIVATE = 2

_SPACE_CODES = {"global": SPACE_GLOBAL, "constant": SPACE_GLOBAL,
                "local": SPACE_LOCAL, "private": SPACE_PRIVATE}


def lower_program(program: I.ProgramIR, opt_level: int,
                  pipeline_version: int) -> ProgramBytecode:
    functions = {
        name: _FuncLowerer(func).lower()
        for name, func in program.functions.items()
    }
    return ProgramBytecode(version=BYTECODE_VERSION, opt_level=opt_level,
                           pipeline_version=pipeline_version,
                           functions=functions)


class _FuncLowerer:
    def __init__(self, func: I.Function) -> None:
        self.func = func
        self.reg_names: list[str] = []
        self.var_regs: dict[str, int] = {}
        self.var_types: dict[str, ScalarType] = {}
        self.mem_slots: dict[str, int] = {}
        self.mem_names: list[str] = []
        self.consts: dict[tuple, int] = {}
        self.wiqs: dict[tuple, int] = {}
        self.prologue: list[Instr] = []
        self.code: list[Instr] = []
        self.uniform_vars = getattr(func, "_uniform_vars", {})

    def lower(self) -> KernelBytecode:
        func = self.func
        params = []
        for p in func.params:
            if isinstance(p.type, PointerType):
                slot = self._mem_slot(p.name)
                elem = p.type.pointee
                params.append(["mem", p.name, elem.name, slot,
                               p.type.address_space, elem.size])
            else:
                reg = self._var_reg(p.name, p.type)
                params.append(["scalar", p.name, p.type.name, reg])
        for stmt in func.body:
            self._stmt(stmt)
        ret = func.return_type
        return KernelBytecode(
            name=func.name, params=params,
            n_regs=len(self.reg_names), n_mems=len(self.mem_names),
            reg_names=list(self.reg_names),
            instrs=self.prologue + self.code,
            ret_dtype=None if ret.is_void else ret.name,
            is_kernel=func.is_kernel)

    # -- registers / slots --------------------------------------------------

    def _new_reg(self, name: str) -> int:
        self.reg_names.append(name)
        return len(self.reg_names) - 1

    def _temp(self) -> int:
        return self._new_reg(f"%t{len(self.reg_names)}")

    def _var_reg(self, name: str, type_) -> int:
        reg = self.var_regs.get(name)
        if reg is None:
            reg = self._new_reg(name)
            self.var_regs[name] = reg
        self.var_types[name] = type_
        return reg

    def _mem_slot(self, name: str) -> int:
        slot = self.mem_slots.get(name)
        if slot is None:
            slot = len(self.mem_names)
            self.mem_names.append(name)
            self.mem_slots[name] = slot
        return slot

    def _const_reg(self, type_: ScalarType, value) -> int:
        key = (type_.name, repr(value))
        reg = self.consts.get(key)
        if reg is None:
            reg = self._new_reg(f"%c{len(self.reg_names)}")
            self.consts[key] = reg
            self.prologue.append(Instr("const", dst=reg, aux=value,
                                       dtype=type_.name,
                                       uniform=UNIFORM_LAUNCH))
        return reg

    def _wiq_reg(self, name: str, dim: int, type_: ScalarType) -> int:
        key = (name, dim)
        reg = self.wiqs.get(key)
        if reg is None:
            reg = self._new_reg(f"%{name.replace('get_', '')}{dim}")
            self.wiqs[key] = reg
            self.prologue.append(Instr("wiq", dst=reg, aux=[name, dim],
                                       dtype=type_.name))
        return reg

    def _var_uniform(self, name: str) -> int:
        return int(self.uniform_vars.get(name, 0))

    def _coerce(self, reg: int, src_type, dst_type, line: int = 0) -> int:
        """Free cast (castf) when the value needs an uncounted implicit
        conversion the tree engines performed at assignment/call/return
        boundaries."""
        if isinstance(src_type, ScalarType) and src_type is dst_type:
            return reg
        tmp = self._temp()
        self.code.append(Instr("castf", dst=tmp, a=reg,
                               dtype=dst_type.name, line=line))
        return tmp

    def _emit_mov(self, name: str, src: int, line: int) -> None:
        dst = self.var_regs[name]
        self.code.append(Instr("mov", dst=dst, a=src,
                               dtype=self.var_types[name].name, line=line,
                               uniform=self._var_uniform(name)))

    def _subspan(self, thunk) -> list[Instr]:
        saved = self.code
        self.code = []
        thunk()
        span = self.code
        self.code = saved
        return span

    # -- statements ---------------------------------------------------------

    def _block(self, stmts: list) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt) -> None:
        if isinstance(stmt, I.DeclVar):
            self._var_reg(stmt.name, stmt.type)
            if stmt.init is not None:
                src = self._expr(stmt.init)
                src = self._coerce(src, stmt.init.type, stmt.type,
                                   stmt.line)
            else:
                src = self._const_reg(stmt.type, 0)
            self._emit_mov(stmt.name, src, stmt.line)
        elif isinstance(stmt, I.DeclArray):
            slot = self._mem_slot(stmt.name)
            nbytes = stmt.size * stmt.element.size
            self.code.append(Instr(
                "declarr", line=stmt.line,
                aux=[slot, stmt.size, stmt.element.name,
                     _SPACE_CODES[stmt.space], stmt.name, nbytes]))
        elif isinstance(stmt, I.Store):
            self._lower_store(stmt)
        elif isinstance(stmt, I.AtomicRMW):
            idx = self._expr(stmt.target.index)
            val = self._expr(stmt.value) if stmt.value is not None else -1
            slot = self._mem_slot(stmt.target.name)
            self.code.append(Instr(
                "atomic", b=idx, c=val, line=stmt.line,
                aux=[stmt.op, slot, _SPACE_CODES[stmt.target.space]]))
        elif isinstance(stmt, I.EvalExpr):
            self._expr(stmt.expr)
        elif isinstance(stmt, I.If):
            cond = self._expr(stmt.cond)
            then_span = self._subspan(lambda: self._block(stmt.then))
            else_span = self._subspan(lambda: self._block(stmt.otherwise))
            self.code.append(Instr(
                "if", a=cond, line=stmt.line,
                aux=[len(then_span), len(else_span)],
                uniform=getattr(stmt.cond, "_uniform", 0)))
            self.code.extend(then_span)
            self.code.extend(else_span)
        elif isinstance(stmt, I.While):
            cond_holder = [-1]

            def lower_cond():
                cond_holder[0] = self._expr(stmt.cond)

            cond_span = self._subspan(lower_cond)
            body_span = self._subspan(lambda: self._block(stmt.body))
            update_span = self._subspan(lambda: self._block(stmt.update))
            self.code.append(Instr(
                "loop", a=cond_holder[0], line=stmt.line,
                aux=[len(cond_span), len(body_span), len(update_span),
                     1 if stmt.is_do_while else 0],
                uniform=getattr(stmt.cond, "_uniform", 0)))
            self.code.extend(cond_span)
            self.code.extend(body_span)
            self.code.extend(update_span)
        elif isinstance(stmt, I.Break):
            self.code.append(Instr("break", line=stmt.line))
        elif isinstance(stmt, I.Continue):
            self.code.append(Instr("continue", line=stmt.line))
        elif isinstance(stmt, I.Return):
            if stmt.value is not None \
                    and not self.func.return_type.is_void:
                src = self._expr(stmt.value)
                src = self._coerce(src, stmt.value.type,
                                   self.func.return_type, stmt.line)
            else:
                src = -1
            self.code.append(Instr("ret", a=src, line=stmt.line))
        elif isinstance(stmt, I.BarrierStmt):
            self.code.append(Instr("barrier", aux=stmt.flags,
                                   line=stmt.line))
        else:  # pragma: no cover
            raise TypeError(
                f"cannot lower statement {type(stmt).__name__}")

    def _lower_store(self, stmt: I.Store) -> None:
        target = stmt.target
        val = self._expr(stmt.value)
        if target.index is None:
            if target.name not in self.var_regs:
                # scalar parameter written before any declaration
                self._var_reg(target.name, target.type)
            val = self._coerce(val, stmt.value.type, target.type,
                               stmt.line)
            self._emit_mov(target.name, val, stmt.line)
            return
        idx = self._expr(target.index)
        slot = self._mem_slot(target.name)
        elem = target.type
        self.code.append(Instr(
            "st", b=idx, c=val, line=stmt.line,
            dtype=elem.name if isinstance(elem, ScalarType) else None,
            aux=[slot, _SPACE_CODES[target.space]]))

    # -- expressions --------------------------------------------------------

    def _expr(self, expr) -> int:
        if isinstance(expr, I.Const):
            value = expr.value
            if hasattr(value, "item"):
                value = value.item()
            return self._const_reg(expr.type, value)
        if isinstance(expr, I.Var):
            reg = self.var_regs.get(expr.name)
            if reg is None:  # pragma: no cover - sema guarantees decls
                raise TypeError(f"undeclared variable {expr.name!r}")
            return reg
        if isinstance(expr, I.Load):
            idx = self._expr(expr.index)
            slot = self._mem_slot(expr.base)
            dst = self._temp()
            self.code.append(Instr(
                "ld", dst=dst, b=idx, line=expr.line,
                dtype=expr.type.name if isinstance(expr.type, ScalarType)
                else None,
                aux=[slot, _SPACE_CODES[expr.space]]))
            return dst
        if isinstance(expr, I.Convert):
            src = self._expr(expr.operand)
            dst = self._temp()
            self.code.append(Instr("cast", dst=dst, a=src,
                                   dtype=expr.type.name, line=expr.line))
            return dst
        if isinstance(expr, I.Unary):
            src = self._expr(expr.operand)
            dst = self._temp()
            op = {"-": "neg", "~": "bnot", "!": "lnot"}[expr.op]
            self.code.append(Instr(op, dst=dst, a=src,
                                   dtype=expr.type.name, line=expr.line))
            return dst
        if isinstance(expr, I.Binary):
            lhs = self._expr(expr.lhs)
            rhs = self._expr(expr.rhs)
            dst = self._temp()
            self.code.append(Instr(
                _BINARY_OPS[expr.op], dst=dst, a=lhs, b=rhs,
                dtype=expr.type.name, line=expr.line))
            return dst
        if isinstance(expr, I.Select):
            cond = self._expr(expr.cond)
            then = self._expr(expr.then)
            other = self._expr(expr.otherwise)
            dst = self._temp()
            self.code.append(Instr(
                "select", dst=dst, a=cond, b=then, c=other,
                dtype=expr.type.name, line=expr.line))
            return dst
        if isinstance(expr, I.CallBuiltin):
            return self._lower_builtin(expr)
        if isinstance(expr, I.CallFunction):
            return self._lower_call(expr)
        raise TypeError(  # pragma: no cover
            f"cannot lower expression {type(expr).__name__}")

    def _lower_builtin(self, expr: I.CallBuiltin) -> int:
        name = expr.name
        if name.startswith("get_"):
            dim = int(expr.args[0].value) if expr.args else 0
            return self._wiq_reg(name, dim, expr.type)
        args = [self._expr(a) for a in expr.args]
        dst = self._temp()
        self.code.append(Instr("builtin", dst=dst, aux=[name, args],
                               dtype=expr.type.name, line=expr.line))
        return dst

    def _lower_call(self, expr: I.CallFunction) -> int:
        # binds are resolved against the callee's param table at link
        # time (the callee may not be lowered yet while we run)
        binds = []
        for arg in expr.args:
            if isinstance(arg, I.Var) and arg.name in self.mem_slots:
                binds.append(["mem", self.mem_slots[arg.name]])
            elif (isinstance(arg, I.Var)
                  and not isinstance(arg.type, ScalarType)):
                binds.append(["mem", self._mem_slot(arg.name)])
            else:
                binds.append(["scalar", self._expr(arg)])
        dst = self._temp()
        self.code.append(Instr(
            "call", dst=dst, aux=[expr.name, binds],
            dtype=expr.type.name if isinstance(expr.type, ScalarType)
            else None,
            line=expr.line))
        return dst


# -- linking ----------------------------------------------------------------
#
# Serialized Instr objects are convenient to store but slow to execute;
# linking converts each into a plain tuple with integer opcodes, numpy
# dtypes and precomputed costs, shared by both engines.  The result is
# cached on the ProgramBytecode instance (an ad-hoc attribute the IR
# codec never sees).

L_OP = 0
L_DST = 1
L_A = 2
L_B = 3
L_C = 4
L_AUX = 5
L_NP = 6
L_SCOST = 7
L_VCOST = 8
L_ISDBL = 9
L_ISFLOAT = 10
L_LINE = 11
L_UNI = 12

#: per-op vector ALU cost (mirrors vector.py's _OP_COST table)
_VCOSTS = {OP_DIV: 8.0, OP_MOD: 16.0}

_COUNTED_OPS = frozenset({
    OP_CAST, OP_NEG, OP_BNOT, OP_LNOT, OP_ADD, OP_SUB, OP_MUL, OP_DIV,
    OP_MOD, OP_SHL, OP_SHR, OP_BAND, OP_BOR, OP_BXOR, OP_CEQ, OP_CNE,
    OP_CLT, OP_CGT, OP_CLE, OP_CGE, OP_LAND, OP_LOR, OP_SELECT,
})


def linked_program(pbc: ProgramBytecode) -> dict:
    """name -> (linked instr tuple list, KernelBytecode) for ``pbc``."""
    cache = getattr(pbc, "_linked", None)
    if cache is None:
        cache = {name: (_link(bc, pbc), bc)
                 for name, bc in pbc.functions.items()}
        pbc._linked = cache
    return cache


def _link(bc: KernelBytecode, pbc: ProgramBytecode) -> list:
    from .types import SCALAR_TYPES

    out = []
    for ins in bc.instrs:
        opcode = _OPCODES[ins.op]
        stype = SCALAR_TYPES.get(ins.dtype) if ins.dtype else None
        np_dtype = stype.np_dtype if stype is not None else None
        is_double = stype is DOUBLE
        is_float = bool(stype is not None and stype.is_float)
        scost = vcost = 0.0
        aux = ins.aux
        if opcode in _COUNTED_OPS:
            scost = 1.0
            vcost = _VCOSTS.get(opcode, 1.0)
        if opcode == OP_CONST:
            aux = np_dtype.type(ins.aux)
        elif opcode == OP_WIQ:
            name, dim = ins.aux
            aux = (_WIQ_CODES.get(name, 5), int(dim), name)
        elif opcode == OP_BUILTIN:
            name, arg_regs = ins.aux
            b = BUILTINS[name]
            scost = vcost = b.cost
            aux = (b.impl, tuple(arg_regs), name)
        elif opcode == OP_CALL:
            fname, binds = ins.aux
            callee = pbc.functions[fname]
            resolved = []
            for bind, p in zip(binds, callee.params):
                if bind[0] == "mem":
                    resolved.append(("mem", bind[1], p[3]))
                else:
                    pdtype = SCALAR_TYPES[p[2]].np_dtype
                    resolved.append(("scalar", bind[1], p[3], pdtype))
            ret_np = (SCALAR_TYPES[callee.ret_dtype].np_dtype
                      if callee.ret_dtype else None)
            aux = (fname, tuple(resolved), ret_np)
        elif opcode in (OP_LD, OP_ST):
            aux = (int(ins.aux[0]), int(ins.aux[1]))
        elif opcode == OP_ATOMIC:
            aux = (ins.aux[0], int(ins.aux[1]), int(ins.aux[2]))
        elif opcode == OP_DECLARR:
            slot, size, ename, space, name, nbytes = ins.aux
            aux = (int(slot), int(size), SCALAR_TYPES[ename].np_dtype,
                   int(space), name, int(nbytes))
        elif opcode == OP_IF:
            aux = (int(ins.aux[0]), int(ins.aux[1]))
        elif opcode == OP_LOOP:
            aux = (int(ins.aux[0]), int(ins.aux[1]), int(ins.aux[2]),
                   bool(ins.aux[3]))
        elif opcode == OP_BARRIER:
            aux = int(ins.aux or 0)
        out.append((opcode, ins.dst, ins.a, ins.b, ins.c, aux, np_dtype,
                    scost, vcost, is_double, is_float, ins.line,
                    ins.uniform))
    return out


# -- disassembly ------------------------------------------------------------

def disassemble(bc: KernelBytecode) -> str:
    """Readable listing of one function's bytecode (for the dump CLI)."""
    lines = [f"{'kernel' if bc.is_kernel else 'function'} {bc.name}"
             f"({', '.join(p[1] for p in bc.params)})"
             f" regs={bc.n_regs} mems={bc.n_mems}"
             + (f" -> {bc.ret_dtype}" if bc.ret_dtype else "")]

    def reg(i):
        return f"r{i}:{bc.reg_names[i]}" if 0 <= i < len(bc.reg_names) \
            else "-"

    indent = 0
    closers: list[int] = []     # instruction counts until dedent
    for pc, ins in enumerate(bc.instrs):
        while closers and closers[-1] == 0:
            closers.pop()
            indent -= 1
        closers = [n - 1 for n in closers]
        parts = [f"{pc:4d}  " + "  " * indent + ins.op]
        if ins.dst >= 0:
            parts.append(reg(ins.dst) + " <-")
        for r in (ins.a, ins.b, ins.c):
            if r >= 0:
                parts.append(reg(r))
        if ins.aux is not None:
            parts.append(f"aux={ins.aux!r}")
        if ins.dtype:
            parts.append(f":{ins.dtype}")
        if ins.uniform:
            parts.append(f"U{ins.uniform}")
        lines.append(" ".join(parts))
        if ins.op == "if":
            spans = int(ins.aux[0]) + int(ins.aux[1])
            if spans:
                closers.append(spans)
                indent += 1
        elif ins.op == "loop":
            spans = int(ins.aux[0]) + int(ins.aux[1]) + int(ins.aux[2])
            if spans:
                closers.append(spans)
                indent += 1
    return "\n".join(lines)
