"""Typed kernel IR — the output of semantic analysis.

The execution engines (:mod:`repro.ocl.engines`) walk this representation
directly.  Every expression node carries its resolved :class:`CLType`; every
implicit conversion inserted by sema appears as an explicit :class:`Convert`
node, so engines never have to re-derive C conversion rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import CLType, ScalarType


# -- expressions ----------------------------------------------------------------

@dataclass
class Expr:
    type: CLType = None
    line: int = 0


@dataclass
class Const(Expr):
    value: object = 0


@dataclass
class Var(Expr):
    """Reference to a parameter or a declared variable, by name."""
    name: str = ""


@dataclass
class Load(Expr):
    """``base[index]`` read.  ``space`` is the address space of ``base``."""
    base: str = ""
    index: Expr = None
    space: str = "private"


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class Select(Expr):
    """Ternary ``cond ? a : b``."""
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Convert(Expr):
    """Explicit or implicit conversion to ``type``."""
    operand: Expr = None


@dataclass
class CallBuiltin(Expr):
    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class CallFunction(Expr):
    """Call of a user helper function defined in the same program."""
    name: str = ""
    args: list = field(default_factory=list)


# -- lvalues -----------------------------------------------------------------------

@dataclass
class LValue:
    """Target of a store: either a variable or an indexed element."""
    name: str = ""
    index: Expr | None = None       # None => scalar variable
    space: str = "private"
    type: CLType = None
    line: int = 0


# -- statements ----------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclVar(Stmt):
    name: str = ""
    type: CLType = None
    init: Expr | None = None


@dataclass
class DeclArray(Stmt):
    name: str = ""
    element: ScalarType = None
    size: int = 0
    space: str = "private"   # private | local


@dataclass
class Store(Stmt):
    """``target = value`` — augmented ops are desugared by sema."""
    target: LValue = None
    value: Expr = None


@dataclass
class AtomicRMW(Stmt):
    """``atomic_add(&buf[i], v)``-style read-modify-write used as statement."""
    op: str = "add"
    target: LValue = None
    value: Expr | None = None


@dataclass
class EvalExpr(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: list = field(default_factory=list)
    otherwise: list = field(default_factory=list)


@dataclass
class While(Stmt):
    """Canonical loop: ``for`` is desugared to init + While with update."""
    cond: Expr = None
    body: list = field(default_factory=list)
    update: list = field(default_factory=list)   # executed on continue too
    is_do_while: bool = False


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class BarrierStmt(Stmt):
    flags: int = 0   # bit 0: local fence, bit 1: global fence


# -- program structure ----------------------------------------------------------------

@dataclass
class Param:
    name: str
    type: CLType
    #: read/write classification filled by sema (used by HPL's transfer
    #: minimisation and by the cost model)
    is_read: bool = False
    is_written: bool = False


@dataclass
class Function:
    name: str
    return_type: CLType
    params: list
    body: list
    is_kernel: bool = False
    #: names of __local arrays declared in the body (for occupancy checks)
    local_arrays: list = field(default_factory=list)
    #: whether the function (transitively) executes a barrier
    uses_barrier: bool = False
    #: whether the function (transitively) uses double precision
    uses_fp64: bool = False


@dataclass
class ProgramIR:
    """A compiled translation unit: kernels plus helper functions."""
    functions: dict = field(default_factory=dict)   # name -> Function
    source: str = ""

    @property
    def kernels(self) -> dict:
        return {n: f for n, f in self.functions.items() if f.is_kernel}
