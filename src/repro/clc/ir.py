"""Typed kernel IR — the output of semantic analysis.

The execution engines (:mod:`repro.ocl.engines`) walk this representation
directly.  Every expression node carries its resolved :class:`CLType`; every
implicit conversion inserted by sema appears as an explicit :class:`Convert`
node, so engines never have to re-derive C conversion rules.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, fields, is_dataclass

from ..errors import IRSchemaError
from .types import (SCALAR_TYPES, VOID, ArrayType, CLType, PointerType,
                    ScalarType, VoidType)

#: Version of the on-disk IR encoding produced by :meth:`ProgramIR.to_bytes`.
#: Bump whenever a node class, field, or type encoding changes shape;
#: :meth:`ProgramIR.from_bytes` rejects any other version with
#: :class:`~repro.errors.IRSchemaError`, which the persistent kernel
#: cache treats as a miss (forcing a clean recompile) instead of a crash.
#: v2: ProgramIR gained ``opt_level`` and ``bytecode`` (the middle-end's
#: post-optimization artifact, see :mod:`repro.clc.lower`).
IR_SCHEMA_VERSION = 2

#: magic prefix identifying a serialized ProgramIR blob
_IR_MAGIC = b"HPLIR"


# -- expressions ----------------------------------------------------------------

@dataclass
class Expr:
    type: CLType = None
    line: int = 0


@dataclass
class Const(Expr):
    value: object = 0


@dataclass
class Var(Expr):
    """Reference to a parameter or a declared variable, by name."""
    name: str = ""


@dataclass
class Load(Expr):
    """``base[index]`` read.  ``space`` is the address space of ``base``."""
    base: str = ""
    index: Expr = None
    space: str = "private"


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class Select(Expr):
    """Ternary ``cond ? a : b``."""
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Convert(Expr):
    """Explicit or implicit conversion to ``type``."""
    operand: Expr = None


@dataclass
class CallBuiltin(Expr):
    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class CallFunction(Expr):
    """Call of a user helper function defined in the same program."""
    name: str = ""
    args: list = field(default_factory=list)


# -- lvalues -----------------------------------------------------------------------

@dataclass
class LValue:
    """Target of a store: either a variable or an indexed element."""
    name: str = ""
    index: Expr | None = None       # None => scalar variable
    space: str = "private"
    type: CLType = None
    line: int = 0


# -- statements ----------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclVar(Stmt):
    name: str = ""
    type: CLType = None
    init: Expr | None = None


@dataclass
class DeclArray(Stmt):
    name: str = ""
    element: ScalarType = None
    size: int = 0
    space: str = "private"   # private | local


@dataclass
class Store(Stmt):
    """``target = value`` — augmented ops are desugared by sema."""
    target: LValue = None
    value: Expr = None


@dataclass
class AtomicRMW(Stmt):
    """``atomic_add(&buf[i], v)``-style read-modify-write used as statement."""
    op: str = "add"
    target: LValue = None
    value: Expr | None = None


@dataclass
class EvalExpr(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: list = field(default_factory=list)
    otherwise: list = field(default_factory=list)


@dataclass
class While(Stmt):
    """Canonical loop: ``for`` is desugared to init + While with update."""
    cond: Expr = None
    body: list = field(default_factory=list)
    update: list = field(default_factory=list)   # executed on continue too
    is_do_while: bool = False


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class BarrierStmt(Stmt):
    flags: int = 0   # bit 0: local fence, bit 1: global fence


# -- program structure ----------------------------------------------------------------

@dataclass
class Param:
    name: str
    type: CLType
    #: read/write classification filled by sema (used by HPL's transfer
    #: minimisation and by the cost model)
    is_read: bool = False
    is_written: bool = False


@dataclass
class Function:
    name: str
    return_type: CLType
    params: list
    body: list
    is_kernel: bool = False
    #: names of __local arrays declared in the body (for occupancy checks)
    local_arrays: list = field(default_factory=list)
    #: whether the function (transitively) executes a barrier
    uses_barrier: bool = False
    #: whether the function (transitively) uses double precision
    uses_fp64: bool = False


@dataclass
class ProgramIR:
    """A compiled translation unit: kernels plus helper functions."""
    functions: dict = field(default_factory=dict)   # name -> Function
    source: str = ""
    #: opt level the middle-end ran at (0 = tree only, no bytecode)
    opt_level: int = 0
    #: :class:`repro.clc.lower.ProgramBytecode` or None at O0
    bytecode: object = None

    @property
    def kernels(self) -> dict:
        return {n: f for n, f in self.functions.items() if f.is_kernel}

    # -- versioned serialization (persistent kernel cache) -------------------

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing, versioned binary blob."""
        doc = {"schema": IR_SCHEMA_VERSION, "ir": _encode(self)}
        payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        return _IR_MAGIC + zlib.compress(payload)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProgramIR":
        """Reconstruct a :class:`ProgramIR` written by :meth:`to_bytes`.

        Raises :class:`~repro.errors.IRSchemaError` on bad magic, corrupt
        payload, or a schema-version mismatch — never a bare crash, so
        cache layers can treat any failure as a miss.
        """
        from . import lower  # noqa: F401  (registers bytecode nodes)
        if not isinstance(data, (bytes, bytearray)) \
                or not bytes(data).startswith(_IR_MAGIC):
            raise IRSchemaError("not a serialized ProgramIR (bad magic)")
        try:
            payload = zlib.decompress(bytes(data)[len(_IR_MAGIC):])
            doc = json.loads(payload.decode("utf-8"))
        except (zlib.error, ValueError, UnicodeDecodeError) as exc:
            raise IRSchemaError(f"corrupt ProgramIR payload: {exc}") \
                from exc
        if not isinstance(doc, dict):
            raise IRSchemaError("corrupt ProgramIR payload: not an object")
        version = doc.get("schema")
        if version != IR_SCHEMA_VERSION:
            raise IRSchemaError(
                f"ProgramIR schema version {version!r} is not supported "
                f"by this build (expected {IR_SCHEMA_VERSION})")
        program = _decode(doc.get("ir"))
        if not isinstance(program, cls):
            raise IRSchemaError("payload does not encode a ProgramIR")
        return program


# -- generic node codec -----------------------------------------------------------
#
# Every IR node is a flat dataclass whose fields hold primitives, CLTypes,
# other nodes, or lists/dicts thereof, so one reflective codec covers the
# whole module.  Nodes encode as {"$n": ClassName, ...fields}; types encode
# under "$t" (scalars by canonical name — they are singletons).  Tuples
# come back as lists, which every consumer already accepts.

def _encode(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, CLType):
        return _encode_type(value)
    if is_dataclass(value) and type(value).__name__ in _NODE_CLASSES:
        out = {"$n": type(value).__name__}
        for f in fields(value):
            out[f.name] = _encode(getattr(value, f.name))
        return out
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if hasattr(value, "item"):          # numpy scalar without the import
        return _encode(value.item())
    raise IRSchemaError(
        f"cannot serialize {type(value).__name__!r} in ProgramIR")


def _encode_type(t: CLType):
    if isinstance(t, ScalarType):
        return {"$t": "scalar", "name": t.name}
    if isinstance(t, VoidType):
        return {"$t": "void"}
    if isinstance(t, PointerType):
        return {"$t": "pointer", "pointee": _encode_type(t.pointee),
                "space": t.address_space}
    if isinstance(t, ArrayType):
        return {"$t": "array", "element": _encode_type(t.element),
                "size": t.size, "space": t.address_space}
    raise IRSchemaError(f"cannot serialize type {t!r}")


def _decode(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        if "$t" in value:
            return _decode_type(value)
        if "$n" in value:
            cls = _NODE_CLASSES.get(value["$n"])
            if cls is None:
                raise IRSchemaError(f"unknown IR node kind {value['$n']!r}")
            kwargs = {}
            names = {f.name for f in fields(cls)}
            for key, enc in value.items():
                if key == "$n":
                    continue
                if key not in names:
                    raise IRSchemaError(
                        f"unknown field {key!r} on IR node {value['$n']!r}")
                kwargs[key] = _decode(enc)
            return cls(**kwargs)
        return {k: _decode(v) for k, v in value.items()}
    raise IRSchemaError(f"cannot decode {type(value).__name__!r}")


def _decode_type(value: dict) -> CLType:
    kind = value.get("$t")
    if kind == "scalar":
        t = SCALAR_TYPES.get(value.get("name"))
        if t is None:
            raise IRSchemaError(f"unknown scalar type {value.get('name')!r}")
        return t
    if kind == "void":
        return VOID
    if kind == "pointer":
        return PointerType(_decode_type(value["pointee"]), value["space"])
    if kind == "array":
        return ArrayType(_decode_type(value["element"]), value["size"],
                         value["space"])
    raise IRSchemaError(f"unknown type kind {kind!r}")


#: name -> class for every dataclass node defined in this module
_NODE_CLASSES = {
    name: obj for name, obj in list(globals().items())
    if isinstance(obj, type) and is_dataclass(obj)
    and obj.__module__ == __name__
}


def register_node_classes(*classes) -> None:
    """Add external dataclasses (e.g. the bytecode containers defined in
    :mod:`repro.clc.lower`) to the reflective IR codec."""
    for cls in classes:
        if not is_dataclass(cls):  # pragma: no cover - programmer error
            raise TypeError(f"{cls!r} is not a dataclass")
        _NODE_CLASSES[cls.__name__] = cls
