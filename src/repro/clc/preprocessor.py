"""A small C preprocessor covering what OpenCL kernels typically use.

Supported directives:

* ``#define NAME replacement``            (object-like macros)
* ``#define NAME(a, b) replacement``      (function-like macros, no varargs,
  no ``#``/``##`` operators)
* ``#undef NAME``
* ``#ifdef NAME`` / ``#ifndef NAME`` / ``#else`` / ``#endif``
* ``#pragma ...``                         (ignored, kept for OPENCL EXTENSION
  pragmas emitted by real programs)

Build options of the form ``-D NAME`` / ``-DNAME=value`` (as accepted by
``clBuildProgram``) are turned into predefined macros.

The implementation is line-oriented, honours ``\\`` line continuations, and
performs recursive macro expansion with self-reference protection, which is
all the benchmark kernels in this repository require.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import PreprocessorError

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"          # identifier
    r"|0[xX][0-9a-fA-F]+[uUlL]*"        # hex literal
    r"|(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fFuUlL]*"  # number
    r"|//[^\n]*"                        # line comment (kept verbatim)
    r"|\s+"                             # whitespace
    r"|."                               # any single char
)


@dataclass
class Macro:
    """A single macro definition."""

    name: str
    body: str
    params: list[str] | None = None   # None => object-like
    predefined: bool = False

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


@dataclass
class Preprocessor:
    """Expand directives/macros in OpenCL C source text."""

    filename: str = "<kernel>"
    macros: dict[str, Macro] = field(default_factory=dict)

    # -- build options -------------------------------------------------------

    def define_from_options(self, options: str) -> None:
        """Parse ``-D`` definitions out of an OpenCL build-options string."""
        if not options:
            return
        parts = options.split()
        i = 0
        while i < len(parts):
            part = parts[i]
            if part == "-D":
                i += 1
                if i >= len(parts):
                    raise PreprocessorError("-D expects a macro name",
                                            filename=self.filename)
                self._define_option(parts[i])
            elif part.startswith("-D"):
                self._define_option(part[2:])
            # other options (-cl-fast-relaxed-math, -I, ...) are ignored
            i += 1

    def _define_option(self, text: str) -> None:
        name, _, value = text.partition("=")
        if not _IDENT_RE.fullmatch(name):
            raise PreprocessorError(f"bad -D macro name {name!r}",
                                    filename=self.filename)
        self.macros[name] = Macro(name, value or "1", predefined=True)

    # -- main entry point ----------------------------------------------------

    def process(self, source: str) -> str:
        """Return ``source`` with directives handled and macros expanded.

        Line structure is preserved for non-directive lines so diagnostics
        from later stages keep pointing at the original line numbers;
        directive lines are replaced with empty lines.
        """
        lines = self._splice_continuations(source)
        out: list[str] = []
        # condition stack entries: (taking, taken_before, line_no)
        cond: list[list] = []

        for lineno, line in lines:
            stripped = line.lstrip()
            if stripped.startswith("#"):
                self._directive(stripped[1:].strip(), lineno, cond)
                out.append("")
                continue
            if cond and not all(c[0] for c in cond):
                out.append("")
                continue
            out.append(self._expand_line(line, lineno))

        if cond:
            raise PreprocessorError("unterminated #if block (opened at line "
                                    f"{cond[-1][2]})", filename=self.filename)
        return "\n".join(out)

    # -- directive handling ---------------------------------------------------

    def _directive(self, text: str, lineno: int, cond: list[list]) -> None:
        name, _, rest = text.partition(" ")
        rest = rest.strip()
        active = not cond or all(c[0] for c in cond)

        if name in ("ifdef", "ifndef"):
            if not _IDENT_RE.fullmatch(rest.split()[0] if rest else ""):
                raise PreprocessorError(f"#{name} expects an identifier",
                                        lineno, 1, self.filename)
            macro_name = rest.split()[0]
            defined = macro_name in self.macros
            take = (defined if name == "ifdef" else not defined) and active
            cond.append([take, take, lineno])
        elif name == "else":
            if not cond:
                raise PreprocessorError("#else without #if", lineno, 1,
                                        self.filename)
            entry = cond[-1]
            outer_active = len(cond) == 1 or all(c[0] for c in cond[:-1])
            entry[0] = (not entry[1]) and outer_active
            entry[1] = True
        elif name == "endif":
            if not cond:
                raise PreprocessorError("#endif without #if", lineno, 1,
                                        self.filename)
            cond.pop()
        elif not active:
            return  # skip directives inside inactive branches
        elif name == "define":
            self._handle_define(rest, lineno)
        elif name == "undef":
            if not _IDENT_RE.fullmatch(rest):
                raise PreprocessorError("#undef expects an identifier",
                                        lineno, 1, self.filename)
            self.macros.pop(rest, None)
        elif name == "pragma":
            return
        elif name == "include":
            raise PreprocessorError("#include is not supported by SimCL",
                                    lineno, 1, self.filename)
        else:
            raise PreprocessorError(f"unknown directive #{name}", lineno, 1,
                                    self.filename)

    def _handle_define(self, rest: str, lineno: int) -> None:
        m = _IDENT_RE.match(rest)
        if not m:
            raise PreprocessorError("#define expects a macro name", lineno, 1,
                                    self.filename)
        name = m.group(0)
        after = rest[m.end():]
        if after.startswith("("):
            close = after.find(")")
            if close < 0:
                raise PreprocessorError(
                    f"unterminated parameter list in #define {name}",
                    lineno, 1, self.filename)
            raw_params = after[1:close].strip()
            params = ([p.strip() for p in raw_params.split(",")]
                      if raw_params else [])
            for p in params:
                if not _IDENT_RE.fullmatch(p):
                    raise PreprocessorError(
                        f"bad macro parameter {p!r} in #define {name}",
                        lineno, 1, self.filename)
            body = after[close + 1:].strip()
            self.macros[name] = Macro(name, body, params=params)
        else:
            self.macros[name] = Macro(name, after.strip())

    # -- macro expansion -------------------------------------------------------

    def _expand_line(self, line: str, lineno: int) -> str:
        return self._expand(line, lineno, frozenset())

    def _expand(self, text: str, lineno: int, hidden: frozenset[str]) -> str:
        out: list[str] = []
        tokens = _TOKEN_RE.findall(text)
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok.startswith("//"):
                out.append(tok)
                i += 1
                continue
            macro = self.macros.get(tok)
            if macro is None or tok in hidden:
                out.append(tok)
                i += 1
                continue
            if macro.is_function_like:
                j = i + 1
                while j < len(tokens) and tokens[j].isspace():
                    j += 1
                if j >= len(tokens) or tokens[j] != "(":
                    out.append(tok)   # function-like macro without call syntax
                    i += 1
                    continue
                args, nxt = self._collect_args(tokens, j, lineno, macro)
                body = self._substitute(macro, args, lineno, hidden)
                out.append(self._expand(body, lineno, hidden | {tok}))
                i = nxt
            else:
                out.append(self._expand(macro.body, lineno, hidden | {tok}))
                i += 1
        return "".join(out)

    def _collect_args(self, tokens: list[str], open_idx: int, lineno: int,
                      macro: Macro) -> tuple[list[str], int]:
        depth = 0
        args: list[str] = []
        cur: list[str] = []
        i = open_idx
        while i < len(tokens):
            tok = tokens[i]
            if tok == "(":
                depth += 1
                if depth > 1:
                    cur.append(tok)
            elif tok == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(cur).strip())
                    if args == [""] and not macro.params:
                        args = []
                    if len(args) != len(macro.params or []):
                        raise PreprocessorError(
                            f"macro {macro.name} expects "
                            f"{len(macro.params or [])} argument(s), got "
                            f"{len(args)}", lineno, 1, self.filename)
                    return args, i + 1
                cur.append(tok)
            elif tok == "," and depth == 1:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(tok)
            i += 1
        raise PreprocessorError(f"unterminated call of macro {macro.name}",
                                lineno, 1, self.filename)

    def _substitute(self, macro: Macro, args: list[str], lineno: int,
                    hidden: frozenset[str]) -> str:
        expanded_args = [self._expand(a, lineno, hidden) for a in args]
        mapping = dict(zip(macro.params or [], expanded_args))
        parts = []
        for tok in _TOKEN_RE.findall(macro.body):
            parts.append(mapping.get(tok, tok))
        return "".join(parts)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _splice_continuations(source: str) -> list[tuple[int, str]]:
        """Join ``\\``-continued lines; keep the first physical line number."""
        result: list[tuple[int, str]] = []
        pending = ""
        pending_line = 0
        for i, line in enumerate(source.split("\n"), start=1):
            if not pending:
                pending_line = i
            if line.endswith("\\"):
                pending += line[:-1]
                result.append((i, ""))  # placeholder keeps numbering stable
                continue
            full = pending + line
            pending = ""
            if result and result[-1][1] == "" and full and pending_line != i:
                # replace the first placeholder of this logical line
                result[result.index((pending_line, ""))] = (pending_line, full)
            else:
                result.append((i, full))
        if pending:
            result.append((pending_line, pending))
        return result


def preprocess(source: str, options: str = "",
               filename: str = "<kernel>") -> str:
    """Preprocess ``source`` with the given OpenCL build ``options``."""
    pp = Preprocessor(filename=filename)
    pp.define_from_options(options)
    return pp.process(source)
