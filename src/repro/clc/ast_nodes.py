"""Untyped AST produced by the OpenCL C parser.

These nodes carry only syntax; :mod:`repro.clc.sema` turns them into the
typed IR in :mod:`repro.clc.ir` that the execution engines consume.
All nodes record a source position for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# -- expressions --------------------------------------------------------------

@dataclass
class IntLiteral(Node):
    value: int = 0
    suffix: str = ""


@dataclass
class FloatLiteral(Node):
    value: float = 0.0
    suffix: str = ""


@dataclass
class Identifier(Node):
    name: str = ""


@dataclass
class UnaryOp(Node):
    op: str = ""
    operand: Node = None


@dataclass
class PostfixOp(Node):
    """``x++`` / ``x--`` (only valid in statement/for-update position)."""
    op: str = ""
    operand: Node = None


@dataclass
class BinaryOp(Node):
    op: str = ""
    lhs: Node = None
    rhs: Node = None


@dataclass
class TernaryOp(Node):
    cond: Node = None
    then: Node = None
    otherwise: Node = None


@dataclass
class AssignExpr(Node):
    """``lhs op rhs`` where op is ``=`` or an augmented assignment."""
    op: str = "="
    lhs: Node = None
    rhs: Node = None


@dataclass
class CastExpr(Node):
    type_name: "TypeSpec" = None
    operand: Node = None


@dataclass
class IndexExpr(Node):
    base: Node = None
    index: Node = None


@dataclass
class CallExpr(Node):
    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class SizeofExpr(Node):
    type_name: "TypeSpec" = None


# -- declarations / types ------------------------------------------------------

@dataclass
class TypeSpec(Node):
    """A parsed type: base scalar name + pointer depth + address space."""
    base: str = "int"
    pointer: int = 0
    address_space: str = "private"  # global | local | constant | private
    is_const: bool = False


@dataclass
class ParamDecl(Node):
    type_spec: TypeSpec = None
    name: str = ""


@dataclass
class VarDecl(Node):
    """One declarator of a declaration statement."""
    type_spec: TypeSpec = None
    name: str = ""
    array_size: Node | None = None   # expression; must be constant-foldable
    init: Node | None = None


# -- statements ----------------------------------------------------------------

@dataclass
class DeclStmt(Node):
    decls: list = field(default_factory=list)   # list[VarDecl]


@dataclass
class ExprStmt(Node):
    expr: Node = None


@dataclass
class IfStmt(Node):
    cond: Node = None
    then: list = field(default_factory=list)
    otherwise: list = field(default_factory=list)


@dataclass
class ForStmt(Node):
    init: list = field(default_factory=list)    # DeclStmt or ExprStmt items
    cond: Node | None = None
    update: list = field(default_factory=list)  # ExprStmt items
    body: list = field(default_factory=list)


@dataclass
class WhileStmt(Node):
    cond: Node = None
    body: list = field(default_factory=list)


@dataclass
class DoWhileStmt(Node):
    body: list = field(default_factory=list)
    cond: Node = None


@dataclass
class BreakStmt(Node):
    pass


@dataclass
class ContinueStmt(Node):
    pass


@dataclass
class ReturnStmt(Node):
    value: Node | None = None


@dataclass
class BlockStmt(Node):
    body: list = field(default_factory=list)


# -- top level -------------------------------------------------------------------

@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: TypeSpec = None
    params: list = field(default_factory=list)   # list[ParamDecl]
    body: list = field(default_factory=list)
    is_kernel: bool = False


@dataclass
class TranslationUnit(Node):
    functions: list = field(default_factory=list)
