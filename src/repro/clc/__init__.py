"""``repro.clc`` — a compiler for the OpenCL C subset used by SimCL.

The pipeline is the classic one::

    source --preprocess--> text --lex--> tokens --parse--> AST
           --sema--> typed ProgramIR

:func:`compile_source` runs the whole pipeline.  The resulting
:class:`~repro.clc.ir.ProgramIR` is what the execution engines in
:mod:`repro.ocl.engines` consume.
"""

from __future__ import annotations

from .ir import Function, ProgramIR
from .lexer import tokenize
from .parser import parse
from .preprocessor import preprocess
from .sema import analyze

__all__ = ["compile_source", "preprocess", "tokenize", "parse", "analyze",
           "ProgramIR", "Function"]


def compile_source(source: str, options: str = "",
                   filename: str = "<kernel>") -> ProgramIR:
    """Compile OpenCL C ``source`` (with build ``options``) to program IR.

    Raises :class:`repro.errors.CompileError` subclasses on any problem,
    carrying ``line``/``col`` information like a real OpenCL build log.

    Each pipeline stage runs under its own :mod:`repro.trace` span
    (category ``clc``), so a trace of a cold HPL invocation shows where
    the "OpenCL build" portion of Fig. 8's overhead actually goes.
    """
    from .. import trace

    # counts every full front-end run; the persistent kernel cache's
    # "zero recompiles on a warm start" guarantee is asserted against it
    trace.get_registry().counter("clc.compiles").inc()
    with trace.span("compile", category="clc", filename=filename,
                    source_bytes=len(source)):
        with trace.span("preprocess", category="clc"):
            text = preprocess(source, options, filename)
        with trace.span("lex", category="clc"):
            tokens = tokenize(text, filename)
        with trace.span("parse", category="clc", tokens=len(tokens)):
            unit = parse(tokens, filename)
        with trace.span("sema", category="clc"):
            program = analyze(unit, filename)
    program.source = source
    return program
