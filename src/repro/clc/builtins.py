"""Builtin function table for the OpenCL C subset.

Each entry describes the arity, the result-type rule and (for the engines)
the NumPy implementation of the builtin.  Work-item query functions and
``barrier`` are special-cased in sema/engines and do not appear here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .types import (DOUBLE, FLOAT, ScalarType,
                    usual_arithmetic_conversion)

# result-type rules ------------------------------------------------------------

def _float_common(args: list[ScalarType]) -> ScalarType:
    """double wins; otherwise float (integers convert to float)."""
    return DOUBLE if DOUBLE in args else FLOAT


def _int_common(args: list[ScalarType]) -> ScalarType:
    t = args[0]
    for a in args[1:]:
        t = usual_arithmetic_conversion(t, a)
    return t


def _same_as_args(args: list[ScalarType]) -> ScalarType:
    t = args[0]
    for a in args[1:]:
        t = usual_arithmetic_conversion(t, a)
    return t


@dataclass(frozen=True)
class Builtin:
    name: str
    arity: int
    result_rule: Callable
    impl: Callable
    #: relative cost in "ALU op" units used by the device cost model
    cost: float = 1.0
    #: True when the function only makes sense for floating-point args
    float_only: bool = False


def _np_clamp(x, lo, hi):
    return np.minimum(np.maximum(x, lo), hi)


def _np_mad(a, b, c):
    return a * b + c


def _np_rsqrt(x):
    return 1.0 / np.sqrt(x)


BUILTINS: dict[str, Builtin] = {}


def _register(name: str, arity: int, rule, impl, cost: float = 1.0,
              float_only: bool = False) -> None:
    BUILTINS[name] = Builtin(name, arity, rule, impl, cost, float_only)


# transcendental / float math (costs roughly follow GPU SFU throughput)
_register("sqrt", 1, _float_common, np.sqrt, cost=8.0, float_only=True)
_register("rsqrt", 1, _float_common, _np_rsqrt, cost=8.0, float_only=True)
_register("cbrt", 1, _float_common, np.cbrt, cost=12.0, float_only=True)
_register("exp", 1, _float_common, np.exp, cost=10.0, float_only=True)
_register("exp2", 1, _float_common, np.exp2, cost=10.0, float_only=True)
_register("log", 1, _float_common, np.log, cost=10.0, float_only=True)
_register("log2", 1, _float_common, np.log2, cost=10.0, float_only=True)
_register("log10", 1, _float_common, np.log10, cost=10.0, float_only=True)
_register("sin", 1, _float_common, np.sin, cost=10.0, float_only=True)
_register("cos", 1, _float_common, np.cos, cost=10.0, float_only=True)
_register("tan", 1, _float_common, np.tan, cost=12.0, float_only=True)
_register("asin", 1, _float_common, np.arcsin, cost=12.0, float_only=True)
_register("acos", 1, _float_common, np.arccos, cost=12.0, float_only=True)
_register("atan", 1, _float_common, np.arctan, cost=12.0, float_only=True)
_register("atan2", 2, _float_common, np.arctan2, cost=16.0, float_only=True)
_register("pow", 2, _float_common, np.power, cost=20.0, float_only=True)
_register("fabs", 1, _float_common, np.abs, cost=1.0, float_only=True)
_register("floor", 1, _float_common, np.floor, cost=1.0, float_only=True)
_register("ceil", 1, _float_common, np.ceil, cost=1.0, float_only=True)
_register("trunc", 1, _float_common, np.trunc, cost=1.0, float_only=True)
_register("round", 1, _float_common, np.round, cost=2.0, float_only=True)
_register("fmod", 2, _float_common, np.fmod, cost=12.0, float_only=True)
_register("fmin", 2, _float_common, np.minimum, cost=1.0, float_only=True)
_register("fmax", 2, _float_common, np.maximum, cost=1.0, float_only=True)
_register("fma", 3, _float_common, _np_mad, cost=1.0, float_only=True)
_register("mad", 3, _float_common, _np_mad, cost=1.0, float_only=True)
_register("hypot", 2, _float_common, np.hypot, cost=16.0, float_only=True)

# native_* aliases map to the same implementations (OpenCL fast variants)
for _fast in ("sqrt", "rsqrt", "exp", "log", "log2", "sin", "cos", "tan",
              "powr"):
    base = "pow" if _fast == "powr" else _fast
    if base in BUILTINS:
        b = BUILTINS[base]
        _register("native_" + _fast, b.arity, b.result_rule, b.impl,
                  cost=max(1.0, b.cost / 2), float_only=True)

# integer / common
_register("abs", 1, _int_common, np.abs, cost=1.0)
_register("min", 2, _same_as_args, np.minimum, cost=1.0)
_register("max", 2, _same_as_args, np.maximum, cost=1.0)
_register("clamp", 3, _same_as_args, _np_clamp, cost=2.0)
_register("mul24", 2, _int_common, lambda a, b: a * b, cost=1.0)
_register("mad24", 3, _int_common, lambda a, b, c: a * b + c, cost=1.0)

#: work-item query functions: name -> dimension-indexed engine hook
WORKITEM_FUNCTIONS = frozenset({
    "get_global_id", "get_local_id", "get_group_id",
    "get_global_size", "get_local_size", "get_num_groups",
    "get_work_dim", "get_global_offset",
})

#: atomic read-modify-write builtins handled as statements
ATOMIC_FUNCTIONS = {
    "atomic_add": "add",
    "atomic_sub": "sub",
    "atomic_inc": "inc",
    "atomic_dec": "dec",
    "atomic_min": "min",
    "atomic_max": "max",
    "atom_add": "add",    # 64-bit spelling from cl_khr_int64_base_atomics
    "atom_inc": "inc",
}
