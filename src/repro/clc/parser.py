"""Recursive-descent parser for the OpenCL C subset.

Grammar summary (C99 with OpenCL qualifiers, minus features the subset
excludes — structs, typedefs, switch, goto, vector types)::

    translation_unit := function_def*
    function_def     := ["__kernel"] type ident "(" params ")" compound
    statement        := decl | expr ";" | if | for | while | do-while
                      | break | continue | return | compound | ";"

Expressions implement the full C operator precedence including the ternary
operator, casts and ``sizeof``.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast_nodes as A
from .tokens import EOF, FLOAT_LIT, IDENT, INT_LIT, KEYWORD, PUNCT, Token

_ADDRESS_SPACES = {
    "__global": "global", "global": "global",
    "__local": "local", "local": "local",
    "__constant": "constant", "constant": "constant",
    "__private": "private", "private": "private",
}

_TYPE_KEYWORDS = {
    "void", "char", "uchar", "short", "ushort", "int", "uint",
    "long", "ulong", "float", "double", "bool", "size_t", "ptrdiff_t",
    "signed", "unsigned",
}

_QUALIFIERS = {"const", "volatile", "restrict", "static", "inline"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

#: binary operator precedence, higher binds tighter
_BIN_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_UNSUPPORTED = {"struct", "typedef", "switch", "goto", "case", "default"}


class Parser:
    """Parse a token stream into a :class:`repro.clc.ast_nodes.TranslationUnit`."""

    def __init__(self, tokens: list[Token], filename: str = "<kernel>") -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # -- token helpers -------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, off: int = 1) -> Token:
        i = min(self.pos + off, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self) -> Token:
        tok = self.cur
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def _error(self, msg: str, tok: Token | None = None) -> ParseError:
        tok = tok or self.cur
        return ParseError(msg, tok.line, tok.col, self.filename)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        if not self.cur.is_(kind, value):
            want = value if value is not None else kind
            raise self._error(f"expected {want!r}, found {self.cur.value!r}")
        return self._advance()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.cur.is_(kind, value):
            return self._advance()
        return None

    # -- type parsing -----------------------------------------------------------

    def _at_type_start(self) -> bool:
        tok = self.cur
        if tok.kind != KEYWORD:
            return False
        return (tok.value in _TYPE_KEYWORDS or tok.value in _ADDRESS_SPACES
                or tok.value in _QUALIFIERS)

    def _parse_type_spec(self) -> A.TypeSpec:
        line, col = self.cur.line, self.cur.col
        address_space = None
        is_const = False
        base_parts: list[str] = []

        while self.cur.kind == KEYWORD:
            v = self.cur.value
            if v in _ADDRESS_SPACES:
                if address_space is not None:
                    raise self._error("duplicate address-space qualifier")
                address_space = _ADDRESS_SPACES[v]
                self._advance()
            elif v == "const":
                is_const = True
                self._advance()
            elif v in _QUALIFIERS:
                self._advance()  # volatile/restrict/static/inline: accepted, ignored
            elif v in _TYPE_KEYWORDS:
                base_parts.append(v)
                self._advance()
            elif v in _UNSUPPORTED:
                raise self._error(f"{v!r} is outside the SimCL OpenCL C subset")
            else:
                break

        if not base_parts:
            raise self._error("expected a type name")
        base = self._normalize_base(base_parts)

        pointer = 0
        while self.cur.is_(PUNCT, "*"):
            pointer += 1
            self._advance()
            while self.cur.kind == KEYWORD and self.cur.value in _QUALIFIERS:
                self._advance()

        return A.TypeSpec(base=base, pointer=pointer,
                          address_space=address_space or "private",
                          is_const=is_const, line=line, col=col)

    def _normalize_base(self, parts: list[str]) -> str:
        """Map multi-keyword spellings (``unsigned int``) to canonical names."""
        if parts == ["unsigned"]:
            return "uint"
        if parts == ["signed"]:
            return "int"
        if len(parts) == 2 and parts[0] in ("signed", "unsigned"):
            name = parts[1]
            if name not in ("char", "short", "int", "long"):
                raise self._error(f"cannot combine {' '.join(parts)!r}")
            return name if parts[0] == "signed" else "u" + name
        if len(parts) == 1:
            return parts[0]
        if parts == ["long", "long"]:
            return "long"
        if parts == ["unsigned", "long", "long"]:
            return "ulong"
        raise self._error(f"unsupported type spelling {' '.join(parts)!r}")

    # -- top level ----------------------------------------------------------------

    def parse_translation_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit(line=1, col=1)
        while self.cur.kind != EOF:
            if self._accept(PUNCT, ";"):
                continue
            unit.functions.append(self._parse_function())
        return unit

    def _parse_function(self) -> A.FunctionDef:
        line, col = self.cur.line, self.cur.col
        is_kernel = False
        while self.cur.kind == KEYWORD and self.cur.value in ("__kernel",
                                                              "kernel"):
            is_kernel = True
            self._advance()
        ret = self._parse_type_spec()
        name = self._expect(IDENT).value
        self._expect(PUNCT, "(")
        params: list[A.ParamDecl] = []
        if not self.cur.is_(PUNCT, ")"):
            if (self.cur.is_(KEYWORD, "void")
                    and self._peek().is_(PUNCT, ")")):
                self._advance()
            else:
                while True:
                    params.append(self._parse_param())
                    if not self._accept(PUNCT, ","):
                        break
        self._expect(PUNCT, ")")
        self._expect(PUNCT, "{")
        body = self._parse_block_items()
        self._expect(PUNCT, "}")
        return A.FunctionDef(name=name, return_type=ret, params=params,
                             body=body, is_kernel=is_kernel,
                             line=line, col=col)

    def _parse_param(self) -> A.ParamDecl:
        line, col = self.cur.line, self.cur.col
        spec = self._parse_type_spec()
        name = self._expect(IDENT).value
        if self.cur.is_(PUNCT, "["):
            raise self._error("array-typed parameters are not supported; "
                              "use a pointer")
        return A.ParamDecl(type_spec=spec, name=name, line=line, col=col)

    # -- statements -------------------------------------------------------------------

    def _parse_block_items(self) -> list[A.Node]:
        items: list[A.Node] = []
        while not self.cur.is_(PUNCT, "}") and self.cur.kind != EOF:
            items.append(self._parse_statement())
        return items

    def _parse_statement(self) -> A.Node:
        tok = self.cur
        if tok.kind == KEYWORD:
            v = tok.value
            if v in _UNSUPPORTED:
                raise self._error(
                    f"{v!r} is outside the SimCL OpenCL C subset")
            if v == "if":
                return self._parse_if()
            if v == "for":
                return self._parse_for()
            if v == "while":
                return self._parse_while()
            if v == "do":
                return self._parse_do_while()
            if v == "break":
                self._advance()
                self._expect(PUNCT, ";")
                return A.BreakStmt(line=tok.line, col=tok.col)
            if v == "continue":
                self._advance()
                self._expect(PUNCT, ";")
                return A.ContinueStmt(line=tok.line, col=tok.col)
            if v == "return":
                self._advance()
                value = None
                if not self.cur.is_(PUNCT, ";"):
                    value = self._parse_expression()
                self._expect(PUNCT, ";")
                return A.ReturnStmt(value=value, line=tok.line, col=tok.col)
            if self._at_type_start():
                return self._parse_decl_stmt()
        if tok.is_(PUNCT, "{"):
            self._advance()
            body = self._parse_block_items()
            self._expect(PUNCT, "}")
            return A.BlockStmt(body=body, line=tok.line, col=tok.col)
        if tok.is_(PUNCT, ";"):
            self._advance()
            return A.BlockStmt(body=[], line=tok.line, col=tok.col)
        expr = self._parse_expression()
        self._expect(PUNCT, ";")
        return A.ExprStmt(expr=expr, line=tok.line, col=tok.col)

    def _parse_decl_stmt(self) -> A.DeclStmt:
        line, col = self.cur.line, self.cur.col
        spec = self._parse_type_spec()
        decls: list[A.VarDecl] = []
        while True:
            dline, dcol = self.cur.line, self.cur.col
            # each declarator may add its own pointer depth
            extra_ptr = 0
            while self._accept(PUNCT, "*"):
                extra_ptr += 1
            name = self._expect(IDENT).value
            array_size = None
            if self._accept(PUNCT, "["):
                array_size = self._parse_expression()
                self._expect(PUNCT, "]")
                if self.cur.is_(PUNCT, "["):
                    raise self._error("multi-dimensional in-kernel arrays "
                                      "are not supported; linearize indices")
            init = None
            if self._accept(PUNCT, "="):
                init = self._parse_assignment()
            this_spec = A.TypeSpec(base=spec.base,
                                   pointer=spec.pointer + extra_ptr,
                                   address_space=spec.address_space,
                                   is_const=spec.is_const,
                                   line=spec.line, col=spec.col)
            decls.append(A.VarDecl(type_spec=this_spec, name=name,
                                   array_size=array_size, init=init,
                                   line=dline, col=dcol))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        return A.DeclStmt(decls=decls, line=line, col=col)

    def _parse_if(self) -> A.IfStmt:
        tok = self._expect(KEYWORD, "if")
        self._expect(PUNCT, "(")
        cond = self._parse_expression()
        self._expect(PUNCT, ")")
        then = self._stmt_as_list(self._parse_statement())
        otherwise: list[A.Node] = []
        if self._accept(KEYWORD, "else"):
            otherwise = self._stmt_as_list(self._parse_statement())
        return A.IfStmt(cond=cond, then=then, otherwise=otherwise,
                        line=tok.line, col=tok.col)

    def _parse_for(self) -> A.ForStmt:
        tok = self._expect(KEYWORD, "for")
        self._expect(PUNCT, "(")
        init: list[A.Node] = []
        if not self.cur.is_(PUNCT, ";"):
            if self._at_type_start():
                init = [self._parse_decl_stmt()]  # consumes the `;`
            else:
                init = [A.ExprStmt(expr=self._parse_expression(),
                                   line=self.cur.line, col=self.cur.col)]
                self._expect(PUNCT, ";")
        else:
            self._advance()
        cond = None
        if not self.cur.is_(PUNCT, ";"):
            cond = self._parse_expression()
        self._expect(PUNCT, ";")
        update: list[A.Node] = []
        if not self.cur.is_(PUNCT, ")"):
            while True:
                update.append(A.ExprStmt(expr=self._parse_expression(),
                                         line=self.cur.line,
                                         col=self.cur.col))
                if not self._accept(PUNCT, ","):
                    break
        self._expect(PUNCT, ")")
        body = self._stmt_as_list(self._parse_statement())
        return A.ForStmt(init=init, cond=cond, update=update, body=body,
                         line=tok.line, col=tok.col)

    def _parse_while(self) -> A.WhileStmt:
        tok = self._expect(KEYWORD, "while")
        self._expect(PUNCT, "(")
        cond = self._parse_expression()
        self._expect(PUNCT, ")")
        body = self._stmt_as_list(self._parse_statement())
        return A.WhileStmt(cond=cond, body=body, line=tok.line, col=tok.col)

    def _parse_do_while(self) -> A.DoWhileStmt:
        tok = self._expect(KEYWORD, "do")
        body = self._stmt_as_list(self._parse_statement())
        self._expect(KEYWORD, "while")
        self._expect(PUNCT, "(")
        cond = self._parse_expression()
        self._expect(PUNCT, ")")
        self._expect(PUNCT, ";")
        return A.DoWhileStmt(body=body, cond=cond, line=tok.line, col=tok.col)

    @staticmethod
    def _stmt_as_list(stmt: A.Node) -> list[A.Node]:
        if isinstance(stmt, A.BlockStmt):
            return stmt.body
        return [stmt]

    # -- expressions --------------------------------------------------------------------

    def _parse_expression(self) -> A.Node:
        return self._parse_assignment()

    def _parse_assignment(self) -> A.Node:
        lhs = self._parse_ternary()
        if self.cur.kind == PUNCT and self.cur.value in _ASSIGN_OPS:
            op_tok = self._advance()
            rhs = self._parse_assignment()
            return A.AssignExpr(op=op_tok.value, lhs=lhs, rhs=rhs,
                                line=op_tok.line, col=op_tok.col)
        return lhs

    def _parse_ternary(self) -> A.Node:
        cond = self._parse_binary(1)
        if self.cur.is_(PUNCT, "?"):
            tok = self._advance()
            then = self._parse_assignment()
            self._expect(PUNCT, ":")
            otherwise = self._parse_ternary()
            return A.TernaryOp(cond=cond, then=then, otherwise=otherwise,
                               line=tok.line, col=tok.col)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Node:
        lhs = self._parse_unary()
        while True:
            tok = self.cur
            if tok.kind != PUNCT:
                return lhs
            prec = _BIN_PREC.get(tok.value)
            if prec is None or prec < min_prec:
                return lhs
            self._advance()
            rhs = self._parse_binary(prec + 1)
            lhs = A.BinaryOp(op=tok.value, lhs=lhs, rhs=rhs,
                             line=tok.line, col=tok.col)

    def _parse_unary(self) -> A.Node:
        tok = self.cur
        if tok.kind == PUNCT and tok.value in ("-", "+", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return A.UnaryOp(op=tok.value, operand=operand,
                             line=tok.line, col=tok.col)
        if tok.kind == PUNCT and tok.value in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            # prefix inc/dec is represented like postfix; sema restricts use
            return A.PostfixOp(op=tok.value, operand=operand,
                               line=tok.line, col=tok.col)
        if tok.kind == PUNCT and tok.value == "&":
            # address-of: only meaningful as an atomic builtin argument,
            # which sema enforces
            self._advance()
            operand = self._parse_unary()
            return A.UnaryOp(op="&", operand=operand,
                             line=tok.line, col=tok.col)
        if tok.kind == PUNCT and tok.value == "*":
            raise self._error(
                "unary '*' (pointer dereference) is outside the subset; "
                "use indexing")
        if tok.is_(KEYWORD, "sizeof"):
            self._advance()
            self._expect(PUNCT, "(")
            spec = self._parse_type_spec()
            self._expect(PUNCT, ")")
            return A.SizeofExpr(type_name=spec, line=tok.line, col=tok.col)
        if tok.is_(PUNCT, "(") and self._is_cast_ahead():
            self._advance()
            spec = self._parse_type_spec()
            self._expect(PUNCT, ")")
            operand = self._parse_unary()
            return A.CastExpr(type_name=spec, operand=operand,
                              line=tok.line, col=tok.col)
        return self._parse_postfix()

    def _is_cast_ahead(self) -> bool:
        """At ``(``: is this a cast rather than a parenthesised expression?"""
        nxt = self._peek()
        return (nxt.kind == KEYWORD
                and (nxt.value in _TYPE_KEYWORDS
                     or nxt.value in _ADDRESS_SPACES))

    def _parse_postfix(self) -> A.Node:
        expr = self._parse_primary()
        while True:
            tok = self.cur
            if tok.is_(PUNCT, "["):
                self._advance()
                index = self._parse_expression()
                self._expect(PUNCT, "]")
                expr = A.IndexExpr(base=expr, index=index,
                                   line=tok.line, col=tok.col)
            elif tok.kind == PUNCT and tok.value in ("++", "--"):
                self._advance()
                expr = A.PostfixOp(op=tok.value, operand=expr,
                                   line=tok.line, col=tok.col)
            elif tok.is_(PUNCT, "."):
                raise self._error("member access is outside the subset "
                                  "(no struct/vector types)")
            else:
                return expr

    def _parse_primary(self) -> A.Node:
        tok = self.cur
        if tok.kind == INT_LIT:
            self._advance()
            return A.IntLiteral(value=int(tok.parsed), suffix=tok.suffix,
                                line=tok.line, col=tok.col)
        if tok.kind == FLOAT_LIT:
            self._advance()
            return A.FloatLiteral(value=float(tok.parsed), suffix=tok.suffix,
                                  line=tok.line, col=tok.col)
        if tok.kind == IDENT:
            self._advance()
            if self.cur.is_(PUNCT, "("):
                self._advance()
                args: list[A.Node] = []
                if not self.cur.is_(PUNCT, ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept(PUNCT, ","):
                            break
                self._expect(PUNCT, ")")
                return A.CallExpr(name=tok.value, args=args,
                                  line=tok.line, col=tok.col)
            return A.Identifier(name=tok.value, line=tok.line, col=tok.col)
        if tok.is_(PUNCT, "("):
            self._advance()
            expr = self._parse_expression()
            self._expect(PUNCT, ")")
            return expr
        if tok.kind == KEYWORD and tok.value in ("true", "false"):
            self._advance()
            return A.IntLiteral(value=1 if tok.value == "true" else 0,
                                line=tok.line, col=tok.col)
        raise self._error(f"unexpected token {tok.value!r} in expression")


def parse(tokens: list[Token], filename: str = "<kernel>") -> A.TranslationUnit:
    """Parse a token list into a translation unit."""
    return Parser(tokens, filename).parse_translation_unit()
