"""The OpenCL C scalar/pointer/array type system used by sema and engines.

Only the scalar subset (plus pointers into the four address spaces and
fixed-size private/local arrays) is modelled; vector types (``float4``...)
are outside the subset — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

import numpy as np

# Address spaces ---------------------------------------------------------------

GLOBAL = "global"
LOCAL = "local"
CONSTANT = "constant"
PRIVATE = "private"

ADDRESS_SPACES = (GLOBAL, LOCAL, CONSTANT, PRIVATE)


@dataclass(frozen=True)
class CLType:
    """Base class for all types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "<?>"

    @property
    def is_scalar(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False

    @property
    def is_void(self) -> bool:
        return False


@dataclass(frozen=True)
class VoidType(CLType):
    @property
    def is_void(self) -> bool:
        return True

    def __str__(self) -> str:
        return "void"


@total_ordering
@dataclass(frozen=True, eq=False)
class ScalarType(CLType):
    """An arithmetic scalar type.

    ``rank`` orders types for the usual arithmetic conversions; equal-rank
    signed/unsigned pairs convert to the unsigned member as in C.
    """

    name: str
    np_dtype: np.dtype
    rank: int
    signed: bool
    is_float: bool

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def size(self) -> int:
        return np.dtype(self.np_dtype).itemsize

    def __str__(self) -> str:
        return self.name

    # identity-based equality: the scalar types below are singletons
    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __lt__(self, other: "ScalarType") -> bool:
        return (self.rank, not self.signed) < (other.rank, not other.signed)


@dataclass(frozen=True)
class PointerType(CLType):
    pointee: CLType
    address_space: str = GLOBAL

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"__{self.address_space} {self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CLType):
    """A fixed-size in-kernel array (``__local float s[64];``)."""

    element: CLType
    size: int
    address_space: str = PRIVATE

    @property
    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"__{self.address_space} {self.element}[{self.size}]"


# Singleton scalar instances ------------------------------------------------------

VOID = VoidType()

BOOL = ScalarType("bool", np.dtype(np.int8), 0, True, False)
CHAR = ScalarType("char", np.dtype(np.int8), 1, True, False)
UCHAR = ScalarType("uchar", np.dtype(np.uint8), 1, False, False)
SHORT = ScalarType("short", np.dtype(np.int16), 2, True, False)
USHORT = ScalarType("ushort", np.dtype(np.uint16), 2, False, False)
INT = ScalarType("int", np.dtype(np.int32), 3, True, False)
UINT = ScalarType("uint", np.dtype(np.uint32), 3, False, False)
LONG = ScalarType("long", np.dtype(np.int64), 4, True, False)
ULONG = ScalarType("ulong", np.dtype(np.uint64), 4, False, False)
SIZE_T = ScalarType("size_t", np.dtype(np.uint64), 4, False, False)
FLOAT = ScalarType("float", np.dtype(np.float32), 5, True, True)
DOUBLE = ScalarType("double", np.dtype(np.float64), 6, True, True)

#: Name → type lookup used by the parser/sema.
SCALAR_TYPES: dict[str, ScalarType] = {
    t.name: t for t in (BOOL, CHAR, UCHAR, SHORT, USHORT, INT, UINT,
                        LONG, ULONG, SIZE_T, FLOAT, DOUBLE)
}
SCALAR_TYPES["ptrdiff_t"] = LONG

INTEGER_TYPES = tuple(t for t in SCALAR_TYPES.values() if not t.is_float)
FLOAT_TYPES = (FLOAT, DOUBLE)


def promote(t: ScalarType) -> ScalarType:
    """C integer promotion: anything smaller than ``int`` becomes ``int``."""
    if not t.is_float and t.rank < INT.rank:
        return INT
    return t


def usual_arithmetic_conversion(a: ScalarType, b: ScalarType) -> ScalarType:
    """The common type of a binary arithmetic expression, per C rules."""
    a, b = promote(a), promote(b)
    if a is b:
        return a
    if a.is_float or b.is_float:
        if DOUBLE in (a, b):
            return DOUBLE
        if a.is_float and b.is_float:
            return FLOAT
        return a if a.is_float else b
    # both integers
    hi = a if (a.rank, not a.signed) >= (b.rank, not b.signed) else b
    lo = b if hi is a else a
    if hi.rank == lo.rank and hi.signed != lo.signed:
        return hi if not hi.signed else lo
    if not hi.signed and lo.signed and hi.rank > lo.rank:
        return hi
    if hi.signed and not lo.signed and hi.rank > lo.rank:
        # signed type can represent all unsigned values of lower rank here
        return hi
    return hi


def can_convert(src: CLType, dst: CLType) -> bool:
    """True when an implicit conversion ``src -> dst`` is allowed."""
    if src is dst or src == dst:
        return True
    if isinstance(src, ScalarType) and isinstance(dst, ScalarType):
        return True  # all arithmetic conversions are implicit in C
    if isinstance(src, ArrayType) and isinstance(dst, PointerType):
        return (src.element == dst.pointee
                and src.address_space == dst.address_space)
    if isinstance(src, PointerType) and isinstance(dst, PointerType):
        return src == dst
    return False


def common_pointer_element(t: CLType) -> CLType:
    """Element type of a pointer or in-kernel array, for indexing."""
    if isinstance(t, PointerType):
        return t.pointee
    if isinstance(t, ArrayType):
        return t.element
    raise TypeError(f"{t} is not indexable")
