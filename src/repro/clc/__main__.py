"""``python -m repro.clc`` — compiler inspection CLI.

The ``dump`` subcommand runs the full compile → optimize → lower
pipeline over an OpenCL C source file and prints the typed tree IR
before the middle-end, again after every pass execution that changed
it, and finally the flat bytecode disassembly — the debugging loop for
miscompiles described in docs/compiler.md::

    python -m repro.clc dump kernel.cl --opt-level 2
    cat kernel.cl | python -m repro.clc dump - -O 0
"""

from __future__ import annotations

import argparse
import sys

from . import compile_source
from . import ir as I

# -- tree-IR pretty printer ---------------------------------------------------


def _fmt_expr(e) -> str:
    if isinstance(e, I.Const):
        return repr(e.value)
    if isinstance(e, I.Var):
        return e.name
    if isinstance(e, I.Load):
        return f"{e.base}[{_fmt_expr(e.index)}]"
    if isinstance(e, I.Unary):
        return f"({e.op}{_fmt_expr(e.operand)})"
    if isinstance(e, I.Binary):
        return f"({_fmt_expr(e.lhs)} {e.op} {_fmt_expr(e.rhs)})"
    if isinstance(e, I.Select):
        return (f"({_fmt_expr(e.cond)} ? {_fmt_expr(e.then)}"
                f" : {_fmt_expr(e.otherwise)})")
    if isinstance(e, I.Convert):
        return f"({e.type}){_fmt_expr(e.operand)}"
    if isinstance(e, (I.CallBuiltin, I.CallFunction)):
        return f"{e.name}({', '.join(_fmt_expr(a) for a in e.args)})"
    return repr(e)


def _fmt_lvalue(lv: I.LValue) -> str:
    if lv.index is None:
        return lv.name
    return f"{lv.name}[{_fmt_expr(lv.index)}]"


def _fmt_stmt(stmt, out: list, depth: int) -> None:
    pad = "    " * depth

    def block(stmts, d):
        for s in stmts:
            _fmt_stmt(s, out, d)

    if isinstance(stmt, I.DeclVar):
        init = f" = {_fmt_expr(stmt.init)}" if stmt.init is not None else ""
        out.append(f"{pad}{stmt.type} {stmt.name}{init};")
    elif isinstance(stmt, I.DeclArray):
        space = f"__{stmt.space} " if stmt.space != "private" else ""
        out.append(f"{pad}{space}{stmt.element} "
                   f"{stmt.name}[{stmt.size}];")
    elif isinstance(stmt, I.Store):
        out.append(f"{pad}{_fmt_lvalue(stmt.target)} = "
                   f"{_fmt_expr(stmt.value)};")
    elif isinstance(stmt, I.AtomicRMW):
        value = f", {_fmt_expr(stmt.value)}" if stmt.value is not None \
            else ""
        out.append(f"{pad}atomic_{stmt.op}"
                   f"(&{_fmt_lvalue(stmt.target)}{value});")
    elif isinstance(stmt, I.EvalExpr):
        out.append(f"{pad}{_fmt_expr(stmt.expr)};")
    elif isinstance(stmt, I.If):
        out.append(f"{pad}if ({_fmt_expr(stmt.cond)}) {{")
        block(stmt.then, depth + 1)
        if stmt.otherwise:
            out.append(f"{pad}}} else {{")
            block(stmt.otherwise, depth + 1)
        out.append(f"{pad}}}")
    elif isinstance(stmt, I.While):
        kind = "do" if stmt.is_do_while else \
            f"while ({_fmt_expr(stmt.cond)})"
        out.append(f"{pad}{kind} {{")
        block(stmt.body, depth + 1)
        if stmt.update:
            out.append(f"{pad}  update:")
            block(stmt.update, depth + 1)
        tail = f" while ({_fmt_expr(stmt.cond)});" if stmt.is_do_while \
            else ""
        out.append(f"{pad}}}{tail}")
    elif isinstance(stmt, I.Break):
        out.append(f"{pad}break;")
    elif isinstance(stmt, I.Continue):
        out.append(f"{pad}continue;")
    elif isinstance(stmt, I.Return):
        value = f" {_fmt_expr(stmt.value)}" if stmt.value is not None \
            else ""
        out.append(f"{pad}return{value};")
    elif isinstance(stmt, I.BarrierStmt):
        out.append(f"{pad}barrier({stmt.flags:#x});")
    else:  # pragma: no cover - future statement kinds
        out.append(f"{pad}{stmt!r}")


def format_program(program: I.ProgramIR) -> str:
    """C-like rendering of every function's typed tree IR."""
    out = []
    for func in program.functions.values():
        qual = "__kernel " if func.is_kernel else ""
        params = ", ".join(f"{p.type} {p.name}" for p in func.params)
        out.append(f"{qual}{func.return_type} {func.name}({params}) {{")
        for stmt in func.body:
            _fmt_stmt(stmt, out, 1)
        out.append("}")
        out.append("")
    return "\n".join(out).rstrip()


# -- dump subcommand ----------------------------------------------------------


def _dump(ns) -> int:
    from .lower import disassemble
    from .passes import optimize_program

    if ns.source == "-":
        source = sys.stdin.read()
    else:
        with open(ns.source, encoding="utf-8") as fh:
            source = fh.read()

    program = compile_source(source, ns.options)
    print(f"== tree IR after front end (options={ns.options!r}) ==")
    print(format_program(program))

    def observer(name: str, prog: I.ProgramIR, changed: bool) -> None:
        if changed:
            print(f"\n== after pass {name} ==")
            print(format_program(prog))
        else:
            print(f"\n== after pass {name}: no change ==")
        if name == "uniformity":
            tags = {2: "launch", 1: "group"}
            for fname, func in prog.functions.items():
                levels = getattr(func, "_uniform_vars", {})
                uniform = [f"{v}({tags[lvl]})" for v, lvl
                           in sorted(levels.items()) if lvl > 0]
                if uniform:
                    print(f"   {fname}: uniform vars: "
                          f"{', '.join(uniform)}")

    optimize_program(program, ns.opt_level, observer)
    if program.bytecode is None:
        print(f"\n== no bytecode at -O{program.opt_level} "
              "(tree interpreters execute the IR above) ==")
        return 0
    print(f"\n== bytecode (version {program.bytecode.version}, "
          f"-O{program.opt_level}) ==")
    for bc in program.bytecode.functions.values():
        print(disassemble(bc))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.clc",
        description="Inspect the SimCL OpenCL C compiler.")
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser(
        "dump",
        help="print the IR before/after each middle-end pass and the "
             "final bytecode disassembly")
    dump.add_argument("source",
                      help="OpenCL C source file ('-' reads stdin)")
    dump.add_argument("--opt-level", "-O", type=int, default=None,
                      help="optimization level 0-2 (default: the "
                           "process default, see docs/compiler.md)")
    dump.add_argument("--options", default="",
                      help="build options string, e.g. '-D N=16'")
    ns = parser.parse_args(argv)

    if ns.command == "dump":
        if ns.opt_level is None:
            from .passes import default_opt_level
            ns.opt_level = default_opt_level()
        return _dump(ns)
    parser.error(f"unknown command {ns.command!r}")  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
