"""Physical source-lines-of-code counting, sloccount-style.

A *source line of code* is a line that contains at least one character
that is neither whitespace nor part of a comment — Wheeler's definition,
which the paper uses for Table I.  Two language modes are provided:

* C-family (OpenCL C, C++, and the OpenCL host API): ``//`` and
  ``/* */`` comments, string/char literals shield comment markers;
* Python: ``#`` comments; module/class/function docstrings count as code
  (sloccount counts them, since they are string expressions) — a
  ``count_docstrings=False`` switch excludes them for stricter
  comparisons.
"""

from __future__ import annotations

import ast
import io
import tokenize


def count_sloc_c(source: str) -> int:
    """SLOC of C/C++/OpenCL-C source text."""
    sloc = 0
    in_block_comment = False
    in_string: str | None = None
    for line in source.split("\n"):
        has_code = False
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block_comment:
                if c == "*" and nxt == "/":
                    in_block_comment = False
                    i += 2
                    continue
                i += 1
                continue
            if in_string is not None:
                has_code = True
                if c == "\\":
                    i += 2
                    continue
                if c == in_string:
                    in_string = None
                i += 1
                continue
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                in_block_comment = True
                i += 2
                continue
            if c in "\"'":
                in_string = c
                has_code = True
                i += 1
                continue
            if not c.isspace():
                has_code = True
            i += 1
        if in_string is not None:
            in_string = None  # unterminated string: treat as line-local
        if has_code:
            sloc += 1
    return sloc


def _docstring_linenos(source: str) -> set[int]:
    """Line numbers occupied by docstrings, for the exclusion switch."""
    lines: set[int] = set()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return lines
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if body and isinstance(body[0], ast.Expr) and isinstance(
                    body[0].value, ast.Constant) and isinstance(
                    body[0].value.value, str):
                expr = body[0]
                lines.update(range(expr.lineno, expr.end_lineno + 1))
    return lines


def count_sloc_python(source: str, count_docstrings: bool = True) -> int:
    """SLOC of Python source text (comments and blank lines excluded)."""
    code_lines: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type in (tokenize.COMMENT, tokenize.NL,
                            tokenize.NEWLINE, tokenize.INDENT,
                            tokenize.DEDENT, tokenize.ENDMARKER,
                            tokenize.ENCODING):
                continue
            code_lines.update(range(tok.start[0], tok.end[0] + 1))
    except tokenize.TokenError:
        # fall back to a naive count on malformed input
        return sum(1 for ln in source.split("\n")
                   if ln.strip() and not ln.lstrip().startswith("#"))
    if not count_docstrings:
        code_lines -= _docstring_linenos(source)
    return len(code_lines)


def count_sloc(source: str, language: str = "c") -> int:
    """SLOC of ``source`` in the given language (``"c"`` or ``"python"``)."""
    if language in ("c", "cpp", "opencl", "cl"):
        return count_sloc_c(source)
    if language in ("py", "python"):
        return count_sloc_python(source)
    raise ValueError(f"unknown language {language!r}")


def sloc_report(entries) -> list[dict]:
    """Build Table-I-style rows.

    ``entries`` is an iterable of ``(name, opencl_source, hpl_source)``
    with sources as ``(text, language)`` pairs; the result rows carry the
    SLOC of each version and the percentage reduction achieved by HPL.
    """
    rows = []
    for name, (ocl_text, ocl_lang), (hpl_text, hpl_lang) in entries:
        ocl = count_sloc(ocl_text, ocl_lang)
        hpl = count_sloc(hpl_text, hpl_lang)
        reduction = 100.0 * (ocl - hpl) / ocl if ocl else 0.0
        rows.append({"benchmark": name, "opencl_sloc": ocl,
                     "hpl_sloc": hpl, "reduction_pct": reduction,
                     "ratio": (ocl / hpl) if hpl else float("inf")})
    return rows
