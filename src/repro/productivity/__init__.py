"""Programmability metrics (paper §V-A).

The paper measures programmability with Wheeler's *sloccount*: "the
number of source lines of code excluding comments and empty lines
(SLOC)".  :mod:`repro.productivity.sloc` implements the same physical-
SLOC definition for the C/OpenCL and Python sources in this repository.
"""

from .sloc import count_sloc, count_sloc_c, count_sloc_python, sloc_report

__all__ = ["count_sloc", "count_sloc_c", "count_sloc_python", "sloc_report"]
