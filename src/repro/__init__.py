"""repro — a from-scratch reproduction of the Heterogeneous Programming
Library (HPL) from *"A Portable High-Productivity Approach to Program
Heterogeneous Systems"* (Bozkus & Fraguela, 2012).

Layout
------
* :mod:`repro.hpl`  — the paper's contribution: the HPL embedded DSL,
  runtime, kernel cache and transfer management.
* :mod:`repro.ocl`  — SimCL, the simulated OpenCL platform HPL targets
  (and the baseline API hand-written benchmarks program against).
* :mod:`repro.clc`  — the OpenCL C subset compiler behind SimCL.
* :mod:`repro.benchsuite` — the paper's five benchmarks and the runner
  that regenerates every table and figure of the evaluation.
* :mod:`repro.productivity` — the sloccount-style SLOC metric of §V-A.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from ._version import __version__

__all__ = ["__version__"]
