"""Shared benchmark infrastructure: run records and time extrapolation.

Problem-size scaling
--------------------
The paper's problem sizes (16K x 16K matrices, 2^32 random pairs) are
impractical to *functionally* execute in a Python-based simulator, so
each benchmark runs a scaled-down instance and **extrapolates** the
simulated device time: the dynamic :class:`CostCounters` measured on the
scaled run are multiplied by the known work ratio before being fed to
the cost model.  This is exact for these five kernels because their
operation mix is size-independent (work grows linearly in every counter)
— the property is asserted by tests that compare two scales.

Wall-clock HPL overhead (capture + code generation + build) is *not*
scaled: it genuinely does not depend on the problem size, which is the
mechanism behind Figure 6's shrinking relative overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ocl import CostCounters, DeviceSpec, kernel_time


@dataclass
class Problem:
    """A generated workload instance."""

    name: str
    params: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    #: factor by which device work was scaled down relative to the paper
    scale: float = 1.0


@dataclass
class BenchRun:
    """The outcome of running one benchmark variant on one device."""

    benchmark: str
    variant: str              # 'opencl' | 'hpl'
    device: str
    output: object            # result data for verification
    #: simulated kernel time, extrapolated to the paper's problem size
    kernel_seconds: float
    #: simulated host<->device transfer time (paper-size bytes)
    transfer_seconds: float = 0.0
    #: wall-clock overhead unique to HPL (capture/codegen); 0 for OpenCL
    hpl_overhead_seconds: float = 0.0
    #: wall-clock OpenCL program build time (paid by both variants)
    build_seconds: float = 0.0
    counters: CostCounters | None = None
    params: dict = field(default_factory=dict)

    def total_seconds(self, include_transfers: bool = False,
                      include_build: bool = False) -> float:
        """Kernel time plus the overheads the paper's measurement counts.

        Figures 6-8 count 'the generation of the backend code (in the
        case of HPL) and the compilation and execution of the kernel, but
        not the transfers'; the with-transfer variant of Figure 8 adds
        them.
        """
        total = self.kernel_seconds + self.hpl_overhead_seconds
        if include_build:
            total += self.build_seconds
        if include_transfers:
            total += self.transfer_seconds
        return total


def extrapolated_seconds(counters: CostCounters, spec: DeviceSpec,
                         work_factor: float,
                         launches: int = 1) -> float:
    """Paper-size simulated time from scaled-run counters.

    ``work_factor`` scales every extensive counter; ``launches`` is the
    number of paper-size kernel launches the counters represent (so the
    per-launch overhead is charged the right number of times).
    """
    if launches <= 0:
        raise ValueError("launches must be positive")
    per_launch = counters.scaled(work_factor / launches)
    return kernel_time(per_launch, spec).total * launches


def serial_time_from_counters(counters: CostCounters, work_factor: float,
                              spec: DeviceSpec | None = None,
                              store_line_penalty: float = 1.0) -> float:
    """Serial-CPU baseline time derived from measured kernel counters.

    The serial C++ implementations perform the same algorithmic work as
    the kernels, so the baseline reuses the dynamically measured op and
    byte counts, re-timed with the one-core CPU model.  GPU-specific work
    (local-memory staging, barriers) is stripped.  For benchmarks whose
    natural serial loop strides across cache lines (matrix transpose's
    column writes), ``store_line_penalty`` scales store traffic by the
    line/element ratio.
    """
    from ..ocl import XEON_SERIAL

    spec = XEON_SERIAL if spec is None else spec
    c = counters.scaled(work_factor)
    c.local_accesses = 0
    c.barriers = 0
    c.global_store_bytes = int(c.global_store_bytes * store_line_penalty)
    return kernel_time(c, spec).total


def verify_close(actual, expected, rtol: float = 1e-4,
                 atol: float = 1e-6) -> bool:
    """Tolerant elementwise comparison used by the runner's self-checks."""
    return bool(np.allclose(np.asarray(actual), np.asarray(expected),
                            rtol=rtol, atol=atol))
