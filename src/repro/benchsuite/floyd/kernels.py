"""OpenCL C kernel for Floyd-Warshall (hand-written baseline version)."""

FLOYD_OPENCL_SOURCE = r"""
/* Floyd-Warshall pass for pivot k, AMD APP SDK style: each work-item
 * relaxes path (y, x) through k.  The host enqueues one pass per pivot. */
__kernel void floydWarshallPass(__global int* pathDistance,
                                int numNodes, int pass) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int k = pass;

    int oldWeight = pathDistance[y * numNodes + x];
    int tempWeight = pathDistance[y * numNodes + k]
                   + pathDistance[k * numNodes + x];
    if (tempWeight < oldWeight) {
        pathDistance[y * numNodes + x] = tempWeight;
    }
}
"""
