"""Floyd-Warshall all-pairs shortest paths (paper §V, from AMD APP SDK).

One kernel launch per pivot ``k``; each work-item relaxes one matrix
cell.  The paper runs 1024 nodes on the Tesla and 512 on the Quadro.
"""

from .driver import (PAPER_NODES, PAPER_NODES_QUADRO, floyd_problem,
                     run_hpl, run_opencl, serial_seconds, verify)
from .kernels import FLOYD_OPENCL_SOURCE

__all__ = ["floyd_problem", "run_opencl", "run_hpl", "serial_seconds",
           "verify", "FLOYD_OPENCL_SOURCE"]
