"""Floyd-Warshall drivers: OpenCL vs HPL vs serial baseline.

Scaling: a run on ``n_run`` nodes measures one pass's counters; the
paper-size time is ``n_paper`` launches of a pass scaled by
``(n_paper/n_run)^2`` cells — exact, since every pass does identical
per-cell work.
"""

from __future__ import annotations

import time

import numpy as np

from ... import ocl
from ...hpl import Array, Int, endif_, idx, idy, if_, int_
from ...hpl import eval as hpl_eval
from ..common import BenchRun, Problem, extrapolated_seconds, \
    serial_time_from_counters
from ..datasets import floyd_warshall_reference, random_graph_distances
from .kernels import FLOYD_OPENCL_SOURCE

PAPER_NODES = 1024
PAPER_NODES_QUADRO = 512


def floyd_problem(n_paper: int = PAPER_NODES, n_run: int = 128,
                  seed: int = 17) -> Problem:
    """Generate a Floyd-Warshall workload (scaled run of n_run nodes)."""
    if n_run > n_paper:
        n_run = n_paper
    dist = random_graph_distances(n_run, seed=seed)
    return Problem(
        name=f"floyd.{n_paper}",
        params={"n_paper": n_paper, "n_run": n_run,
                "cell_factor": (n_paper / n_run) ** 2,
                "launch_factor": n_paper / n_run},
        arrays={"dist": dist},
        scale=(n_run / n_paper) ** 3,
    )


# -- hand-written OpenCL version ----------------------------------------------------

def run_opencl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    n = problem.params["n_run"]
    dist_host = problem.arrays["dist"].copy()

    platforms = ocl.get_platforms()
    if not platforms:
        raise RuntimeError("no OpenCL platforms found")
    candidates = [d for d in platforms[0].get_devices()
                  if device_name.lower() in d.name.lower()]
    if not candidates:
        raise RuntimeError(f"no device matching {device_name!r}")
    device = candidates[0]
    context = ocl.Context([device])
    queue = ocl.CommandQueue(context, device, profiling=True)

    t0 = time.perf_counter()
    program = ocl.Program(context, FLOYD_OPENCL_SOURCE)
    try:
        program.build()
    except Exception as exc:
        raise RuntimeError(f"floyd build failed:\n{program.build_log}") \
            from exc
    build_seconds = time.perf_counter() - t0
    kernel = program.create_kernel("floydWarshallPass")

    mf = ocl.mem_flags
    dist_buf = ocl.Buffer(context, mf.READ_WRITE, size=dist_host.nbytes)
    ev_up = queue.enqueue_write_buffer(dist_buf, dist_host)

    local = (16, 16) if n % 16 == 0 else None
    kernel.set_arg(0, dist_buf)
    kernel.set_arg(1, np.int32(n))
    sim_kernel = 0.0
    counters = None
    for k in range(n):
        kernel.set_arg(2, np.int32(k))
        event = queue.enqueue_nd_range_kernel(kernel, (n, n), local)
        sim_kernel += event.duration
        if counters is None:
            counters = event.counters
        else:
            counters.merge(event.counters)

    out = np.empty_like(dist_host)
    ev_down = queue.enqueue_read_buffer(dist_buf, out)
    queue.finish()

    # extrapolate: n_paper launches, each (n_paper/n_run)^2 the cells
    paper_seconds = extrapolated_seconds(
        counters, device.spec,
        problem.params["cell_factor"] * problem.params["launch_factor"],
        launches=problem.params["n_paper"])
    return BenchRun(
        benchmark="floyd", variant="opencl", device=device.name,
        output=out,
        kernel_seconds=paper_seconds,
        transfer_seconds=(ev_up.duration + ev_down.duration)
        * problem.params["cell_factor"],
        build_seconds=build_seconds,
        counters=counters, params=dict(problem.params))


# -- HPL version ------------------------------------------------------------------------

def floyd_hpl_kernel(pathDistance, numNodes, k):
    """One Floyd-Warshall pass written with HPL."""
    oldW = Int()
    oldW.assign(pathDistance[idy * numNodes + idx])
    tempW = Int()
    tempW.assign(pathDistance[idy * numNodes + k]
                 + pathDistance[k * numNodes + idx])
    if_(tempW < oldW)
    pathDistance[idy * numNodes + idx] = tempW
    endif_()


def run_hpl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    from ...hpl import Int as HInt
    from ...hpl import get_device

    n = problem.params["n_run"]
    device = get_device(device_name)
    dist = Array(int_, n * n, data=problem.arrays["dist"]
                 .copy().reshape(-1))

    local = (16, 16) if n % 16 == 0 else None
    sim_kernel = 0.0
    transfer = 0.0
    overhead = 0.0
    build = 0.0
    counters = None
    for k in range(n):
        ev = hpl_eval(floyd_hpl_kernel).global_(n, n)
        if local:
            ev = ev.local_(*local)
        result = ev.device(device)(dist, HInt(n), HInt(k))
        sim_kernel += result.kernel_seconds
        transfer += result.transfer_seconds
        overhead += result.codegen_seconds
        build += result.build_seconds
        if counters is None:
            counters = result.kernel_event.counters
        else:
            counters.merge(result.kernel_event.counters)

    out = dist.read().reshape(n, n).copy()
    if dist.host_event is not None:
        transfer += dist.host_event.duration
    paper_seconds = extrapolated_seconds(
        counters, device.queue.device.spec,
        problem.params["cell_factor"] * problem.params["launch_factor"],
        launches=problem.params["n_paper"])
    return BenchRun(
        benchmark="floyd", variant="hpl", device=device.name,
        output=out,
        kernel_seconds=paper_seconds,
        transfer_seconds=transfer * problem.params["cell_factor"],
        hpl_overhead_seconds=overhead,
        build_seconds=build,
        counters=counters, params=dict(problem.params))


# -- serial baseline -----------------------------------------------------------------------

def serial_seconds(run: BenchRun) -> float:
    """Serial triple-loop Floyd-Warshall on the one-core Xeon model."""
    return serial_time_from_counters(
        run.counters,
        run.params["cell_factor"] * run.params["launch_factor"])


def verify(run: BenchRun, problem: Problem) -> bool:
    expected = floyd_warshall_reference(problem.arrays["dist"])
    return np.array_equal(np.asarray(run.output), expected)
