"""Experiment orchestration: one function per paper table/figure.

Every function returns plain data (lists of dicts) so tests can assert on
it; :mod:`repro.benchsuite.report` renders the same data the way the
paper presents it.  See DESIGN.md §3 for the experiment index and
EXPERIMENTS.md for paper-vs-measured numbers.
"""

from __future__ import annotations

import inspect

from ..hpl import reset_runtime
from ..productivity import count_sloc, count_sloc_python
from . import ep, floyd, reduction, spmv, transpose

TESLA = "Tesla"
QUADRO = "Quadro"

_BENCH_MODULES = {
    "EP": ep, "Floyd-Warshall": floyd, "Matrix transpose": transpose,
    "Spmv": spmv, "Reduction": reduction,
}


# -- Table I: programmability ---------------------------------------------------

def run_table1() -> list[dict]:
    """Table I: SLOC of the OpenCL and HPL versions of each benchmark.

    Counts the complete standalone program pairs in
    :mod:`repro.benchsuite.table1` — entire applications, as the paper
    counted entire AMD SDK / SHOC / NPB codes with sloccount.
    """
    from .table1 import TABLE1_PAIRS, read_source

    rows = []
    for name, (ocl_file, hpl_file) in TABLE1_PAIRS.items():
        ocl_sloc = count_sloc_python(read_source(ocl_file),
                                     count_docstrings=False)
        hpl_sloc = count_sloc_python(read_source(hpl_file),
                                     count_docstrings=False)
        rows.append({
            "benchmark": name,
            "opencl_sloc": ocl_sloc,
            "hpl_sloc": hpl_sloc,
            "reduction_pct": 100.0 * (ocl_sloc - hpl_sloc) / ocl_sloc,
            "ratio": ocl_sloc / hpl_sloc,
        })
    return rows


# -- problems at paper (Tesla) configuration -------------------------------------------

def _problems_tesla() -> dict:
    return {
        "EP": ep.ep_problem("C"),
        "Floyd-Warshall": floyd.floyd_problem(floyd.PAPER_NODES,
                                              n_run=128),
        "Matrix transpose": transpose.transpose_problem(
            transpose.PAPER_SIZE, n_run=512),
        "Spmv": spmv.spmv_problem(spmv.PAPER_SIZE, n_run=1024),
        "Reduction": reduction.reduction_problem(reduction.PAPER_N,
                                                 n_run=1 << 18),
    }


def _problems_quadro() -> dict:
    """§V-C: reduced sizes that fit the Quadro FX 380; EP is excluded
    because the device lacks double-precision support."""
    return {
        "Floyd-Warshall": floyd.floyd_problem(floyd.PAPER_NODES_QUADRO,
                                              n_run=128),
        "Matrix transpose": transpose.transpose_problem(
            transpose.PAPER_SIZE_QUADRO, n_run=512),
        "Spmv": spmv.spmv_problem(spmv.PAPER_SIZE_QUADRO, n_run=1024),
        "Reduction": reduction.reduction_problem(reduction.PAPER_N,
                                                 n_run=1 << 18),
    }


def _run_pair(name: str, problem, device: str,
              cold_hpl: bool = True) -> dict:
    """One benchmark, both variants, on one device."""
    module = _BENCH_MODULES[name]
    run_ocl = module.run_opencl(problem, device)
    if cold_hpl:
        reset_runtime()   # make the HPL invocation pay full first-call cost
    run_hpl = module.run_hpl(problem, device)
    assert module.verify(run_ocl, problem), f"{name} OpenCL verify failed"
    assert module.verify(run_hpl, problem), f"{name} HPL verify failed"
    serial = module.serial_seconds(run_ocl)
    return {"benchmark": name, "device": run_ocl.device,
            "serial_seconds": serial, "opencl": run_ocl, "hpl": run_hpl}


# -- Figure 6: EP speedups by class --------------------------------------------------------

def run_fig6(classes=("W", "A", "B", "C")) -> list[dict]:
    """EP GPU speedups over serial CPU per class, OpenCL vs HPL bars."""
    rows = []
    for cls in classes:
        problem = ep.ep_problem(cls)
        pair = _run_pair("EP", problem, TESLA)
        serial = pair["serial_seconds"]
        rows.append({
            "class": cls,
            "serial_seconds": serial,
            "opencl_seconds": pair["opencl"].total_seconds(
                include_build=True),
            "hpl_seconds": pair["hpl"].total_seconds(include_build=True),
            "opencl_speedup": serial / pair["opencl"].total_seconds(
                include_build=True),
            "hpl_speedup": serial / pair["hpl"].total_seconds(
                include_build=True),
        })
    return rows


# -- Figure 7: all-benchmark speedups --------------------------------------------------------

def run_fig7() -> list[dict]:
    """Speedups of all five benchmarks on the Tesla, OpenCL vs HPL."""
    rows = []
    for name, problem in _problems_tesla().items():
        pair = _run_pair(name, problem, TESLA)
        serial = pair["serial_seconds"]
        ocl_t = pair["opencl"].total_seconds(include_build=True)
        hpl_t = pair["hpl"].total_seconds(include_build=True)
        rows.append({
            "benchmark": name,
            "serial_seconds": serial,
            "opencl_speedup": serial / ocl_t,
            "hpl_speedup": serial / hpl_t,
        })
    return rows


# -- Figure 8: HPL overhead ---------------------------------------------------------------------

def run_fig8(include_transfers: bool = False,
             device: str = TESLA, problems: dict | None = None
             ) -> list[dict]:
    """Per-benchmark slowdown of HPL vs OpenCL (cold invocation).

    The paper's measurement counts backend code generation (HPL only),
    kernel compilation and kernel execution, excluding transfers; with
    ``include_transfers=True`` the PCIe traffic is added to both sides —
    the variant that dilutes transpose's overhead from 3.47% to 0.41%.
    """
    problems = problems if problems is not None else _problems_tesla()
    rows = []
    for name, problem in problems.items():
        pair = _run_pair(name, problem, device)
        ocl_t = pair["opencl"].total_seconds(
            include_transfers=include_transfers, include_build=True)
        hpl_t = pair["hpl"].total_seconds(
            include_transfers=include_transfers, include_build=True)
        rows.append({
            "benchmark": name,
            "device": pair["device"],
            "opencl_seconds": ocl_t,
            "hpl_seconds": hpl_t,
            "hpl_overhead_seconds": pair["hpl"].hpl_overhead_seconds,
            "build_seconds": pair["hpl"].build_seconds,
            "slowdown_pct": 100.0 * (hpl_t - ocl_t) / ocl_t,
        })
    return rows


# -- Figure 9: portability -----------------------------------------------------------------------

def run_fig9() -> list[dict]:
    """HPL overhead on both GPUs (EP excluded on the Quadro: no fp64)."""
    rows = []
    tesla_rows = run_fig8(problems={
        k: v for k, v in _problems_tesla().items() if k != "EP"})
    for row in tesla_rows:
        row["gpu"] = "Tesla C2050/C2070"
        rows.append(row)
    quadro_rows = run_fig8(device=QUADRO, problems=_problems_quadro())
    for row in quadro_rows:
        row["gpu"] = "Quadro FX 380"
        rows.append(row)
    return rows


# -- §V-B warm-cache behaviour ---------------------------------------------------------------------

def run_ep(ep_class: str = "S", device: str = TESLA) -> dict:
    """One EP pair (OpenCL + HPL) — the quick CLI / tracing target."""
    problem = ep.ep_problem(ep_class)
    pair = _run_pair("EP", problem, device)
    serial = pair["serial_seconds"]
    return {
        "class": ep_class,
        "device": pair["device"],
        "serial_seconds": serial,
        "opencl_seconds": pair["opencl"].total_seconds(include_build=True),
        "hpl_seconds": pair["hpl"].total_seconds(include_build=True),
        "hpl_speedup": serial / pair["hpl"].total_seconds(
            include_build=True),
    }


def run_warm_cache(ep_class: str = "W") -> dict:
    """First vs second invocation of the same HPL kernel (binary reuse)."""
    problem = ep.ep_problem(ep_class)
    reset_runtime()
    module = _BENCH_MODULES["EP"]
    ocl_run = module.run_opencl(problem, TESLA)
    reset_runtime()
    cold = module.run_hpl(problem, TESLA)
    warm = module.run_hpl(problem, TESLA)
    # cold: both sides pay their one-off compile (HPL also captures);
    # warm: both sides reuse binaries, so only execution is compared
    ocl_cold_t = ocl_run.total_seconds(include_build=True)
    ocl_warm_t = ocl_run.total_seconds(include_build=False)
    return {
        "class": ep_class,
        "opencl_seconds": ocl_cold_t,
        "hpl_cold_seconds": cold.total_seconds(include_build=True),
        "hpl_warm_seconds": warm.total_seconds(include_build=False),
        "cold_slowdown_pct": 100.0 * (cold.total_seconds(
            include_build=True) - ocl_cold_t) / ocl_cold_t,
        "warm_slowdown_pct": 100.0 * (warm.total_seconds(
            include_build=False) - ocl_warm_t) / ocl_warm_t,
        "cold_overhead_seconds": (cold.hpl_overhead_seconds
                                  + cold.build_seconds),
        "warm_overhead_seconds": (warm.hpl_overhead_seconds
                                  + warm.build_seconds),
    }


# -- persistent disk cache: cold vs warm process ------------------------------

def _problems_warm_cache() -> dict:
    """Small instances of all five benchmarks — the compile cost the
    warm-cache experiment measures is problem-size independent, so the
    device work is kept tiny to make the target cheap enough for CI."""
    return {
        "EP": ep.ep_problem("S"),
        "Floyd-Warshall": floyd.floyd_problem(256, n_run=32),
        "Matrix transpose": transpose.transpose_problem(1024, n_run=128),
        "Spmv": spmv.spmv_problem(2048, n_run=256),
        "Reduction": reduction.reduction_problem(1 << 16, n_run=1 << 12),
    }


def _checksum(output) -> float:
    """Order-stable digest of a benchmark's numerical output."""
    import numpy as np

    parts = output if isinstance(output, (tuple, list)) else (output,)
    return float(sum(np.asarray(p, dtype=np.float64).sum()
                     for p in parts))


def _warm_cache_child() -> None:
    """One measured process of the warm-cache experiment.

    Runs the HPL variant of all five paper benchmarks against whatever
    ``HPL_CACHE_DIR`` points at, then prints a JSON record of compile
    costs, cache traffic and result checksums on stdout.  Spawned twice
    (cold, then warm) by :func:`run_warm_cache_disk`.
    """
    import json

    from .. import trace

    registry = trace.get_registry()
    rows = {}
    for name, problem in _problems_warm_cache().items():
        reset_runtime()
        module = _BENCH_MODULES[name]
        run = module.run_hpl(problem, TESLA)
        rows[name] = {
            "build_seconds": run.build_seconds,
            "codegen_seconds": run.hpl_overhead_seconds,
            "verified": bool(module.verify(run, problem)),
            "checksum": _checksum(run.output),
        }
    print(json.dumps({
        "benchmarks": rows,
        "total_build_seconds": sum(r["build_seconds"]
                                   for r in rows.values()),
        "clc_compiles": registry.counter("clc.compiles").value,
        "disk_cache_hits": registry.counter("hpl.disk_cache_hits").value,
        "disk_cache_misses":
            registry.counter("hpl.disk_cache_misses").value,
        "verified": all(r["verified"] for r in rows.values()),
    }))


def _spawn_warm_cache_child(cache_dir) -> dict:
    import json
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    env = os.environ.copy()
    env["HPL_CACHE_DIR"] = str(cache_dir)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c",
         "from repro.benchsuite.runner import _warm_cache_child as c; c()"],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"warm-cache child failed ({proc.returncode}):\n{proc.stderr}")
    return json.loads(proc.stdout)


def run_warm_cache_disk(cache_dir=None,
                        output: str | None = "BENCH_warm_cache.json"
                        ) -> dict:
    """Cold vs warm compile cost across *processes* (persistent cache).

    Runs all five benchmarks in a fresh subprocess against an empty
    kernel cache (cold), then again in another fresh subprocess against
    the now-populated cache (warm).  The warm process must perform zero
    clc compiles — every ``Program.build`` is served from disk — and
    produce bit-identical results.  With ``output`` set, the row is also
    written as JSON (the ``BENCH_warm_cache.json`` trajectory artifact).
    """
    import json
    import tempfile

    cleanup = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="hpl-warm-cache-")
        cache_dir, cleanup = tmp.name, tmp
    try:
        cold = _spawn_warm_cache_child(cache_dir)
        warm = _spawn_warm_cache_child(cache_dir)
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    cold_build = cold["total_build_seconds"]
    warm_build = warm["total_build_seconds"]
    row = {
        "benchmarks": {
            name: {
                "cold_build_seconds": cold["benchmarks"][name]
                ["build_seconds"],
                "warm_build_seconds": warm["benchmarks"][name]
                ["build_seconds"],
            } for name in cold["benchmarks"]
        },
        "cold_build_seconds": cold_build,
        "warm_build_seconds": warm_build,
        "build_reduction_pct": (100.0 * (cold_build - warm_build)
                                / cold_build if cold_build else 0.0),
        "cold_clc_compiles": cold["clc_compiles"],
        "warm_clc_compiles": warm["clc_compiles"],
        "cold_disk_cache_hits": cold["disk_cache_hits"],
        "warm_disk_cache_hits": warm["disk_cache_hits"],
        "warm_disk_cache_misses": warm["disk_cache_misses"],
        "verified": bool(cold["verified"] and warm["verified"]),
        "results_identical": all(
            cold["benchmarks"][name]["checksum"]
            == warm["benchmarks"][name]["checksum"]
            for name in cold["benchmarks"]),
    }
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(row, fh, indent=2)
        row["output"] = output
    return row


# -- optimizing middle-end: O0 vs O2, cold vs warm, serial vs vector ----------

def _problems_opt_tiny() -> dict:
    """Minimal valid instances of all five benchmarks, small enough for
    the *serial* reference engine to execute them in seconds — the
    differential legs of the opt-pipeline experiment run every work-item
    one by one."""
    return {
        "EP": ep.ep_problem("S", shift=14),
        "Floyd-Warshall": floyd.floyd_problem(64, n_run=16),
        "Matrix transpose": transpose.transpose_problem(256, n_run=16),
        "Spmv": spmv.spmv_problem(512, n_run=64),
        "Reduction": reduction.reduction_problem(1 << 12, n_run=1 << 10),
    }


def _opt_pipeline_child(engine: str = "vector", tiny: bool = False) -> None:
    """One measured process of the opt-pipeline experiment.

    The optimization level arrives through ``$HPL_OPT_LEVEL`` (set by
    the spawner) and the cache through ``$HPL_CACHE_DIR``; ``engine``
    selects the execution engine for every simulated device.  Prints a
    JSON record with per-benchmark wall times and checksums plus the
    process-global compile/pass counters that prove (or disprove) that
    a warm start touched the middle end.
    """
    import json
    import time

    from .. import trace
    from ..clc.passes import default_opt_level
    from ..ocl.devicedb import DEFAULT_DEVICES
    from ..ocl.platform import set_platform_devices

    if engine != "vector":
        set_platform_devices(DEFAULT_DEVICES, engine)
    problems = _problems_opt_tiny() if tiny else _problems_warm_cache()
    rows = {}
    for name, problem in problems.items():
        reset_runtime()
        module = _BENCH_MODULES[name]
        t0 = time.perf_counter()
        run = module.run_hpl(problem, TESLA)
        wall = time.perf_counter() - t0
        # engine execution time: the measured wall clock minus the
        # (wall-clock) capture/codegen and compile costs also inside it
        exec_wall = max(0.0, wall - run.build_seconds
                        - run.hpl_overhead_seconds)
        rows[name] = {
            "wall_seconds": wall,
            "exec_wall_seconds": exec_wall,
            "build_seconds": run.build_seconds,
            "sim_kernel_seconds": run.kernel_seconds,
            "verified": bool(module.verify(run, problem)),
            "checksum": _checksum(run.output),
        }
    counters = trace.get_registry().snapshot()["counters"]
    prefix, tprefix = "clc.pass_", "clc.pass_seconds_"
    print(json.dumps({
        "engine": engine,
        "opt_level": default_opt_level(),
        "benchmarks": rows,
        "exec_wall_seconds": sum(r["exec_wall_seconds"]
                                 for r in rows.values()),
        "clc_compiles": counters.get("clc.compiles", 0),
        "pass_runs": {k[len(prefix):]: v for k, v in counters.items()
                      if k.startswith(prefix)
                      and not k.startswith(tprefix)},
        "pass_seconds": {k[len(tprefix):]: v for k, v in counters.items()
                         if k.startswith(tprefix)},
        "disk_cache_hits": counters.get("hpl.disk_cache_hits", 0),
        "verified": all(r["verified"] for r in rows.values()),
    }))


def _spawn_opt_pipeline_child(cache_dir, opt_level: int,
                              engine: str = "vector",
                              tiny: bool = False) -> dict:
    import json
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    env = os.environ.copy()
    env["HPL_OPT_LEVEL"] = str(opt_level)
    if cache_dir is not None:
        env["HPL_CACHE_DIR"] = str(cache_dir)
    else:                       # keep uncached legs genuinely uncached
        env.pop("HPL_CACHE_DIR", None)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c",
         "from repro.benchsuite.runner import _opt_pipeline_child as c; "
         f"c(engine={engine!r}, tiny={tiny!r})"],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"opt-pipeline child failed ({proc.returncode}):\n"
            f"{proc.stderr}")
    return json.loads(proc.stdout)


def run_opt_pipeline(cache_dir=None,
                     output: str | None = "BENCH_opt_pipeline.json"
                     ) -> dict:
    """Middle-end pipeline experiment: O0 vs O2, cold vs warm, engines
    cross-checked.  Three claims, each measured in fresh subprocesses:

    * **speed** — all five benchmarks on the vector engine at ``-O0``
      (tree-walking interpreters) vs ``-O2`` (optimized flat bytecode);
      reports per-benchmark engine wall-clock speedups and their
      geomean.
    * **warm start** — a second ``-O2`` process against the same cache
      must perform **zero** clc compiles and **zero** optimization
      passes (the cached artifact already holds the lowered bytecode)
      and reproduce the cold checksums exactly.
    * **correctness** — serial-O0, serial-O2 and vector-O2 runs of tiny
      instances must produce bit-identical checksums, so every pass and
      both bytecode interpreters preserve semantics.

    With ``output`` set, the row is written as JSON (the
    ``BENCH_opt_pipeline.json`` trajectory artifact).
    """
    import json
    import math
    import tempfile

    cleanup = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="hpl-opt-pipeline-")
        cache_dir, cleanup = tmp.name, tmp
    try:
        o0_cold = _spawn_opt_pipeline_child(cache_dir, 0)
        o2_cold = _spawn_opt_pipeline_child(cache_dir, 2)
        o2_warm = _spawn_opt_pipeline_child(cache_dir, 2)
        serial_o0 = _spawn_opt_pipeline_child(None, 0, "serial", tiny=True)
        serial_o2 = _spawn_opt_pipeline_child(None, 2, "serial", tiny=True)
        vector_o2 = _spawn_opt_pipeline_child(None, 2, "vector", tiny=True)
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    benchmarks = {}
    speedups = []
    for name in o0_cold["benchmarks"]:
        o0_s = o0_cold["benchmarks"][name]["exec_wall_seconds"]
        o2_s = o2_warm["benchmarks"][name]["exec_wall_seconds"]
        speedup = o0_s / o2_s if o2_s > 0 else float("inf")
        speedups.append(speedup)
        benchmarks[name] = {"o0_seconds": o0_s, "o2_seconds": o2_s,
                            "speedup": speedup}
    geomean = math.exp(sum(math.log(s) for s in speedups)
                       / len(speedups)) if speedups else 0.0

    warm_pass_runs = sum(o2_warm["pass_runs"].values())
    if o2_warm["clc_compiles"] or warm_pass_runs:
        raise AssertionError(
            "warm -O2 process was not served post-optimization artifacts "
            f"from disk: {o2_warm['clc_compiles']} compile(s), "
            f"{warm_pass_runs} pass run(s)")
    diff_identical = all(
        serial_o0["benchmarks"][n]["checksum"]
        == serial_o2["benchmarks"][n]["checksum"]
        == vector_o2["benchmarks"][n]["checksum"]
        for n in serial_o0["benchmarks"])
    if not diff_identical:
        raise AssertionError(
            "serial-O0 / serial-O2 / vector-O2 checksums diverge: "
            + json.dumps({n: [serial_o0["benchmarks"][n]["checksum"],
                              serial_o2["benchmarks"][n]["checksum"],
                              vector_o2["benchmarks"][n]["checksum"]]
                          for n in serial_o0["benchmarks"]}))

    row = {
        "benchmarks": benchmarks,
        "geomean_speedup": geomean,
        "o0_exec_seconds": o0_cold["exec_wall_seconds"],
        "o2_exec_seconds": o2_warm["exec_wall_seconds"],
        "opt_levels": {"o0": o0_cold["opt_level"],
                       "o2": o2_cold["opt_level"]},
        "cold_pass_runs": o2_cold["pass_runs"],
        "cold_pass_seconds": o2_cold["pass_seconds"],
        "warm_clc_compiles": o2_warm["clc_compiles"],
        "warm_pass_runs": warm_pass_runs,
        "warm_disk_cache_hits": o2_warm["disk_cache_hits"],
        "warm_results_identical": all(
            o2_cold["benchmarks"][n]["checksum"]
            == o2_warm["benchmarks"][n]["checksum"]
            for n in o2_cold["benchmarks"]),
        "differential_identical": diff_identical,
        "verified": all(leg["verified"] for leg in
                        (o0_cold, o2_cold, o2_warm,
                         serial_o0, serial_o2, vector_o2)),
    }
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(row, fh, indent=2)
        row["output"] = output
    return row


# -- engine shoot-out: vector interpreter vs codegen JIT -----------------------

def _problems_engine_jit() -> dict:
    """Loop-heavy instances of the five paper benchmarks for the
    engine shoot-out: sizes chosen so each kernel launches many times
    (or iterates long in-kernel loops) over moderate arrays — the
    regime where per-instruction interpreter dispatch, the cost the
    JIT removes, dominates the shared NumPy work.

    Values are ``(problem, reps)``: each measured leg invokes the
    benchmark ``reps`` times so the summed span time of single-launch
    benchmarks (transpose) is large enough to measure reliably."""
    return {
        "EP": (ep.ep_problem("S"), 1),
        "Floyd-Warshall": (floyd.floyd_problem(128, n_run=32), 4),
        "Matrix transpose":
            (transpose.transpose_problem(96, n_run=32), 64),
        "Spmv": (spmv.spmv_problem(65536, n_run=768), 1),
        "Reduction":
            (reduction.reduction_problem(1 << 24, n_run=1 << 22), 1),
    }


def _engine_run_seconds(engine: str, module, problem, reps: int) -> tuple:
    """One benchmark on one engine from a cold runtime; returns the
    summed ``engine_run`` span wall-clock over ``reps`` invocations
    (pure engine execution — excludes driver, compile and codegen
    time) plus the output checksum and the engine names the spans
    report."""
    from .. import trace

    from ..ocl.devicedb import DEFAULT_DEVICES
    from ..ocl.platform import set_platform_devices

    reset_runtime()
    set_platform_devices(DEFAULT_DEVICES, engine)
    tracer = trace.enable(fresh=True)
    try:
        for _ in range(reps):
            run = module.run_hpl(problem, TESLA)
    finally:
        trace.disable()
        set_platform_devices(DEFAULT_DEVICES)
    spans = [s for s in tracer.spans() if s.name == "engine_run"]
    wall = sum(s.duration_seconds for s in spans)
    engines = sorted({s.attrs.get("engine") for s in spans})
    return wall, _checksum(run.output), engines


def run_engine_jit(rounds: int = 7, gate: float | None = 2.0,
                   output: str | None = "BENCH_engine_jit.json") -> dict:
    """Vector-vs-JIT engine shoot-out over the five paper benchmarks.

    For each benchmark the two engines run interleaved for ``rounds``
    rounds from a cold runtime.  Each round's legs execute back to
    back, so ambient machine load hits both engines alike — the
    per-benchmark speedup is therefore the *median of per-round
    ratios* (vector wall over jit wall, summed ``engine_run`` spans),
    which a single loaded or lucky round cannot move.  Every round
    must produce bit-identical output checksums across the two
    engines (the JIT is a pure execution substrate swap), and with
    ``gate`` set the JIT must beat the vector interpreter by at least
    that wall-clock geomean.

    With ``output`` set, the row is written as JSON (the
    ``BENCH_engine_jit.json`` trajectory artifact).
    """
    import json
    import math

    benchmarks = {}
    speedups = []
    for name, (problem, reps) in _problems_engine_jit().items():
        module = _BENCH_MODULES[name]
        best = {"vector": None, "jit": None}
        checksum = None
        ratios = []
        for _ in range(rounds):
            walls = {}
            for engine in ("vector", "jit"):
                wall, csum, engines = _engine_run_seconds(
                    engine, module, problem, reps)
                if engines != [engine]:
                    raise AssertionError(
                        f"{name}: engine_run spans report {engines}, "
                        f"expected [{engine!r}]")
                if checksum is None:
                    checksum = csum
                elif csum != checksum:
                    raise AssertionError(
                        f"{name}: {engine} checksum {csum} diverges "
                        f"from {checksum}")
                walls[engine] = wall
                if best[engine] is None or wall < best[engine]:
                    best[engine] = wall
            ratios.append(walls["vector"] / walls["jit"]
                          if walls["jit"] > 0 else float("inf"))
        ratios.sort()
        mid = len(ratios) // 2
        speedup = (ratios[mid] if len(ratios) % 2
                   else (ratios[mid - 1] + ratios[mid]) / 2)
        speedups.append(speedup)
        benchmarks[name] = {
            "vector_seconds": best["vector"],
            "jit_seconds": best["jit"],
            "speedup": speedup,
            "round_ratios": [round(r, 3) for r in ratios],
            "checksum": checksum,
        }
    geomean = math.exp(sum(math.log(s) for s in speedups)
                       / len(speedups)) if speedups else 0.0
    row = {
        "benchmarks": benchmarks,
        "geomean_speedup": geomean,
        "rounds": rounds,
        "gate": gate,
        "checksums_identical": True,    # asserted per round above
    }
    if gate is not None and geomean < gate:
        raise AssertionError(
            f"jit engine geomean speedup {geomean:.2f}x is below the "
            f"{gate:.1f}x gate: " + json.dumps(
                {n: round(b["speedup"], 3)
                 for n, b in benchmarks.items()}))
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(row, fh, indent=2)
        row["output"] = output
    return row


# -- §VII cluster extension: multi-device overlap ------------------------------

def run_cluster(n: int = 1 << 14, reps: int = 4) -> dict:
    """Event-graph async execution across every device of a Cluster.

    Runs the same partitioned reduction-style workload (an EP-flavoured
    elementwise transform followed by a host-side reduction) twice: once
    eagerly and once in deferred mode, where each device records its
    transfers and launches as an event graph and a single barrier
    executes everything dependency-ordered.  Reports the simulated
    makespan against the serialized sum of per-device busy times — the
    overlap the paper's §VII multi-device outlook asks for — and checks
    the two modes produce bit-identical results.
    """
    import numpy as np

    from ..hpl import (Cluster, DistributedArray, Float, cluster_eval,
                       float_, idx, timeline_of)
    from ..hpl import sqrt as hpl_sqrt

    def ep_scale(y, x, a, offset, count):
        y[idx] = a * hpl_sqrt(x[idx] * x[idx] + 1.0) + y[idx]

    rng = np.random.default_rng(42)
    xs = rng.random(n).astype(np.float32)
    ys = rng.random(n).astype(np.float32)

    def one_run(deferred: bool):
        reset_runtime()
        cluster = Cluster()
        dx = DistributedArray(float_, n, cluster, data=xs)
        dy = DistributedArray(float_, n, cluster, data=ys)
        results = []
        for _ in range(reps):
            results += cluster_eval(ep_scale, cluster, dy, dx,
                                    Float(1.5), deferred=deferred)
        total = float(dy.gather().sum())
        return cluster, results, total, dy.gather()

    cluster, _eager_results, eager_total, eager_out = one_run(False)
    cluster, results, deferred_total, deferred_out = one_run(True)
    timeline = timeline_of(results)
    return {
        "n": n,
        "reps": reps,
        "devices": [d.name for d in cluster.devices],
        "makespan_seconds": timeline.makespan_seconds,
        "serialized_seconds": timeline.serialized_seconds,
        "busy_seconds": dict(timeline.busy_seconds),
        "overlap_factor": timeline.overlap_factor,
        "results_identical": bool(
            np.array_equal(eager_out, deferred_out)),
        "checksum": deferred_total,
        "eager_checksum": eager_total,
    }


def run_cluster_lb(n: int = 1 << 14, iters: int = 64,
                   output: str | None = "BENCH_cluster_lb.json") -> dict:
    """Heterogeneity-aware load balancing across a skewed cluster.

    Runs one compute-bound partitioned kernel on the paper's default
    three-device mix (Tesla C2050 + Quadro FX 380 + Xeon host — spec
    throughputs spanning ~45x) under four scheduling policies:

    * ``uniform`` — near-even blocks; the makespan is pinned to the
      slowest device,
    * ``weighted`` — blocks sized from the device *specs*
      (no measured history),
    * ``weighted+cal`` — blocks sized from the throughputs measured in
      the earlier legs (the calibration feedback loop),
    * ``dynamic`` — on-demand HGuided chunks handed to whichever device
      drains first.

    All legs must produce bit-identical gathered results; the makespans
    come from the simulated per-device timelines.  The row (written as
    ``BENCH_cluster_lb.json``) carries the weighted/dynamic speedups
    over uniform, which CI gates at >= 1.3x.
    """
    import json

    import numpy as np

    from ..hpl import (Cluster, DistributedArray, Float, Int,
                       WeightedScheduler, calibration, cluster_eval,
                       endfor_, float_, for_, get_devices, idx,
                       timeline_of)
    from ..hpl import sqrt as hpl_sqrt

    def lb_heavy(y, x, a, offset, count):
        acc = Float(0.0)
        j = Int()
        for_(j, 0, iters)
        acc.assign(acc + hpl_sqrt(x[idx] * x[idx] + a * acc + 1.0))
        endfor_()
        y[idx] = acc

    rng = np.random.default_rng(42)
    xs = rng.random(n).astype(np.float32)

    def one_leg(schedule):
        reset_runtime()
        # all three devices of the paper's machine, CPU included:
        # the whole point is surviving a heterogeneous mix
        cluster = Cluster(get_devices())
        dx = DistributedArray(float_, n, cluster, data=xs)
        dy = DistributedArray(float_, n, cluster)
        results = cluster_eval(lb_heavy, cluster, dy, dx, Float(0.5),
                               schedule=schedule)
        out = dy.gather()
        timeline = timeline_of(results)
        return cluster, {
            "makespan_seconds": timeline.makespan_seconds,
            "serialized_seconds": timeline.serialized_seconds,
            "busy_seconds": dict(timeline.busy_seconds),
            "overlap_factor": timeline.overlap_factor,
            "launches": len(results),
            "partition_sizes": [hi - lo for lo, hi in dy.bounds],
            "checksum": float(out.sum()),
        }, out

    calibration().reset()
    cluster, uniform, base_out = one_leg("uniform")
    # spec-derived weights: what a model-only scheduler can do
    _c, weighted, weighted_out = one_leg(
        WeightedScheduler(calibrate=False))
    _c, dynamic, dynamic_out = one_leg("dynamic")
    # by now every device has measured history for this kernel;
    # the default weighted scheduler switches to it automatically
    _c, calibrated, calibrated_out = one_leg("weighted")

    legs = {"uniform": uniform, "weighted": weighted,
            "dynamic": dynamic, "weighted+cal": calibrated}
    row = {
        "n": n,
        "iters": iters,
        "devices": [d.label for d in cluster.devices],
        "legs": legs,
        "speedup_weighted": uniform["makespan_seconds"]
        / weighted["makespan_seconds"],
        "speedup_dynamic": uniform["makespan_seconds"]
        / dynamic["makespan_seconds"],
        "speedup_weighted_calibrated": uniform["makespan_seconds"]
        / calibrated["makespan_seconds"],
        "results_identical": bool(
            np.array_equal(base_out, weighted_out)
            and np.array_equal(base_out, dynamic_out)
            and np.array_equal(base_out, calibrated_out)),
        "checksum": uniform["checksum"],
    }
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(row, fh, indent=2)
        row["output"] = output
    return row


def run_cluster_faults(n: int = 1 << 14, iters: int = 48,
                       output: str | None = "BENCH_cluster_faults.json"
                       ) -> dict:
    """Fault-tolerant cluster execution under a seeded fault matrix.

    Runs one compute-bound partitioned kernel on the paper's
    three-device mix under the dynamic scheduler, four times:

    * ``none`` — the healthy baseline,
    * ``transient`` — the Tesla's first two kernel launches fail with
      ``OUT_OF_RESOURCES`` and are retried with simulated backoff,
    * ``device-lost`` — the Quadro dies mid-run, is quarantined, and
      its chunks are re-run on the survivors,
    * ``straggler`` — the Quadro runs 8x slow; no recovery, just a
      rebalanced timeline.

    Recovery must be *correct* before it is fast: every leg's gathered
    result must be bit-identical to the no-fault leg (CI gates on
    ``results_identical`` and on *recovery* overhead <= 2x — the
    transient and device-lost legs; the straggler leg is slow hardware,
    not recovery, so its makespan is reported but not gated).  The
    retry backoff is set proportional to the simulated kernel times so
    the measured overhead reflects re-run work, not an arbitrary
    wall-clock constant.  The row (written as
    ``BENCH_cluster_faults.json``) records per-leg makespans,
    retry/requeue counts, and the overhead ratios.
    """
    import json

    import numpy as np

    from ..hpl import (Cluster, DistributedArray, Float, Int,
                       cluster_eval, endfor_, float_, for_, get_devices,
                       idx, timeline_of)
    from ..hpl import configure as hpl_configure
    from ..hpl import sqrt as hpl_sqrt

    def ft_heavy(y, x, a, offset, count):
        acc = Float(0.0)
        j = Int()
        for_(j, 0, iters)
        acc.assign(acc + hpl_sqrt(x[idx] * x[idx] + a * acc + 1.0))
        endfor_()
        y[idx] = acc

    rng = np.random.default_rng(42)
    xs = rng.random(n).astype(np.float32)

    plans = {
        "none": None,
        "transient": "device=Tesla kind=transient op=kernel nth=1 "
                     "count=2; seed=1",
        "device-lost": "device=Quadro kind=lost at=1e-6; seed=2",
        "straggler": "device=Quadro kind=slow factor=8; seed=3",
    }

    def one_leg(plan):
        reset_runtime()
        hpl_configure(faults=plan)
        try:
            cluster = Cluster(get_devices())
            dx = DistributedArray(float_, n, cluster, data=xs)
            dy = DistributedArray(float_, n, cluster)
            results = cluster_eval(ft_heavy, cluster, dy, dx,
                                   Float(0.5), schedule="dynamic",
                                   backoff=1e-7)
            out = dy.gather()
        finally:
            hpl_configure(faults=None)
        timeline = timeline_of(results)
        f = results.failures
        return {
            "makespan_seconds": timeline.makespan_seconds,
            "overlap_factor": timeline.overlap_factor,
            "launches": len(results),
            "retries": f.retries,
            "transient_failures": f.transient_failures,
            "devices_lost": list(f.devices_lost),
            "requeued_items": f.requeued_items,
            "backoff_seconds": f.backoff_seconds,
            "checksum": float(out.sum()),
        }, out

    legs, outs = {}, {}
    for name, plan in plans.items():
        legs[name], outs[name] = one_leg(plan)
    base = outs["none"]
    baseline = legs["none"]["makespan_seconds"]
    row = {
        "n": n,
        "iters": iters,
        "schedule": "dynamic",
        "legs": legs,
        "overhead": {name: leg["makespan_seconds"] / baseline
                     for name, leg in legs.items()},
        #: the CI gate: worst recovery-path overhead over no-fault
        "recovery_overhead": max(
            legs["transient"]["makespan_seconds"],
            legs["device-lost"]["makespan_seconds"]) / baseline,
        "results_identical": bool(all(
            np.array_equal(base, outs[name]) for name in plans)),
        "checksum": legs["none"]["checksum"],
    }
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(row, fh, indent=2)
        row["output"] = output
    return row


def _make_res_kernel(iters: int):
    """The compute-bound partitioned kernel shared by the resilience
    legs and the kill-and-resume subprocesses (the kernel *name* is
    part of the checkpoint run id, so both sides must build it the
    same way)."""
    from ..hpl import Float, Int, endfor_, for_, idx
    from ..hpl import sqrt as hpl_sqrt

    def res_heavy(y, x, a, offset, count):
        acc = Float(0.0)
        j = Int()
        for_(j, 0, iters)
        acc.assign(acc + hpl_sqrt(x[idx] * x[idx] + a * acc + 1.0))
        endfor_()
        y[idx] = acc

    return res_heavy


def _resilience_data(n: int):
    import numpy as np

    return np.random.default_rng(7).random(n).astype(np.float32)


def _resilience_child() -> None:
    """Kill-and-resume subprocess body (cluster-resilience target).

    ``HPL_RESILIENCE_MODE=kill`` SIGKILLs the process at its third
    checkpoint snapshot — no cleanup, no atexit, exactly a crashed run;
    ``resume`` restores the snapshot, finishes the work, and reports
    the gathered result's digest on stdout.
    """
    import hashlib
    import json
    import os
    import signal
    import sys

    from ..hpl import (Cluster, DistributedArray, Float, cluster_eval,
                       float_, get_devices)
    from ..hpl import checkpoint as ckpt

    mode = os.environ["HPL_RESILIENCE_MODE"]
    ckpt_dir = os.environ["HPL_RESILIENCE_CKPT"]
    n = int(os.environ["HPL_RESILIENCE_N"])
    iters = int(os.environ["HPL_RESILIENCE_ITERS"])

    if mode == "kill":
        original = ckpt.CheckpointStore.save
        state = {"calls": 0}

        def killing_save(self, run_id, arrays, completed):
            state["calls"] += 1
            if state["calls"] == 3:
                os.kill(os.getpid(), signal.SIGKILL)
            return original(self, run_id, arrays, completed)

        ckpt.CheckpointStore.save = killing_save

    kernel = _make_res_kernel(iters)
    xs = _resilience_data(n)
    cluster = Cluster(get_devices())
    dx = DistributedArray(float_, n, cluster, data=xs)
    dy = DistributedArray(float_, n, cluster)
    result = cluster_eval(kernel, cluster, dy, dx, Float(0.5),
                          schedule="dynamic", checkpoint=ckpt_dir,
                          checkpoint_every=1,
                          resume=(mode == "resume"))
    out = dy.gather()
    json.dump({"digest": hashlib.sha256(out.tobytes()).hexdigest(),
               "checksum": float(out.sum()),
               "resumed_blocks": result.failures.resumed_blocks,
               "launches": len(result)}, sys.stdout)


def _spawn_resilience_child(mode: str, ckpt_dir: str, n: int,
                            iters: int):
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    env = os.environ.copy()
    env.pop("HPL_FAULTS", None)     # the children run fault-free
    env.update({"HPL_RESILIENCE_MODE": mode,
                "HPL_RESILIENCE_CKPT": str(ckpt_dir),
                "HPL_RESILIENCE_N": str(n),
                "HPL_RESILIENCE_ITERS": str(iters)})
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-c",
         "from repro.benchsuite.runner import _resilience_child as c; "
         "c()"],
        env=env, capture_output=True, text=True)


def run_cluster_resilience(
        n: int = 1 << 15, iters: int = 64, reps: int = 3,
        output: str | None = "BENCH_cluster_resilience.json") -> dict:
    """Deadline-aware watchdog, speculation, and checkpoint/resume.

    Four legs, all running the same compute-bound partitioned kernel
    on the paper's three-device mix under the dynamic scheduler:

    * ``no-fault`` — the healthy baseline,
    * ``straggler-unmitigated`` — the Quadro runs 1024x slow; dynamic
      chunk sizing shrinks its share, but its minimum-size chunk still
      pins the makespan orders of magnitude above the baseline,
    * ``straggler-speculated`` — same fault with ``watchdog=True``:
      the straggler's chunks are speculatively re-executed on a
      predicted-faster device, the losers' event graphs cancelled
      before any payload runs,
    * ``kill-and-resume`` — a *subprocess* checkpointing every block
      is SIGKILLed at its third snapshot; a second subprocess resumes
      from the surviving snapshot and must produce bit-identical
      results while skipping the completed blocks.

    Each timed leg takes one unmeasured calibration warm-up iteration
    (the watchdog is predictive — it speculates off the calibrated
    throughput model) and then averages ``reps`` measured iterations.
    CI gates on ``straggler_overhead_speculated <= 1.25``, on the
    unmitigated leg actually showing a cliff, and on every leg's
    digest matching the no-fault leg bit-for-bit.
    """
    import hashlib
    import json
    import signal as _signal
    import tempfile

    from ..hpl import (Cluster, DistributedArray, Float, calibration,
                       cluster_eval, float_, get_devices, timeline_of)
    from ..hpl import configure as hpl_configure

    kernel = _make_res_kernel(iters)
    xs = _resilience_data(n)
    straggler = "device=Quadro kind=slow factor=1024; seed=5"

    def one_iter(watchdog):
        reset_runtime()
        cluster = Cluster(get_devices())
        dx = DistributedArray(float_, n, cluster, data=xs)
        dy = DistributedArray(float_, n, cluster)
        result = cluster_eval(kernel, cluster, dy, dx, Float(0.5),
                              schedule="dynamic", watchdog=watchdog)
        out = dy.gather()
        return (timeline_of(result).makespan_seconds,
                result.failures, out)

    def leg(plan, watchdog):
        calibration().reset()
        hpl_configure(faults=plan)
        try:
            one_iter(watchdog)      # calibration warm-up, unmeasured
            makespans, wins, out = [], 0, None
            for _ in range(reps):
                makespan, failures, out = one_iter(watchdog)
                makespans.append(makespan)
                wins += failures.speculative_wins
        finally:
            hpl_configure(faults=None)
        return {
            "makespan_seconds": sum(makespans) / len(makespans),
            "speculative_wins": wins,
            "checksum": float(out.sum()),
            "digest": hashlib.sha256(out.tobytes()).hexdigest(),
        }

    legs = {
        "no-fault": leg(None, None),
        "straggler-unmitigated": leg(straggler, None),
        "straggler-speculated": leg(straggler, True),
    }

    with tempfile.TemporaryDirectory(
            prefix="hpl-resilience-ckpt-") as ckpt_dir:
        first = _spawn_resilience_child("kill", ckpt_dir, n, iters)
        if first.returncode != -_signal.SIGKILL:
            raise RuntimeError(
                f"kill-phase child should die by SIGKILL, exited "
                f"{first.returncode}:\n{first.stderr}")
        second = _spawn_resilience_child("resume", ckpt_dir, n, iters)
        if second.returncode != 0:
            raise RuntimeError(
                f"resume child failed ({second.returncode}):\n"
                f"{second.stderr}")
        resumed = json.loads(second.stdout)
    legs["kill-and-resume"] = {
        "resumed_blocks": resumed["resumed_blocks"],
        "launches_after_resume": resumed["launches"],
        "checksum": resumed["checksum"],
        "digest": resumed["digest"],
    }

    base = legs["no-fault"]["makespan_seconds"]
    digest0 = legs["no-fault"]["digest"]
    row = {
        "n": n,
        "iters": iters,
        "reps": reps,
        "schedule": "dynamic",
        "legs": legs,
        "straggler_overhead_unmitigated":
            legs["straggler-unmitigated"]["makespan_seconds"] / base,
        "straggler_overhead_speculated":
            legs["straggler-speculated"]["makespan_seconds"] / base,
        "speculation_wins":
            legs["straggler-speculated"]["speculative_wins"],
        "resumed_blocks": legs["kill-and-resume"]["resumed_blocks"],
        "resume_bit_identical":
            legs["kill-and-resume"]["digest"] == digest0,
        "results_identical": bool(all(
            leg_row["digest"] == digest0 for leg_row in legs.values())),
        "checksum": legs["no-fault"]["checksum"],
    }
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(row, fh, indent=2)
        row["output"] = output
    return row


# -- command-line entry point -------------------------------------------------
#
# ``python -m repro.benchsuite [target ...] [--trace out.json] [--verbose]``
# regenerates paper tables/figures from the shell.  With ``--trace`` the
# whole run executes under the global tracer and the spans are exported
# when it finishes: ``.jsonl`` suffix -> flat span log (the input format
# of ``python -m repro.trace summarize``), anything else -> Chrome
# ``chrome://tracing`` JSON.

#: CLI target name -> (runner, formatter); formatter may be None
def _cli_targets() -> dict:
    from . import report

    return {
        "ep": (run_ep, None),
        "cluster": (run_cluster, report.format_cluster),
        "cluster-lb": (run_cluster_lb, report.format_cluster_lb),
        "cluster-faults": (run_cluster_faults,
                           report.format_cluster_faults),
        "cluster-resilience": (run_cluster_resilience,
                               report.format_cluster_resilience),
        "table1": (run_table1, report.format_table1),
        "fig6": (run_fig6, report.format_fig6),
        "fig7": (run_fig7, report.format_fig7),
        "fig8": (run_fig8, report.format_fig8),
        "fig9": (run_fig9, report.format_fig9),
        "warm": (run_warm_cache, report.format_warm_cache),
        "warm-cache": (run_warm_cache_disk,
                       report.format_warm_cache_disk),
        "opt-pipeline": (run_opt_pipeline, report.format_opt_pipeline),
        "engine-jit": (run_engine_jit, report.format_engine_jit),
    }


def _middle_end_meta() -> dict:
    """Effective opt level, default execution engine, and this
    process's per-pass run counts and accumulated pass time — attached
    to every ``--json`` result so benchmark numbers are attributable
    to a backend and pipeline configuration."""
    from .. import trace
    from ..clc.passes import default_opt_level
    from ..hpl.cluster import last_failure_summary
    from ..ocl.engines.base import default_engine

    counters = trace.get_registry().snapshot()["counters"]
    prefix, tprefix = "clc.pass_", "clc.pass_seconds_"
    summary = last_failure_summary()
    return {
        "opt_level": default_opt_level(),
        "engine": default_engine(),
        "pass_runs": {k[len(prefix):]: v for k, v in counters.items()
                      if k.startswith(prefix)
                      and not k.startswith(tprefix)},
        "pass_seconds": {k[len(tprefix):]: v for k, v in counters.items()
                         if k.startswith(tprefix)},
        "failures": summary.as_dict() if summary is not None else None,
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point behind ``python -m repro.benchsuite``."""
    import argparse
    import json

    from .. import trace
    from ..hpl import get_runtime
    from . import report

    targets = _cli_targets()
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchsuite",
        description="Run the paper's experiments "
                    "(tables/figures) on the simulated platform.")
    parser.add_argument("targets", nargs="*", default=["ep"],
                        choices=sorted(targets), metavar="target",
                        help=f"one or more of: {', '.join(sorted(targets))}"
                             " (default: ep)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="capture a trace of the run; writes a JSONL "
                             "span log for *.jsonl, Chrome-trace JSON "
                             "otherwise")
    parser.add_argument("--json", action="store_true",
                        help="print raw result data as JSON instead of "
                             "the formatted tables")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="also print the HPL metrics-registry "
                             "summary after each target")
    parser.add_argument("--ep-class", default="S",
                        choices=("S", "W", "A", "B", "C"),
                        help="NAS class for the 'ep' target (default: S)")
    parser.add_argument("--profile", action="store_true",
                        help="enable the source-level kernel profiler and "
                             "print the hottest source lines after each "
                             "target")
    parser.add_argument("--profile-out", metavar="PREFIX", default=None,
                        help="write the collected kernel profiles as "
                             "PREFIX.json and PREFIX.flame "
                             "(implies --profile)")
    ns = parser.parse_args(argv)

    if ns.trace:
        trace.enable(fresh=True)
    profiling = bool(ns.profile or ns.profile_out)
    collected = []
    was_profiling = False
    if profiling:
        from .. import prof
        was_profiling = prof.is_enabled()
        prof.enable()
        prof.reset()

    for name in ns.targets:
        run, fmt = targets[name]
        with trace.span(f"target:{name}", category="benchsuite"):
            result = run(ns.ep_class) if name == "ep" else run()
        if profiling:
            from ..prof import get_profiler
            from ..prof.core import merge_profiles
            from ..prof.report import hotlines
            drained = get_profiler().drain()
            collected.extend(drained)
            merged = merge_profiles(drained)
            if merged:
                print(f"\n-- kernel profile: {name} "
                      "(hottest source lines) --")
                print(hotlines(merged))
        if ns.json:
            print(json.dumps({name: result,
                              "_meta": _middle_end_meta()},
                             indent=2, default=str))
        elif fmt is not None:
            print(fmt(result))
        else:
            for key, value in result.items():
                print(f"{key:>16}: {value}")
        if ns.verbose:
            print()
            print(report.format_metrics_summary(get_runtime().stats))

    if ns.trace:
        spans = trace.get_tracer().spans()
        if ns.trace.endswith(".jsonl"):
            trace.write_jsonl(ns.trace, spans)
        else:
            trace.write_chrome_trace(ns.trace, spans)
        print(f"\nwrote {len(spans)} span(s) to {ns.trace}")

    if ns.profile_out:
        from ..prof.core import merge_profiles
        from ..prof.report import flame, to_json
        merged = merge_profiles(collected)
        with open(ns.profile_out + ".json", "w", encoding="utf-8") as fh:
            fh.write(to_json(merged) + "\n")
        with open(ns.profile_out + ".flame", "w", encoding="utf-8") as fh:
            fh.write(flame(merged))
        print(f"\nwrote {len(merged)} kernel profile(s) to "
              f"{ns.profile_out}.json / {ns.profile_out}.flame")
    if profiling and not was_profiling:
        from .. import prof
        prof.disable()         # --profile must not outlive the run
    return 0
