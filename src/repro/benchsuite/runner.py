"""Experiment orchestration: one function per paper table/figure.

Every function returns plain data (lists of dicts) so tests can assert on
it; :mod:`repro.benchsuite.report` renders the same data the way the
paper presents it.  See DESIGN.md §3 for the experiment index and
EXPERIMENTS.md for paper-vs-measured numbers.
"""

from __future__ import annotations

import inspect

from ..hpl import reset_runtime
from ..productivity import count_sloc, count_sloc_python
from . import ep, floyd, reduction, spmv, transpose

TESLA = "Tesla"
QUADRO = "Quadro"

_BENCH_MODULES = {
    "EP": ep, "Floyd-Warshall": floyd, "Matrix transpose": transpose,
    "Spmv": spmv, "Reduction": reduction,
}


# -- Table I: programmability ---------------------------------------------------

def run_table1() -> list[dict]:
    """Table I: SLOC of the OpenCL and HPL versions of each benchmark.

    Counts the complete standalone program pairs in
    :mod:`repro.benchsuite.table1` — entire applications, as the paper
    counted entire AMD SDK / SHOC / NPB codes with sloccount.
    """
    from .table1 import TABLE1_PAIRS, read_source

    rows = []
    for name, (ocl_file, hpl_file) in TABLE1_PAIRS.items():
        ocl_sloc = count_sloc_python(read_source(ocl_file),
                                     count_docstrings=False)
        hpl_sloc = count_sloc_python(read_source(hpl_file),
                                     count_docstrings=False)
        rows.append({
            "benchmark": name,
            "opencl_sloc": ocl_sloc,
            "hpl_sloc": hpl_sloc,
            "reduction_pct": 100.0 * (ocl_sloc - hpl_sloc) / ocl_sloc,
            "ratio": ocl_sloc / hpl_sloc,
        })
    return rows


# -- problems at paper (Tesla) configuration -------------------------------------------

def _problems_tesla() -> dict:
    return {
        "EP": ep.ep_problem("C"),
        "Floyd-Warshall": floyd.floyd_problem(floyd.PAPER_NODES,
                                              n_run=128),
        "Matrix transpose": transpose.transpose_problem(
            transpose.PAPER_SIZE, n_run=512),
        "Spmv": spmv.spmv_problem(spmv.PAPER_SIZE, n_run=1024),
        "Reduction": reduction.reduction_problem(reduction.PAPER_N,
                                                 n_run=1 << 18),
    }


def _problems_quadro() -> dict:
    """§V-C: reduced sizes that fit the Quadro FX 380; EP is excluded
    because the device lacks double-precision support."""
    return {
        "Floyd-Warshall": floyd.floyd_problem(floyd.PAPER_NODES_QUADRO,
                                              n_run=128),
        "Matrix transpose": transpose.transpose_problem(
            transpose.PAPER_SIZE_QUADRO, n_run=512),
        "Spmv": spmv.spmv_problem(spmv.PAPER_SIZE_QUADRO, n_run=1024),
        "Reduction": reduction.reduction_problem(reduction.PAPER_N,
                                                 n_run=1 << 18),
    }


def _run_pair(name: str, problem, device: str,
              cold_hpl: bool = True) -> dict:
    """One benchmark, both variants, on one device."""
    module = _BENCH_MODULES[name]
    run_ocl = module.run_opencl(problem, device)
    if cold_hpl:
        reset_runtime()   # make the HPL invocation pay full first-call cost
    run_hpl = module.run_hpl(problem, device)
    assert module.verify(run_ocl, problem), f"{name} OpenCL verify failed"
    assert module.verify(run_hpl, problem), f"{name} HPL verify failed"
    serial = module.serial_seconds(run_ocl)
    return {"benchmark": name, "device": run_ocl.device,
            "serial_seconds": serial, "opencl": run_ocl, "hpl": run_hpl}


# -- Figure 6: EP speedups by class --------------------------------------------------------

def run_fig6(classes=("W", "A", "B", "C")) -> list[dict]:
    """EP GPU speedups over serial CPU per class, OpenCL vs HPL bars."""
    rows = []
    for cls in classes:
        problem = ep.ep_problem(cls)
        pair = _run_pair("EP", problem, TESLA)
        serial = pair["serial_seconds"]
        rows.append({
            "class": cls,
            "serial_seconds": serial,
            "opencl_seconds": pair["opencl"].total_seconds(
                include_build=True),
            "hpl_seconds": pair["hpl"].total_seconds(include_build=True),
            "opencl_speedup": serial / pair["opencl"].total_seconds(
                include_build=True),
            "hpl_speedup": serial / pair["hpl"].total_seconds(
                include_build=True),
        })
    return rows


# -- Figure 7: all-benchmark speedups --------------------------------------------------------

def run_fig7() -> list[dict]:
    """Speedups of all five benchmarks on the Tesla, OpenCL vs HPL."""
    rows = []
    for name, problem in _problems_tesla().items():
        pair = _run_pair(name, problem, TESLA)
        serial = pair["serial_seconds"]
        ocl_t = pair["opencl"].total_seconds(include_build=True)
        hpl_t = pair["hpl"].total_seconds(include_build=True)
        rows.append({
            "benchmark": name,
            "serial_seconds": serial,
            "opencl_speedup": serial / ocl_t,
            "hpl_speedup": serial / hpl_t,
        })
    return rows


# -- Figure 8: HPL overhead ---------------------------------------------------------------------

def run_fig8(include_transfers: bool = False,
             device: str = TESLA, problems: dict | None = None
             ) -> list[dict]:
    """Per-benchmark slowdown of HPL vs OpenCL (cold invocation).

    The paper's measurement counts backend code generation (HPL only),
    kernel compilation and kernel execution, excluding transfers; with
    ``include_transfers=True`` the PCIe traffic is added to both sides —
    the variant that dilutes transpose's overhead from 3.47% to 0.41%.
    """
    problems = problems if problems is not None else _problems_tesla()
    rows = []
    for name, problem in problems.items():
        pair = _run_pair(name, problem, device)
        ocl_t = pair["opencl"].total_seconds(
            include_transfers=include_transfers, include_build=True)
        hpl_t = pair["hpl"].total_seconds(
            include_transfers=include_transfers, include_build=True)
        rows.append({
            "benchmark": name,
            "device": pair["device"],
            "opencl_seconds": ocl_t,
            "hpl_seconds": hpl_t,
            "hpl_overhead_seconds": pair["hpl"].hpl_overhead_seconds,
            "slowdown_pct": 100.0 * (hpl_t - ocl_t) / ocl_t,
        })
    return rows


# -- Figure 9: portability -----------------------------------------------------------------------

def run_fig9() -> list[dict]:
    """HPL overhead on both GPUs (EP excluded on the Quadro: no fp64)."""
    rows = []
    tesla_rows = run_fig8(problems={
        k: v for k, v in _problems_tesla().items() if k != "EP"})
    for row in tesla_rows:
        row["gpu"] = "Tesla C2050/C2070"
        rows.append(row)
    quadro_rows = run_fig8(device=QUADRO, problems=_problems_quadro())
    for row in quadro_rows:
        row["gpu"] = "Quadro FX 380"
        rows.append(row)
    return rows


# -- §V-B warm-cache behaviour ---------------------------------------------------------------------

def run_warm_cache(ep_class: str = "W") -> dict:
    """First vs second invocation of the same HPL kernel (binary reuse)."""
    problem = ep.ep_problem(ep_class)
    reset_runtime()
    module = _BENCH_MODULES["EP"]
    ocl_run = module.run_opencl(problem, TESLA)
    reset_runtime()
    cold = module.run_hpl(problem, TESLA)
    warm = module.run_hpl(problem, TESLA)
    # cold: both sides pay their one-off compile (HPL also captures);
    # warm: both sides reuse binaries, so only execution is compared
    ocl_cold_t = ocl_run.total_seconds(include_build=True)
    ocl_warm_t = ocl_run.total_seconds(include_build=False)
    return {
        "class": ep_class,
        "opencl_seconds": ocl_cold_t,
        "hpl_cold_seconds": cold.total_seconds(include_build=True),
        "hpl_warm_seconds": warm.total_seconds(include_build=False),
        "cold_slowdown_pct": 100.0 * (cold.total_seconds(
            include_build=True) - ocl_cold_t) / ocl_cold_t,
        "warm_slowdown_pct": 100.0 * (warm.total_seconds(
            include_build=False) - ocl_warm_t) / ocl_warm_t,
        "cold_overhead_seconds": (cold.hpl_overhead_seconds
                                  + cold.build_seconds),
        "warm_overhead_seconds": (warm.hpl_overhead_seconds
                                  + warm.build_seconds),
    }
