"""Workload generators for the benchmark suite.

Everything is seeded and deterministic so every table/figure regenerates
identically.
"""

from __future__ import annotations

import numpy as np


def random_vector(n: int, dtype=np.float32, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random(n).astype(dtype)


def random_matrix(rows: int, cols: int, dtype=np.float32,
                  seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((rows, cols)).astype(dtype)


def random_csr(n: int, density: float = 0.01, seed: int = 13,
               dtype=np.float32, per_row: int | None = None):
    """A random n x n CSR matrix like the paper's spmv input
    ("16Kx16K matrix with a 1% of non zeros").

    Returns ``(values, cols, rowptr)`` with int32 index arrays, built
    without scipy so the generator itself is part of the reproduction.
    Every row gets the same number of nonzeros (round(density * n),
    at least 1, or ``per_row`` if given — scaled benchmark runs pin it to
    the paper's per-row count so the work mix stays scale-invariant),
    matching how SHOC generates its padded CSR inputs.
    """
    rng = np.random.default_rng(seed)
    if per_row is None:
        per_row = max(1, int(round(density * n)))
    per_row = min(per_row, n)
    rowptr = np.arange(0, (n + 1) * per_row, per_row, dtype=np.int32)
    cols = np.empty(n * per_row, dtype=np.int32)
    for r in range(n):
        cols[r * per_row:(r + 1) * per_row] = np.sort(
            rng.choice(n, size=per_row, replace=False))
    values = rng.random(n * per_row).astype(dtype)
    return values, cols, rowptr


def csr_matvec_reference(values, cols, rowptr, x) -> np.ndarray:
    """Serial CSR y = A @ x in float64 then cast, the correctness oracle."""
    n = len(rowptr) - 1
    y = np.zeros(n, dtype=np.float64)
    v64 = values.astype(np.float64)
    x64 = x.astype(np.float64)
    for r in range(n):
        lo, hi = rowptr[r], rowptr[r + 1]
        y[r] = np.dot(v64[lo:hi], x64[cols[lo:hi]])
    return y.astype(values.dtype)


def random_graph_distances(n: int, seed: int = 17,
                           max_weight: int = 10) -> np.ndarray:
    """A dense weighted digraph as an adjacency/distance matrix for
    Floyd-Warshall (int32, diagonal 0), as the AMD APP sample generates."""
    rng = np.random.default_rng(seed)
    dist = rng.integers(1, max_weight + 1, size=(n, n), dtype=np.int32)
    np.fill_diagonal(dist, 0)
    return dist


def floyd_warshall_reference(dist: np.ndarray) -> np.ndarray:
    """Vectorised Floyd-Warshall oracle (O(n^3) with NumPy inner step)."""
    d = dist.astype(np.int64).copy()
    n = d.shape[0]
    for k in range(n):
        np.minimum(d, d[:, k:k + 1] + d[k:k + 1, :], out=d)
    return d.astype(np.int32)


# -- NAS EP ---------------------------------------------------------------------

#: class name -> log2 of the number of random pairs (NPB 3.x EP classes)
EP_CLASSES = {"S": 24, "W": 25, "A": 28, "B": 30, "C": 32}

EP_A = 1220703125.0      # = 5^13, the NPB LCG multiplier
EP_SEED = 271828183.0

_R23 = 2.0 ** -23
_T23 = 2.0 ** 23
_R46 = 2.0 ** -46
_T46 = 2.0 ** 46


def randlc(x: float, a: float) -> tuple[float, float]:
    """One step of the NPB 2^46 LCG: returns (uniform in (0,1), new x)."""
    t1 = _R23 * a
    a1 = float(int(t1))
    a2 = a - _T23 * a1
    t1 = _R23 * x
    x1 = float(int(t1))
    x2 = x - _T23 * x1
    t1 = a1 * x2 + a2 * x1
    t2 = float(int(_R23 * t1))
    z = t1 - _T23 * t2
    t3 = _T23 * z + a2 * x2
    t4 = float(int(_R46 * t3))
    x_new = t3 - _T46 * t4
    return _R46 * x_new, x_new


def lcg_power(a: float, n: int) -> float:
    """a^n mod 2^46 in the double-encoded LCG group (for seed jumps)."""
    b = 1.0
    g = a
    while n > 0:
        if n % 2 == 1:
            _, b = randlc(b, g)
        _, g = randlc(g, g)
        n //= 2
    return b


def ep_reference(m: int, seed: float = EP_SEED,
                 a: float = EP_A) -> tuple[float, float, np.ndarray]:
    """Serial NAS EP for 2^m pairs: (sum_x, sum_y, annulus counts).

    Vectorised with NumPy in blocks, but bit-identical to the scalar NPB
    algorithm (the LCG is evaluated exactly in doubles).
    """
    n_pairs = 1 << m
    q = np.zeros(10, dtype=np.int64)
    sx = 0.0
    sy = 0.0
    block = 1 << 16
    x = seed
    done = 0
    while done < n_pairs:
        count = min(block, n_pairs - done)
        uni = np.empty(2 * count)
        for i in range(2 * count):
            uni[i], x = randlc(x, a)
        t1 = 2.0 * uni[0::2] - 1.0
        t2 = 2.0 * uni[1::2] - 1.0
        tsq = t1 * t1 + t2 * t2
        accept = tsq <= 1.0
        t1a, t2a, tsqa = t1[accept], t2[accept], tsq[accept]
        with np.errstate(divide="ignore", invalid="ignore"):
            fac = np.sqrt(-2.0 * np.log(tsqa) / tsqa)
        gx = t1a * fac
        gy = t2a * fac
        l = np.minimum(np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64),
                       9)
        np.add.at(q, l, 1)
        sx += float(gx.sum())
        sy += float(gy.sum())
        done += count
    return sx, sy, q
