"""Registry of the five paper benchmarks (filled as modules load)."""

from __future__ import annotations

from importlib import import_module

#: benchmark name -> module path within repro.benchsuite
BENCHMARKS = {
    "ep": "repro.benchsuite.ep",
    "floyd": "repro.benchsuite.floyd",
    "transpose": "repro.benchsuite.transpose",
    "spmv": "repro.benchsuite.spmv",
    "reduction": "repro.benchsuite.reduction",
}


def get_benchmark(name: str):
    """Import and return the benchmark module registered as ``name``."""
    return import_module(BENCHMARKS[name])
