"""``repro.benchsuite`` — the paper's five evaluation benchmarks.

Each benchmark (EP, Floyd-Warshall, matrix transpose, spmv, reduction)
exists in three versions:

* ``serial``  — a NumPy reference (correctness oracle) plus an analytic
  cost formula for the serial-CPU baseline of Figures 6/7,
* ``opencl``  — a hand-written host program against the low-level SimCL
  API with embedded OpenCL C kernels (the paper's comparison point),
* ``hpl``     — the concise HPL version.

:mod:`repro.benchsuite.runner` orchestrates the runs behind every table
and figure; :mod:`repro.benchsuite.report` prints them in the paper's
format.
"""

from .common import BenchRun, Problem, extrapolated_seconds
from .registry import BENCHMARKS, get_benchmark

__all__ = ["BenchRun", "Problem", "extrapolated_seconds", "BENCHMARKS",
           "get_benchmark"]
