"""OpenCL C kernel for blocked matrix transpose (baseline version)."""

TRANSPOSE_OPENCL_SOURCE = r"""
/* Blocked matrix transpose, AMD APP SDK style: a BLOCK x BLOCK tile is
 * read with coalesced accesses into local memory, then written back
 * transposed with coalesced accesses. */

#define BLOCK 16

__kernel void matrixTranspose(__global float* output,
                              __global const float* input,
                              int width, int height) {
    __local float tile[BLOCK * BLOCK];

    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int lx = get_local_id(0);
    int ly = get_local_id(1);

    /* coalesced read of the tile (gx varies fastest along a row) */
    tile[ly * BLOCK + lx] = input[gy * width + gx];

    barrier(CLK_LOCAL_MEM_FENCE);

    /* destination tile origin: blocks swap coordinates */
    int bx = get_group_id(0) * BLOCK;
    int by = get_group_id(1) * BLOCK;
    int ox = by + lx;
    int oy = bx + ly;

    /* coalesced write of the transposed tile */
    output[oy * height + ox] = tile[lx * BLOCK + ly];
}
"""
