"""Matrix transpose drivers: OpenCL vs HPL vs serial baseline."""

from __future__ import annotations

import time

import numpy as np

from ... import ocl
from ...hpl import Array, Int, barrier, float_, gidx, gidy, int_, lidx, \
    lidy, idx, idy, LOCAL, Local
from ...hpl import eval as hpl_eval
from ..common import BenchRun, Problem, extrapolated_seconds, \
    serial_time_from_counters
from ..datasets import random_matrix
from .kernels import TRANSPOSE_OPENCL_SOURCE

BLOCK = 16
PAPER_SIZE = 16 * 1024          # 16K x 16K on the Tesla
PAPER_SIZE_QUADRO = 5 * 1024    # 5K x 5K on the Quadro

#: serial column-major writes touch a 64-byte line per 4-byte element
SERIAL_STORE_LINE_PENALTY = 64 / 4


def transpose_problem(n_paper: int = PAPER_SIZE, n_run: int = 512,
                      seed: int = 11) -> Problem:
    if n_run % BLOCK:
        raise ValueError(f"n_run must be a multiple of {BLOCK}")
    matrix = random_matrix(n_run, n_run, seed=seed)
    return Problem(
        name=f"transpose.{n_paper}",
        params={"n_paper": n_paper, "n_run": n_run,
                "work_factor": (n_paper / n_run) ** 2},
        arrays={"input": matrix},
        scale=(n_run / n_paper) ** 2,
    )


# -- hand-written OpenCL version --------------------------------------------------

def run_opencl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    n = problem.params["n_run"]
    src_host = problem.arrays["input"]

    platforms = ocl.get_platforms()
    if not platforms:
        raise RuntimeError("no OpenCL platforms found")
    candidates = [d for d in platforms[0].get_devices()
                  if device_name.lower() in d.name.lower()]
    if not candidates:
        raise RuntimeError(f"no device matching {device_name!r}")
    device = candidates[0]
    context = ocl.Context([device])
    queue = ocl.CommandQueue(context, device, profiling=True)

    t0 = time.perf_counter()
    program = ocl.Program(context, TRANSPOSE_OPENCL_SOURCE)
    try:
        program.build()
    except Exception as exc:
        raise RuntimeError(
            f"transpose build failed:\n{program.build_log}") from exc
    build_seconds = time.perf_counter() - t0
    kernel = program.create_kernel("matrixTranspose")

    mf = ocl.mem_flags
    in_buf = ocl.Buffer(context, mf.READ_ONLY, size=src_host.nbytes)
    out_buf = ocl.Buffer(context, mf.WRITE_ONLY, size=src_host.nbytes)
    ev_up = queue.enqueue_write_buffer(in_buf, src_host)

    kernel.set_arg(0, out_buf)
    kernel.set_arg(1, in_buf)
    kernel.set_arg(2, np.int32(n))
    kernel.set_arg(3, np.int32(n))
    event = queue.enqueue_nd_range_kernel(kernel, (n, n), (BLOCK, BLOCK))

    out = np.empty_like(src_host)
    ev_down = queue.enqueue_read_buffer(out_buf, out)
    queue.finish()

    wf = problem.params["work_factor"]
    return BenchRun(
        benchmark="transpose", variant="opencl", device=device.name,
        output=out,
        kernel_seconds=extrapolated_seconds(event.counters, device.spec,
                                            wf),
        transfer_seconds=(ev_up.duration + ev_down.duration) * wf,
        build_seconds=build_seconds,
        counters=event.counters, params=dict(problem.params))


# -- HPL version -------------------------------------------------------------------------

def transpose_hpl_kernel(output, input_, width, height):
    """Blocked transpose written with HPL (compare with kernels.py)."""
    tile = Array(float_, BLOCK * BLOCK, mem=Local)
    tile[lidy * BLOCK + lidx] = input_[idy * width + idx]
    barrier(LOCAL)
    ox = Int(); ox.assign(gidy * BLOCK + lidx)
    oy = Int(); oy.assign(gidx * BLOCK + lidy)
    output[oy * height + ox] = tile[lidx * BLOCK + lidy]


def run_hpl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    from ...hpl import Int as HInt
    from ...hpl import get_device

    n = problem.params["n_run"]
    device = get_device(device_name)

    src = Array(float_, n * n,
                data=np.ascontiguousarray(problem.arrays["input"])
                .reshape(-1))
    dst = Array(float_, n * n)
    result = hpl_eval(transpose_hpl_kernel).global_(n, n) \
        .local_(BLOCK, BLOCK).device(device)(dst, src, HInt(n), HInt(n))

    out = dst.read().reshape(n, n).copy()
    readback = dst.host_event.duration if dst.host_event else 0.0
    wf = problem.params["work_factor"]
    return BenchRun(
        benchmark="transpose", variant="hpl", device=device.name,
        output=out,
        kernel_seconds=extrapolated_seconds(result.kernel_event.counters,
                                            device.queue.device.spec, wf),
        transfer_seconds=(result.transfer_seconds + readback) * wf,
        hpl_overhead_seconds=result.codegen_seconds,
        build_seconds=result.build_seconds,
        counters=result.kernel_event.counters,
        params=dict(problem.params))


# -- serial baseline -------------------------------------------------------------------------

def serial_seconds(run: BenchRun) -> float:
    """Serial ``out[j][i] = in[i][j]`` loop; the column-stride writes pay
    a full cache line per element on the CPU."""
    return serial_time_from_counters(
        run.counters, run.params["work_factor"],
        store_line_penalty=SERIAL_STORE_LINE_PENALTY)


def verify(run: BenchRun, problem: Problem) -> bool:
    return np.array_equal(np.asarray(run.output),
                          problem.arrays["input"].T)
