"""Matrix transpose (paper §V, from the AMD APP SDK).

The optimized version of footnote 1: contiguous reads, block transposed
through the local memory shared by each thread group, contiguous writes.
Paper sizes: 16K x 16K on the Tesla, 5K x 5K on the Quadro; this is also
the benchmark where counting PCIe transfers dilutes the HPL overhead
from 3.47% to 0.41% (§V-B).
"""

from .driver import (BLOCK, PAPER_SIZE, PAPER_SIZE_QUADRO, run_hpl,
                     run_opencl, serial_seconds, transpose_problem,
                     verify)
from .kernels import TRANSPOSE_OPENCL_SOURCE

__all__ = ["transpose_problem", "run_opencl", "run_hpl", "serial_seconds",
           "verify", "TRANSPOSE_OPENCL_SOURCE", "BLOCK"]
