"""Text rendering of the runner's results in the paper's format."""

from __future__ import annotations


def _rule(width: int = 72) -> str:
    return "-" * width


def format_metrics_summary(stats) -> str:
    """Render the runtime's metrics registry after a benchmark run.

    ``stats`` is the :class:`repro.hpl.runtime.RuntimeStats` facade; the
    headline derived numbers (cache hit rate, build/codegen time,
    transfer traffic) are printed first, then the raw registry summary.
    """
    out = ["HPL runtime metrics", _rule(),
           f"{'kernel cache hit rate':<36}"
           f"{100.0 * stats.cache_hit_rate:>10.1f}%"
           f"   ({stats.cache_hits} hits / {stats.kernels_built} builds)",
           f"{'capture + codegen time':<36}"
           f"{stats.codegen_seconds:>11.6f}s",
           f"{'OpenCL build time':<36}{stats.build_seconds:>11.6f}s",
           f"{'h2d traffic':<36}{stats.h2d_bytes:>12} bytes in "
           f"{stats.h2d_transfers} transfer(s), "
           f"{stats.h2d_seconds:.6f}s simulated",
           f"{'d2h traffic':<36}{stats.d2h_bytes:>12} bytes in "
           f"{stats.d2h_transfers} transfer(s), "
           f"{stats.d2h_seconds:.6f}s simulated",
           f"{'kernel launches':<36}{stats.launches:>12}",
           f"{'disk cache':<36}{stats.disk_cache_hits:>12} hit(s), "
           f"{stats.disk_cache_misses} miss(es), "
           f"{stats.disk_cache_bytes} bytes written",
           _rule(), "", stats.registry.summary("metrics registry")]
    return "\n".join(out)


def format_cluster(row: dict) -> str:
    """Render the multi-device overlap measurement (cluster target)."""
    out = [f"Cluster overlap: {row['reps']} async rounds of a "
           f"{row['n']}-element partitioned kernel on "
           f"{len(row['devices'])} device(s)", _rule()]
    for name, busy in row["busy_seconds"].items():
        out.append(f"{name:<44}{busy:>14.6f}s busy")
    out += [_rule(),
            f"{'serialized (sum of device busy time)':<44}"
            f"{row['serialized_seconds']:>14.6f}s",
            f"{'makespan (event-graph deferred mode)':<44}"
            f"{row['makespan_seconds']:>14.6f}s",
            f"{'timeline compression':<44}"
            f"{row['overlap_factor']:>13.2f}x",
            f"{'deferred == eager results':<44}"
            f"{str(row['results_identical']):>14}",
            _rule()]
    return "\n".join(out)


def format_cluster_lb(row: dict) -> str:
    """Render the cluster load-balancing comparison (cluster-lb)."""
    out = [f"Cluster load balancing: {row['n']}-element compute-bound "
           f"kernel ({row['iters']} iters/item) on "
           f"{len(row['devices'])} skewed device(s)", _rule(),
           f"{'policy':<14}{'makespan':>12}{'speedup':>9}"
           f"{'overlap':>9}{'launches':>10}  partition sizes", _rule()]
    uniform = row["legs"]["uniform"]["makespan_seconds"]
    for name, leg in row["legs"].items():
        sizes = leg["partition_sizes"]
        shown = ", ".join(str(s) for s in sizes[:4])
        if len(sizes) > 4:
            shown += f", ... ({len(sizes)} total)"
        out.append(
            f"{name:<14}{leg['makespan_seconds'] * 1e3:>10.3f}ms"
            f"{uniform / leg['makespan_seconds']:>8.2f}x"
            f"{leg['overlap_factor']:>8.2f}x"
            f"{leg['launches']:>10}  [{shown}]")
    out += [_rule(),
            f"{'all policies bit-identical':<44}"
            f"{str(row['results_identical']):>14}",
            _rule()]
    return "\n".join(out)


def format_cluster_faults(row: dict) -> str:
    """Render the fault-recovery matrix (cluster-faults)."""
    out = [f"Cluster fault recovery: {row['n']}-element kernel "
           f"({row['iters']} iters/item), {row['schedule']} schedule",
           _rule(),
           f"{'fault plan':<14}{'makespan':>12}{'overhead':>10}"
           f"{'retries':>9}{'requeued':>10}  lost devices", _rule()]
    for name, leg in row["legs"].items():
        lost = ", ".join(leg["devices_lost"]) or "-"
        out.append(
            f"{name:<14}{leg['makespan_seconds'] * 1e3:>10.3f}ms"
            f"{row['overhead'][name]:>9.2f}x"
            f"{leg['retries']:>9}{leg['requeued_items']:>10}  {lost}")
    out += [_rule(),
            f"{'all fault legs bit-identical':<44}"
            f"{str(row['results_identical']):>14}",
            _rule()]
    return "\n".join(out)


def format_cluster_resilience(row: dict) -> str:
    """Render the watchdog/checkpoint resilience legs
    (cluster-resilience)."""
    out = [f"Cluster resilience: {row['n']}-element kernel "
           f"({row['iters']} iters/item), {row['schedule']} schedule, "
           f"mean of {row['reps']} rep(s)",
           _rule(),
           f"{'leg':<24}{'makespan':>12}{'overhead':>10}"
           f"{'spec wins':>11}", _rule()]
    base = row["legs"]["no-fault"]["makespan_seconds"]
    for name, leg in row["legs"].items():
        if name == "kill-and-resume":
            continue
        out.append(
            f"{name:<24}{leg['makespan_seconds'] * 1e3:>10.3f}ms"
            f"{leg['makespan_seconds'] / base:>9.2f}x"
            f"{leg['speculative_wins']:>11}")
    resumed = row["legs"]["kill-and-resume"]
    out += [_rule(),
            f"{'kill-and-resume: blocks restored from checkpoint':<48}"
            f"{resumed['resumed_blocks']:>10}",
            f"{'kill-and-resume: launches after resume':<48}"
            f"{resumed['launches_after_resume']:>10}",
            f"{'resume bit-identical to no-fault':<44}"
            f"{str(row['resume_bit_identical']):>14}",
            f"{'all legs bit-identical':<44}"
            f"{str(row['results_identical']):>14}",
            _rule()]
    return "\n".join(out)


def format_table1(rows: list[dict]) -> str:
    """Render Table I (SLOC comparison)."""
    out = ["Table I: SLOCs for the OpenCL and HPL versions of the "
           "benchmarks", _rule(),
           f"{'Benchmark':<20}{'OpenCL':>10}{'HPL':>10}"
           f"{'Reduction':>12}{'Ratio':>8}", _rule()]
    for r in rows:
        out.append(f"{r['benchmark']:<20}{r['opencl_sloc']:>10}"
                   f"{r['hpl_sloc']:>10}{r['reduction_pct']:>11.1f}%"
                   f"{r['ratio']:>7.1f}x")
    out.append(_rule())
    return "\n".join(out)


def format_fig6(rows: list[dict]) -> str:
    """Render Figure 6 (EP speedups per class) as a table of series."""
    out = ["Figure 6: EP speedup over serial CPU per problem size",
           _rule(),
           f"{'Class':<8}{'OpenCL x':>12}{'HPL x':>12}"
           f"{'HPL slowdown':>16}", _rule()]
    for r in rows:
        slowdown = 100.0 * (r["opencl_speedup"] / r["hpl_speedup"] - 1.0)
        out.append(f"{r['class']:<8}{r['opencl_speedup']:>12.1f}"
                   f"{r['hpl_speedup']:>12.1f}{slowdown:>15.2f}%")
    out.append(_rule())
    return "\n".join(out)


def format_fig7(rows: list[dict]) -> str:
    """Render Figure 7 (speedups of all benchmarks)."""
    out = ["Figure 7: speedups over serial CPU (Tesla C2050/C2070)",
           _rule(),
           f"{'Benchmark':<20}{'OpenCL x':>12}{'HPL x':>12}", _rule()]
    for r in rows:
        out.append(f"{r['benchmark']:<20}{r['opencl_speedup']:>12.1f}"
                   f"{r['hpl_speedup']:>12.1f}")
    out.append(_rule())
    return "\n".join(out)


def format_fig8(rows: list[dict], include_transfers: bool = False) -> str:
    """Render Figure 8 (slowdown of HPL vs OpenCL)."""
    title = "Figure 8: slowdown of HPL with respect to OpenCL"
    if include_transfers:
        title += " (transfers counted)"
    out = [title, _rule(),
           f"{'Benchmark':<20}{'OpenCL s':>12}{'HPL s':>12}"
           f"{'Slowdown':>12}", _rule()]
    for r in rows:
        out.append(f"{r['benchmark']:<20}{r['opencl_seconds']:>12.4f}"
                   f"{r['hpl_seconds']:>12.4f}"
                   f"{r['slowdown_pct']:>11.2f}%")
    out.append(_rule())
    return "\n".join(out)


def format_fig9(rows: list[dict]) -> str:
    """Render Figure 9 (overhead on Tesla and Quadro)."""
    out = ["Figure 9: HPL overhead vs OpenCL on both GPUs", _rule(),
           f"{'Benchmark':<20}{'GPU':<22}{'Slowdown':>12}", _rule()]
    for r in rows:
        out.append(f"{r['benchmark']:<20}{r['gpu']:<22}"
                   f"{r['slowdown_pct']:>11.2f}%")
    out.append(_rule())
    return "\n".join(out)


def format_warm_cache_disk(row: dict) -> str:
    """Render the cross-process persistent-cache measurement."""
    out = ["Persistent kernel cache: cold vs warm process "
           "(all five benchmarks)", _rule(),
           f"{'Benchmark':<20}{'cold build s':>14}{'warm build s':>14}",
           _rule()]
    for name, r in row["benchmarks"].items():
        out.append(f"{name:<20}{r['cold_build_seconds']:>14.6f}"
                   f"{r['warm_build_seconds']:>14.6f}")
    out += [_rule(),
            f"{'total build time':<34}{row['cold_build_seconds']:>11.6f}s"
            f" -> {row['warm_build_seconds']:.6f}s "
            f"({row['build_reduction_pct']:.1f}% less)",
            f"{'clc compiles':<34}{row['cold_clc_compiles']:>12}"
            f" -> {row['warm_clc_compiles']}",
            f"{'disk cache hits (warm process)':<34}"
            f"{row['warm_disk_cache_hits']:>12}",
            f"{'results identical':<34}"
            f"{str(row['results_identical']):>12}",
            f"{'verified':<34}{str(row['verified']):>12}",
            _rule()]
    if row.get("output"):
        out.append(f"wrote {row['output']}")
    return "\n".join(out)


def format_opt_pipeline(row: dict) -> str:
    """Render the middle-end pipeline experiment (O0 vs O2 engines)."""
    out = ["Optimizing middle-end: tree interpreters (-O0) vs optimized "
           "bytecode (-O2)", _rule(),
           f"{'Benchmark':<20}{'O0 exec s':>12}{'O2 exec s':>12}"
           f"{'Speedup':>10}", _rule()]
    for name, r in row["benchmarks"].items():
        out.append(f"{name:<20}{r['o0_seconds']:>12.4f}"
                   f"{r['o2_seconds']:>12.4f}{r['speedup']:>9.2f}x")
    passes = ", ".join(f"{name} x{runs}" for name, runs
                       in sorted(row["cold_pass_runs"].items()))
    out += [_rule(),
            f"{'geomean speedup':<34}{row['geomean_speedup']:>11.2f}x",
            f"{'cold pass runs':<34}  {passes}",
            f"{'warm clc compiles / pass runs':<34}"
            f"{row['warm_clc_compiles']:>12} / {row['warm_pass_runs']}",
            f"{'warm == cold results':<34}"
            f"{str(row['warm_results_identical']):>12}",
            f"{'serial-O0 == serial-O2 == vector-O2':<34}"
            f"{str(row['differential_identical']):>12}",
            f"{'verified':<34}{str(row['verified']):>12}",
            _rule()]
    if row.get("output"):
        out.append(f"wrote {row['output']}")
    return "\n".join(out)


def format_engine_jit(row: dict) -> str:
    """Render the vector-vs-JIT engine shoot-out."""
    out = ["Execution engines: vector interpreter vs NumPy-codegen JIT "
           f"(median ratio of {row['rounds']} interleaved rounds)", _rule(),
           f"{'Benchmark':<20}{'vector s':>12}{'jit s':>12}"
           f"{'Speedup':>10}", _rule()]
    for name, r in row["benchmarks"].items():
        out.append(f"{name:<20}{r['vector_seconds']:>12.4f}"
                   f"{r['jit_seconds']:>12.4f}{r['speedup']:>9.2f}x")
    gate = (f"{row['gate']:.1f}x" if row.get("gate") is not None
            else "none")
    out += [_rule(),
            f"{'geomean speedup':<34}{row['geomean_speedup']:>11.2f}x",
            f"{'gate':<34}{gate:>12}",
            f"{'checksums identical':<34}"
            f"{str(row['checksums_identical']):>12}",
            _rule()]
    if row.get("output"):
        out.append(f"wrote {row['output']}")
    return "\n".join(out)


def format_warm_cache(row: dict) -> str:
    """Render the §V-B first-vs-later invocation comparison."""
    out = ["§V-B: kernel binary reuse (EP class " + row["class"] + ")",
           _rule(),
           f"OpenCL:          {row['opencl_seconds']:.4f} s",
           f"HPL first call:  {row['hpl_cold_seconds']:.4f} s "
           f"({row['cold_slowdown_pct']:+.2f}%)",
           f"HPL second call: {row['hpl_warm_seconds']:.4f} s "
           f"({row['warm_slowdown_pct']:+.2f}%)",
           _rule()]
    return "\n".join(out)
