"""``python -m repro.benchsuite`` — run paper experiments from the shell.

See :func:`repro.benchsuite.runner.main` for the flags (``--trace``,
``--verbose``, ``--json``, ``--ep-class``) and available targets.
"""

from __future__ import annotations

from .runner import main

if __name__ == "__main__":
    raise SystemExit(main())
