"""Reduction drivers: OpenCL vs HPL vs serial baseline.

The paper reduces 16M single-precision values; scaled runs reduce fewer
and extrapolate counters linearly (the kernel is a pure streaming sum).
"""

from __future__ import annotations

import time

import numpy as np

from ... import ocl
from ...hpl import (LOCAL, Array, Float, Int, Local, barrier, endif_,
                    endwhile_, float_, for_, endfor_, gidx, if_, idx,
                    int_, lidx, lszx, szx, while_)
from ...hpl import eval as hpl_eval
from ..common import BenchRun, Problem, extrapolated_seconds, \
    serial_time_from_counters
from ..datasets import random_vector
from .kernels import REDUCTION_OPENCL_SOURCE

GROUP_SIZE = 256
NUM_GROUPS = 64
PAPER_N = 16 * 1024 * 1024      # "the addition of 16M single-precision
                                #  floating point values"


def reduction_problem(n_paper: int = PAPER_N, n_run: int = 1 << 18,
                      seed: int = 23) -> Problem:
    data = random_vector(n_run, seed=seed)
    return Problem(
        name=f"reduction.{n_paper}",
        params={"n_paper": n_paper, "n_run": n_run,
                "work_factor": n_paper / n_run},
        arrays={"data": data},
        scale=n_run / n_paper,
    )


# -- hand-written OpenCL version ------------------------------------------------------

def run_opencl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    n = problem.params["n_run"]
    data = problem.arrays["data"]

    platforms = ocl.get_platforms()
    if not platforms:
        raise RuntimeError("no OpenCL platforms found")
    candidates = [d for d in platforms[0].get_devices()
                  if device_name.lower() in d.name.lower()]
    if not candidates:
        raise RuntimeError(f"no device matching {device_name!r}")
    device = candidates[0]
    context = ocl.Context([device])
    queue = ocl.CommandQueue(context, device, profiling=True)

    t0 = time.perf_counter()
    program = ocl.Program(context, REDUCTION_OPENCL_SOURCE)
    try:
        program.build()
    except Exception as exc:
        raise RuntimeError(
            f"reduction build failed:\n{program.build_log}") from exc
    build_seconds = time.perf_counter() - t0
    kernel = program.create_kernel("reduce")

    mf = ocl.mem_flags
    in_buf = ocl.Buffer(context, mf.READ_ONLY, size=data.nbytes)
    out_buf = ocl.Buffer(context, mf.WRITE_ONLY, size=NUM_GROUPS * 4)
    ev_up = queue.enqueue_write_buffer(in_buf, data)

    kernel.set_arg(0, in_buf)
    kernel.set_arg(1, out_buf)
    kernel.set_arg(2, ocl.LocalMemory(GROUP_SIZE * 4))
    kernel.set_arg(3, np.int32(n))
    event = queue.enqueue_nd_range_kernel(
        kernel, (GROUP_SIZE * NUM_GROUPS,), (GROUP_SIZE,))

    partials = np.empty(NUM_GROUPS, dtype=np.float32)
    ev_down = queue.enqueue_read_buffer(out_buf, partials)
    queue.finish()
    total = float(partials.astype(np.float64).sum())

    wf = problem.params["work_factor"]
    return BenchRun(
        benchmark="reduction", variant="opencl", device=device.name,
        output=total,
        kernel_seconds=extrapolated_seconds(event.counters, device.spec,
                                            wf),
        transfer_seconds=ev_up.duration * wf + ev_down.duration,
        build_seconds=build_seconds,
        counters=event.counters, params=dict(problem.params))


# -- HPL version -----------------------------------------------------------------------------

def reduction_hpl_kernel(g_idata, g_odata, n):
    """Grid-stride sum + local-memory tree, written with HPL."""
    sdata = Array(float_, GROUP_SIZE, mem=Local)
    i = Int()
    i.assign(idx)
    total = Float(0)
    while_(i < n)
    total += g_idata[i]
    i += szx
    endwhile_()
    sdata[lidx] = total
    barrier(LOCAL)
    s = Int()
    s.assign(lszx / 2)
    while_(s > 0)
    if_(lidx < s)
    sdata[lidx] += sdata[lidx + s]
    endif_()
    barrier(LOCAL)
    s.assign(s / 2)
    endwhile_()
    if_(lidx == 0)
    g_odata[gidx] = sdata[0]
    endif_()


def run_hpl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    from ...hpl import Int as HInt
    from ...hpl import get_device

    n = problem.params["n_run"]
    device = get_device(device_name)

    g_idata = Array(float_, n, data=problem.arrays["data"])
    g_odata = Array(float_, NUM_GROUPS)
    result = hpl_eval(reduction_hpl_kernel) \
        .global_(GROUP_SIZE * NUM_GROUPS).local_(GROUP_SIZE) \
        .device(device)(g_idata, g_odata, HInt(n))

    total = float(g_odata.read().astype(np.float64).sum())
    readback = (g_odata.host_event.duration
                if g_odata.host_event is not None else 0.0)
    wf = problem.params["work_factor"]
    return BenchRun(
        benchmark="reduction", variant="hpl", device=device.name,
        output=total,
        kernel_seconds=extrapolated_seconds(result.kernel_event.counters,
                                            device.queue.device.spec, wf),
        transfer_seconds=result.transfer_seconds * wf + readback,
        hpl_overhead_seconds=result.codegen_seconds,
        build_seconds=result.build_seconds,
        counters=result.kernel_event.counters,
        params=dict(problem.params))


# -- serial baseline ---------------------------------------------------------------------------

def serial_seconds(run: BenchRun) -> float:
    """A serial accumulation loop on the one-core Xeon model."""
    return serial_time_from_counters(run.counters,
                                     run.params["work_factor"])


def verify(run: BenchRun, problem: Problem) -> bool:
    expected = float(problem.arrays["data"].astype(np.float64).sum())
    return abs(float(run.output) - expected) <= 1e-3 * abs(expected)
