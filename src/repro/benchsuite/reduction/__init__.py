"""Parallel reduction (sum of 16M floats), paper §V, from SHOC.

Multi-stage tree reduction: each group sums a strip of the input through
local memory; the host sums the final partials.  Exercises the
size-only ``__local`` kernel argument path (``clSetKernelArg`` with a
NULL pointer) in the OpenCL version.
"""

from .driver import (GROUP_SIZE, PAPER_N, reduction_problem, run_hpl,
                     run_opencl, serial_seconds, verify)
from .kernels import REDUCTION_OPENCL_SOURCE

__all__ = ["reduction_problem", "run_opencl", "run_hpl", "serial_seconds",
           "verify", "REDUCTION_OPENCL_SOURCE", "GROUP_SIZE"]
