"""OpenCL C kernel for the SHOC-style parallel sum reduction."""

REDUCTION_OPENCL_SOURCE = r"""
/* Sum reduction, SHOC style: a grid-stride loop accumulates into a
 * register, the group tree-reduces through local memory, and thread 0
 * writes one partial per group.  The local buffer arrives as a
 * size-only kernel argument. */

__kernel void reduce(__global const float* g_idata,
                     __global float* g_odata,
                     __local float* sdata,
                     int n) {
    int tid = get_local_id(0);
    int gsz = get_local_size(0);
    int i = get_global_id(0);
    int stride = get_global_size(0);

    float sum = 0.0f;
    while (i < n) {
        sum += g_idata[i];
        i += stride;
    }
    sdata[tid] = sum;
    barrier(CLK_LOCAL_MEM_FENCE);

    for (int s = gsz / 2; s > 0; s = s / 2) {
        if (tid < s) {
            sdata[tid] += sdata[tid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }

    if (tid == 0) {
        g_odata[get_group_id(0)] = sdata[0];
    }
}
"""
