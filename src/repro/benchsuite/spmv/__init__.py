"""Sparse matrix-vector product, CSR format (paper §IV-C / §V, SHOC).

One thread group per matrix row; the group's threads stride the row and
tree-reduce their partial products in local memory — the kernel of the
paper's Figure 5(b).  Paper sizes: 16K x 16K at 1% nonzeros (Tesla),
8K x 8K (Quadro).
"""

from .driver import (M_THREADS, PAPER_SIZE, PAPER_SIZE_QUADRO, run_hpl,
                     run_opencl, serial_seconds, spmv_problem, verify)
from .kernels import SPMV_OPENCL_SOURCE

__all__ = ["spmv_problem", "run_opencl", "run_hpl", "serial_seconds",
           "verify", "SPMV_OPENCL_SOURCE", "M_THREADS"]
