"""OpenCL C kernel for CSR spmv (baseline; mirrors paper Figure 5(b))."""

SPMV_OPENCL_SOURCE = r"""
/* CSR sparse matrix-vector product, SHOC style: one work-group of M
 * threads per row; threads stride the row's nonzeros and tree-reduce
 * their partial sums in local memory. */

#define M 8

__kernel void spmv(__global const float* A, __global const float* vec,
                   __global const int* cols, __global const int* rowptr,
                   __global float* out) {
    int row = get_group_id(0);
    int lid = get_local_id(0);

    float mySum = 0.0f;
    for (int j = rowptr[row] + lid; j < rowptr[row + 1]; j += M) {
        mySum += A[j] * vec[cols[j]];
    }

    __local float sdata[M];
    sdata[lid] = mySum;
    barrier(CLK_LOCAL_MEM_FENCE);

    if (lid < 4) {
        sdata[lid] += sdata[lid + 4];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid < 2) {
        sdata[lid] += sdata[lid + 2];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid == 0) {
        out[row] = sdata[0] + sdata[1];
    }
}
"""
