"""CSR spmv drivers: OpenCL vs HPL vs serial baseline.

Scaling: a 1%-dense n x n CSR matrix has n^2/100 nonzeros, so running
``n_run`` and extrapolating counters by ``(n_paper/n_run)^2`` reproduces
the paper-size traffic (per-row work mix is scale-invariant because the
density is fixed).
"""

from __future__ import annotations

import time

import numpy as np

from ... import ocl
from ...hpl import (LOCAL, Array, Float, Int, Local, barrier, endfor_,
                    endif_, float_, for_, gidx, if_, int_, lidx)
from ...hpl import eval as hpl_eval
from ..common import BenchRun, Problem, extrapolated_seconds, \
    serial_time_from_counters
from ..datasets import csr_matvec_reference, random_csr, random_vector
from .kernels import SPMV_OPENCL_SOURCE

M_THREADS = 8
PAPER_SIZE = 16 * 1024        # 16K x 16K @ 1% nonzeros (Tesla)
PAPER_SIZE_QUADRO = 8 * 1024  # 8K x 8K (Quadro)
DENSITY = 0.01


def spmv_problem(n_paper: int = PAPER_SIZE, n_run: int = 1024,
                 seed: int = 13) -> Problem:
    # keep the paper's nonzeros-per-row so the per-row work mix (strip
    # loop trip count vs. reduction tree) is scale-invariant; the row
    # count provides the scale factor
    per_row = max(1, int(round(DENSITY * n_paper)))
    values, cols, rowptr = random_csr(n_run, DENSITY, seed=seed,
                                      per_row=min(per_row, n_run))
    x = random_vector(n_run, seed=seed + 1)
    return Problem(
        name=f"spmv.{n_paper}",
        params={"n_paper": n_paper, "n_run": n_run,
                "work_factor": n_paper / n_run,
                "nnz": len(values)},
        arrays={"values": values, "cols": cols, "rowptr": rowptr, "x": x},
        scale=n_run / n_paper,
    )


# -- hand-written OpenCL version --------------------------------------------------------

def run_opencl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    n = problem.params["n_run"]
    values = problem.arrays["values"]
    cols = problem.arrays["cols"]
    rowptr = problem.arrays["rowptr"]
    x = problem.arrays["x"]

    platforms = ocl.get_platforms()
    if not platforms:
        raise RuntimeError("no OpenCL platforms found")
    candidates = [d for d in platforms[0].get_devices()
                  if device_name.lower() in d.name.lower()]
    if not candidates:
        raise RuntimeError(f"no device matching {device_name!r}")
    device = candidates[0]
    context = ocl.Context([device])
    queue = ocl.CommandQueue(context, device, profiling=True)

    t0 = time.perf_counter()
    program = ocl.Program(context, SPMV_OPENCL_SOURCE)
    try:
        program.build()
    except Exception as exc:
        raise RuntimeError(f"spmv build failed:\n{program.build_log}") \
            from exc
    build_seconds = time.perf_counter() - t0
    kernel = program.create_kernel("spmv")

    mf = ocl.mem_flags
    a_buf = ocl.Buffer(context, mf.READ_ONLY, size=values.nbytes)
    x_buf = ocl.Buffer(context, mf.READ_ONLY, size=x.nbytes)
    c_buf = ocl.Buffer(context, mf.READ_ONLY, size=cols.nbytes)
    r_buf = ocl.Buffer(context, mf.READ_ONLY, size=rowptr.nbytes)
    o_buf = ocl.Buffer(context, mf.WRITE_ONLY, size=n * 4)
    ups = [queue.enqueue_write_buffer(a_buf, values),
           queue.enqueue_write_buffer(x_buf, x),
           queue.enqueue_write_buffer(c_buf, cols),
           queue.enqueue_write_buffer(r_buf, rowptr)]

    kernel.set_args(a_buf, x_buf, c_buf, r_buf, o_buf)
    event = queue.enqueue_nd_range_kernel(kernel, (n * M_THREADS,),
                                          (M_THREADS,))

    out = np.empty(n, dtype=np.float32)
    ev_down = queue.enqueue_read_buffer(o_buf, out)
    queue.finish()

    wf = problem.params["work_factor"]
    return BenchRun(
        benchmark="spmv", variant="opencl", device=device.name,
        output=out,
        kernel_seconds=extrapolated_seconds(event.counters, device.spec,
                                            wf),
        transfer_seconds=(sum(e.duration for e in ups)
                          + ev_down.duration) * wf,
        build_seconds=build_seconds,
        counters=event.counters, params=dict(problem.params))


# -- HPL version ---------------------------------------------------------------------------

def spmv_hpl_kernel(A, vec, cols, rowptr, out):
    """The paper's Figure 5(b) kernel, verbatim modulo Python syntax."""
    j = Int()
    mySum = Float(0)
    for_(j, rowptr[gidx] + lidx, rowptr[gidx + 1], M_THREADS)
    mySum += A[j] * vec[cols[j]]
    endfor_()
    sdata = Array(float_, M_THREADS, mem=Local)
    sdata[lidx] = mySum
    barrier(LOCAL)
    if_(lidx < 4)
    sdata[lidx] += sdata[lidx + 4]
    endif_()
    barrier(LOCAL)
    if_(lidx < 2)
    sdata[lidx] += sdata[lidx + 2]
    endif_()
    barrier(LOCAL)
    if_(lidx == 0)
    out[gidx] = sdata[0] + sdata[1]
    endif_()


def run_hpl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    from ...hpl import get_device

    n = problem.params["n_run"]
    device = get_device(device_name)

    A = Array(float_, len(problem.arrays["values"]),
              data=problem.arrays["values"])
    vec = Array(float_, n, data=problem.arrays["x"])
    cols = Array(int_, len(problem.arrays["cols"]),
                 data=problem.arrays["cols"])
    rowptr = Array(int_, n + 1, data=problem.arrays["rowptr"])
    out = Array(float_, n)

    result = hpl_eval(spmv_hpl_kernel).global_(n * M_THREADS) \
        .local_(M_THREADS).device(device)(A, vec, cols, rowptr, out)

    out_host = out.read().copy()
    readback = out.host_event.duration if out.host_event else 0.0
    wf = problem.params["work_factor"]
    return BenchRun(
        benchmark="spmv", variant="hpl", device=device.name,
        output=out_host,
        kernel_seconds=extrapolated_seconds(result.kernel_event.counters,
                                            device.queue.device.spec, wf),
        transfer_seconds=(result.transfer_seconds + readback) * wf,
        hpl_overhead_seconds=result.codegen_seconds,
        build_seconds=result.build_seconds,
        counters=result.kernel_event.counters,
        params=dict(problem.params))


# -- serial baseline ---------------------------------------------------------------------------

def serial_seconds(run: BenchRun) -> float:
    """Serial CSR loop (paper Figure 5(a)) on the one-core Xeon model."""
    return serial_time_from_counters(run.counters,
                                     run.params["work_factor"])


def verify(run: BenchRun, problem: Problem) -> bool:
    expected = csr_matvec_reference(problem.arrays["values"],
                                    problem.arrays["cols"],
                                    problem.arrays["rowptr"],
                                    problem.arrays["x"])
    return np.allclose(np.asarray(run.output), expected,
                       rtol=1e-4, atol=1e-5)
