"""EP benchmark drivers: hand-written OpenCL vs HPL vs serial baseline."""

from __future__ import annotations

import numpy as np

from ... import ocl
from ...hpl import (Array, Double, Int, Long, cast, double_, endfor_,
                    endif_, endwhile_, fabs, float_, fmax, for_, if_, int_,
                    idx, log, long_, min_, sqrt, trunc, while_)
from ...hpl import eval as hpl_eval
from ...ocl import XEON_SERIAL, kernel_time
from ..common import BenchRun, Problem, extrapolated_seconds
from ..datasets import EP_A, EP_CLASSES, EP_SEED, ep_reference
from .kernels import EP_OPENCL_SOURCE

#: default scale-down (log2) per class so functional runs stay tractable
CLASS_DEFAULT_SHIFT = {"S": 6, "W": 7, "A": 10, "B": 12, "C": 14}

_WORK_ITEMS = 512
_LOCAL = 64

# numerical constants of the NPB LCG, also used by the HPL kernel
_R23 = 2.0 ** -23
_T23 = 2.0 ** 23
_R46 = 2.0 ** -46
_T46 = 2.0 ** 46


def ep_problem(ep_class: str = "W", shift: int | None = None) -> Problem:
    """Build the (scaled) EP workload for a NAS class."""
    m = EP_CLASSES[ep_class]
    if shift is None:
        shift = CLASS_DEFAULT_SHIFT[ep_class]
    if shift < 0 or m - shift < 10:
        raise ValueError(f"bad shift {shift} for class {ep_class}")
    pairs_run = 1 << (m - shift)
    return Problem(
        name=f"ep.{ep_class}",
        params={"class": ep_class, "m": m, "pairs_paper": 1 << m,
                "pairs_run": pairs_run, "work_factor": float(1 << shift),
                "nk": pairs_run // _WORK_ITEMS},
        scale=1.0 / (1 << shift),
    )


# -- hand-written OpenCL version ------------------------------------------------

def run_opencl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    """The way an OpenCL programmer runs EP: explicit everything."""
    import time

    nk = problem.params["nk"]
    if nk < 1:
        raise ValueError("problem too small for the work-item count")

    # 1. platform/device discovery
    platforms = ocl.get_platforms()
    if not platforms:
        raise RuntimeError("no OpenCL platforms found")
    devices = [d for d in platforms[0].get_devices()
               if device_name.lower() in d.name.lower()]
    if not devices:
        raise RuntimeError(f"no device matching {device_name!r}")
    device = devices[0]
    if not device.supports_fp64:
        raise RuntimeError(f"{device.name} lacks cl_khr_fp64; EP needs "
                           "double precision")

    # 2. context / queue
    context = ocl.Context([device])
    queue = ocl.CommandQueue(context, device, profiling=True)

    # 3. compile the kernel, keeping the build log on failure
    t0 = time.perf_counter()
    program = ocl.Program(context, EP_OPENCL_SOURCE)
    try:
        program.build()
    except Exception as exc:   # show the build log, like real host code
        raise RuntimeError(f"EP kernel build failed:\n"
                           f"{program.build_log}") from exc
    build_seconds = time.perf_counter() - t0
    kernel = program.create_kernel("ep")

    # 4. allocate device buffers
    mf = ocl.mem_flags
    sx_buf = ocl.Buffer(context, mf.WRITE_ONLY, size=_WORK_ITEMS * 8)
    sy_buf = ocl.Buffer(context, mf.WRITE_ONLY, size=_WORK_ITEMS * 8)
    q_buf = ocl.Buffer(context, mf.WRITE_ONLY, size=_WORK_ITEMS * 10 * 4)

    # 5. bind arguments and launch
    kernel.set_arg(0, sx_buf)
    kernel.set_arg(1, sy_buf)
    kernel.set_arg(2, q_buf)
    kernel.set_arg(3, np.int64(nk))
    kernel.set_arg(4, EP_SEED)
    kernel.set_arg(5, EP_A)
    event = queue.enqueue_nd_range_kernel(kernel, (_WORK_ITEMS,), (_LOCAL,))

    # 6. read back and reduce on the host
    sx_part = np.empty(_WORK_ITEMS, dtype=np.float64)
    sy_part = np.empty(_WORK_ITEMS, dtype=np.float64)
    q_part = np.empty(_WORK_ITEMS * 10, dtype=np.int32)
    ev1 = queue.enqueue_read_buffer(sx_buf, sx_part)
    ev2 = queue.enqueue_read_buffer(sy_buf, sy_part)
    ev3 = queue.enqueue_read_buffer(q_buf, q_part)
    queue.finish()

    sx = float(sx_part.sum())
    sy = float(sy_part.sum())
    q = q_part.reshape(_WORK_ITEMS, 10).sum(axis=0).astype(np.int64)

    work_factor = problem.params["work_factor"]
    return BenchRun(
        benchmark="ep", variant="opencl", device=device.name,
        output=(sx, sy, q),
        kernel_seconds=extrapolated_seconds(event.counters,
                                            device.spec, work_factor),
        transfer_seconds=sum(e.duration for e in (ev1, ev2, ev3)),
        build_seconds=build_seconds,
        counters=event.counters, params=dict(problem.params))


# -- HPL version ---------------------------------------------------------------------

def _hpl_lcg_next(x, a):
    """Record one LCG step; returns the new-x expression (inlined)."""
    t1 = Double(); t1.assign(_R23 * a)
    a1 = Double(); a1.assign(trunc(t1))
    a2 = Double(); a2.assign(a - _T23 * a1)
    t2 = Double(); t2.assign(_R23 * x)
    x1 = Double(); x1.assign(trunc(t2))
    x2 = Double(); x2.assign(x - _T23 * x1)
    t3 = Double(); t3.assign(a1 * x2 + a2 * x1)
    t4 = Double(); t4.assign(trunc(_R23 * t3))
    z = Double(); z.assign(t3 - _T23 * t4)
    t5 = Double(); t5.assign(_T23 * z + a2 * x2)
    t6 = Double(); t6.assign(trunc(_R46 * t5))
    return t5 - _T46 * t6


def ep_hpl_kernel(sx_out, sy_out, q_out, nk, seed, a):
    """NAS EP written with HPL — compare with kernels.py for Table I."""
    gid = idx
    offset = Long(); offset.assign(cast(gid, long_) * nk * 2)
    # seed jump: x = seed * a^offset  (square-and-multiply in the group)
    b = Double(1.0)
    g = Double(); g.assign(a)
    i = Long(); i.assign(offset)
    while_(i > 0)
    if_(i % 2 == 1)
    b.assign(_hpl_lcg_next(b, g))
    endif_()
    g.assign(_hpl_lcg_next(g, g))
    i.assign(i / 2)
    endwhile_()
    x = Double(); x.assign(_hpl_lcg_next(seed, b))

    sx = Double(0.0)
    sy = Double(0.0)
    qq = Array(int_, 10)
    l = Int()
    for_(l, 0, 10)
    qq[l] = 0
    endfor_()

    k = Long()
    for_(k, 0, nk)
    x.assign(_hpl_lcg_next(x, a))
    t1 = Double(); t1.assign(2.0 * (_R46 * x) - 1.0)
    x.assign(_hpl_lcg_next(x, a))
    t2 = Double(); t2.assign(2.0 * (_R46 * x) - 1.0)
    tsq = Double(); tsq.assign(t1 * t1 + t2 * t2)
    if_(tsq <= 1.0)
    fac = Double(); fac.assign(sqrt(-2.0 * log(tsq) / tsq))
    gx = Double(); gx.assign(t1 * fac)
    gy = Double(); gy.assign(t2 * fac)
    ll = Int(); ll.assign(cast(fmax(fabs(gx), fabs(gy)), int_))
    qq[min_(ll, 9)] += 1
    sx += gx
    sy += gy
    endif_()
    endfor_()

    sx_out[gid] = sx
    sy_out[gid] = sy
    for_(l, 0, 10)
    q_out[gid * 10 + l] = qq[l]
    endfor_()


def run_hpl(problem: Problem, device_name: str = "Tesla") -> BenchRun:
    """EP through HPL: buffers, transfers and compilation are implicit."""
    from ...hpl import get_device

    nk = problem.params["nk"]
    device = get_device(device_name)

    sx_out = Array(double_, _WORK_ITEMS)
    sy_out = Array(double_, _WORK_ITEMS)
    q_out = Array(int_, _WORK_ITEMS * 10)
    result = hpl_eval(ep_hpl_kernel).global_(_WORK_ITEMS).local_(_LOCAL) \
        .device(device)(sx_out, sy_out, q_out, Long(nk),
                        Double(EP_SEED), Double(EP_A))

    sx = float(sx_out.read().sum())
    sy = float(sy_out.read().sum())
    q = q_out.read().reshape(_WORK_ITEMS, 10).sum(axis=0).astype(np.int64)
    readback = sum(a.host_event.duration for a in (sx_out, sy_out, q_out)
                   if a.host_event is not None)

    work_factor = problem.params["work_factor"]
    return BenchRun(
        benchmark="ep", variant="hpl", device=device.name,
        output=(sx, sy, q),
        kernel_seconds=extrapolated_seconds(result.kernel_event.counters,
                                            device.queue.device.spec,
                                            work_factor),
        transfer_seconds=result.transfer_seconds + readback,
        hpl_overhead_seconds=result.codegen_seconds,
        build_seconds=result.build_seconds,
        counters=result.kernel_event.counters,
        params=dict(problem.params))


# -- serial baseline ----------------------------------------------------------------------

def serial_seconds(run: BenchRun) -> float:
    """Serial-CPU time for the paper-size problem.

    EP's serial C++ code performs the *same* arithmetic as the kernel
    (compute-bound, negligible memory traffic), so the baseline is the
    kernel's own measured op counts timed on the one-core Xeon model.
    """
    counters = run.counters.scaled(run.params["work_factor"])
    counters.global_load_bytes = 0
    counters.global_store_bytes = 0
    counters.local_accesses = 0
    counters.barriers = 0
    return kernel_time(counters, XEON_SERIAL).total


def verify(run: BenchRun, shift_problem: Problem) -> bool:
    """Compare a run's output against the serial NPB reference."""
    m_run = int(np.log2(shift_problem.params["pairs_run"]))
    sx_ref, sy_ref, q_ref = ep_reference(m_run)
    sx, sy, q = run.output
    return (abs(sx - sx_ref) < 1e-6 * max(1.0, abs(sx_ref))
            and abs(sy - sy_ref) < 1e-6 * max(1.0, abs(sy_ref))
            and np.array_equal(q, q_ref))
