"""OpenCL C kernel for NAS EP (hand-written baseline version)."""

EP_OPENCL_SOURCE = r"""
/* NAS EP - OpenCL C version.
 * Each work-item generates NK pairs from the NPB 2^46 LCG, starting at
 * its own jump-ahead seed, and accumulates partial sums and annulus
 * counts which the host reduces. */

#define R23 1.1920928955078125e-07
#define T23 8388608.0
#define R46 1.4210854715202004e-14
#define T46 70368744177664.0

double lcg_next(double x, double a) {
    double t1 = R23 * a;
    double a1 = trunc(t1);
    double a2 = a - T23 * a1;
    double t2 = R23 * x;
    double x1 = trunc(t2);
    double x2 = x - T23 * x1;
    double t3 = a1 * x2 + a2 * x1;
    double t4 = trunc(R23 * t3);
    double z = t3 - T23 * t4;
    double t5 = T23 * z + a2 * x2;
    double t6 = trunc(R46 * t5);
    return t5 - T46 * t6;
}

double lcg_power(double a, long n) {
    double b = 1.0;
    double g = a;
    long i = n;
    while (i > 0) {
        if (i % 2 == 1) {
            b = lcg_next(b, g);
        }
        g = lcg_next(g, g);
        i = i / 2;
    }
    return b;
}

__kernel void ep(__global double* sx_out, __global double* sy_out,
                 __global int* q_out, long nk, double seed, double a) {
    int gid = get_global_id(0);
    long offset = (long)gid * nk * 2;
    double x = lcg_next(seed, lcg_power(a, offset));
    double sx = 0.0;
    double sy = 0.0;
    int qq[10];
    for (int l = 0; l < 10; l++) {
        qq[l] = 0;
    }
    for (long i = 0; i < nk; i++) {
        x = lcg_next(x, a);
        double t1 = 2.0 * (R46 * x) - 1.0;
        x = lcg_next(x, a);
        double t2 = 2.0 * (R46 * x) - 1.0;
        double tsq = t1 * t1 + t2 * t2;
        if (tsq <= 1.0) {
            double fac = sqrt(-2.0 * log(tsq) / tsq);
            double gx = t1 * fac;
            double gy = t2 * fac;
            int l = (int)fmax(fabs(gx), fabs(gy));
            qq[min(l, 9)] += 1;
            sx += gx;
            sy += gy;
        }
    }
    sx_out[gid] = sx;
    sy_out[gid] = sy;
    for (int l = 0; l < 10; l++) {
        q_out[gid * 10 + l] = qq[l];
    }
}
"""
