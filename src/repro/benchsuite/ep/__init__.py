"""NAS EP (Embarrassingly Parallel) benchmark, paper §V / Figure 6.

Generates pairs of Gaussian deviates with the NPB 2^46 linear
congruential generator and tallies them in concentric square annuli.
Class sizes W/A/B/C are 2^25..2^32 pairs.
"""

from .driver import (CLASS_DEFAULT_SHIFT, ep_problem, run_hpl, run_opencl,
                     serial_seconds, verify)
from .kernels import EP_OPENCL_SOURCE

__all__ = ["ep_problem", "run_opencl", "run_hpl", "serial_seconds",
           "verify", "EP_OPENCL_SOURCE", "CLASS_DEFAULT_SHIFT"]
