# Floyd-Warshall all-pairs shortest paths written with HPL.
import sys

import numpy as np

from repro.hpl import Array, Int, endif_, eval, idx, idy, if_, int_


def floyd_pass(pathDistance, numNodes, k):
    oldW = Int(); oldW.assign(pathDistance[idy * numNodes + idx])
    tempW = Int(); tempW.assign(pathDistance[idy * numNodes + k]
                                + pathDistance[k * numNodes + idx])
    if_(tempW < oldW)
    pathDistance[idy * numNodes + idx] = tempW
    endif_()


def generate_graph(n, seed=17):
    rng = np.random.default_rng(seed)
    dist = rng.integers(1, 11, size=(n, n), dtype=np.int32)
    np.fill_diagonal(dist, 0)
    return dist


def reference(dist):
    d = dist.astype(np.int64).copy()
    for k in range(d.shape[0]):
        np.minimum(d, d[:, k:k + 1] + d[k:k + 1, :], out=d)
    return d.astype(np.int32)


def main(n=64):
    graph = generate_graph(n)
    dist = Array(int_, n * n, data=graph.reshape(-1).copy())
    for k in range(n):
        eval(floyd_pass).global_(n, n)(dist, Int(n), Int(k))
    out = dist.read().reshape(n, n)
    if not np.array_equal(out, reference(graph)):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"floyd n={n}: verified, checksum={int(out.sum())}")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 64))
