# NAS EP written with HPL: device discovery, buffers, transfers and
# kernel compilation are all implicit.
import sys

import numpy as np

from repro.hpl import (Array, Double, Int, Long, cast, double_, endfor_,
                       endif_, endwhile_, eval, fabs, fmax, for_, idx, if_,
                       int_, log, long_, min_, sqrt, trunc, while_)

SEED = 271828183.0
MULTIPLIER = 1220703125.0
WORK_ITEMS = 256
R23, T23 = 2.0 ** -23, 2.0 ** 23
R46, T46 = 2.0 ** -46, 2.0 ** 46


def lcg_next(x, a):
    a1 = Double(); a1.assign(trunc(R23 * a))
    a2 = Double(); a2.assign(a - T23 * a1)
    x1 = Double(); x1.assign(trunc(R23 * x))
    x2 = Double(); x2.assign(x - T23 * x1)
    t = Double(); t.assign(a1 * x2 + a2 * x1)
    z = Double(); z.assign(t - T23 * trunc(R23 * t))
    t5 = Double(); t5.assign(T23 * z + a2 * x2)
    return t5 - T46 * trunc(R46 * t5)


def ep(sx_out, sy_out, q_out, nk, seed, a):
    b = Double(1.0)
    g = Double(); g.assign(a)
    i = Long(); i.assign(cast(idx, long_) * nk * 2)
    while_(i > 0)
    if_(i % 2 == 1)
    b.assign(lcg_next(b, g))
    endif_()
    g.assign(lcg_next(g, g))
    i.assign(i / 2)
    endwhile_()
    x = Double(); x.assign(lcg_next(seed, b))
    sx, sy = Double(0.0), Double(0.0)
    qq = Array(int_, 10)
    l = Int()
    for_(l, 0, 10)
    qq[l] = 0
    endfor_()
    k = Long()
    for_(k, 0, nk)
    x.assign(lcg_next(x, a))
    t1 = Double(); t1.assign(2.0 * (R46 * x) - 1.0)
    x.assign(lcg_next(x, a))
    t2 = Double(); t2.assign(2.0 * (R46 * x) - 1.0)
    tsq = Double(); tsq.assign(t1 * t1 + t2 * t2)
    if_(tsq <= 1.0)
    fac = Double(); fac.assign(sqrt(-2.0 * log(tsq) / tsq))
    gx = Double(); gx.assign(t1 * fac)
    gy = Double(); gy.assign(t2 * fac)
    qq[min_(cast(fmax(fabs(gx), fabs(gy)), int_), 9)] += 1
    sx += gx
    sy += gy
    endif_()
    endfor_()
    sx_out[idx] = sx
    sy_out[idx] = sy
    for_(l, 0, 10)
    q_out[idx * 10 + l] = qq[l]
    endfor_()


def main(m=16):
    sx_out = Array(double_, WORK_ITEMS)
    sy_out = Array(double_, WORK_ITEMS)
    q_out = Array(int_, WORK_ITEMS * 10)
    nk = (1 << m) // WORK_ITEMS
    eval(ep).local_(64)(sx_out, sy_out, q_out, Long(nk), Double(SEED),
                        Double(MULTIPLIER))
    sx = float(sx_out.read().sum())
    sy = float(sy_out.read().sum())
    q = q_out.read().reshape(WORK_ITEMS, 10).sum(axis=0)
    print(f"EP m={m}: sx={sx:.8f} sy={sy:.8f}")
    print("counts:", " ".join(str(int(c)) for c in q))
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 16))
