# Multi-stage parallel sum reduction written with HPL.
import sys

import numpy as np

from repro.hpl import (LOCAL, Array, Float, Int, Local, barrier, endif_,
                       endwhile_, eval, float_, gidx, idx, if_, int_,
                       lidx, lszx, szx, while_)

GROUP_SIZE = 256
NUM_GROUPS = 64


def reduce_kernel(g_idata, g_odata, n):
    sdata = Array(float_, GROUP_SIZE, mem=Local)
    i = Int(); i.assign(idx)
    total = Float(0)
    while_(i < n)
    total += g_idata[i]
    i += szx
    endwhile_()
    sdata[lidx] = total
    barrier(LOCAL)
    s = Int(); s.assign(lszx / 2)
    while_(s > 0)
    if_(lidx < s)
    sdata[lidx] += sdata[lidx + s]
    endif_()
    barrier(LOCAL)
    s.assign(s / 2)
    endwhile_()
    if_(lidx == 0)
    g_odata[gidx] = sdata[0]
    endif_()


def main(n=1 << 18):
    rng = np.random.default_rng(23)
    data = rng.random(n).astype(np.float32)

    g_idata = Array(float_, n, data=data)
    partials = Array(float_, NUM_GROUPS)
    result = Array(float_, 1)
    eval(reduce_kernel).global_(GROUP_SIZE * NUM_GROUPS) \
        .local_(GROUP_SIZE)(g_idata, partials, Int(n))
    eval(reduce_kernel).global_(GROUP_SIZE).local_(GROUP_SIZE)(
        partials, result, Int(NUM_GROUPS))

    expected = float(data.astype(np.float64).sum())
    if abs(result(0) - expected) > 1e-3 * abs(expected):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"reduction n={n}: sum={result(0):.4f} (verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 18))
