# Floyd-Warshall all-pairs shortest paths against the OpenCL host API.
# Complete program: setup, compilation, buffers, one launch per pivot,
# readback and a host-side verification pass.
import sys

import numpy as np

import repro.ocl as cl

KERNEL_SOURCE = r"""
__kernel void floydWarshallPass(__global int* pathDistance,
                                int numNodes, int pass) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int k = pass;

    int oldWeight = pathDistance[y * numNodes + x];
    int tempWeight = pathDistance[y * numNodes + k]
                   + pathDistance[k * numNodes + x];
    if (tempWeight < oldWeight) {
        pathDistance[y * numNodes + x] = tempWeight;
    }
}
"""


def generate_graph(n, seed=17):
    rng = np.random.default_rng(seed)
    dist = rng.integers(1, 11, size=(n, n), dtype=np.int32)
    np.fill_diagonal(dist, 0)
    return dist


def reference(dist):
    d = dist.astype(np.int64).copy()
    for k in range(d.shape[0]):
        np.minimum(d, d[:, k:k + 1] + d[k:k + 1, :], out=d)
    return d.astype(np.int32)


def main(n=64):
    dist = generate_graph(n)
    expected = reference(dist)

    # environment setup
    platforms = cl.get_platforms()
    if not platforms:
        print("no OpenCL platform available", file=sys.stderr)
        return 1
    gpus = platforms[0].get_devices(cl.device_type.GPU)
    if not gpus:
        print("no GPU device available", file=sys.stderr)
        return 1
    device = gpus[0]
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device, profiling=True)

    # kernel compilation
    program = cl.Program(context, KERNEL_SOURCE)
    try:
        program.build()
    except Exception:
        print(program.build_log, file=sys.stderr)
        return 1
    kernel = program.create_kernel("floydWarshallPass")

    # buffer management and host->device transfer
    mf = cl.mem_flags
    dist_buf = cl.Buffer(context, mf.READ_WRITE, size=dist.nbytes)
    queue.enqueue_write_buffer(dist_buf, dist)

    # one pass per pivot
    local = (16, 16) if n % 16 == 0 else None
    kernel.set_arg(0, dist_buf)
    kernel.set_arg(1, np.int32(n))
    total_ns = 0
    for k in range(n):
        kernel.set_arg(2, np.int32(k))
        event = queue.enqueue_nd_range_kernel(kernel, (n, n), local)
        total_ns += event.duration_ns

    # device->host transfer
    out = np.empty_like(dist)
    queue.enqueue_read_buffer(dist_buf, out)
    queue.finish()

    if not np.array_equal(out, expected):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"floyd n={n}: verified, checksum={int(out.sum())}")
    print(f"kernel time: {total_ns * 1e-6:.3f} ms (simulated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 64))
