# Blocked matrix transpose against the OpenCL host API.
# Complete program: setup, compilation, buffer management, transfers,
# launch geometry computation, readback and verification.
import sys

import numpy as np

import repro.ocl as cl

KERNEL_SOURCE = r"""
#define BLOCK 16

__kernel void matrixTranspose(__global float* output,
                              __global const float* input,
                              int width, int height) {
    __local float tile[BLOCK * BLOCK];

    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int lx = get_local_id(0);
    int ly = get_local_id(1);

    tile[ly * BLOCK + lx] = input[gy * width + gx];

    barrier(CLK_LOCAL_MEM_FENCE);

    int bx = get_group_id(0) * BLOCK;
    int by = get_group_id(1) * BLOCK;
    int ox = by + lx;
    int oy = bx + ly;

    output[oy * height + ox] = tile[lx * BLOCK + ly];
}
"""

BLOCK = 16


def main(n=256):
    if n % BLOCK != 0:
        print(f"matrix size must be a multiple of {BLOCK}",
              file=sys.stderr)
        return 1
    rng = np.random.default_rng(11)
    src = rng.random((n, n)).astype(np.float32)

    # environment setup
    platforms = cl.get_platforms()
    if not platforms:
        print("no OpenCL platform available", file=sys.stderr)
        return 1
    gpus = platforms[0].get_devices(cl.device_type.GPU)
    if not gpus:
        print("no GPU device available", file=sys.stderr)
        return 1
    device = gpus[0]
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device, profiling=True)

    # kernel compilation
    program = cl.Program(context, KERNEL_SOURCE)
    try:
        program.build()
    except Exception:
        print(program.build_log, file=sys.stderr)
        return 1
    kernel = program.create_kernel("matrixTranspose")

    # buffers and host->device transfer
    mf = cl.mem_flags
    in_buf = cl.Buffer(context, mf.READ_ONLY, size=src.nbytes)
    out_buf = cl.Buffer(context, mf.WRITE_ONLY, size=src.nbytes)
    queue.enqueue_write_buffer(in_buf, src)

    # launch
    kernel.set_arg(0, out_buf)
    kernel.set_arg(1, in_buf)
    kernel.set_arg(2, np.int32(n))
    kernel.set_arg(3, np.int32(n))
    event = queue.enqueue_nd_range_kernel(kernel, (n, n), (BLOCK, BLOCK))

    # device->host transfer
    out = np.empty_like(src)
    queue.enqueue_read_buffer(out_buf, out)
    queue.finish()

    if not np.array_equal(out, src.T):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"transpose {n}x{n}: verified")
    print(f"kernel time: {event.duration * 1e3:.3f} ms (simulated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 256))
