# CSR sparse matrix-vector product written with HPL (paper Figure 5(b)).
import sys

import numpy as np

from repro.hpl import (LOCAL, Array, Float, Int, Local, barrier, endfor_,
                       endif_, eval, float_, for_, gidx, if_, int_, lidx)

M = 8


def spmv(A, vec, cols, rowptr, out):
    j = Int()
    mySum = Float(0)
    for_(j, rowptr[gidx] + lidx, rowptr[gidx + 1], M)
    mySum += A[j] * vec[cols[j]]
    endfor_()
    sdata = Array(float_, M, mem=Local)
    sdata[lidx] = mySum
    barrier(LOCAL)
    if_(lidx < 4)
    sdata[lidx] += sdata[lidx + 4]
    endif_()
    barrier(LOCAL)
    if_(lidx < 2)
    sdata[lidx] += sdata[lidx + 2]
    endif_()
    barrier(LOCAL)
    if_(lidx == 0)
    out[gidx] = sdata[0] + sdata[1]
    endif_()


def build_csr(n, per_row, seed=13):
    rng = np.random.default_rng(seed)
    rowptr = np.arange(0, (n + 1) * per_row, per_row, dtype=np.int32)
    cols = np.empty(n * per_row, dtype=np.int32)
    for r in range(n):
        cols[r * per_row:(r + 1) * per_row] = np.sort(
            rng.choice(n, size=per_row, replace=False))
    values = rng.random(n * per_row).astype(np.float32)
    return values, cols, rowptr


def main(n=512):
    values, cols, rowptr = build_csr(n, per_row=max(1, n // 100))
    rng = np.random.default_rng(14)
    x = rng.random(n).astype(np.float32)

    A = Array(float_, len(values), data=values)
    vec = Array(float_, n, data=x)
    cols_a = Array(int_, len(cols), data=cols)
    rowptr_a = Array(int_, n + 1, data=rowptr)
    out = Array(float_, n)
    eval(spmv).global_(n * M).local_(M)(A, vec, cols_a, rowptr_a, out)

    expected = np.zeros(n, dtype=np.float64)
    for r in range(n):
        lo, hi = rowptr[r], rowptr[r + 1]
        expected[r] = np.dot(values[lo:hi].astype(np.float64),
                             x[cols[lo:hi]].astype(np.float64))
    if not np.allclose(out.read(), expected, rtol=1e-4, atol=1e-5):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"spmv n={n}: verified, "
          f"|y|={float(np.abs(out.read()).sum()):.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 512))
