# NAS EP written directly against the OpenCL host API (SimCL).
# Complete program: environment setup, kernel compilation, buffer
# management, transfers, launch, host-side reduction and verification.
import sys

import numpy as np

import repro.ocl as cl

KERNEL_SOURCE = r"""
#define R23 1.1920928955078125e-07
#define T23 8388608.0
#define R46 1.4210854715202004e-14
#define T46 70368744177664.0

double lcg_next(double x, double a) {
    double t1 = R23 * a;
    double a1 = trunc(t1);
    double a2 = a - T23 * a1;
    double t2 = R23 * x;
    double x1 = trunc(t2);
    double x2 = x - T23 * x1;
    double t3 = a1 * x2 + a2 * x1;
    double t4 = trunc(R23 * t3);
    double z = t3 - T23 * t4;
    double t5 = T23 * z + a2 * x2;
    double t6 = trunc(R46 * t5);
    return t5 - T46 * t6;
}

double lcg_power(double a, long n) {
    double b = 1.0;
    double g = a;
    long i = n;
    while (i > 0) {
        if (i % 2 == 1) {
            b = lcg_next(b, g);
        }
        g = lcg_next(g, g);
        i = i / 2;
    }
    return b;
}

__kernel void ep(__global double* sx_out, __global double* sy_out,
                 __global int* q_out, long nk, double seed, double a) {
    int gid = get_global_id(0);
    long offset = (long)gid * nk * 2;
    double x = lcg_next(seed, lcg_power(a, offset));
    double sx = 0.0;
    double sy = 0.0;
    int qq[10];
    for (int l = 0; l < 10; l++) {
        qq[l] = 0;
    }
    for (long i = 0; i < nk; i++) {
        x = lcg_next(x, a);
        double t1 = 2.0 * (R46 * x) - 1.0;
        x = lcg_next(x, a);
        double t2 = 2.0 * (R46 * x) - 1.0;
        double tsq = t1 * t1 + t2 * t2;
        if (tsq <= 1.0) {
            double fac = sqrt(-2.0 * log(tsq) / tsq);
            double gx = t1 * fac;
            double gy = t2 * fac;
            int l = (int)fmax(fabs(gx), fabs(gy));
            qq[min(l, 9)] += 1;
            sx += gx;
            sy += gy;
        }
    }
    sx_out[gid] = sx;
    sy_out[gid] = sy;
    for (int l = 0; l < 10; l++) {
        q_out[gid * 10 + l] = qq[l];
    }
}
"""

SEED = 271828183.0
MULTIPLIER = 1220703125.0
WORK_ITEMS = 256
LOCAL_SIZE = 64


def main(m=16):
    n_pairs = 1 << m
    nk = n_pairs // WORK_ITEMS
    if nk == 0:
        print("problem too small", file=sys.stderr)
        return 1

    # environment setup
    platforms = cl.get_platforms()
    if not platforms:
        print("no OpenCL platform available", file=sys.stderr)
        return 1
    gpus = platforms[0].get_devices(cl.device_type.GPU)
    fp64_gpus = [d for d in gpus if d.supports_fp64]
    if not fp64_gpus:
        print("EP needs a double-precision device", file=sys.stderr)
        return 1
    device = fp64_gpus[0]
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device, profiling=True)

    # kernel compilation, surfacing the build log on failure
    program = cl.Program(context, KERNEL_SOURCE)
    try:
        program.build()
    except Exception:
        print(program.build_log, file=sys.stderr)
        return 1
    kernel = program.create_kernel("ep")

    # device buffers
    mf = cl.mem_flags
    sx_buf = cl.Buffer(context, mf.WRITE_ONLY, size=WORK_ITEMS * 8)
    sy_buf = cl.Buffer(context, mf.WRITE_ONLY, size=WORK_ITEMS * 8)
    q_buf = cl.Buffer(context, mf.WRITE_ONLY, size=WORK_ITEMS * 10 * 4)

    # argument binding and launch
    kernel.set_arg(0, sx_buf)
    kernel.set_arg(1, sy_buf)
    kernel.set_arg(2, q_buf)
    kernel.set_arg(3, np.int64(nk))
    kernel.set_arg(4, SEED)
    kernel.set_arg(5, MULTIPLIER)
    event = queue.enqueue_nd_range_kernel(kernel, (WORK_ITEMS,),
                                          (LOCAL_SIZE,))

    # read back partial results
    sx_part = np.empty(WORK_ITEMS, dtype=np.float64)
    sy_part = np.empty(WORK_ITEMS, dtype=np.float64)
    q_part = np.empty(WORK_ITEMS * 10, dtype=np.int32)
    queue.enqueue_read_buffer(sx_buf, sx_part)
    queue.enqueue_read_buffer(sy_buf, sy_part)
    queue.enqueue_read_buffer(q_buf, q_part)
    queue.finish()

    # final reduction on the host
    sx = float(sx_part.sum())
    sy = float(sy_part.sum())
    q = q_part.reshape(WORK_ITEMS, 10).sum(axis=0)

    print(f"EP m={m}: sx={sx:.8f} sy={sy:.8f}")
    print("counts:", " ".join(str(int(c)) for c in q))
    print(f"kernel time: {event.duration * 1e3:.3f} ms (simulated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 16))
