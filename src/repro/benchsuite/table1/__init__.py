"""Table I sources: complete standalone programs, one pair per benchmark.

The paper's Table I counts the SLOC of *entire applications* — the AMD
APP SDK samples, SHOC benchmarks and NPB codes on the OpenCL side versus
the authors' HPL rewrites.  This package holds the equivalent pairs for
this reproduction: each ``*_opencl.py`` is a complete, runnable program
against the low-level SimCL host API (with all the environment setup,
buffer management, transfers and build handling such programs carry),
and each ``*_hpl.py`` is the complete HPL program for the same
computation.  ``repro.benchsuite.runner.run_table1`` counts these files;
the integration tests execute every one of them and check its output.
"""

from __future__ import annotations

import os

#: benchmark name -> (opencl module file, hpl module file)
TABLE1_PAIRS = {
    "EP": ("ep_opencl.py", "ep_hpl.py"),
    "Floyd-Warshall": ("floyd_opencl.py", "floyd_hpl.py"),
    "Matrix transpose": ("transpose_opencl.py", "transpose_hpl.py"),
    "Spmv": ("spmv_opencl.py", "spmv_hpl.py"),
    "Reduction": ("reduction_opencl.py", "reduction_hpl.py"),
}

_HERE = os.path.dirname(__file__)


def source_path(filename: str) -> str:
    return os.path.join(_HERE, filename)


def read_source(filename: str) -> str:
    with open(source_path(filename), encoding="utf-8") as fh:
        return fh.read()
