# Blocked matrix transpose written with HPL.
import sys

import numpy as np

from repro.hpl import (LOCAL, Array, Int, Local, barrier, eval, float_,
                       gidx, gidy, idx, idy, lidx, lidy)

BLOCK = 16


def transpose(output, input_, width, height):
    tile = Array(float_, BLOCK * BLOCK, mem=Local)
    tile[lidy * BLOCK + lidx] = input_[idy * width + idx]
    barrier(LOCAL)
    ox = Int(); ox.assign(gidy * BLOCK + lidx)
    oy = Int(); oy.assign(gidx * BLOCK + lidy)
    output[oy * height + ox] = tile[lidx * BLOCK + lidy]


def main(n=256):
    rng = np.random.default_rng(11)
    host = rng.random((n, n)).astype(np.float32)
    src = Array(float_, n * n, data=host.reshape(-1).copy())
    dst = Array(float_, n * n)
    eval(transpose).global_(n, n).local_(BLOCK, BLOCK)(
        dst, src, Int(n), Int(n))
    if not np.array_equal(dst.read().reshape(n, n), host.T):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"transpose {n}x{n}: verified")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 256))
