# Multi-stage parallel sum reduction against the OpenCL host API.
# Complete program: setup, compilation, size-only __local argument,
# repeated launches until one value remains, and verification.
import sys

import numpy as np

import repro.ocl as cl

KERNEL_SOURCE = r"""
__kernel void reduce(__global const float* g_idata,
                     __global float* g_odata,
                     __local float* sdata,
                     int n) {
    int tid = get_local_id(0);
    int gsz = get_local_size(0);
    int i = get_global_id(0);
    int stride = get_global_size(0);

    float sum = 0.0f;
    while (i < n) {
        sum += g_idata[i];
        i += stride;
    }
    sdata[tid] = sum;
    barrier(CLK_LOCAL_MEM_FENCE);

    for (int s = gsz / 2; s > 0; s = s / 2) {
        if (tid < s) {
            sdata[tid] += sdata[tid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }

    if (tid == 0) {
        g_odata[get_group_id(0)] = sdata[0];
    }
}
"""

GROUP_SIZE = 256
NUM_GROUPS = 64


def main(n=1 << 18):
    rng = np.random.default_rng(23)
    data = rng.random(n).astype(np.float32)

    # environment setup
    platforms = cl.get_platforms()
    if not platforms:
        print("no OpenCL platform available", file=sys.stderr)
        return 1
    gpus = platforms[0].get_devices(cl.device_type.GPU)
    if not gpus:
        print("no GPU device available", file=sys.stderr)
        return 1
    device = gpus[0]
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device, profiling=True)

    # kernel compilation
    program = cl.Program(context, KERNEL_SOURCE)
    try:
        program.build()
    except Exception:
        print(program.build_log, file=sys.stderr)
        return 1
    kernel = program.create_kernel("reduce")

    # stage 1: n values -> NUM_GROUPS partials
    mf = cl.mem_flags
    in_buf = cl.Buffer(context, mf.READ_ONLY, size=data.nbytes)
    mid_buf = cl.Buffer(context, mf.READ_WRITE, size=NUM_GROUPS * 4)
    queue.enqueue_write_buffer(in_buf, data)
    kernel.set_arg(0, in_buf)
    kernel.set_arg(1, mid_buf)
    kernel.set_arg(2, cl.LocalMemory(GROUP_SIZE * 4))
    kernel.set_arg(3, np.int32(n))
    ev1 = queue.enqueue_nd_range_kernel(
        kernel, (GROUP_SIZE * NUM_GROUPS,), (GROUP_SIZE,))

    # stage 2: NUM_GROUPS partials -> 1 value (single group)
    out_buf = cl.Buffer(context, mf.WRITE_ONLY, size=4)
    kernel.set_arg(0, mid_buf)
    kernel.set_arg(1, out_buf)
    kernel.set_arg(2, cl.LocalMemory(GROUP_SIZE * 4))
    kernel.set_arg(3, np.int32(NUM_GROUPS))
    ev2 = queue.enqueue_nd_range_kernel(kernel, (GROUP_SIZE,),
                                        (GROUP_SIZE,))

    result = np.empty(1, dtype=np.float32)
    queue.enqueue_read_buffer(out_buf, result)
    queue.finish()

    expected = float(data.astype(np.float64).sum())
    if abs(float(result[0]) - expected) > 1e-3 * abs(expected):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"reduction n={n}: sum={float(result[0]):.4f} (verified)")
    print(f"kernel time: {(ev1.duration + ev2.duration) * 1e3:.3f} ms "
          "(simulated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 18))
