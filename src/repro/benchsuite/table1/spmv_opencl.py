# CSR sparse matrix-vector product against the OpenCL host API.
# Complete program: CSR construction on the host, environment setup,
# compilation, five buffers with transfers, launch and verification.
import sys

import numpy as np

import repro.ocl as cl

KERNEL_SOURCE = r"""
#define M 8

__kernel void spmv(__global const float* A, __global const float* vec,
                   __global const int* cols, __global const int* rowptr,
                   __global float* out) {
    int row = get_group_id(0);
    int lid = get_local_id(0);

    float mySum = 0.0f;
    for (int j = rowptr[row] + lid; j < rowptr[row + 1]; j += M) {
        mySum += A[j] * vec[cols[j]];
    }

    __local float sdata[M];
    sdata[lid] = mySum;
    barrier(CLK_LOCAL_MEM_FENCE);

    if (lid < 4) {
        sdata[lid] += sdata[lid + 4];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid < 2) {
        sdata[lid] += sdata[lid + 2];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid == 0) {
        out[row] = sdata[0] + sdata[1];
    }
}
"""

M = 8


def build_csr(n, per_row, seed=13):
    rng = np.random.default_rng(seed)
    rowptr = np.arange(0, (n + 1) * per_row, per_row, dtype=np.int32)
    cols = np.empty(n * per_row, dtype=np.int32)
    for r in range(n):
        cols[r * per_row:(r + 1) * per_row] = np.sort(
            rng.choice(n, size=per_row, replace=False))
    values = rng.random(n * per_row).astype(np.float32)
    return values, cols, rowptr


def main(n=512):
    values, cols, rowptr = build_csr(n, per_row=max(1, n // 100))
    rng = np.random.default_rng(14)
    x = rng.random(n).astype(np.float32)

    # environment setup
    platforms = cl.get_platforms()
    if not platforms:
        print("no OpenCL platform available", file=sys.stderr)
        return 1
    gpus = platforms[0].get_devices(cl.device_type.GPU)
    if not gpus:
        print("no GPU device available", file=sys.stderr)
        return 1
    device = gpus[0]
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device, profiling=True)

    # kernel compilation
    program = cl.Program(context, KERNEL_SOURCE)
    try:
        program.build()
    except Exception:
        print(program.build_log, file=sys.stderr)
        return 1
    kernel = program.create_kernel("spmv")

    # buffers and transfers
    mf = cl.mem_flags
    a_buf = cl.Buffer(context, mf.READ_ONLY, size=values.nbytes)
    x_buf = cl.Buffer(context, mf.READ_ONLY, size=x.nbytes)
    c_buf = cl.Buffer(context, mf.READ_ONLY, size=cols.nbytes)
    r_buf = cl.Buffer(context, mf.READ_ONLY, size=rowptr.nbytes)
    o_buf = cl.Buffer(context, mf.WRITE_ONLY, size=n * 4)
    queue.enqueue_write_buffer(a_buf, values)
    queue.enqueue_write_buffer(x_buf, x)
    queue.enqueue_write_buffer(c_buf, cols)
    queue.enqueue_write_buffer(r_buf, rowptr)

    # launch: one M-thread group per row
    kernel.set_arg(0, a_buf)
    kernel.set_arg(1, x_buf)
    kernel.set_arg(2, c_buf)
    kernel.set_arg(3, r_buf)
    kernel.set_arg(4, o_buf)
    event = queue.enqueue_nd_range_kernel(kernel, (n * M,), (M,))

    out = np.empty(n, dtype=np.float32)
    queue.enqueue_read_buffer(o_buf, out)
    queue.finish()

    # verification against a host-side CSR loop
    expected = np.zeros(n, dtype=np.float64)
    for r in range(n):
        lo, hi = rowptr[r], rowptr[r + 1]
        expected[r] = np.dot(values[lo:hi].astype(np.float64),
                             x[cols[lo:hi]].astype(np.float64))
    if not np.allclose(out, expected, rtol=1e-4, atol=1e-5):
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    print(f"spmv n={n}: verified, |y|={float(np.abs(out).sum()):.4f}")
    print(f"kernel time: {event.duration * 1e3:.3f} ms (simulated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 512))
