"""Kernel AST captured while tracing an HPL kernel function.

When ``eval(f)(...)`` first runs a kernel, the Python function ``f`` is
executed once over *proxy* arguments.  Every arithmetic operation,
indexing, assignment and control-flow construct performed on the proxies
builds nodes of this AST instead of computing values — the same
operator-overloading capture the C++ HPL library performs (paper §III).
:mod:`repro.hpl.codegen` then turns the AST into OpenCL C.

Python cannot overload ``=``, so plain scalar assignment is spelled
``v.assign(expr)``; augmented assignments (``+=`` ...) work natively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import KernelCaptureError
from . import dtypes as D

# ---------------------------------------------------------------------------
# expression nodes
# ---------------------------------------------------------------------------

_COMPARISONS = ("==", "!=", "<", ">", "<=", ">=")
_BOOL_OPS = ("&&", "||")


def as_expr(value, hint: D.HPLType | None = None) -> "Expr":
    """Coerce a Python value or expression into an AST node.

    Bare Python numbers become *adaptive* constants: they adopt the type
    of the expression they combine with (so ``v * 0.5`` stays ``float``
    when ``v`` is a float array), matching how literals are written by
    hand in OpenCL C kernels.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), D.int_)
    if isinstance(value, int):
        return Const(value, hint if hint is not None else None)
    if isinstance(value, float):
        if hint is not None and hint.is_float:
            return Const(value, hint)
        return Const(value, None)
    import numpy as np
    if isinstance(value, np.integer):
        return Const(int(value), D.from_numpy_dtype(value.dtype))
    if isinstance(value, np.floating):
        return Const(float(value), D.from_numpy_dtype(value.dtype))
    raise KernelCaptureError(
        f"cannot use a {type(value).__name__} inside an HPL kernel "
        "expression")


def _combine(a: D.HPLType | None, b: D.HPLType | None,
             float_literal: bool) -> D.HPLType | None:
    """Result type of a binary op where either side may be untyped."""
    if a is not None and b is not None:
        return D.promote(a, b)
    known = a if a is not None else b
    if known is None:
        return None
    if float_literal and not known.is_float:
        return D.double_
    return known


class Expr:
    """Base class of all kernel expressions (operator-overloading mixin)."""

    dtype: D.HPLType | None = None

    # -- arithmetic -------------------------------------------------------

    def _bin(self, op: str, other, reflected: bool = False) -> "Expr":
        rhs = as_expr(other, hint=self.dtype)
        lhs: Expr = self
        if reflected:
            lhs, rhs = rhs, lhs
        float_lit = (isinstance(other, float)
                     or (isinstance(lhs, Const) and lhs.dtype is None
                         and isinstance(lhs.value, float)))
        if op in _COMPARISONS or op in _BOOL_OPS:
            dtype = D.int_
        else:
            dtype = _combine(lhs.dtype, rhs.dtype, float_lit)
        return BinOp(op, lhs, rhs, dtype)

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, True)

    def __mod__(self, other):
        return self._bin("%", other)

    def __rmod__(self, other):
        return self._bin("%", other, True)

    def __lshift__(self, other):
        return self._bin("<<", other)

    def __rshift__(self, other):
        return self._bin(">>", other)

    def __and__(self, other):
        return self._bin("&", other)

    def __rand__(self, other):
        return self._bin("&", other, True)

    def __or__(self, other):
        return self._bin("|", other)

    def __ror__(self, other):
        return self._bin("|", other, True)

    def __xor__(self, other):
        return self._bin("^", other)

    def __rxor__(self, other):
        return self._bin("^", other, True)

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return self._bin("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._bin("!=", other)

    def __lt__(self, other):
        return self._bin("<", other)

    def __le__(self, other):
        return self._bin("<=", other)

    def __gt__(self, other):
        return self._bin(">", other)

    def __ge__(self, other):
        return self._bin(">=", other)

    __hash__ = None  # expressions are not hashable (== builds AST)

    # -- unary -------------------------------------------------------------

    def __neg__(self):
        return UnOp("-", self, self.dtype)

    def __pos__(self):
        return self

    def __invert__(self):
        return UnOp("~", self, self.dtype)

    # -- guards -------------------------------------------------------------

    def __bool__(self):
        raise KernelCaptureError(
            "an HPL kernel expression has no Python truth value: use if_/"
            "while_ constructs instead of Python if/while on kernel data")

    def __iter__(self):
        raise KernelCaptureError(
            "HPL kernel expressions are not iterable; index them "
            "explicitly")


@dataclass(eq=False)
class Const(Expr):
    value: object
    dtype: D.HPLType | None = None


@dataclass(eq=False)
class VarRef(Expr):
    """A private scalar variable or by-value scalar parameter."""
    name: str
    dtype: D.HPLType = None
    is_param: bool = False


@dataclass(eq=False)
class PredefinedRef(Expr):
    """idx/lidx/gidx/szx/... — resolved by codegen to get_*_id calls."""
    name: str
    dtype: D.HPLType = field(default_factory=lambda: D.int_)


@dataclass(eq=False)
class IndexRef(Expr):
    """``array[indices...]`` used as a value."""
    array: object            # ArrayHandle (proxy or declaration)
    indices: list = field(default_factory=list)
    dtype: D.HPLType = None


@dataclass(eq=False)
class BinOp(Expr):
    op: str
    lhs: Expr = None
    rhs: Expr = None
    dtype: D.HPLType | None = None


@dataclass(eq=False)
class UnOp(Expr):
    op: str
    operand: Expr = None
    dtype: D.HPLType | None = None


@dataclass(eq=False)
class Call(Expr):
    """Call of a device builtin (sqrt, fmin, ...)."""
    name: str
    args: list = field(default_factory=list)
    dtype: D.HPLType | None = None


@dataclass(eq=False)
class Cast(Expr):
    target: D.HPLType = None
    operand: Expr = None

    def __post_init__(self):
        self.dtype = self.target


@dataclass(eq=False)
class Ternary(Expr):
    """``where(cond, a, b)`` — the C ternary operator."""
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None
    dtype: D.HPLType | None = None


# ---------------------------------------------------------------------------
# statement nodes
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    pass


@dataclass
class DeclScalar(Stmt):
    name: str
    dtype: D.HPLType
    init: Expr | None = None


@dataclass
class DeclArray(Stmt):
    name: str
    dtype: D.HPLType
    shape: tuple
    mem: str = D.PRIVATE      # private | local


@dataclass
class Assign(Stmt):
    """``target op value`` where op is '=', '+=', '-=', ...  The target is
    a VarRef or IndexRef."""
    target: Expr
    op: str
    value: Expr


@dataclass
class If(Stmt):
    branches: list = field(default_factory=list)  # [(cond|None, body)]


@dataclass
class For(Stmt):
    """``for (var = start; var < limit; var += step)`` (paper's for_)."""
    var: VarRef = None
    start: Expr = None
    limit: Expr = None
    step: Expr = None
    body: list = field(default_factory=list)
    #: comparison used against limit ('<' default, '>' for negative steps)
    cmp: str = "<"


@dataclass
class While(Stmt):
    cond: Expr = None
    body: list = field(default_factory=list)


@dataclass
class Barrier(Stmt):
    flags: int = 1


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    pass


# ---------------------------------------------------------------------------
# helpers used across the capture machinery
# ---------------------------------------------------------------------------

def require_typed(expr: Expr, context: str) -> D.HPLType:
    """The dtype of ``expr``, defaulting untyped literals sensibly."""
    if expr.dtype is not None:
        return expr.dtype
    if isinstance(expr, Const):
        return D.double_ if isinstance(expr.value, float) else D.int_
    raise KernelCaptureError(f"could not infer a type in {context}")


def resolve_untyped(expr: Expr, target: D.HPLType) -> Expr:
    """Give an untyped literal constant a concrete type."""
    if isinstance(expr, Const) and expr.dtype is None:
        return Const(expr.value, target)
    return expr


def const_fold_float(value: float) -> str:
    """Literal spelling helpers live in codegen; kept for API symmetry."""
    return repr(float(value))


def eval_host(expr) -> object:
    """Evaluate a *constant* expression tree on the host (for domain
    sizes given as expressions); raises if it references kernel state."""
    if isinstance(expr, (int, float)):
        return expr
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, UnOp) and expr.op == "-":
        return -eval_host(expr.operand)
    if isinstance(expr, BinOp):
        a, b = eval_host(expr.lhs), eval_host(expr.rhs)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            return a // b if isinstance(a, int) and isinstance(b, int) \
                else a / b
        if expr.op == "%":
            return a % b if isinstance(a, int) else math.fmod(a, b)
    raise KernelCaptureError("expected a host-evaluable constant expression")
