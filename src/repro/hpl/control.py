"""HPL control-flow constructs (paper §III-B).

The C++ library provides ``if_/endif_``, ``for_/endfor_``,
``while_/endwhile_`` macros; the same spellings work here::

    if_(lidx == 0)
    ...statements...
    endif_()

    for_(i, 0, M)          # for (i = 0; i < M; i += 1)
    ...
    endfor_()

Each opener also works as a context manager for a more pythonic style
(``with if_(cond): ...``) — the ``end*_`` call then happens automatically
on block exit.  ``elif_``/``else_`` are only available in the macro style.
"""

from __future__ import annotations

from ..errors import KernelCaptureError
from . import kast as K
from .builder import KernelBuilder
from .proxy import ScalarVar

__all__ = ["if_", "elif_", "else_", "endif_", "for_", "endfor_",
           "while_", "endwhile_", "break_", "continue_", "return_"]


class _Ctx:
    """Lets every opener double as a context manager."""

    __slots__ = ("kind", "closer", "closed")

    def __init__(self, kind: str, closer) -> None:
        self.kind = kind
        self.closer = closer
        self.closed = False

    def __enter__(self) -> "_Ctx":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self.closed:
            self.closer()
            self.closed = True


def _cond_expr(cond) -> K.Expr:
    expr = K.as_expr(cond)
    if isinstance(expr, K.Const):
        raise KernelCaptureError(
            "condition is a plain constant; conditions must involve "
            "kernel data (did you use Python comparison on host values?)")
    return expr


def if_(cond) -> _Ctx:
    """Open a conditional: ``if_(cond) ... endif_()``."""
    builder = KernelBuilder.require("if_")
    body: list = []
    stmt = K.If(branches=[(_cond_expr(cond), body)])
    builder.add(stmt)
    builder.push_block("if", stmt, body)
    return _Ctx("if", endif_)


def elif_(cond) -> None:
    """Continue an open ``if_`` with an ``else if`` branch."""
    builder = KernelBuilder.require("elif_")
    body: list = []
    stmt = builder.switch_block("if", body)
    if stmt.branches and stmt.branches[-1][0] is None:
        raise KernelCaptureError("elif_ after else_ is not allowed")
    stmt.branches.append((_cond_expr(cond), body))


def else_() -> None:
    """Continue an open ``if_`` with the final ``else`` branch."""
    builder = KernelBuilder.require("else_")
    body: list = []
    stmt = builder.switch_block("if", body)
    if stmt.branches and stmt.branches[-1][0] is None:
        raise KernelCaptureError("duplicate else_")
    stmt.branches.append((None, body))


def endif_() -> None:
    """Close an ``if_``."""
    KernelBuilder.require("endif_").pop_block("if")


def for_(var, start, limit, step=1) -> _Ctx:
    """Open a counted loop: ``for (var = start; var < limit; var += step)``.

    Mirrors the paper's ``for_(i = 0, i < M, i++)`` — the induction
    variable, the bounds and the stride are passed as arguments because
    Python cannot capture ``=``/``++`` inside an argument list.  For a
    negative constant ``step`` the comparison becomes ``>``.
    """
    builder = KernelBuilder.require("for_")
    if not isinstance(var, K.VarRef) or isinstance(var, K.PredefinedRef):
        raise KernelCaptureError(
            "for_ needs a scalar kernel variable (e.g. i = Int()) as its "
            "induction variable")
    cmp = "<"
    if isinstance(step, (int, float)) and step < 0:
        cmp = ">"
    body: list = []
    stmt = K.For(var=var,
                 start=K.as_expr(start, hint=var.dtype),
                 limit=K.as_expr(limit, hint=var.dtype),
                 step=K.as_expr(step, hint=var.dtype),
                 body=body, cmp=cmp)
    builder.add(stmt)
    builder.push_block("for", stmt, body)
    return _Ctx("for", endfor_)


def endfor_() -> None:
    """Close a ``for_``."""
    KernelBuilder.require("endfor_").pop_block("for")


def while_(cond) -> _Ctx:
    """Open a ``while`` loop: ``while_(cond) ... endwhile_()``."""
    builder = KernelBuilder.require("while_")
    body: list = []
    stmt = K.While(cond=_cond_expr(cond), body=body)
    builder.add(stmt)
    builder.push_block("while", stmt, body)
    return _Ctx("while", endwhile_)


def endwhile_() -> None:
    """Close a ``while_``."""
    KernelBuilder.require("endwhile_").pop_block("while")


def break_() -> None:
    """``break`` out of the innermost for_/while_."""
    KernelBuilder.require("break_").add(K.Break())


def continue_() -> None:
    """``continue`` the innermost for_/while_."""
    KernelBuilder.require("continue_").add(K.Continue())


def return_() -> None:
    """Early exit from the kernel for this work-item."""
    KernelBuilder.require("return_").add(K.Return())
