"""``repro.hpl`` — the Heterogeneous Programming Library.

The Python rendition of the paper's C++ library.  A complete SAXPY
(paper Figure 3)::

    from repro.hpl import Array, Double, double_, eval, idx

    def saxpy(y, x, a):
        y[idx] = a * x[idx] + y[idx]

    x = Array(double_, 1000)
    y = Array(double_, 1000)
    a = Double(2.0)
    # ... fill x and y ...
    eval(saxpy)(y, x, a)

Everything the paper's ``HPL.h`` provides is exported here: the Array and
scalar types (§III-A), the kernel control-flow constructs and predefined
variables (§III-B), ``barrier`` and the math functions, and the ``eval``
invocation interface (§III-C).
"""

from .analysis import KernelInfo, analyze_kernel
from .array import Array
from .builder import KernelBuilder
from .checkpoint import CheckpointStore
from .cluster import (Cluster, ClusterResult, ClusterTimeline,
                      DistributedArray, DynamicScheduler, FailureSummary,
                      Partition, Scheduler, SCHEDULERS, UniformScheduler,
                      WeightedScheduler, calibration, cluster_eval,
                      device_throughput, get_scheduler,
                      last_failure_summary, timeline_of)
from .codegen import generate_source
from .control import (break_, continue_, elif_, else_, endfor_, endif_,
                      endwhile_, for_, if_, return_, while_)
from .dtypes import (Constant, Global, Local, Private, char_, double_,
                     float_, int_, long_, short_, uchar_, uint_, ulong_,
                     ushort_)
from .evaluator import Evaluator, eval, eval_
from .functions import (GLOBAL, LOCAL, abs_, acos, asin, atan, atan2,
                        barrier, cast, cbrt, ceil, clamp, cos, exp, exp2,
                        fabs, floor, fma, fmax, fmin, fmod, hypot, log,
                        log2, log10, max_, min_, not_, pow, round_, rsqrt,
                        sin, sqrt, tan, trunc, where)
from .predefined import (gidx, gidy, gidz, idx, idy, idz, lidx, lidy,
                         lidz, lszx, lszy, lszz, ngroupx, ngroupy,
                         ngroupz, szx, szy, szz)
from .runtime import (EvalResult, HPLDevice, HPLRuntime, RuntimeStats,
                      get_device, get_devices, get_runtime, reset_runtime)
from .scalars import (Char, Double, Float, HostScalar, Int, Long, Short,
                      Uchar, Uint, Ulong, Ushort)

__all__ = [
    # arrays and types
    "Array", "Global", "Local", "Constant", "Private",
    "int_", "uint_", "long_", "ulong_", "short_", "ushort_", "char_",
    "uchar_", "float_", "double_",
    # scalars
    "Int", "Uint", "Long", "Ulong", "Short", "Ushort", "Char", "Uchar",
    "Float", "Double", "HostScalar",
    # control flow
    "if_", "elif_", "else_", "endif_", "for_", "endfor_", "while_",
    "endwhile_", "break_", "continue_", "return_",
    # predefined variables
    "idx", "idy", "idz", "lidx", "lidy", "lidz", "gidx", "gidy", "gidz",
    "szx", "szy", "szz", "lszx", "lszy", "lszz",
    "ngroupx", "ngroupy", "ngroupz",
    # device functions
    "barrier", "LOCAL", "GLOBAL", "cast", "where", "not_",
    "sqrt", "rsqrt", "cbrt", "exp", "exp2", "log", "log2", "log10",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "pow", "fabs",
    "floor", "ceil", "trunc", "round_", "fmod", "fmin", "fmax", "fma",
    "hypot", "abs_", "min_", "max_", "clamp",
    # invocation and runtime
    "eval", "eval_", "Evaluator", "get_devices", "get_device",
    "get_runtime", "reset_runtime", "EvalResult", "HPLDevice",
    "HPLRuntime", "RuntimeStats",
    # persistent kernel binary cache
    "configure", "KernelDiskCache",
    # multi-device cluster extension
    "Cluster", "ClusterResult", "ClusterTimeline", "DistributedArray",
    "cluster_eval", "timeline_of", "FailureSummary", "CheckpointStore",
    "last_failure_summary",
    # cluster scheduling policies
    "Scheduler", "UniformScheduler", "WeightedScheduler",
    "DynamicScheduler", "Partition", "SCHEDULERS", "get_scheduler",
    "calibration", "device_throughput",
    # capture internals useful for tooling/tests
    "KernelBuilder", "KernelInfo", "analyze_kernel", "generate_source",
]


_UNSET = object()


def configure(cache_dir=_UNSET, max_bytes=None, opt_level=_UNSET,
              profile=_UNSET, faults=_UNSET, engine=_UNSET):
    """Configure process-wide HPL runtime policy.

    ``cache_dir`` enables the persistent kernel cache (``None`` disables
    it); ``max_bytes`` caps its size.  ``opt_level`` sets the default
    optimization level of kernel builds (0..2, ``None`` restores the
    ``$HPL_OPT_LEVEL``/built-in default); per-build ``-O<n>`` /
    ``-cl-opt-disable`` options still win.  ``profile`` turns the
    source-level kernel profiler (:mod:`repro.prof`) on or off; the
    ``HPL_PROFILE`` environment variable sets the initial state.
    ``faults`` installs a fault-injection plan — a
    :class:`repro.ocl.FaultPlan` or a plan string (see
    ``docs/faults.md``); ``None`` removes the active plan.  The
    ``HPL_FAULTS`` environment variable sets the initial plan.
    ``engine`` selects the default execution backend for every device
    that has no explicit override (``"vector"``, ``"serial"``, ``"jit"``
    or any backend registered via
    :func:`repro.ocl.engines.base.register_engine`); ``None`` restores
    the ``$HPL_ENGINE``/built-in default.  Unknown names raise
    immediately, listing the registered backends.
    Arguments that are not passed leave their aspect untouched, so
    ``hpl.configure(opt_level=1)`` does not disturb the cache setup.

    Returns the active :class:`KernelDiskCache` (or ``None``) when the
    call touched the cache configuration, else ``None``.
    """
    result = None
    if cache_dir is not _UNSET or max_bytes is not None:
        from . import diskcache
        result = diskcache.configure(
            None if cache_dir is _UNSET else cache_dir, max_bytes)
    if opt_level is not _UNSET:
        from ..clc.passes import set_default_opt_level
        set_default_opt_level(opt_level)
    if engine is not _UNSET:
        from ..ocl.engines.base import set_default_engine
        set_default_engine(engine)
    if profile is not _UNSET:
        from .. import prof
        if profile:
            prof.enable()
        else:
            prof.disable()
    if faults is not _UNSET:
        from ..ocl import faults as _faults
        _faults.configure(faults)
    return result


def __getattr__(name):
    # lazy: keeps `python -m repro.hpl.diskcache` runnable without the
    # package having pre-imported the submodule under its own name
    if name == "KernelDiskCache":
        from . import diskcache
        return diskcache.KernelDiskCache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
