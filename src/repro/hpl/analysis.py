"""Kernel access analysis (paper §V-B / §VI).

HPL "can and does analyze the kernels it builds, the aim of that analysis
currently being the minimization of the data transfers due to the
execution of the kernels."  This module walks the captured kernel AST and
classifies every array argument as read, written or read-write; the
runtime uses the result to copy only what the kernel will actually read
to the device and to invalidate only what it wrote.

The same pass derives two facts the runtime needs for device selection
and validation: whether the kernel uses double precision and whether it
synchronises with barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CoherenceError
from . import dtypes as D
from . import kast as K
from .proxy import ArrayHandle


@dataclass
class KernelInfo:
    """Result of analysing one captured kernel."""

    #: array parameter name -> 'r' | 'w' | 'rw'
    access: dict = field(default_factory=dict)
    uses_double: bool = False
    uses_barrier: bool = False
    uses_local_memory: bool = False
    #: names of predefined variables referenced (idx, gidx, ...)
    predefined_used: set = field(default_factory=set)

    def reads(self, name: str) -> bool:
        return "r" in self.access.get(name, "")

    def writes(self, name: str) -> bool:
        return "w" in self.access.get(name, "")


class _Analyzer:
    def __init__(self) -> None:
        self.info = KernelInfo()

    # -- recording -------------------------------------------------------------

    def _note(self, handle: ArrayHandle, kind: str) -> None:
        if handle.dtype is D.double_:
            self.info.uses_double = True
        if not handle.is_param:
            if handle.mem == D.LOCAL:
                self.info.uses_local_memory = True
            return
        if kind == "w" and handle.mem == D.CONSTANT:
            raise CoherenceError(
                f"kernel writes array {handle.name!r} which lives in "
                "constant memory (constant memory is read-only for "
                "kernels)")
        cur = self.info.access.get(handle.name, "")
        if kind not in cur:
            order = {"": kind, "r": "rw" if kind == "w" else "r",
                     "w": "rw" if kind == "r" else "w", "rw": "rw"}
            self.info.access[handle.name] = order[cur]

    def _check_double(self, dtype) -> None:
        if dtype is D.double_:
            self.info.uses_double = True

    # -- walking ------------------------------------------------------------------

    def expr(self, e: K.Expr | None) -> None:
        if e is None:
            return
        if isinstance(e, K.Const):
            if isinstance(e.value, float) and (e.dtype is None
                                               or e.dtype is D.double_):
                pass  # adaptive literals don't force double by themselves
            return
        if isinstance(e, K.PredefinedRef):
            self.info.predefined_used.add(e.name)
            return
        if isinstance(e, K.VarRef):
            self._check_double(e.dtype)
            return
        if isinstance(e, K.IndexRef):
            self._note(e.array, "r")
            for i in e.indices:
                self.expr(i)
            return
        if isinstance(e, K.BinOp):
            self._check_double(e.dtype)
            self.expr(e.lhs)
            self.expr(e.rhs)
            return
        if isinstance(e, K.UnOp):
            self.expr(e.operand)
            return
        if isinstance(e, K.Call):
            self._check_double(e.dtype)
            for a in e.args:
                self.expr(a)
            return
        if isinstance(e, K.Cast):
            self._check_double(e.target)
            self.expr(e.operand)
            return
        if isinstance(e, K.Ternary):
            self._check_double(e.dtype)
            self.expr(e.cond)
            self.expr(e.then)
            self.expr(e.otherwise)
            return

    def stmts(self, body: list) -> None:
        for s in body:
            self.stmt(s)

    def stmt(self, s: K.Stmt) -> None:
        if isinstance(s, K.DeclScalar):
            self._check_double(s.dtype)
            self.expr(s.init)
        elif isinstance(s, K.DeclArray):
            self._check_double(s.dtype)
            if s.mem == D.LOCAL:
                self.info.uses_local_memory = True
        elif isinstance(s, K.Assign):
            if isinstance(s.target, K.IndexRef):
                self._note(s.target.array, "w")
                for i in s.target.indices:
                    self.expr(i)
                if s.op != "=":
                    self._note(s.target.array, "r")
            self.expr(s.value)
        elif isinstance(s, K.If):
            for cond, body in s.branches:
                self.expr(cond)
                self.stmts(body)
        elif isinstance(s, K.For):
            self.expr(s.start)
            self.expr(s.limit)
            self.expr(s.step)
            self.stmts(s.body)
        elif isinstance(s, K.While):
            self.expr(s.cond)
            self.stmts(s.body)
        elif isinstance(s, K.Barrier):
            self.info.uses_barrier = True


def analyze_kernel(body: list, params: list) -> KernelInfo:
    """Analyse a captured kernel body.

    ``params`` is the ordered (name, proxy) list; array parameters never
    touched by the kernel are classified ``'r'`` conservatively (they
    still get transferred, mirroring what a library without the analysis
    would do for every argument).
    """
    a = _Analyzer()
    a.stmts(body)
    for name, proxy in params:
        if isinstance(proxy, ArrayHandle) and name not in a.info.access:
            a.info.access[name] = "r"
        if getattr(proxy, "dtype", None) is D.double_:
            a.info.uses_double = True
    return a.info
