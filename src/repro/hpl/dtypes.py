"""HPL data types (paper §III-A).

``Array<type, ndim [, memoryFlag]>`` is the C++ template; here the element
types are :class:`HPLType` instances (``double_``, ``float_``, ``int_``,
...) and the convenience scalar classes ``Int``, ``Uint``, ``Double``, ...
play the same role as in the paper: host-side scalar containers that are
also usable to declare private scalar variables inside kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clc import types as T

# Memory flags (paper §III-A) ---------------------------------------------------

GLOBAL = "global"
LOCAL = "local"
CONSTANT = "constant"
PRIVATE = "private"

#: aliases matching the paper's capitalised flag names
Global = GLOBAL
Local = LOCAL
Constant = CONSTANT
Private = PRIVATE


@dataclass(frozen=True)
class HPLType:
    """An element type usable in HPL Arrays and scalars."""

    name: str                 # OpenCL C spelling
    cl: T.ScalarType          # the compiler's scalar type

    @property
    def np_dtype(self) -> np.dtype:
        return self.cl.np_dtype

    @property
    def is_float(self) -> bool:
        return self.cl.is_float

    @property
    def itemsize(self) -> int:
        return self.cl.size

    def __str__(self) -> str:
        return self.name


int_ = HPLType("int", T.INT)
uint_ = HPLType("uint", T.UINT)
long_ = HPLType("long", T.LONG)
ulong_ = HPLType("ulong", T.ULONG)
short_ = HPLType("short", T.SHORT)
ushort_ = HPLType("ushort", T.USHORT)
char_ = HPLType("char", T.CHAR)
uchar_ = HPLType("uchar", T.UCHAR)
float_ = HPLType("float", T.FLOAT)
double_ = HPLType("double", T.DOUBLE)

ALL_TYPES = (int_, uint_, long_, ulong_, short_, ushort_, char_, uchar_,
             float_, double_)

_BY_NAME = {t.name: t for t in ALL_TYPES}
_BY_NP = {t.np_dtype: t for t in ALL_TYPES}


def type_by_name(name: str) -> HPLType:
    return _BY_NAME[name]


def from_numpy_dtype(dtype) -> HPLType:
    """The HPL type matching a NumPy dtype (KeyError if unsupported)."""
    return _BY_NP[np.dtype(dtype)]


def infer_scalar_type(value) -> HPLType:
    """HPL type for a bare Python/NumPy scalar passed to a kernel."""
    if isinstance(value, (bool, np.bool_)):
        return int_
    if isinstance(value, (int, np.integer)):
        if isinstance(value, np.integer):
            return from_numpy_dtype(value.dtype)
        return int_ if -(2**31) <= value < 2**31 else long_
    if isinstance(value, (float, np.floating)):
        if isinstance(value, np.float32):
            return float_
        return double_
    raise TypeError(f"cannot infer an HPL scalar type for {value!r}")


def promote(a: HPLType, b: HPLType) -> HPLType:
    """The C usual-arithmetic-conversion result of two HPL types."""
    return from_numpy_dtype(
        T.usual_arithmetic_conversion(a.cl, b.cl).np_dtype)
