"""Convenience computation patterns (the paper's §VII future work:
"functions for typical patterns of computation").

Each pattern builds an ordinary HPL kernel behind the scenes — the same
capture/codegen/caching path ``eval`` uses — so patterns compose with
explicit kernels and inherit the transfer minimisation for free.

* :func:`map_arrays` — elementwise ``out[i] = fn(in0[i], in1[i], ...)``
* :func:`reduce_array` — total reduction with ``+``/``min``/``max``
* :func:`scan_array` — inclusive prefix sum (Hillis-Steele passes)
* :func:`stencil_1d` — 1-D convolution with clamped borders
"""

from __future__ import annotations

from ..errors import HPLError
from . import functions as F
from .array import Array
from .control import endif_, endwhile_, if_, while_
from .dtypes import GLOBAL, LOCAL, float_, int_
from .evaluator import eval as hpl_eval
from .predefined import gidx, idx, lidx, lszx, szx
from .scalars import Float, Int

#: pattern kernels are cached here so repeated calls reuse binaries
_KERNEL_CACHE: dict = {}


def _flat_size(array: Array) -> int:
    return array.size


# -- map -----------------------------------------------------------------------

def map_arrays(fn, out: Array, *inputs: Array, device=None,
               extra_args: tuple = ()):
    """Elementwise map: ``out[i] = fn(in0[i], in1[i], ..., *extra_args)``.

    ``fn`` receives HPL expressions (one element per input array, plus
    the extra scalar arguments) and returns the output-element
    expression.  All arrays must have the same number of elements.
    """
    for a in inputs:
        if _flat_size(a) != _flat_size(out):
            raise HPLError("map_arrays needs equally sized arrays")

    n_in = len(inputs)
    key = ("map", fn, n_in, len(extra_args))
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        def kernel(out_, *rest):
            ins = rest[:n_in]
            extras = rest[n_in:]
            out_[idx] = fn(*[a[idx] for a in ins], *extras)

        kernel.__name__ = f"hpl_map_{getattr(fn, '__name__', 'fn')}"
        _KERNEL_CACHE[key] = kernel

    ev = hpl_eval(kernel).global_(_flat_size(out))
    if device is not None:
        ev = ev.device(device)
    return ev(out, *inputs, *extra_args)


# -- reduce ---------------------------------------------------------------------

_REDUCE_OPS = {"+", "min", "max"}


def _combine(op: str, a, b, is_float: bool):
    if op == "+":
        return a + b
    if op == "min":
        return F.fmin(a, b) if is_float else F.min_(a, b)
    return F.fmax(a, b) if is_float else F.max_(a, b)


def _scalar_var_for(dtype, init=0):
    """Declare a private scalar variable of the array's element type."""
    from . import scalars as S

    cls = {c.dtype_static.name: c for c in S.SCALAR_CLASSES}[dtype.name]
    return cls(init)


def reduce_array(src: Array, op: str = "+", device=None,
                 group_size: int = 256, num_groups: int = 64) -> float:
    """Reduce all elements of ``src`` with ``op`` ('+', 'min', 'max').

    Runs the SHOC-style two-level tree (grid-stride accumulate, local
    tree, host finish) and returns the Python scalar.
    """
    if op not in _REDUCE_OPS:
        raise HPLError(f"unsupported reduction op {op!r}; "
                       f"use one of {sorted(_REDUCE_OPS)}")
    n = _flat_size(src)
    num_groups = max(1, min(num_groups, n // group_size or 1))

    key = ("reduce", op, src.dtype.name, group_size)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        dtype = src.dtype
        isf = dtype.is_float

        def kernel(g_in, g_out, count):
            sdata = Array(dtype, group_size, mem=LOCAL)
            # seed with this lane's first element (clamped: out-of-range
            # lanes read the last element, harmless for min/max and
            # zeroed below for '+')
            acc = _scalar_var_for(dtype)
            acc.assign(g_in[F.min_(idx, count - 1)])
            if op == "+":
                if_(idx >= count)
                acc.assign(0)
                endif_()
            i = Int()
            i.assign(idx + szx)
            while_(i < count)
            acc.assign(_combine(op, acc, g_in[i], isf))
            i += szx
            endwhile_()
            sdata[lidx] = acc
            F.barrier(F.LOCAL)
            s = Int()
            s.assign(lszx / 2)
            while_(s > 0)
            if_(lidx < s)
            sdata[lidx] = _combine(op, sdata[lidx], sdata[lidx + s], isf)
            endif_()
            F.barrier(F.LOCAL)
            s.assign(s / 2)
            endwhile_()
            if_(lidx == 0)
            g_out[gidx] = sdata[0]
            endif_()

        kernel.__name__ = f"hpl_reduce_{op if op != '+' else 'sum'}"
        _KERNEL_CACHE[key] = kernel

    partials = Array(src.dtype, num_groups)
    ev = hpl_eval(kernel).global_(group_size * num_groups) \
        .local_(group_size)
    if device is not None:
        ev = ev.device(device)
    ev(src, partials, Int(n))

    host = partials.read()
    if op == "+":
        return float(host.sum()) if src.dtype.is_float else int(host.sum())
    if op == "min":
        return float(host.min()) if src.dtype.is_float else int(host.min())
    return float(host.max()) if src.dtype.is_float else int(host.max())


# -- scan -----------------------------------------------------------------------------

def scan_array(src: Array, device=None) -> Array:
    """Inclusive prefix sum of a 1-D array.

    Hillis-Steele over global memory: ``ceil(log2 n)`` ping-pong passes;
    simple, work-inefficient, and exactly what the pattern library can
    later swap for a Blelchoch scan without changing callers.
    """
    if src.ndim != 1:
        raise HPLError("scan_array expects a 1-D array")
    n = src.size

    key = ("scan", src.dtype.name)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        dtype = src.dtype

        def kernel(dst, src_, offset, count):
            if_(idx < count)
            if_(idx >= offset)
            dst[idx] = src_[idx] + src_[idx - offset]
            endif_()
            if_(idx < offset)
            dst[idx] = src_[idx]
            endif_()
            endif_()

        kernel.__name__ = "hpl_scan_pass"
        _KERNEL_CACHE[key] = kernel

    ping = Array(src.dtype, n, data=src.read().copy())
    pong = Array(src.dtype, n)
    offset = 1
    while offset < n:
        ev = hpl_eval(kernel).global_(n)
        if device is not None:
            ev = ev.device(device)
        ev(pong, ping, Int(offset), Int(n))
        ping, pong = pong, ping
        offset *= 2
    return ping


# -- stencil -----------------------------------------------------------------------------

def stencil_1d(out: Array, src: Array, weights, device=None):
    """1-D stencil with clamped borders:
    ``out[i] = sum_k w[k] * src[clamp(i + k - r)]`` for radius
    ``r = len(weights) // 2``.  ``weights`` must have odd length."""
    if len(weights) % 2 != 1:
        raise HPLError("stencil_1d needs an odd number of weights")
    if out.size != src.size:
        raise HPLError("stencil_1d needs equally sized arrays")
    radius = len(weights) // 2
    wtuple = tuple(float(w) for w in weights)

    key = ("stencil", wtuple, src.dtype.name)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        def kernel(dst, src_, count):
            acc = Float(0)
            for k, w in enumerate(wtuple):
                j = Int()
                j.assign(F.clamp(idx + (k - radius), 0, count - 1))
                acc += w * src_[j]
            dst[idx] = acc

        kernel.__name__ = f"hpl_stencil_r{radius}"
        _KERNEL_CACHE[key] = kernel

    ev = hpl_eval(kernel).global_(out.size)
    if device is not None:
        ev = ev.device(device)
    return ev(out, src, Int(src.size))
