"""The HPL runtime: devices, kernel caches, transfers, statistics.

This is the machinery the paper credits for HPL's productivity (§V-A):
"OpenCL requires the manual setup of the environment, management of the
buffers both in the device and host memory and the transfers between
them, explicit load and compilation of the kernels, etc.  All these
necessary steps are highly automated and hidden from the user in HPL."

Also implemented here is the behaviour behind §V-B: "HPL stores
internally and reuses the binaries of the kernels it generates", so only
the first invocation of a kernel pays capture + code generation +
compilation; the wall-clock cost of those stages is recorded in
:class:`RuntimeStats` so the overhead experiments (Figures 8/9) can
measure exactly what the paper measured.
"""

from __future__ import annotations

import inspect
import time
import weakref
from dataclasses import dataclass, field

import numpy as np

from .. import ocl, trace
from ..errors import BuildProgramFailure, HPLError, KernelCaptureError
from ..trace import MetricsRegistry
from . import dtypes as D
from .analysis import KernelInfo, analyze_kernel
from .array import Array
from .builder import KernelBuilder
from .codegen import generate_source
from .proxy import ArrayHandle, ScalarParam
from .scalars import HostScalar


def _stat_property(key: str, cast):
    metric = "hpl." + key

    def fget(self):
        return cast(self.registry.counter(metric).value)

    def fset(self, value):
        self.registry.counter(metric).set(cast(value))

    return property(fget, fset, doc=f"backed by metric {metric!r}")


class RuntimeStats:
    """Aggregate counters over the life of the runtime.

    The attribute API is unchanged from the original dataclass
    (``stats.cache_hits += 1`` still works), but every field is now
    backed by a counter named ``hpl.<field>`` in a
    :class:`repro.trace.MetricsRegistry`, so the same numbers appear in
    metric snapshots/summaries without double bookkeeping.  Each
    :class:`HPLRuntime` owns a private registry, which is why
    ``reset_runtime()`` still zeroes everything.
    """

    #: field name -> type, mirrored one-to-one into registry counters
    FIELDS = {
        "kernels_captured": int,
        "kernels_built": int,
        "cache_hits": int,
        "launches": int,
        "codegen_seconds": float,
        "build_seconds": float,
        "h2d_transfers": int,
        "h2d_bytes": int,
        "d2h_transfers": int,
        "d2h_bytes": int,
        "h2d_seconds": float,
        "d2h_seconds": float,
    }

    def __init__(self, registry: MetricsRegistry | None = None, **init):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        for name in self.FIELDS:            # materialize at zero
            self.registry.counter("hpl." + name)
        for name, value in init.items():
            if name not in self.FIELDS:
                raise TypeError(f"unknown RuntimeStats field {name!r}")
            setattr(self, name, value)

    @property
    def transfer_seconds(self) -> float:
        """Total simulated transfer time (h2d + d2h), in seconds."""
        return self.h2d_seconds + self.d2h_seconds

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of kernel lookups served from the binary cache."""
        lookups = self.cache_hits + self.kernels_built
        return self.cache_hits / lookups if lookups else 0.0

    # Disk-cache counters live in the *process-global* registry (the
    # cache outlives any one runtime and is shared across runtimes), so
    # they are surfaced here read-only and survive reset_runtime().

    @property
    def disk_cache_hits(self) -> int:
        """Compiles served from the persistent cross-process cache."""
        return int(trace.get_registry()
                   .counter("hpl.disk_cache_hits").value)

    @property
    def disk_cache_misses(self) -> int:
        """Persistent-cache lookups that fell through to the compiler."""
        return int(trace.get_registry()
                   .counter("hpl.disk_cache_misses").value)

    @property
    def disk_cache_bytes(self) -> int:
        """Bytes of serialized IR written to the persistent cache."""
        return int(trace.get_registry()
                   .counter("hpl.disk_cache_bytes").value)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}

    def __eq__(self, other) -> bool:
        if not isinstance(other, RuntimeStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"RuntimeStats({inner})"


for _name, _cast in RuntimeStats.FIELDS.items():
    setattr(RuntimeStats, _name, _stat_property(_name, _cast))
del _name, _cast


class HPLDevice:
    """One device usable by ``eval(...).device(dev)``."""

    def __init__(self, ocl_device: ocl.Device, stats: RuntimeStats) -> None:
        self.ocl = ocl_device
        self.context = ocl.Context([ocl_device])
        self.queue = ocl.CommandQueue(self.context, ocl_device)
        self._stats = stats

    # -- info --------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.ocl.name

    @property
    def label(self) -> str:
        """Unique device identity (``name#index``); two devices of the
        same model share a name but never a label."""
        return self.ocl.label

    @property
    def is_cpu(self) -> bool:
        return self.ocl.is_cpu

    @property
    def supports_fp64(self) -> bool:
        return self.ocl.supports_fp64

    def __repr__(self) -> str:
        return f"<HPLDevice {self.name!r}>"

    # -- memory ---------------------------------------------------------------------

    def create_buffer(self, nbytes: int) -> ocl.Buffer:
        return ocl.Buffer(self.context, ocl.mem_flags.READ_WRITE,
                          size=nbytes)

    def write_buffer(self, buffer: ocl.Buffer, host: np.ndarray,
                     wait_for=None) -> ocl.Event:
        """Enqueue an h2d copy; returns its event (QUEUED if deferred).

        Stats are credited when the command actually completes, so
        deferred transfers still land in the right counters.
        """
        event = self.queue.enqueue_write_buffer(buffer, host,
                                                wait_for=wait_for)
        nbytes = host.nbytes
        stats = self._stats

        def account(ev):
            if ev.is_failed:
                return          # the copy never happened: nothing to bill
            stats.h2d_transfers += 1
            stats.h2d_bytes += nbytes
            stats.h2d_seconds += ev.duration

        event.add_callback(account)
        return event

    def read_buffer(self, buffer: ocl.Buffer, host: np.ndarray,
                    wait_for=None) -> ocl.Event:
        """Enqueue a d2h copy; returns its event (QUEUED if deferred)."""
        event = self.queue.enqueue_read_buffer(buffer, host,
                                               wait_for=wait_for)
        nbytes = host.nbytes
        stats = self._stats

        def account(ev):
            if ev.is_failed:
                return          # the copy never happened: nothing to bill
            stats.d2h_transfers += 1
            stats.d2h_bytes += nbytes
            stats.d2h_seconds += ev.duration

        event.add_callback(account)
        return event

    # -- execution mode ------------------------------------------------------------

    @property
    def deferred(self) -> bool:
        """Whether this device's queue records instead of executing."""
        return self.queue.deferred

    def set_deferred(self, flag: bool) -> None:
        """Switch between eager and deferred execution.

        Leaving deferred mode first flushes everything recorded, so no
        command is ever silently dropped.
        """
        flag = bool(flag)
        if not flag and self.queue.deferred:
            self.queue.finish()
        self.queue.deferred = flag

    def finish(self) -> None:
        """Execute and complete everything enqueued on this device."""
        self.queue.finish()


@dataclass
class CapturedKernel:
    """The device-independent result of tracing one kernel signature."""

    kernel_name: str
    source: str
    info: KernelInfo
    #: ordered (name, proxy) pairs as traced
    params: list
    codegen_seconds: float


@dataclass
class CompiledKernel:
    """A captured kernel built for one particular device."""

    captured: CapturedKernel
    program: ocl.Program
    build_seconds: float


@dataclass
class EvalResult:
    """Everything one ``eval`` invocation produced, for measurement.

    Simulated device time lives in the events; wall-clock HPL overhead
    (capture/codegen and OpenCL build) is recorded for the invocation
    that actually paid it (cold start), matching §V-B methodology.

    Events are threaded explicitly: ``transfers`` names, for each h2d
    copy this eval itself caused, the kernel parameter it fed — so
    transfer accounting is per-eval by construction, and host-triggered
    reads between evals can never be billed here.  On a deferred device
    the events may still be QUEUED; :meth:`wait` drives them (and the
    kernel) to completion.
    """

    kernel_event: ocl.Event
    transfer_events: list = field(default_factory=list)
    #: (kernel parameter name, h2d event) pairs, same events as above
    transfers: list = field(default_factory=list)
    codegen_seconds: float = 0.0
    build_seconds: float = 0.0
    from_cache: bool = True
    device: HPLDevice | None = None
    source: str = ""
    kernel_name: str = ""

    @property
    def events(self) -> list:
        """Every event this eval enqueued, transfers then the kernel."""
        return [*self.transfer_events, self.kernel_event]

    @property
    def complete(self) -> bool:
        return all(e.is_complete for e in self.events)

    def wait(self) -> "EvalResult":
        """Drive this eval's commands to completion (deferred mode).

        Raises the underlying error if any command failed; use
        :meth:`drive` + :attr:`failed_event` to inspect instead."""
        for event in self.events:
            event.wait()
        return self

    def drive(self) -> "EvalResult":
        """Execute this eval's commands without raising on failure.

        Recovery code (``cluster_eval``) drives results and inspects
        :attr:`failed_event` so one failed partition cannot abort its
        siblings mid-flight."""
        for event in self.events:
            event.drive()
        return self

    @property
    def failed_event(self) -> "ocl.Event | None":
        """The first abnormally terminated event, or None."""
        for event in self.events:
            if event.is_failed:
                return event
        return None

    @property
    def kernel_seconds(self) -> float:
        """Simulated kernel execution time."""
        return self.kernel_event.duration

    @property
    def transfer_seconds(self) -> float:
        """Simulated host->device transfer time paid by this eval."""
        return sum(e.duration for e in self.transfer_events)

    @property
    def overhead_seconds(self) -> float:
        """Wall-clock HPL overhead paid by this invocation."""
        return self.codegen_seconds + self.build_seconds


class HPLRuntime:
    """Process-wide singleton owning devices and kernel caches."""

    _instance: "HPLRuntime | None" = None

    def __init__(self) -> None:
        self.stats = RuntimeStats()
        platform = ocl.get_platforms()[0]
        self.devices = [HPLDevice(d, self.stats)
                        for d in platform.get_devices()]
        if not self.devices:
            raise HPLError("no devices available")
        #: (func key, signature) -> CapturedKernel
        self._captured: dict = {}
        #: (func key, signature, device) -> CompiledKernel
        self._compiled: dict = {}

    # -- singleton management ---------------------------------------------------------

    @classmethod
    def instance(cls) -> "HPLRuntime":
        if cls._instance is None:
            cls._instance = HPLRuntime()
        return cls._instance

    @classmethod
    def reset(cls) -> None:
        """Drop the runtime (used by tests and to change the platform)."""
        cls._instance = None

    # -- device selection ----------------------------------------------------------------

    @property
    def default_device(self) -> HPLDevice:
        """Paper §III-C: "the first device found in the system that is
        not a standard general-purpose CPU", else the first device."""
        for dev in self.devices:
            if not dev.is_cpu:
                return dev
        return self.devices[0]

    def device_by_name(self, fragment: str) -> HPLDevice:
        for dev in self.devices:
            if fragment.lower() in dev.name.lower():
                return dev
        raise HPLError(f"no device matching {fragment!r}; have: "
                       + ", ".join(d.name for d in self.devices))

    # -- cache keys --------------------------------------------------------------------------

    #: closure-cell values that may participate in a cache key by value;
    #: anything else falls back to identity (weak) keying, since HPL
    #: cannot tell whether the object influences the traced source
    _VALUE_TYPES = (int, float, complex, bool, str, bytes, frozenset,
                    type(None))

    @classmethod
    def _cell_signature(cls, value):
        """A hashable by-value stand-in for one closure cell, or None."""
        if isinstance(value, cls._VALUE_TYPES):
            return (type(value).__name__, value)
        if isinstance(value, tuple):
            parts = tuple(cls._cell_signature(v) for v in value)
            return None if None in parts else ("tuple", parts)
        return None

    def _func_key(self, func):
        """A cache key for the kernel function itself.

        Per-call lambdas and closures share one key as long as they
        share a code object and capture only plain values, so kernels
        built in a loop hit the cache instead of growing it without
        bound.  Functions whose closures capture arbitrary objects (or
        bound methods, whose ``self`` shapes the trace) are keyed by
        identity through a weak reference, so the cache entry dies with
        the function instead of pinning it forever.
        """
        code = getattr(func, "__code__", None)
        if code is not None and getattr(func, "__self__", None) is None:
            cells = []
            for cell in getattr(func, "__closure__", None) or ():
                try:
                    sig = self._cell_signature(cell.cell_contents)
                except ValueError:          # empty cell
                    sig = None
                if sig is None:
                    break
                cells.append(sig)
            else:
                return (code, tuple(cells))
        try:
            return weakref.ref(func, self._purge_func)
        except TypeError:
            return func                     # not weak-referenceable

    def _purge_func(self, ref) -> None:
        """Weakref callback: drop cache entries of a collected kernel."""
        self._captured = {k: v for k, v in self._captured.items()
                          if k[0] is not ref}
        self._compiled = {k: v for k, v in self._compiled.items()
                          if k[0] is not ref}
        self._update_cache_gauge()

    def _update_cache_gauge(self) -> None:
        self.stats.registry.gauge("hpl.cache_entries").set(
            len(self._captured) + len(self._compiled))

    @property
    def cache_entries(self) -> int:
        """Total captured + compiled cache entries (also a gauge)."""
        return len(self._captured) + len(self._compiled)

    # -- capture -----------------------------------------------------------------------------

    @staticmethod
    def arg_signature(args) -> tuple:
        parts = []
        for arg in args:
            if isinstance(arg, Array):
                parts.append(arg.signature())
            elif isinstance(arg, HostScalar):
                parts.append(("s", arg.dtype.name))
            else:
                parts.append(("s", D.infer_scalar_type(arg).name))
        return tuple(parts)

    def signature_of(self, func, args) -> tuple:
        return (self._func_key(func), self.arg_signature(args))

    def get_captured(self, func, args) -> CapturedKernel:
        key = self.signature_of(func, args)
        hit = self._captured.get(key)
        if hit is not None:
            return hit
        with trace.span("capture", category="hpl",
                        func=getattr(func, "__name__", repr(func))) as sp:
            captured = self._capture(func, args)
            sp.set_attrs(kernel=captured.kernel_name,
                         codegen_seconds=captured.codegen_seconds)
        self._captured[key] = captured
        self._update_cache_gauge()
        self.stats.kernels_captured += 1
        self.stats.codegen_seconds += captured.codegen_seconds
        self.stats.registry.histogram("hpl.codegen_per_kernel").observe(
            captured.codegen_seconds)
        return captured

    def _capture(self, func, args) -> CapturedKernel:
        t0 = time.perf_counter()
        try:
            sig = inspect.signature(func)
        except (TypeError, ValueError) as exc:
            raise KernelCaptureError(
                f"cannot inspect kernel function {func!r}: {exc}") from exc
        names = [p.name for p in sig.parameters.values()
                 if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)]
        star = [p.name for p in sig.parameters.values()
                if p.kind == p.VAR_POSITIONAL]
        if star and len(args) > len(names):
            names += [f"{star[0]}{i}" for i in
                      range(len(args) - len(names))]
        if len(names) != len(args):
            raise KernelCaptureError(
                f"kernel {func.__name__!r} declares {len(names)} "
                f"parameter(s) but eval got {len(args)} argument(s)")

        params: list = []
        proxies: list = []
        for name, arg in zip(names, args):
            if isinstance(arg, Array):
                proxy = arg.make_handle(name)
            elif isinstance(arg, ArrayHandle):
                raise KernelCaptureError(
                    "kernel proxies cannot be passed back into eval()")
            elif isinstance(arg, HostScalar):
                proxy = ScalarParam(name=name, dtype=arg.dtype,
                                    is_param=True)
            else:
                proxy = ScalarParam(name=name,
                                    dtype=D.infer_scalar_type(arg),
                                    is_param=True)
            params.append((name, proxy))
            proxies.append(proxy)

        import re

        from ..clc.tokens import KEYWORDS
        kernel_name = re.sub(r"[^A-Za-z0-9_]", "_", func.__name__)
        if not kernel_name or kernel_name[0].isdigit() \
                or kernel_name in KEYWORDS:
            kernel_name = "k_" + kernel_name

        builder = KernelBuilder(kernel_name)
        builder.reserve_names(names)
        with builder:
            result = func(*proxies)
        if result is not None:
            raise KernelCaptureError(
                f"kernel {func.__name__!r} returned a value; HPL kernels "
                "communicate with the host only through their arguments "
                "(paper §III-C)")
        if not builder.body:
            raise KernelCaptureError(
                f"kernel {func.__name__!r} recorded no statements — is it "
                "operating on its proxy arguments?")

        info = analyze_kernel(builder.body, params)
        source = generate_source(kernel_name, params, builder.body,
                                 info.access)
        elapsed = time.perf_counter() - t0
        return CapturedKernel(kernel_name=kernel_name, source=source,
                              info=info, params=params,
                              codegen_seconds=elapsed)

    # -- compile ------------------------------------------------------------------------------

    def get_compiled(self, func, args, device: HPLDevice
                     ) -> tuple[CompiledKernel, bool]:
        """The (compiled kernel, was_cached) pair for this invocation.

        The key carries the device's *resolved* engine name so switching
        backends mid-session (``hpl.configure(engine=)``) recompiles
        instead of reusing another backend's cached executable.
        """
        key = self.signature_of(func, args) + (device,
                                               device.ocl.engine_name)
        hit = self._compiled.get(key)
        if hit is not None:
            self.stats.cache_hits += 1
            return hit, True
        captured = self.get_captured(func, args)
        if captured.info.uses_double and not device.supports_fp64:
            raise BuildProgramFailure(
                f"kernel {captured.kernel_name!r} uses double precision, "
                f"which {device.name} does not support")
        with trace.span("build", category="hpl",
                        kernel=captured.kernel_name,
                        device=device.name) as sp:
            disk_hits_before = self.stats.disk_cache_hits
            t0 = time.perf_counter()
            program = ocl.Program(device.context, captured.source).build()
            build_seconds = time.perf_counter() - t0
            sp.set_attr("build_seconds", build_seconds)
            from .diskcache import active_cache
            if active_cache() is not None:
                sp.set_attr("disk_cache",
                            "hit" if self.stats.disk_cache_hits
                            > disk_hits_before else "miss")
        compiled = CompiledKernel(captured=captured, program=program,
                                  build_seconds=build_seconds)
        self._compiled[key] = compiled
        self._update_cache_gauge()
        self.stats.kernels_built += 1
        self.stats.build_seconds += build_seconds
        self.stats.registry.histogram("hpl.build_per_kernel").observe(
            build_seconds)
        return compiled, False


# -- module-level helpers -----------------------------------------------------------

def get_runtime() -> HPLRuntime:
    return HPLRuntime.instance()


def get_devices() -> list[HPLDevice]:
    """All devices HPL can evaluate kernels on."""
    return list(get_runtime().devices)


def get_device(fragment: str | int) -> HPLDevice:
    """A device by index or by name fragment (case-insensitive)."""
    rt = get_runtime()
    if isinstance(fragment, int):
        return rt.devices[fragment]
    return rt.device_by_name(fragment)


def reset_runtime() -> None:
    """Forget devices, caches and statistics (primarily for tests).

    Also drops collected kernel profiles; the profiler's enabled state
    is preserved so resetting mid-run (the benchsuite does, between the
    OpenCL and HPL variants) can't silently turn ``--profile`` off.
    """
    from .. import prof
    from ..ocl.engines import jit
    HPLRuntime.reset()
    prof.reset()
    jit.clear_cache()
