"""Multi-device / distributed-memory execution (§VII future work).

The paper closes by planning "to extend the high-productivity features
of HPL to handle distributed memory parallelism by running HPL on a
cluster of SMP nodes in which each node can contain multiple
heterogeneous computing devices".  This module implements that layer on
top of the simulated platform:

* a :class:`Cluster` is an ordered set of devices (possibly spanning the
  simulated "nodes" — every SimCL device has its own memory, so device
  boundaries already model node boundaries for data-movement purposes);
* :class:`DistributedArray` block-partitions a 1-D HPL Array across the
  cluster along its first dimension;
* :func:`cluster_eval` runs an elementwise-style kernel on every
  partition concurrently (owner-computes), giving each device its slice
  of every distributed argument plus the partition offset;
* a pluggable :class:`Scheduler` decides *how much* of the index space
  each device computes.  On a heterogeneous mix a uniform block split
  pins the makespan to the slowest device; the
  :class:`WeightedScheduler` sizes blocks from per-device throughput
  (device specs, refined by measured history — a self-calibrating
  feedback loop), and the :class:`DynamicScheduler` cuts the index
  space into guided chunks handed to devices as their event graphs
  drain, EngineCL-HGuided style.  See ``docs/cluster.md``.

Communication is staged through host memory (the "interconnect"), with
per-transfer costs accounted by each device's PCIe model — exactly how a
one-host multi-GPU OpenCL program moves data.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .. import trace
from ..errors import (ClusterExecutionError, DeadlineExceeded,
                      DeviceNotAvailable, DomainError, HPLError,
                      OutOfResources)
from ..ocl.faults import active_plan
from .array import Array
from .checkpoint import CheckpointStore
from .dtypes import HPLType
from .evaluator import eval as hpl_eval
from .runtime import HPLDevice, get_runtime
from .scalars import Int


def _block_bounds(n: int, k: int) -> list[tuple[int, int]]:
    """Contiguous near-even split of ``n`` elements into ``k`` blocks.

    With ``n < k`` the first ``n`` blocks get one element each and the
    rest are empty — callers skip empty partitions instead of failing.
    """
    if n < 0:
        raise DomainError(f"cannot partition {n} element(s)")
    if n < k:
        return [(min(i, n), min(i + 1, n)) for i in range(k)]
    base, extra = divmod(n, k)
    bounds = []
    start = 0
    for rank in range(k):
        size = base + (1 if rank < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class Cluster:
    """An ordered group of HPL devices acting as one execution target."""

    def __init__(self, devices=None) -> None:
        if devices is None:
            devices = [d for d in get_runtime().devices if not d.is_cpu]
            if not devices:
                devices = list(get_runtime().devices)
        devices = list(devices)
        if not devices:
            raise HPLError("a Cluster needs at least one device")
        for d in devices:
            if not isinstance(d, HPLDevice):
                raise HPLError(f"{d!r} is not an HPL device")
        self.devices = devices
        #: devices removed from the rotation by :meth:`quarantine`
        self.lost: list = []

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        lost = f", {len(self.lost)} lost" if self.lost else ""
        return f"<Cluster of {len(self.devices)} device(s){lost}>"

    def quarantine(self, device: HPLDevice) -> None:
        """Remove a permanently failed device from the rotation.

        Called by :func:`cluster_eval`'s recovery path; subsequent
        plans see only the survivors.  Quarantining the last device
        raises :class:`ClusterExecutionError` — there is nobody left
        to compute."""
        if device not in self.devices:
            return
        if len(self.devices) == 1:
            raise ClusterExecutionError(
                f"device {device.label!r} failed permanently and no "
                "other device remains in the cluster")
        self.devices.remove(device)
        self.lost.append(device)

    def readmit(self, device: HPLDevice) -> None:
        """Return a quarantined device to the rotation.

        Called by :func:`cluster_eval`'s probation path after a health
        probe succeeds; no-op when the device was never quarantined.
        The device rejoins at the end of the roster (its old rank may
        have been reassigned while it was out)."""
        if device not in self.lost:
            return
        self.lost.remove(device)
        self.devices.append(device)

    def partition_bounds(self, n: int) -> list[tuple[int, int]]:
        """Contiguous block partition of ``n`` elements over the devices.

        When ``n`` is smaller than the cluster, the first ``n`` devices
        get one element each and the remaining partitions are empty
        (``lo == hi``); :func:`cluster_eval` skips empty partitions.
        """
        return _block_bounds(n, len(self.devices))


# -- scheduling -----------------------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """One contiguous block of the index space, owned by one device.

    ``rank`` is the owning device's position in the cluster; dynamic
    schedules cut chunks before knowing their owner, so their plans
    carry ``rank=None`` until :func:`cluster_eval` assigns them.
    """

    lo: int
    hi: int
    rank: int | None = None

    @property
    def size(self) -> int:
        return self.hi - self.lo


def device_throughput(spec) -> float:
    """Spec-derived relative throughput estimate of one device.

    A pure compute proxy (``compute_units x clock x ipc``): exact for
    compute-bound kernels, pessimistic about memory-bound ones — which
    is why the weighted scheduler prefers *measured* per-kernel
    throughput once :class:`CalibrationStore` has seen the kernel run.
    """
    return spec.compute_units * spec.clock_ghz * spec.ipc


class CalibrationStore:
    """Measured per-(kernel, device) throughput history.

    Every :func:`cluster_eval` records, for each launch it made, the
    observed ``items / simulated second`` of that kernel on that device
    (an exponential moving average, so the estimate tracks the current
    problem regime).  The :class:`WeightedScheduler` consults this
    store before falling back to spec-derived estimates — closing the
    profiler -> cost-model -> scheduler feedback loop.

    Entries are keyed by device *identity* — the ``name#index`` label —
    never by bare model name: two same-model devices run at the same
    nominal speed but may see very different regimes (one behind a slow
    link, one quarantined and restored, one straggling under a fault
    plan), and merging their EMAs would corrupt both estimates.
    """

    #: EMA smoothing: weight of the newest observation
    ALPHA = 0.5

    def __init__(self) -> None:
        self._tput: dict = {}       # (kernel_name, device_label) -> it/s
        self._samples: dict = {}    # same key -> observation count

    @staticmethod
    def _label_of(device) -> str:
        """Accept an :class:`HPLDevice` or its ``name#index`` label."""
        return device if isinstance(device, str) else device.label

    def record(self, kernel_name: str, device,
               items: int, seconds: float) -> None:
        if items <= 0 or seconds <= 0.0:
            return
        key = (kernel_name, self._label_of(device))
        observed = items / seconds
        prev = self._tput.get(key)
        self._tput[key] = observed if prev is None \
            else self.ALPHA * observed + (1.0 - self.ALPHA) * prev
        self._samples[key] = self._samples.get(key, 0) + 1

    def throughput(self, kernel_name: str, device):
        """Measured items/second, or ``None`` if never observed.

        ``device`` is an :class:`HPLDevice` or its unique label
        (``name#index``)."""
        return self._tput.get((kernel_name, self._label_of(device)))

    def samples(self, kernel_name: str, device) -> int:
        return self._samples.get(
            (kernel_name, self._label_of(device)), 0)

    def decay(self, kernel_name: str, device, factor: float) -> None:
        """Scale the measured throughput down by ``factor``.

        Used when a quarantined device is readmitted on probation: its
        history predates the failure, so the estimate is discounted and
        the device must re-earn its weight through fresh observations
        (the EMA recovers in a few samples if it really is healthy)."""
        key = (kernel_name, self._label_of(device))
        if key in self._tput:
            self._tput[key] *= factor

    def reset(self) -> None:
        self._tput.clear()
        self._samples.clear()


#: process-wide store; survives ``reset_runtime()`` on purpose — device
#: labels are stable across runtime resets (the roster keeps its
#: order), so measured speeds carry over
_CALIBRATION = CalibrationStore()


def calibration() -> CalibrationStore:
    """The process-wide scheduler calibration store."""
    return _CALIBRATION


def _resolve_weights(weights, calibrate: bool, cluster: Cluster,
                     kernel_name: str | None) -> tuple[list[float], str]:
    """Per-device throughput weights and their source
    (``explicit`` | ``calibrated`` | ``spec``).

    Explicit weights win; else measured per-kernel throughputs from the
    :class:`CalibrationStore` (only when *all* device models of the
    cluster have history for this kernel, so measured and estimated
    numbers never mix); else :func:`device_throughput` of the specs.
    """
    if weights is not None:
        if len(weights) != len(cluster.devices):
            raise HPLError(
                f"{len(weights)} weight(s) for a "
                f"{len(cluster.devices)}-device cluster")
        return list(weights), "explicit"
    if calibrate and kernel_name is not None:
        measured = [_CALIBRATION.throughput(kernel_name, d.label)
                    for d in cluster.devices]
        if all(t is not None for t in measured):
            return list(measured), "calibrated"
    return [device_throughput(d.ocl.spec)
            for d in cluster.devices], "spec"


class Scheduler:
    """Partitioning policy interface used by ``cluster_eval(schedule=)``.

    Static schedulers implement :meth:`plan`, returning one
    :class:`Partition` per device (possibly empty).  Dynamic schedulers
    (``dynamic = True``) implement :meth:`next_chunk` instead:
    :func:`cluster_eval` asks for one chunk at a time, on behalf of the
    device whose event graph drains first.
    """

    name = "?"
    dynamic = False

    def plan(self, n: int, cluster: Cluster,
             kernel_name: str | None = None) -> list[Partition]:
        raise NotImplementedError

    def next_chunk(self, remaining: int, n_devices: int,
                   weight_share: float, min_chunk: int = 1) -> int:
        """Size of the next chunk handed to a requesting device.

        ``weight_share`` is the requesting device's fraction of the
        cluster's total throughput weight.  Only dynamic schedulers
        implement this.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class UniformScheduler(Scheduler):
    """Near-even block partition — one block per device, sizes within
    one element of each other.  The right choice for homogeneous
    clusters; on skewed mixes the makespan is pinned to the slowest
    device."""

    name = "uniform"

    def plan(self, n, cluster, kernel_name=None):
        return [Partition(lo, hi, rank)
                for rank, (lo, hi)
                in enumerate(_block_bounds(n, len(cluster.devices)))]


class WeightedScheduler(Scheduler):
    """Static weighted partition: each device's block is proportional to
    its throughput.

    Weights come from, in order of preference: the explicit ``weights``
    argument; the :class:`CalibrationStore` (measured items/second of
    this kernel on every device model of the cluster — used only when
    *all* devices have history, so measured and estimated numbers never
    mix); else :func:`device_throughput` of each device's spec.
    """

    name = "weighted"

    def __init__(self, weights=None, calibrate: bool = True) -> None:
        if weights is not None:
            weights = [float(w) for w in weights]
            if any(w < 0 for w in weights):
                raise HPLError("scheduler weights must be >= 0")
            if sum(weights) <= 0:
                raise HPLError("scheduler weights must sum to > 0")
        self.weights = weights
        self.calibrate = calibrate

    def weights_for(self, cluster: Cluster,
                    kernel_name: str | None = None
                    ) -> tuple[list[float], str]:
        """The per-device weights and their source
        (``explicit`` | ``calibrated`` | ``spec``)."""
        return _resolve_weights(self.weights, self.calibrate, cluster,
                                kernel_name)

    def plan(self, n, cluster, kernel_name=None):
        weights, _source = self.weights_for(cluster, kernel_name)
        total = sum(weights)
        quotas = [n * w / total for w in weights]
        sizes = [int(q) for q in quotas]
        shortfall = n - sum(sizes)
        # largest-remainder rounding, fastest devices first on ties
        order = sorted(range(len(sizes)),
                       key=lambda i: (quotas[i] - sizes[i], weights[i]),
                       reverse=True)
        for i in order[:shortfall]:
            sizes[i] += 1
        partitions = []
        start = 0
        for rank, size in enumerate(sizes):
            partitions.append(Partition(start, start + size, rank))
            start += size
        return partitions


class DynamicScheduler(Scheduler):
    """Dynamic chunk scheduler (EngineCL's "HGuided" policy).

    The index space is cut into contiguous chunks *on demand*: whenever
    a device's event graph drains, it is handed the next chunk, sized
    ``remaining x weight_share / factor`` — the device's throughput
    share of the remaining work, damped by ``factor`` so the tail
    shrinks geometrically and keeps the finish times tight.  Fast
    devices therefore pull big chunks early and often; slow devices
    nibble ``min_chunk``-sized pieces they are guaranteed to finish
    quickly.  Unlike the static :class:`WeightedScheduler` this needs no
    accurate model up front — mis-estimates only cost a chunk, not the
    whole partition — at the price of one launch (and its transfers)
    per chunk.

    ``chunk_size`` switches to fixed-size self-scheduling (every chunk
    the same size regardless of device); ``min_chunk`` floors the
    guided sizes (default ``n / (16 x devices)``).
    """

    name = "dynamic"
    dynamic = True

    def __init__(self, chunk_size: int | None = None, factor: int = 2,
                 min_chunk: int | None = None, weights=None,
                 calibrate: bool = True) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise HPLError(f"chunk_size must be >= 1, got {chunk_size}")
        if factor < 1:
            raise HPLError(f"factor must be >= 1, got {factor}")
        if min_chunk is not None and min_chunk < 1:
            raise HPLError(f"min_chunk must be >= 1, got {min_chunk}")
        self.chunk_size = chunk_size
        self.factor = factor
        self.min_chunk = min_chunk
        self.weights = weights
        self.calibrate = calibrate

    def weights_for(self, cluster: Cluster,
                    kernel_name: str | None = None
                    ) -> tuple[list[float], str]:
        return _resolve_weights(self.weights, self.calibrate, cluster,
                                kernel_name)

    def min_chunk_for(self, n: int, n_devices: int) -> int:
        if self.min_chunk is not None:
            return self.min_chunk
        return max(1, n // (16 * n_devices))

    def next_chunk(self, remaining, n_devices, weight_share,
                   min_chunk=1):
        if self.chunk_size is not None:
            return min(int(self.chunk_size), remaining)
        size = int(remaining * weight_share / self.factor)
        size = max(size, min_chunk)
        return min(size, remaining)

    def plan(self, n, cluster, kernel_name=None):
        raise HPLError(
            "DynamicScheduler cuts chunks on demand during cluster_eval; "
            "it has no static plan")


#: schedule-name -> scheduler class, for ``cluster_eval(schedule="...")``
SCHEDULERS = {
    "uniform": UniformScheduler,
    "weighted": WeightedScheduler,
    "dynamic": DynamicScheduler,
}


def get_scheduler(spec) -> Scheduler | None:
    """Resolve a ``schedule=`` argument: None, a policy name, or a
    :class:`Scheduler` instance."""
    if spec is None or isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, str):
        try:
            return SCHEDULERS[spec]()
        except KeyError:
            raise HPLError(
                f"unknown schedule {spec!r}; available: "
                + ", ".join(sorted(SCHEDULERS))) from None
    raise HPLError(f"schedule must be None, a name or a Scheduler, "
                   f"got {spec!r}")


# -- distributed data -----------------------------------------------------------


class DistributedArray:
    """A 1-D array block-partitioned across a :class:`Cluster`.

    The full contents live in one host buffer; each partition is an
    ordinary HPL :class:`Array` *viewing* its slice (so repartitioning
    never copies host memory), owned by one device.  :meth:`gather`
    assembles the full contents on the host, overlapping the per-device
    d2h transfers on the simulated timeline.  Empty partitions are
    represented as ``None`` and skipped everywhere.
    """

    def __init__(self, dtype: HPLType, n: int, cluster: Cluster,
                 data: np.ndarray | None = None,
                 bounds=None) -> None:
        self.dtype = dtype
        self.n = int(n)
        if self.n < 1:
            raise HPLError("a DistributedArray needs at least 1 element")
        self.cluster = cluster
        self._full = np.zeros(self.n, dtype=dtype.np_dtype)
        if data is not None:
            data = np.asarray(data, dtype=dtype.np_dtype)
            if data.size != self.n:
                raise HPLError(
                    f"provided {data.size} element(s) for a "
                    f"{self.n}-element DistributedArray")
            self._full[:] = data.reshape(self.n)
        bounds = cluster.partition_bounds(self.n) if bounds is None \
            else [(int(lo), int(hi)) for lo, hi in bounds]
        self._check_bounds(bounds)
        self.bounds = bounds
        self.parts = self._make_parts(bounds)
        #: d2h events of the most recent :meth:`gather`, for timelines
        self.last_gather_events: list = []

    def _check_bounds(self, bounds) -> None:
        if not bounds or bounds[0][0] != 0 or bounds[-1][1] != self.n:
            raise HPLError(f"partition bounds {bounds} do not cover "
                           f"[0, {self.n})")
        for (alo, ahi), (blo, bhi) in zip(bounds, bounds[1:]):
            if ahi != blo or alo > ahi or blo > bhi:
                raise HPLError(
                    f"partition bounds {bounds} are not a contiguous "
                    "non-overlapping cover")

    def _make_parts(self, bounds) -> list:
        return [Array(self.dtype, hi - lo, data=self._full[lo:hi])
                if hi > lo else None
                for lo, hi in bounds]

    @property
    def size(self) -> int:
        return self.n

    def repartition(self, bounds) -> "DistributedArray":
        """Re-slice the array along new partition bounds.

        Device-resident partitions are first synchronised back to the
        host (their d2h copies overlap across devices); the new parts
        start host-valid, so the next launch pays the h2d copies of the
        new layout — the real cost of re-balancing data.
        """
        bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        if bounds == self.bounds:
            return self
        self._check_bounds(bounds)
        self._sync_parts()
        self.bounds = bounds
        self.parts = self._make_parts(bounds)
        return self

    def _sync_parts(self) -> list:
        """Refresh the host copy of every partition.

        All stale partitions' d2h copies are *enqueued* before any is
        waited on, so transfers from different devices overlap on the
        simulated timeline instead of serializing with the host loop.
        Returns the transfer events (one per partition that needed one).
        """
        events = []
        for part in self.parts:
            if part is None:
                continue
            event = part.enqueue_host_sync()
            if event is not None:
                events.append(event)
        for event in events:
            event.wait()
        return events

    def gather(self) -> np.ndarray:
        """Assemble the full array on the host (device->host transfers).

        The per-device transfers overlap on the simulated timeline;
        their events are kept in :attr:`last_gather_events` so
        :func:`timeline_of` can measure the overlap.  Empty (``None``)
        partitions — common after a :meth:`repartition` with more
        blocks than elements — are skipped, and the event list holds
        only real transfer events (one per partition that needed a
        copy), never placeholder holes.
        """
        self.last_gather_events = self._sync_parts()
        return self._full.copy()

    def scatter(self, data: np.ndarray) -> None:
        """Replace the contents from a host array.

        Writes go through the *full* host buffer — the single source of
        truth every partition views — never through a partition's
        ``data`` accessor: the old contents are about to be overwritten
        wholesale, so pulling them back from the devices first (which
        ``part.data`` does) would be pure waste, and any stale
        pre-``repartition`` view someone kept alive must not receive
        the new contents.  Device copies are invalidated so the next
        launch re-uploads the new data.
        """
        data = np.asarray(data, dtype=self.dtype.np_dtype)
        if data.size != self.n:
            raise HPLError(
                f"scatter of {data.size} element(s) into a "
                f"{self.n}-element DistributedArray")
        self._full[:] = data.reshape(self.n)
        for part in self.parts:
            if part is not None:
                part._host_valid = True
                part.host_event = None
                part._invalidate_devices()

    def __repr__(self) -> str:
        return (f"<DistributedArray {self.dtype}[{self.n}] over "
                f"{len(self.cluster)} device(s), "
                f"{sum(p is not None for p in self.parts)} partition(s)>")


# -- evaluation -----------------------------------------------------------------


def _local_args(args, dist_args, part: int) -> list:
    """Per-partition argument list: slices swapped in, offset/count added."""
    lo, hi = dist_args[0].bounds[part]
    local = []
    for a in args:
        if isinstance(a, DistributedArray):
            local.append(a.parts[part])
        else:
            local.append(a)
    local.append(Int(lo))
    local.append(Int(hi - lo))
    return local


def _check_broadcast_writes(kernel, args, local_args) -> None:
    """Reject kernels that write a broadcast plain :class:`Array`.

    Each rank writing its own copy would invalidate the other ranks'
    copies mid-loop, making the final contents depend on rank order —
    an error, not a race the user should debug.  Called once per
    partition with that partition's *actual* local arguments, so the
    capture inspected is the capture that will run (capture keys depend
    on argument signatures and closure values, which this must not
    assume are partition-invariant).
    """
    captured = get_runtime().get_captured(kernel, local_args)
    for (name, _proxy), arg in zip(captured.params, args):
        if isinstance(arg, Array) and captured.info.writes(name):
            raise HPLError(
                f"kernel {captured.kernel_name!r} writes its broadcast "
                f"Array argument {name!r}; every device would invalidate "
                "the other devices' copies, leaving the result dependent "
                "on execution order.  Partition it as a DistributedArray "
                "(or make the kernel read-only on it) instead")


def _launch(kernel, device: HPLDevice, args, dist_args, part: int):
    lo, hi = dist_args[0].bounds[part]
    return hpl_eval(kernel).global_(hi - lo).device(device)(
        *_local_args(args, dist_args, part))


def _record_calibration(kernel_name: str, launches) -> None:
    """Feed observed throughputs back into the calibration store."""
    for device, partition, result in launches:
        try:
            seconds = result.kernel_event.duration
        except Exception:       # profiling disabled on a custom queue
            continue
        _CALIBRATION.record(kernel_name, device.label,
                            partition.size, seconds)


# -- failure recovery -----------------------------------------------------------


@dataclass
class FailureSummary:
    """What recovery had to do during one :func:`cluster_eval`.

    Attached to the returned :class:`ClusterResult` as ``.failures``;
    all-zero (``clean``) on a healthy run.
    """

    #: individual command/launch failures classified as transient
    transient_failures: int = 0
    #: retry attempts made (each adds a capped-exponential backoff)
    retries: int = 0
    #: labels of devices quarantined mid-run, in quarantine order
    devices_lost: list = field(default_factory=list)
    #: index-space items whose blocks had to be re-run elsewhere
    requeued_items: int = 0
    #: total simulated backoff delay injected into device clocks
    backoff_seconds: float = 0.0
    #: straggler chunks won by a speculative duplicate (the original
    #: launch was cancelled without running)
    speculative_wins: int = 0
    #: the run hit ``cluster_eval(deadline=)`` and was aborted
    deadline_missed: bool = False
    #: blocks restored from a checkpoint instead of recomputed
    resumed_blocks: int = 0
    #: labels of quarantined devices readmitted after a health probe
    readmitted: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no fault touched the run."""
        return not (self.transient_failures or self.devices_lost
                    or self.requeued_items or self.speculative_wins
                    or self.deadline_missed or self.resumed_blocks)

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (benchsuite ``--json`` metadata)."""
        return {
            "transient_failures": self.transient_failures,
            "retries": self.retries,
            "devices_lost": list(self.devices_lost),
            "requeued_items": self.requeued_items,
            "backoff_seconds": self.backoff_seconds,
            "speculative_wins": self.speculative_wins,
            "deadline_missed": self.deadline_missed,
            "resumed_blocks": self.resumed_blocks,
            "readmitted": list(self.readmitted),
            "clean": self.clean,
        }


class ClusterResult(list):
    """The per-partition :class:`EvalResult` list of one
    :func:`cluster_eval`, with the recovery record on ``.failures``.

    A plain ``list`` subclass: existing call sites that index, iterate
    or ``+=`` the result keep working unchanged.
    """

    def __init__(self, results, failures: FailureSummary) -> None:
        super().__init__(results)
        self.failures = failures


#: the FailureSummary of the most recent cluster_eval in this process,
#: recorded even when the run aborted (deadline, all devices lost)
_LAST_SUMMARY: FailureSummary | None = None


def last_failure_summary() -> FailureSummary | None:
    """The :class:`FailureSummary` of the most recent
    :func:`cluster_eval` (``None`` before the first one).  Recorded
    even for aborted runs, so tooling — e.g. the benchsuite's
    ``--json`` metadata — can report what recovery had to do."""
    return _LAST_SUMMARY


#: backoff doubles per attempt, capped at base * 2**_BACKOFF_CAP
_BACKOFF_CAP = 3


def _jitter(key: tuple) -> float:
    """Deterministic uniform draw in [0, 1) for a retry site.

    Derived by hashing the fault-plan seed (0 when no plan is active)
    with the caller's key, so identical runs reproduce identical
    delays bit-for-bit while distinct retry sites decorrelate."""
    plan = active_plan()
    seed = plan.seed if plan is not None else 0
    token = hashlib.sha256(repr((seed,) + tuple(key)).encode()).digest()
    return int.from_bytes(token[:8], "big") / 2.0 ** 64


def _backoff_delay(base: float, attempt: int, key: tuple = ()) -> float:
    """Capped exponential backoff for retry ``attempt`` (0-based).

    With a ``key`` (device label, block bounds, attempt) the delay gets
    deterministic *full jitter* — scaled by a seeded uniform draw in
    (0, 1] — so simultaneous transient failures on multiple devices
    retry staggered instead of in lockstep, while runs stay
    bit-reproducible.  Without a key the delay is the bare cap."""
    delay = base * (2 ** min(attempt, _BACKOFF_CAP))
    if not key:
        return delay
    return delay * (1.0 - _jitter(key))


def _failure_kind(error) -> str:
    """Classify a launch/command failure for the recovery policy.

    ``permanent`` (device gone — quarantine, no retry), ``transient``
    (resource hiccup — retry with backoff), or ``fatal`` (a genuine
    bug such as a kernel trap: re-raise, recovery would only mask it).
    """
    if isinstance(error, DeviceNotAvailable):
        return "permanent"
    if isinstance(error, OutOfResources):
        return "transient"
    return "fatal"


# -- resilience: watchdog, probation, deadline, checkpoint ----------------------


class _Watchdog:
    """Per-chunk expected-duration model driving speculative re-execution.

    Built from the :class:`CalibrationStore` at run start: for every
    device it snapshots the measured items/second of this kernel.  A
    chunk is speculated when (a) its assigned device's calibrated
    throughput trails the best healthy device's by more than ``factor``
    and (b) some other device is predicted to *complete* the chunk —
    queue drain included — more than ``factor`` times sooner.  The
    second condition is what keeps a merely-slower device in a healthy
    heterogeneous cluster un-speculated: its chunks are already sized
    down by the scheduler, so rerouting them wins little, whereas a
    genuine straggler's minimum-size chunk still takes orders of
    magnitude longer than any peer would need.  First predicted
    completion wins — decided on the model the way a real watchdog
    decides on wall-clock observations.  Devices without calibration
    history are never flagged (no expectation, no watchdog).
    """

    def __init__(self, kernel_name: str, devices, factor: float) -> None:
        self.factor = float(factor)
        self.tput = [_CALIBRATION.throughput(kernel_name, d.label)
                     for d in devices]

    def track(self, kernel_name: str, device) -> None:
        """Register a device readmitted mid-run (appended rank)."""
        self.tput.append(_CALIBRATION.throughput(kernel_name,
                                                 device.label))

    def pick(self, rank: int, size: int, active, avail_ns: int,
             devices) -> int | None:
        """Rank to speculatively duplicate a straggling chunk onto.

        None when the chunk is within budget on its assigned device,
        when no expectation exists, or when no healthy candidate is
        predicted to finish before the assigned device would.
        """
        mine = self.tput[rank] if rank < len(self.tput) else None
        if not mine:
            return None
        best = max((self.tput[r] for r in active
                    if r < len(self.tput) and self.tput[r]), default=None)
        if not best or mine * self.factor > best:
            return None             # within budget of the best device
        predicted_end = avail_ns + size / mine * 1e9
        best_rank, best_end = None, predicted_end
        for r in active:
            if r == rank or r >= len(self.tput) or not self.tput[r]:
                continue
            start = max(int(devices[r].queue.clock * 1e9), avail_ns)
            end = start + size / self.tput[r] * 1e9
            if end < best_end:
                best_rank, best_end = r, end
        if best_rank is None:
            return None
        # the reroute must win by the same margin: time-to-completion
        # measured from now, queue drain included
        if (best_end - avail_ns) * self.factor > predicted_end - avail_ns:
            return None
        return best_rank


@dataclass
class _Resilience:
    """Per-run resilience options + state shared by the runners."""

    watchdog: _Watchdog | None = None
    #: absolute cutoff on the simulated timeline (ns), or None
    deadline_ns: int | None = None
    store: CheckpointStore | None = None
    #: snapshot after this many newly completed blocks
    every: int = 1
    run_id: dict | None = None
    #: merged (lo, hi) ranges restored from a checkpoint
    resumed: list = field(default_factory=list)
    probation: bool = False
    #: completed chunks between probe rounds (dynamic mode)
    probe_interval: int = 4
    #: calibration decay applied to a readmitted device
    decay: float = 0.5
    #: the run's deferred flag, applied to readmitted devices...
    deferred: bool = True
    #: ...and undone afterwards: (device, previous flag) pairs
    restore: list = field(default_factory=list)


def _merge_ranges(ranges) -> list:
    """Sorted union of (lo, hi) ranges, adjacent/overlapping merged."""
    merged: list = []
    for lo, hi in sorted((int(lo), int(hi)) for lo, hi in ranges):
        if hi <= lo:
            continue
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _gaps(merged, n: int) -> list:
    """The (lo, hi) ranges of [0, n) *not* covered by ``merged``."""
    gaps = []
    cursor = 0
    for lo, hi in merged:
        if lo > cursor:
            gaps.append((cursor, lo))
        cursor = max(cursor, hi)
    if cursor < n:
        gaps.append((cursor, n))
    return gaps


def _fully_covered(lo: int, hi: int, merged) -> bool:
    """Is [lo, hi) entirely inside one merged restored range?"""
    return any(mlo <= lo and hi <= mhi for mlo, mhi in merged)


def _probe_device(device, kernel_name: str) -> bool:
    """One health probe: a tiny marker launch, driven to a terminal
    state.  True when the device completed it (fault plans fail probes
    on devices that are still dead)."""
    trace.get_registry().counter("cluster.probes").inc()
    event = device.queue.enqueue_marker(wait_for=[])
    event.drive()
    healthy = event.is_complete
    with trace.span("probe", category="cluster", kernel=kernel_name,
                    device=device.label, healthy=healthy):
        pass
    return healthy


def _readmit_lost(cluster, kernel_name: str, summary, res) -> list:
    """Probe every quarantined device; readmit the healthy ones.

    Readmitted devices come back with their calibration decayed (they
    must re-earn their weight) and the run's deferred flag applied;
    the flag is restored by ``cluster_eval``'s cleanup.  Returns the
    readmitted devices.
    """
    registry = trace.get_registry()
    revived = []
    for device in list(cluster.lost):
        if not _probe_device(device, kernel_name):
            continue
        cluster.readmit(device)
        _CALIBRATION.decay(kernel_name, device.label, res.decay)
        res.restore.append((device, device.deferred))
        device.set_deferred(res.deferred)
        summary.readmitted.append(device.label)
        registry.counter("cluster.readmitted").inc()
        with trace.span("recover", category="cluster", action="readmit",
                        kernel=kernel_name, device=device.label,
                        calibration_decay=res.decay):
            pass
        revived.append(device)
    return revived


def _sync_blocks(slot_parts: dict, completed) -> list:
    """Drive d2h syncs for completed blocks; the blocks whose data
    actually reached the host (a device dying between completion and
    checkpoint drops its block, which then simply re-runs on resume)."""
    good = []
    for key in completed:
        ok = True
        for part in slot_parts.get(key, ()):
            event = part.enqueue_host_sync()
            if event is None:
                continue
            event.drive()
            if event.is_failed:
                ok = False
        if ok:
            good.append(key)
    return good


def _write_checkpoint(res: _Resilience, dist_args, slot_parts: dict,
                      completed) -> None:
    """Snapshot the host buffers + completed blocks atomically."""
    good = _sync_blocks(slot_parts, sorted(completed))
    with trace.span("checkpoint_write", category="cluster",
                    blocks=len(good)) as sp:
        written = res.store.save(res.run_id,
                                 [a._full for a in dist_args], good)
        sp.set_attr("bytes", written)
    trace.get_registry().counter("cluster.checkpoint_bytes").inc(written)


def _deadline_abort(res: _Resilience, summary, dist_args, slot_parts,
                    completed, launches, end_ns: int) -> None:
    """Hard timeout: checkpoint what finished, raise with the partial
    result attached."""
    summary.deadline_missed = True
    trace.get_registry().counter("cluster.deadline_missed").inc()
    if res.store is not None:
        _write_checkpoint(res, dist_args, slot_parts, completed)
    else:
        _sync_blocks(slot_parts, sorted(completed))
    partial = ClusterResult(
        [result for _device, _partition, result in launches], summary)
    budget_ns = res.deadline_ns if res.deadline_ns is not None else 0
    raise DeadlineExceeded(
        f"cluster_eval exceeded its deadline: simulated time reached "
        f"{end_ns * 1e-9:.6f}s, budget ended at {budget_ns * 1e-9:.6f}s "
        f"({len(launches)} block(s) completed)",
        result=partial, failures=summary)


def _reclaim_part(part, dead) -> bool:
    """Roll a partition stranded on dead devices back to the host.

    A part is *stranded* when its only valid copies sit on quarantined
    devices: the data cannot be fetched, but the part's host slice
    still holds the pre-launch contents, so the owning block can simply
    be recomputed.  Returns True when the part was stranded (callers
    must requeue its block).
    """
    if part is None or part._host_valid:
        return False
    holders = [d for d, ok in part._device_valid.items() if ok]
    if not holders or not all(d in dead for d in holders):
        return False
    part._host_valid = True     # stale data; the block will re-run
    for d in holders:
        part._device_valid[d] = False
    part._device_event.clear()
    part.host_event = None
    return True


def _reclaim_stranded(dist_args, dead) -> set:
    """Reclaim every stranded partition; the set of their bounds."""
    stranded = set()
    for a in dist_args:
        for (lo, hi), part in zip(a.bounds, a.parts):
            if _reclaim_part(part, dead):
                stranded.add((lo, hi))
    return stranded


def _retry_span(kernel_name, device, lo, hi, attempt, delay) -> None:
    trace.get_registry().counter("cluster.retries").inc()
    with trace.span("recover", category="cluster", action="retry",
                    kernel=kernel_name, device=device.label, lo=lo,
                    hi=hi, attempt=attempt, backoff_seconds=delay):
        pass


def _repartition_with_retries(dist_args, bounds, max_retries,
                              backoff, summary) -> None:
    """Repartition all arrays, retrying transient sync failures.

    ``repartition`` is idempotent per array (already-moved arrays
    early-return, already-synced parts are skipped), so re-running the
    whole loop after a transient d2h failure only redoes the failed
    work.  A *permanent* failure here means a device died holding data
    recovery had not reclaimed — unrecoverable by re-running blocks, so
    it surfaces as :class:`ClusterExecutionError`.
    """
    attempt = 0
    while True:
        try:
            for a in dist_args:
                a.repartition(bounds)
            return
        except DeviceNotAvailable as exc:
            raise ClusterExecutionError(
                "a device died while re-balancing partitions; its "
                "unsynchronised contents are unrecoverable") from exc
        except OutOfResources:
            if attempt >= max_retries:
                raise
            delay = _backoff_delay(backoff, attempt,
                                   key=("repartition", attempt))
            attempt += 1
            summary.transient_failures += 1
            summary.retries += 1
            summary.backoff_seconds += delay
            trace.get_registry().counter("cluster.retries").inc()
            with trace.span("recover", category="cluster",
                            action="retry", op="repartition",
                            attempt=attempt, backoff_seconds=delay):
                pass


def _quarantine_last_chance(cluster, device, kernel_name, summary,
                            res) -> None:
    """Quarantine ``device``, probing the quarantined for readmission
    first when that would otherwise empty the cluster.

    The all-devices-lost path stays fatal only after every quarantined
    device has also failed its readmission probe.
    """
    try:
        cluster.quarantine(device)      # raises when nobody is left
    except ClusterExecutionError:
        if res is None or not res.probation \
                or not _readmit_lost(cluster, kernel_name, summary, res):
            raise
        cluster.quarantine(device)      # a probe revived a survivor


def _quarantine_and_requeue(kernel_name, cluster, dist_args, lost,
                            max_retries, backoff, summary, done,
                            res=None) -> list:
    """Quarantine dead devices and split their blocks over survivors.

    ``lost`` maps each dead device to the partitions that failed on it.
    Blocks whose data was stranded on a dead device (including blocks
    that *succeeded* earlier — their results are dropped from ``done``)
    are rolled back to the host and split over the surviving devices;
    every DistributedArray is repartitioned to the new layout.  Returns
    the new (partition, device) work items.
    """
    registry = trace.get_registry()
    dead = []
    requeue_ranges = set()
    for device, partitions in lost:
        _quarantine_last_chance(cluster, device, kernel_name, summary,
                                res)
        dead.append(device)
        summary.devices_lost.append(device.label)
        registry.counter("cluster.device_lost").inc()
        requeue_ranges.update((p.lo, p.hi) for p in partitions)
        with trace.span("recover", category="cluster",
                        action="quarantine", kernel=kernel_name,
                        device=device.label,
                        failed_blocks=len(partitions)):
            pass
    survivors = list(cluster.devices)
    stranded = _reclaim_stranded(dist_args, set(dead))
    for bounds_key in stranded:
        done.pop(bounds_key, None)
    requeue_ranges |= stranded
    arr = dist_args[0]
    new_bounds = []
    new_work = []
    requeued_items = 0
    for blo, bhi in arr.bounds:
        if (blo, bhi) in requeue_ranges and bhi > blo:
            subs = [(blo + slo, blo + shi) for slo, shi
                    in _block_bounds(bhi - blo, len(survivors))
                    if shi > slo]
            for i, (slo, shi) in enumerate(subs):
                new_bounds.append((slo, shi))
                new_work.append((Partition(slo, shi, None),
                                 survivors[i % len(survivors)]))
            requeued_items += bhi - blo
        else:
            new_bounds.append((blo, bhi))
    summary.requeued_items += requeued_items
    registry.counter("cluster.requeued_items").inc(requeued_items)
    with trace.span("recover", category="cluster", action="requeue",
                    kernel=kernel_name, items=requeued_items,
                    survivors=len(survivors)):
        _repartition_with_retries(dist_args, new_bounds, max_retries,
                                  backoff, summary)
    return new_work


def _result_end_ns(result) -> int:
    """Latest simulated completion stamp across one launch's events."""
    return max((e.end_ns for e in result.events), default=0)


def _static_slot_parts(dist_args, arr, keys) -> dict:
    """(lo, hi) -> the partition Arrays of every distributed arg."""
    slot_parts = {}
    for key in keys:
        index = arr.bounds.index(key)
        slot_parts[key] = [a.parts[index] for a in dist_args
                           if a.parts[index] is not None]
    return slot_parts


def _run_static(kernel, cluster, args, dist_args, partitions,
                kernel_name: str, max_retries: int, backoff: float,
                summary: FailureSummary, res: _Resilience) -> list:
    """One launch per non-empty partition on its assigned device.

    Launches proceed in waves: every outstanding block is launched
    (and, in deferred mode, its event graph driven) before any failure
    is acted on, so healthy partitions keep overlapping while a doomed
    one fails.  Transient failures re-enter the next wave on the same
    device after a simulated-clock backoff; permanent ones quarantine
    the device and split its blocks over the survivors.

    Partitions lying entirely inside checkpoint-restored ranges are
    skipped (their host data already holds the computed values); after
    each wave the completed blocks are snapshotted when checkpointing
    is on, and the deadline — if one was set — is enforced against the
    wave's latest simulated completion stamp.
    """
    arr = dist_args[0]
    work = []
    for p in partitions:
        if p.size <= 0:
            continue
        if res.resumed and _fully_covered(p.lo, p.hi, res.resumed):
            continue            # restored from checkpoint: nothing to do
        work.append((p, cluster.devices[p.rank]))
    done: dict = {}             # (lo, hi) -> (device, partition, result)
    attempts: dict = {}         # (lo, hi) -> transient retries used
    unsaved = 0                 # completions since the last snapshot
    while work:
        wave = []
        for partition, device in work:
            part_index = arr.bounds.index((partition.lo, partition.hi))
            _check_broadcast_writes(
                kernel, args, _local_args(args, dist_args, part_index))
            result, error = None, None
            with trace.span("cluster_partition", category="cluster",
                            kernel=kernel_name, device=device.label,
                            rank=partition.rank, lo=partition.lo,
                            hi=partition.hi):
                try:
                    result = _launch(kernel, device, args, dist_args,
                                     part_index)
                except (DeviceNotAvailable, OutOfResources) as exc:
                    error = exc     # e.g. an injected build failure
            wave.append((partition, device, result, error))
        # drive everything before classifying anything: one failure
        # must not keep its siblings' overlapping work from running
        for _p, _d, result, _e in wave:
            if result is not None:
                result.drive()
        work = []
        lost: dict = {}
        for partition, device, result, error in wave:
            key = (partition.lo, partition.hi)
            if error is None:
                failed = result.failed_event
                if failed is None:
                    done[key] = (device, partition, result)
                    unsaved += 1
                    continue
                error = failed.error
            kind = _failure_kind(error)
            if kind == "fatal":
                raise error
            used = attempts.get(key, 0)
            if kind == "transient" and used < max_retries:
                attempts[key] = used + 1
                delay = _backoff_delay(
                    backoff, used,
                    key=(device.label, partition.lo, partition.hi, used))
                device.queue.clock += delay
                summary.transient_failures += 1
                summary.retries += 1
                summary.backoff_seconds += delay
                _retry_span(kernel_name, device, partition.lo,
                            partition.hi, used + 1, delay)
                work.append((partition, device))
            else:
                if kind == "transient":     # retries exhausted
                    summary.transient_failures += 1
                lost.setdefault(id(device), (device, []))[1].append(
                    partition)
        if lost:
            work.extend(_quarantine_and_requeue(
                kernel_name, cluster, dist_args, list(lost.values()),
                max_retries, backoff, summary, done, res=res))
        completed = list(res.resumed) + sorted(done)
        if res.store is not None and unsaved >= res.every:
            _write_checkpoint(res, dist_args,
                              _static_slot_parts(dist_args, arr, done),
                              completed)
            unsaved = 0
        if res.deadline_ns is not None and done:
            end_ns = max(_result_end_ns(r) for _d, _p, r in done.values())
            if end_ns > res.deadline_ns:
                _deadline_abort(res, summary, dist_args,
                                _static_slot_parts(dist_args, arr, done),
                                completed, list(done.values()), end_ns)
    if res.store is not None and unsaved:
        _write_checkpoint(res, dist_args,
                          _static_slot_parts(dist_args, arr, done),
                          list(res.resumed) + sorted(done))
    return [done[(lo, hi)] for lo, hi in arr.bounds
            if hi > lo and (lo, hi) in done]


def _run_dynamic(kernel, cluster, args, dist_args, scheduler,
                 kernel_name: str, max_retries: int, backoff: float,
                 summary: FailureSummary, res: _Resilience) -> list:
    """On-demand chunk dispatch: each chunk goes to the device whose
    event graph drains first on the simulated timeline.

    Chunks are cut lazily — the scheduler sizes each one for the device
    that requests it (its throughput share of the remaining work), so a
    slow device never grabs a large early chunk.  Each finished chunk
    returns its device to the ready-heap stamped with the chunk's
    simulated end time, so assignment order is decided by the devices'
    simulated clocks — the behaviour of a real work-stealing host
    thread — not by host-loop enqueue order.

    Failures are handled per chunk: a transient failure puts the chunk
    back on the requeue (any ready device may pick it up) after a
    simulated-clock backoff; a permanent one quarantines the device and
    requeues both its failed chunk and any *earlier* chunks whose only
    valid data was stranded on it.  The requeue is served before new
    index space is cut, so the chunk layout stays a contiguous cover.

    The DistributedArray arguments end up partitioned along the chunk
    bounds (their host copies refreshed first, so the chunk views read
    current data); ``gather`` works on the chunk layout as usual.

    The resilience layer hooks in here too: checkpoint-restored ranges
    become ready-made blocks that are never recomputed, the watchdog
    speculatively re-executes chunks predicted to straggle (cancelling
    the loser's event graph before it runs), quarantined devices are
    probed for readmission between chunks, completed blocks are
    snapshotted, and the deadline is enforced on every chunk
    completion stamp.
    """
    devices = list(cluster.devices)     # stable ranks across quarantine
    active = set(range(len(devices)))
    n = dist_args[0].n
    registry = trace.get_registry()
    weights, source = scheduler.weights_for(cluster, kernel_name)
    total_w = sum(weights)
    if total_w <= 0:
        raise HPLError("scheduler weights must sum to > 0")
    min_chunk = scheduler.min_chunk_for(n, len(devices))
    for a in dist_args:
        a._sync_parts()
    bounds: list[tuple[int, int]] = []
    new_parts: dict = {id(a): [] for a in dist_args}
    for rlo, rhi in res.resumed:        # checkpoint-restored blocks
        bounds.append((rlo, rhi))
        for a in dist_args:
            new_parts[id(a)].append(
                Array(a.dtype, rhi - rlo, data=a._full[rlo:rhi]))
    segments: deque = deque([lo, hi] for lo, hi in _gaps(res.resumed, n))
    remaining = sum(hi - lo for lo, hi in segments)
    ready = [(int(d.queue.clock * 1e9), rank)
             for rank, d in enumerate(devices)]
    heapq.heapify(ready)
    slot_result: dict = {}      # slot -> (device, partition, result)
    slot_parts: dict = {}       # (lo, hi) -> parts, for checkpoint sync
    attempts: dict = {}         # slot -> transient retries used
    requeue: deque = deque()    # slots waiting to be re-run
    unsaved = 0                 # completions since the last snapshot
    since_probe = 0             # completions since the last probe round

    def _integrate(dev, at_ns: int) -> None:
        """Fold a readmitted device into the ranks/weights/heap."""
        if dev in devices:
            r = devices.index(dev)
        else:
            devices.append(dev)
            weights.append(device_throughput(dev.ocl.spec))
            if res.watchdog is not None:
                res.watchdog.track(kernel_name, dev)
            r = len(devices) - 1
        if r not in active:
            active.add(r)
            heapq.heappush(ready, (at_ns, r))

    def _completed_bounds() -> list:
        return list(res.resumed) + sorted(
            bounds[s] for s in slot_result)

    def _completed_launches() -> list:
        return [slot_result[s] for s in sorted(slot_result)]

    while remaining or requeue:
        if res.probation and cluster.lost \
                and since_probe >= res.probe_interval:
            since_probe = 0
            frontier_ns = ready[0][0] if ready else 0
            revived = _readmit_lost(cluster, kernel_name, summary, res)
            for dev in revived:
                _integrate(dev, frontier_ns)
            if revived:
                total_w = sum(weights[r] for r in active)
        while True:
            if not ready:
                raise ClusterExecutionError(
                    "no device left to serve the remaining work")
            avail_ns, rank = heapq.heappop(ready)
            if rank in active:
                break
        if res.deadline_ns is not None and avail_ns > res.deadline_ns:
            _deadline_abort(res, summary, dist_args, slot_parts,
                            _completed_bounds(), _completed_launches(),
                            avail_ns)
        device = devices[rank]
        if requeue:                     # serve lost chunks first
            slot = requeue.popleft()
            slo, shi = bounds[slot]
        else:
            seg = segments[0]
            size = scheduler.next_chunk(remaining, len(active),
                                        weights[rank] / total_w,
                                        min_chunk)
            size = min(size, seg[1] - seg[0])
            slot = len(bounds)
            slo, shi = seg[0], seg[0] + size
            bounds.append((slo, shi))
            for a in dist_args:
                new_parts[id(a)].append(
                    Array(a.dtype, size, data=a._full[slo:shi]))
            seg[0] += size
            if seg[0] >= seg[1]:
                segments.popleft()
            remaining -= size
        local = []
        for a in args:
            if isinstance(a, DistributedArray):
                local.append(new_parts[id(a)][slot])
            else:
                local.append(a)
        local.append(Int(slo))
        local.append(Int(shi - slo))
        partition = Partition(slo, shi, rank)
        _check_broadcast_writes(kernel, args, local)
        # watchdog: when the calibration model predicts this device
        # would straggle past ``factor`` times the best device's
        # expected duration AND some other device is predicted to
        # finish the chunk *sooner*, duplicate the chunk there.  First
        # (predicted) completion wins; the loser's event graph is
        # cancelled before any payload runs, so its buffers are never
        # touched — a real watchdog makes the same call from wall-clock
        # observations, ours makes it from the model the observations
        # would feed.
        spec_origin = None
        if res.watchdog is not None:
            target = res.watchdog.pick(rank, shi - slo, active,
                                       avail_ns, devices)
            if target is not None:
                with trace.span("watchdog", category="cluster",
                                kernel=kernel_name,
                                device=device.label, chunk=slot,
                                lo=slo, hi=shi,
                                factor=res.watchdog.factor):
                    doomed = None
                    try:
                        doomed = hpl_eval(kernel).global_(shi - slo) \
                            .device(device)(*local)
                    except (DeviceNotAvailable, OutOfResources):
                        pass        # abandoning this device anyway
                cancelled = 0
                if doomed is not None:
                    for e in doomed.events:
                        e.cancel()
                    cancelled = sum(1 for e in doomed.events
                                    if e.is_cancelled)
                # sweep coherence commands a partially-built graph may
                # have left pending on the loser's queue
                cancelled += device.queue.cancel_pending()
                registry.counter("cluster.cancelled_events").inc(
                    cancelled)
                registry.counter("cluster.speculative_launches").inc()
                with trace.span("speculate", category="cluster",
                                kernel=kernel_name, chunk=slot,
                                lo=slo, hi=shi,
                                from_device=device.label,
                                to_device=devices[target].label,
                                cancelled_events=cancelled):
                    pass
                spec_origin = rank
                rank = target
                device = devices[rank]
                partition = Partition(slo, shi, rank)
        # attempt loop: transient failures retry on the SAME device —
        # guided chunks are sized for the device that requested them,
        # so migrating a large chunk to a slower survivor would turn a
        # hiccup into a makespan cliff.  Only quarantine moves work.
        error = None
        while True:
            result, error = None, None
            with trace.span("cluster_chunk", category="cluster",
                            kernel=kernel_name, device=device.label,
                            rank=rank, chunk=slot, lo=slo, hi=shi,
                            weights=source):
                try:
                    result = hpl_eval(kernel).global_(shi - slo) \
                        .device(device)(*local)
                except (DeviceNotAvailable, OutOfResources) as exc:
                    error = exc     # e.g. an injected build failure
            if result is not None:
                # drive this chunk's event graph now so the device's
                # drain time is known before the next chunk is assigned
                result.drive()
                failed = result.failed_event
                if failed is None:
                    break
                error = failed.error
            kind = _failure_kind(error)
            if kind == "fatal":
                raise error
            used = attempts.get(slot, 0)
            if kind != "transient" or used >= max_retries:
                if kind == "transient":     # retries exhausted: treat
                    summary.transient_failures += 1     # as dead
                break
            attempts[slot] = used + 1
            delay = _backoff_delay(backoff, used,
                                   key=(device.label, slo, shi, used))
            device.queue.clock += delay
            summary.transient_failures += 1
            summary.retries += 1
            summary.backoff_seconds += delay
            _retry_span(kernel_name, device, slo, shi, used + 1, delay)
        if error is None:
            event = result.kernel_event
            heapq.heappush(ready, (event.end_ns, rank))
            if spec_origin is not None:
                # the speculated copy won; the origin is free again at
                # the winner's completion stamp (a real watchdog kills
                # the loser the moment the winner reports)
                summary.speculative_wins += 1
                registry.counter("cluster.speculation_wins").inc()
                if spec_origin in active:
                    heapq.heappush(ready, (event.end_ns, spec_origin))
            registry.counter("cluster.chunks_dispatched").inc()
            registry.counter("cluster.chunk_items").inc(partition.size)
            registry.counter(f"cluster.chunks[{device.label}]").inc()
            registry.counter(
                f"cluster.chunk_items[{device.label}]").inc(
                partition.size)
            registry.histogram("cluster.chunk_seconds").observe(
                event.duration)
            slot_result[slot] = (device, partition, result)
            slot_parts[(slo, shi)] = [new_parts[id(a)][slot]
                                      for a in dist_args]
            since_probe += 1
            unsaved += 1
            if res.deadline_ns is not None \
                    and event.end_ns > res.deadline_ns:
                _deadline_abort(res, summary, dist_args, slot_parts,
                                _completed_bounds(),
                                _completed_launches(), event.end_ns)
            if res.store is not None and unsaved >= res.every:
                unsaved = 0
                _write_checkpoint(res, dist_args, slot_parts,
                                  _completed_bounds())
            continue
        if spec_origin is not None and spec_origin in active:
            heapq.heappush(ready, (avail_ns, spec_origin))
        try:
            cluster.quarantine(device)  # raises when nobody is left
        except ClusterExecutionError:
            revived = (_readmit_lost(cluster, kernel_name, summary, res)
                       if res.probation else [])
            if not revived:
                raise
            for dev in revived:
                _integrate(dev, avail_ns)
            cluster.quarantine(device)
        active.discard(rank)
        total_w = sum(weights[r] for r in active)
        summary.devices_lost.append(device.label)
        registry.counter("cluster.device_lost").inc()
        with trace.span("recover", category="cluster",
                        action="quarantine", kernel=kernel_name,
                        device=device.label, chunk=slot):
            pass
        requeued = [slot]
        # earlier chunks whose only valid copy sat on the dead device
        # are lost with it: roll their parts back to the (pre-launch)
        # host data and re-run them on a survivor
        for done_slot in sorted(slot_result):
            if slot_result[done_slot][0] is not device:
                continue
            stranded = False
            for a in dist_args:
                if _reclaim_part(new_parts[id(a)][done_slot], {device}):
                    stranded = True
            if stranded:
                slot_result.pop(done_slot)
                requeued.append(done_slot)
        items = sum(bounds[s][1] - bounds[s][0] for s in requeued)
        summary.requeued_items += items
        registry.counter("cluster.requeued_items").inc(items)
        with trace.span("recover", category="cluster", action="requeue",
                        kernel=kernel_name, items=items,
                        chunks=len(requeued), survivors=len(active)):
            for a in dist_args:
                _reclaim_part(new_parts[id(a)][slot], {device})
            requeue.extend(requeued)
    if res.store is not None and unsaved:
        _write_checkpoint(res, dist_args, slot_parts,
                          _completed_bounds())
    # install sorted by block start so gather order matches index order
    # whatever mix of fresh and checkpoint-restored blocks produced it
    order = sorted(range(len(bounds)), key=lambda s: bounds[s])
    for a in dist_args:
        a.bounds = [bounds[s] for s in order]
        a.parts = [new_parts[id(a)][s] for s in order]
    return [slot_result[s] for s in order if s in slot_result]


def cluster_eval(kernel, cluster: Cluster, *args, deferred: bool = True,
                 schedule=None, max_retries: int = 3,
                 backoff: float = 1e-4, watchdog=None, deadline=None,
                 checkpoint=None, checkpoint_every: int = 1,
                 resume: bool = False, probation: bool = False,
                 probe_interval: int = 4, probation_decay: float = 0.5):
    """Evaluate ``kernel`` once per partition, owner-computes style.

    ``kernel`` is an ordinary HPL kernel function whose **last two
    parameters** must be ``offset`` (Int: the partition's global start
    index) and ``count`` (Int: partition length); each
    :class:`DistributedArray` argument is replaced by the device-local
    partition, while plain Arrays and scalars are broadcast to every
    device (each device keeps its own coherent copy).  Broadcast plain
    Arrays must be read-only in the kernel (an :class:`HPLError` is
    raised otherwise).

    ``schedule`` selects the partitioning policy: ``None`` keeps the
    arrays' current partitioning (block-uniform unless repartitioned),
    while ``"uniform"``, ``"weighted"``, ``"dynamic"`` or a
    :class:`Scheduler` instance re-plan the index space — repartitioning
    every DistributedArray argument to the plan's bounds — before
    launching.  All policies compute bit-identical results; they differ
    only in who computes what (see ``docs/cluster.md``).

    With ``deferred=True`` (the default) every device's queue records
    its partition's transfers and launch as an event graph, all
    partitions are launched asynchronously, and a single barrier at the
    end executes them dependency-ordered — so the per-device simulated
    timelines overlap instead of serializing with the host loop.
    ``deferred=False`` runs eagerly; the numerical results are
    identical either way.

    ``max_retries`` and ``backoff`` tune failure recovery (see
    ``docs/faults.md``): transient failures are retried up to
    ``max_retries`` times per block with capped-exponential backoff on
    the simulated clock; a permanently failed device is quarantined
    from the cluster and its blocks re-run on the survivors.  When no
    device survives, :class:`~repro.errors.ClusterExecutionError` is
    raised.

    The resilience layer (see ``docs/resilience.md``) is opt-in:

    - ``watchdog`` (``True`` for the default 4x slow-factor, or a
      number) speculatively re-executes chunks the calibration model
      predicts to straggle past ``slow_factor x`` the best device's
      expected duration — dynamic schedules in deferred mode only.
      The loser's event graph is *cancelled* before any payload runs.
    - ``deadline`` (simulated seconds) raises
      :class:`~repro.errors.DeadlineExceeded` — carrying the partial
      result — once any completion stamp passes the budget.
    - ``checkpoint`` (a directory) snapshots host buffers + completed
      blocks every ``checkpoint_every`` block completions;
      ``resume=True`` restores a matching snapshot and skips the
      completed blocks, bit-identically.
    - ``probation=True`` probes quarantined devices every
      ``probe_interval`` completed chunks and readmits the healthy
      ones with their calibration decayed by ``probation_decay``.

    Returns a :class:`ClusterResult` — a list of the per-partition
    :class:`EvalResult` objects (all complete by return), in partition
    order, with the recovery record on ``.failures``.
    """
    dist_args = [a for a in args if isinstance(a, DistributedArray)]
    if not dist_args:
        raise HPLError("cluster_eval needs at least one DistributedArray")
    n = dist_args[0].n
    for a in dist_args:
        if a.n != n or a.cluster is not cluster:
            raise HPLError("all DistributedArrays must share the same "
                           "size and cluster")
    kernel_name = getattr(kernel, "__name__", repr(kernel))
    summary = FailureSummary()

    scheduler = get_scheduler(schedule)
    if scheduler is None \
            and len(dist_args[0].bounds) != len(cluster.devices):
        # the current layout (e.g. left over from a recovered run) no
        # longer maps one block per device: re-plan instead of guessing
        scheduler = get_scheduler("uniform")
    dynamic = scheduler is not None and scheduler.dynamic
    if scheduler is not None and not dynamic:
        with trace.span("cluster_schedule", category="cluster",
                        policy=scheduler.name, kernel=kernel_name, n=n,
                        devices=len(cluster)):
            partitions = scheduler.plan(n, cluster,
                                        kernel_name=kernel_name)
            bounds = [(p.lo, p.hi) for p in partitions]
            _repartition_with_retries(dist_args, bounds, max_retries,
                                      backoff, summary)
    elif not dynamic:
        for a in dist_args:
            if a.bounds != dist_args[0].bounds:
                raise HPLError(
                    "all DistributedArrays must share the same "
                    "partitioning; pass schedule=... to re-plan them "
                    "together")
        partitions = [Partition(lo, hi, rank) for rank, (lo, hi)
                      in enumerate(dist_args[0].bounds)]

    res = _Resilience(every=max(1, int(checkpoint_every)),
                      probation=bool(probation),
                      probe_interval=max(1, int(probe_interval)),
                      decay=float(probation_decay), deferred=deferred)
    if watchdog and dynamic and deferred:
        factor = 4.0 if watchdog is True else float(watchdog)
        res.watchdog = _Watchdog(kernel_name, cluster.devices, factor)
    if deadline is not None:
        start_ns = min(int(d.queue.clock * 1e9)
                       for d in cluster.devices)
        res.deadline_ns = start_ns + int(float(deadline) * 1e9)
    if checkpoint is not None:
        res.store = CheckpointStore(checkpoint)
        res.run_id = {"kernel": kernel_name, "n": int(n),
                      "arrays": [str(a.dtype) for a in dist_args]}
        if resume:
            with trace.span("checkpoint_load", category="cluster",
                            kernel=kernel_name) as sp:
                loaded = res.store.load(res.run_id)
                if loaded is not None:
                    snaps, completed = loaded
                    merged = _merge_ranges(completed)
                    for a, snap in zip(dist_args, snaps):
                        for rlo, rhi in merged:
                            a._full[rlo:rhi] = snap[rlo:rhi]
                        a.scatter(a._full)
                    res.resumed = merged
                    summary.resumed_blocks = len(completed)
                    trace.get_registry().counter(
                        "cluster.resumed_blocks").inc(len(completed))
                sp.set_attr("blocks", summary.resumed_blocks)

    # snapshot: quarantine mutates cluster.devices mid-run, and the
    # deferred flag must be restored on lost devices too
    devices = list(cluster.devices)
    previous = [d.deferred for d in devices]
    if deferred:
        for d in devices:
            d.set_deferred(True)
    global _LAST_SUMMARY
    _LAST_SUMMARY = summary
    try:
        if dynamic:
            with trace.span("cluster_schedule", category="cluster",
                            policy=scheduler.name, kernel=kernel_name,
                            n=n, devices=len(cluster)):
                launches = _run_dynamic(kernel, cluster, args, dist_args,
                                        scheduler, kernel_name,
                                        max_retries, backoff, summary,
                                        res)
        else:
            launches = _run_static(kernel, cluster, args, dist_args,
                                   partitions, kernel_name, max_retries,
                                   backoff, summary, res)
    finally:
        # readmitted devices first (they may not be in the snapshot),
        # then the snapshot, which is authoritative for devices that
        # were present when the run started
        for device, was_deferred in res.restore:
            device.set_deferred(was_deferred)
        for device, was_deferred in zip(devices, previous):
            device.set_deferred(was_deferred)
    _record_calibration(kernel_name, launches)
    return ClusterResult(
        [result for _device, _partition, result in launches], summary)


# -- timeline measurement -------------------------------------------------------


@dataclass
class ClusterTimeline:
    """Simulated-time shape of one multi-device run (see
    :func:`timeline_of`)."""

    #: wall-clock span on the simulated timeline: latest event end minus
    #: earliest event start, across every device involved
    makespan_seconds: float
    #: per-device busy time (sum of that device's event durations),
    #: keyed by device *label* — identity, not model name — so two
    #: same-model devices get separate buckets
    busy_seconds: dict
    #: what the same work would take with the devices serialized
    serialized_seconds: float = field(init=False)
    #: serialized / makespan — ~N on N equally-loaded devices
    overlap_factor: float = field(init=False)

    def __post_init__(self) -> None:
        self.serialized_seconds = sum(self.busy_seconds.values())
        self.overlap_factor = (self.serialized_seconds
                               / self.makespan_seconds
                               if self.makespan_seconds > 0 else 1.0)


def timeline_of(results) -> ClusterTimeline:
    """Measure the overlap of completed EvalResults and/or Events.

    ``results`` may mix :class:`EvalResult` objects and bare events
    (e.g. ``DistributedArray.last_gather_events``).  The events carry
    simulated start/end stamps on their device's timeline; the makespan
    spans all of them, while the serialized time is what a
    one-device-at-a-time host loop would pay.  Busy time is keyed by
    device *identity* (label), never by model name: two identical
    devices must not merge into one bucket.
    """
    events = []
    for r in results:
        events.extend(r.events if hasattr(r, "events") else [r])
    if not events:
        raise HPLError("timeline_of needs at least one event")
    start = min(e.profile_start for e in events)
    end = max(e.profile_end for e in events)
    busy: dict = {}
    for event in events:
        key = event.device_label or event.device_name
        busy[key] = busy.get(key, 0.0) + event.duration
    return ClusterTimeline(makespan_seconds=(end - start) * 1e-9,
                           busy_seconds=busy)
