"""Multi-device / distributed-memory execution (§VII future work).

The paper closes by planning "to extend the high-productivity features
of HPL to handle distributed memory parallelism by running HPL on a
cluster of SMP nodes in which each node can contain multiple
heterogeneous computing devices".  This module implements that layer on
top of the simulated platform:

* a :class:`Cluster` is an ordered set of devices (possibly spanning the
  simulated "nodes" — every SimCL device has its own memory, so device
  boundaries already model node boundaries for data-movement purposes);
* :class:`DistributedArray` block-partitions a 1-D HPL Array across the
  cluster along its first dimension;
* :func:`cluster_eval` runs an elementwise-style kernel on every
  partition concurrently (owner-computes), giving each device its slice
  of every distributed argument plus the partition offset;
* a pluggable :class:`Scheduler` decides *how much* of the index space
  each device computes.  On a heterogeneous mix a uniform block split
  pins the makespan to the slowest device; the
  :class:`WeightedScheduler` sizes blocks from per-device throughput
  (device specs, refined by measured history — a self-calibrating
  feedback loop), and the :class:`DynamicScheduler` cuts the index
  space into guided chunks handed to devices as their event graphs
  drain, EngineCL-HGuided style.  See ``docs/cluster.md``.

Communication is staged through host memory (the "interconnect"), with
per-transfer costs accounted by each device's PCIe model — exactly how a
one-host multi-GPU OpenCL program moves data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .. import trace
from ..errors import DomainError, HPLError
from .array import Array
from .dtypes import HPLType
from .evaluator import eval as hpl_eval
from .runtime import HPLDevice, get_runtime
from .scalars import Int


def _block_bounds(n: int, k: int) -> list[tuple[int, int]]:
    """Contiguous near-even split of ``n`` elements into ``k`` blocks.

    With ``n < k`` the first ``n`` blocks get one element each and the
    rest are empty — callers skip empty partitions instead of failing.
    """
    if n < 0:
        raise DomainError(f"cannot partition {n} element(s)")
    if n < k:
        return [(min(i, n), min(i + 1, n)) for i in range(k)]
    base, extra = divmod(n, k)
    bounds = []
    start = 0
    for rank in range(k):
        size = base + (1 if rank < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class Cluster:
    """An ordered group of HPL devices acting as one execution target."""

    def __init__(self, devices=None) -> None:
        if devices is None:
            devices = [d for d in get_runtime().devices if not d.is_cpu]
            if not devices:
                devices = list(get_runtime().devices)
        devices = list(devices)
        if not devices:
            raise HPLError("a Cluster needs at least one device")
        for d in devices:
            if not isinstance(d, HPLDevice):
                raise HPLError(f"{d!r} is not an HPL device")
        self.devices = devices

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return f"<Cluster of {len(self.devices)} device(s)>"

    def partition_bounds(self, n: int) -> list[tuple[int, int]]:
        """Contiguous block partition of ``n`` elements over the devices.

        When ``n`` is smaller than the cluster, the first ``n`` devices
        get one element each and the remaining partitions are empty
        (``lo == hi``); :func:`cluster_eval` skips empty partitions.
        """
        return _block_bounds(n, len(self.devices))


# -- scheduling -----------------------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """One contiguous block of the index space, owned by one device.

    ``rank`` is the owning device's position in the cluster; dynamic
    schedules cut chunks before knowing their owner, so their plans
    carry ``rank=None`` until :func:`cluster_eval` assigns them.
    """

    lo: int
    hi: int
    rank: int | None = None

    @property
    def size(self) -> int:
        return self.hi - self.lo


def device_throughput(spec) -> float:
    """Spec-derived relative throughput estimate of one device.

    A pure compute proxy (``compute_units x clock x ipc``): exact for
    compute-bound kernels, pessimistic about memory-bound ones — which
    is why the weighted scheduler prefers *measured* per-kernel
    throughput once :class:`CalibrationStore` has seen the kernel run.
    """
    return spec.compute_units * spec.clock_ghz * spec.ipc


class CalibrationStore:
    """Measured per-(kernel, device-model) throughput history.

    Every :func:`cluster_eval` records, for each launch it made, the
    observed ``items / simulated second`` of that kernel on that device
    model (an exponential moving average, so the estimate tracks the
    current problem regime).  The :class:`WeightedScheduler` consults
    this store before falling back to spec-derived estimates — closing
    the profiler -> cost-model -> scheduler feedback loop.
    """

    #: EMA smoothing: weight of the newest observation
    ALPHA = 0.5

    def __init__(self) -> None:
        self._tput: dict = {}       # (kernel_name, device_name) -> it/s
        self._samples: dict = {}    # same key -> observation count

    def record(self, kernel_name: str, device_name: str,
               items: int, seconds: float) -> None:
        if items <= 0 or seconds <= 0.0:
            return
        key = (kernel_name, device_name)
        observed = items / seconds
        prev = self._tput.get(key)
        self._tput[key] = observed if prev is None \
            else self.ALPHA * observed + (1.0 - self.ALPHA) * prev
        self._samples[key] = self._samples.get(key, 0) + 1

    def throughput(self, kernel_name: str, device_name: str):
        """Measured items/second, or ``None`` if never observed."""
        return self._tput.get((kernel_name, device_name))

    def samples(self, kernel_name: str, device_name: str) -> int:
        return self._samples.get((kernel_name, device_name), 0)

    def reset(self) -> None:
        self._tput.clear()
        self._samples.clear()


#: process-wide store; survives ``reset_runtime()`` on purpose — device
#: *models* keep their measured speed across runtime resets
_CALIBRATION = CalibrationStore()


def calibration() -> CalibrationStore:
    """The process-wide scheduler calibration store."""
    return _CALIBRATION


def _resolve_weights(weights, calibrate: bool, cluster: Cluster,
                     kernel_name: str | None) -> tuple[list[float], str]:
    """Per-device throughput weights and their source
    (``explicit`` | ``calibrated`` | ``spec``).

    Explicit weights win; else measured per-kernel throughputs from the
    :class:`CalibrationStore` (only when *all* device models of the
    cluster have history for this kernel, so measured and estimated
    numbers never mix); else :func:`device_throughput` of the specs.
    """
    if weights is not None:
        if len(weights) != len(cluster.devices):
            raise HPLError(
                f"{len(weights)} weight(s) for a "
                f"{len(cluster.devices)}-device cluster")
        return list(weights), "explicit"
    if calibrate and kernel_name is not None:
        measured = [_CALIBRATION.throughput(kernel_name, d.name)
                    for d in cluster.devices]
        if all(t is not None for t in measured):
            return list(measured), "calibrated"
    return [device_throughput(d.ocl.spec)
            for d in cluster.devices], "spec"


class Scheduler:
    """Partitioning policy interface used by ``cluster_eval(schedule=)``.

    Static schedulers implement :meth:`plan`, returning one
    :class:`Partition` per device (possibly empty).  Dynamic schedulers
    (``dynamic = True``) implement :meth:`next_chunk` instead:
    :func:`cluster_eval` asks for one chunk at a time, on behalf of the
    device whose event graph drains first.
    """

    name = "?"
    dynamic = False

    def plan(self, n: int, cluster: Cluster,
             kernel_name: str | None = None) -> list[Partition]:
        raise NotImplementedError

    def next_chunk(self, remaining: int, n_devices: int,
                   weight_share: float, min_chunk: int = 1) -> int:
        """Size of the next chunk handed to a requesting device.

        ``weight_share`` is the requesting device's fraction of the
        cluster's total throughput weight.  Only dynamic schedulers
        implement this.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class UniformScheduler(Scheduler):
    """Near-even block partition — one block per device, sizes within
    one element of each other.  The right choice for homogeneous
    clusters; on skewed mixes the makespan is pinned to the slowest
    device."""

    name = "uniform"

    def plan(self, n, cluster, kernel_name=None):
        return [Partition(lo, hi, rank)
                for rank, (lo, hi)
                in enumerate(_block_bounds(n, len(cluster.devices)))]


class WeightedScheduler(Scheduler):
    """Static weighted partition: each device's block is proportional to
    its throughput.

    Weights come from, in order of preference: the explicit ``weights``
    argument; the :class:`CalibrationStore` (measured items/second of
    this kernel on every device model of the cluster — used only when
    *all* devices have history, so measured and estimated numbers never
    mix); else :func:`device_throughput` of each device's spec.
    """

    name = "weighted"

    def __init__(self, weights=None, calibrate: bool = True) -> None:
        if weights is not None:
            weights = [float(w) for w in weights]
            if any(w < 0 for w in weights):
                raise HPLError("scheduler weights must be >= 0")
            if sum(weights) <= 0:
                raise HPLError("scheduler weights must sum to > 0")
        self.weights = weights
        self.calibrate = calibrate

    def weights_for(self, cluster: Cluster,
                    kernel_name: str | None = None
                    ) -> tuple[list[float], str]:
        """The per-device weights and their source
        (``explicit`` | ``calibrated`` | ``spec``)."""
        return _resolve_weights(self.weights, self.calibrate, cluster,
                                kernel_name)

    def plan(self, n, cluster, kernel_name=None):
        weights, _source = self.weights_for(cluster, kernel_name)
        total = sum(weights)
        quotas = [n * w / total for w in weights]
        sizes = [int(q) for q in quotas]
        shortfall = n - sum(sizes)
        # largest-remainder rounding, fastest devices first on ties
        order = sorted(range(len(sizes)),
                       key=lambda i: (quotas[i] - sizes[i], weights[i]),
                       reverse=True)
        for i in order[:shortfall]:
            sizes[i] += 1
        partitions = []
        start = 0
        for rank, size in enumerate(sizes):
            partitions.append(Partition(start, start + size, rank))
            start += size
        return partitions


class DynamicScheduler(Scheduler):
    """Dynamic chunk scheduler (EngineCL's "HGuided" policy).

    The index space is cut into contiguous chunks *on demand*: whenever
    a device's event graph drains, it is handed the next chunk, sized
    ``remaining x weight_share / factor`` — the device's throughput
    share of the remaining work, damped by ``factor`` so the tail
    shrinks geometrically and keeps the finish times tight.  Fast
    devices therefore pull big chunks early and often; slow devices
    nibble ``min_chunk``-sized pieces they are guaranteed to finish
    quickly.  Unlike the static :class:`WeightedScheduler` this needs no
    accurate model up front — mis-estimates only cost a chunk, not the
    whole partition — at the price of one launch (and its transfers)
    per chunk.

    ``chunk_size`` switches to fixed-size self-scheduling (every chunk
    the same size regardless of device); ``min_chunk`` floors the
    guided sizes (default ``n / (16 x devices)``).
    """

    name = "dynamic"
    dynamic = True

    def __init__(self, chunk_size: int | None = None, factor: int = 2,
                 min_chunk: int | None = None, weights=None,
                 calibrate: bool = True) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise HPLError(f"chunk_size must be >= 1, got {chunk_size}")
        if factor < 1:
            raise HPLError(f"factor must be >= 1, got {factor}")
        if min_chunk is not None and min_chunk < 1:
            raise HPLError(f"min_chunk must be >= 1, got {min_chunk}")
        self.chunk_size = chunk_size
        self.factor = factor
        self.min_chunk = min_chunk
        self.weights = weights
        self.calibrate = calibrate

    def weights_for(self, cluster: Cluster,
                    kernel_name: str | None = None
                    ) -> tuple[list[float], str]:
        return _resolve_weights(self.weights, self.calibrate, cluster,
                                kernel_name)

    def min_chunk_for(self, n: int, n_devices: int) -> int:
        if self.min_chunk is not None:
            return self.min_chunk
        return max(1, n // (16 * n_devices))

    def next_chunk(self, remaining, n_devices, weight_share,
                   min_chunk=1):
        if self.chunk_size is not None:
            return min(int(self.chunk_size), remaining)
        size = int(remaining * weight_share / self.factor)
        size = max(size, min_chunk)
        return min(size, remaining)

    def plan(self, n, cluster, kernel_name=None):
        raise HPLError(
            "DynamicScheduler cuts chunks on demand during cluster_eval; "
            "it has no static plan")


#: schedule-name -> scheduler class, for ``cluster_eval(schedule="...")``
SCHEDULERS = {
    "uniform": UniformScheduler,
    "weighted": WeightedScheduler,
    "dynamic": DynamicScheduler,
}


def get_scheduler(spec) -> Scheduler | None:
    """Resolve a ``schedule=`` argument: None, a policy name, or a
    :class:`Scheduler` instance."""
    if spec is None or isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, str):
        try:
            return SCHEDULERS[spec]()
        except KeyError:
            raise HPLError(
                f"unknown schedule {spec!r}; available: "
                + ", ".join(sorted(SCHEDULERS))) from None
    raise HPLError(f"schedule must be None, a name or a Scheduler, "
                   f"got {spec!r}")


# -- distributed data -----------------------------------------------------------


class DistributedArray:
    """A 1-D array block-partitioned across a :class:`Cluster`.

    The full contents live in one host buffer; each partition is an
    ordinary HPL :class:`Array` *viewing* its slice (so repartitioning
    never copies host memory), owned by one device.  :meth:`gather`
    assembles the full contents on the host, overlapping the per-device
    d2h transfers on the simulated timeline.  Empty partitions are
    represented as ``None`` and skipped everywhere.
    """

    def __init__(self, dtype: HPLType, n: int, cluster: Cluster,
                 data: np.ndarray | None = None,
                 bounds=None) -> None:
        self.dtype = dtype
        self.n = int(n)
        if self.n < 1:
            raise HPLError("a DistributedArray needs at least 1 element")
        self.cluster = cluster
        self._full = np.zeros(self.n, dtype=dtype.np_dtype)
        if data is not None:
            data = np.asarray(data, dtype=dtype.np_dtype)
            if data.size != self.n:
                raise HPLError(
                    f"provided {data.size} element(s) for a "
                    f"{self.n}-element DistributedArray")
            self._full[:] = data.reshape(self.n)
        bounds = cluster.partition_bounds(self.n) if bounds is None \
            else [(int(lo), int(hi)) for lo, hi in bounds]
        self._check_bounds(bounds)
        self.bounds = bounds
        self.parts = self._make_parts(bounds)
        #: d2h events of the most recent :meth:`gather`, for timelines
        self.last_gather_events: list = []

    def _check_bounds(self, bounds) -> None:
        if not bounds or bounds[0][0] != 0 or bounds[-1][1] != self.n:
            raise HPLError(f"partition bounds {bounds} do not cover "
                           f"[0, {self.n})")
        for (alo, ahi), (blo, bhi) in zip(bounds, bounds[1:]):
            if ahi != blo or alo > ahi or blo > bhi:
                raise HPLError(
                    f"partition bounds {bounds} are not a contiguous "
                    "non-overlapping cover")

    def _make_parts(self, bounds) -> list:
        return [Array(self.dtype, hi - lo, data=self._full[lo:hi])
                if hi > lo else None
                for lo, hi in bounds]

    @property
    def size(self) -> int:
        return self.n

    def repartition(self, bounds) -> "DistributedArray":
        """Re-slice the array along new partition bounds.

        Device-resident partitions are first synchronised back to the
        host (their d2h copies overlap across devices); the new parts
        start host-valid, so the next launch pays the h2d copies of the
        new layout — the real cost of re-balancing data.
        """
        bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        if bounds == self.bounds:
            return self
        self._check_bounds(bounds)
        self._sync_parts()
        self.bounds = bounds
        self.parts = self._make_parts(bounds)
        return self

    def _sync_parts(self) -> list:
        """Refresh the host copy of every partition.

        All stale partitions' d2h copies are *enqueued* before any is
        waited on, so transfers from different devices overlap on the
        simulated timeline instead of serializing with the host loop.
        Returns the transfer events (one per partition that needed one).
        """
        events = []
        for part in self.parts:
            if part is None:
                continue
            event = part.enqueue_host_sync()
            if event is not None:
                events.append(event)
        for event in events:
            event.wait()
        return events

    def gather(self) -> np.ndarray:
        """Assemble the full array on the host (device->host transfers).

        The per-device transfers overlap on the simulated timeline;
        their events are kept in :attr:`last_gather_events` so
        :func:`timeline_of` can measure the overlap.
        """
        self.last_gather_events = self._sync_parts()
        return self._full.copy()

    def scatter(self, data: np.ndarray) -> None:
        """Replace the contents from a host array."""
        data = np.asarray(data, dtype=self.dtype.np_dtype)
        if data.size != self.n:
            raise HPLError(
                f"scatter of {data.size} element(s) into a "
                f"{self.n}-element DistributedArray")
        for (lo, hi), part in zip(self.bounds, self.parts):
            if part is not None:
                part.data[:] = data[lo:hi]

    def __repr__(self) -> str:
        return (f"<DistributedArray {self.dtype}[{self.n}] over "
                f"{len(self.cluster)} device(s), "
                f"{sum(p is not None for p in self.parts)} partition(s)>")


# -- evaluation -----------------------------------------------------------------


def _local_args(args, dist_args, part: int) -> list:
    """Per-partition argument list: slices swapped in, offset/count added."""
    lo, hi = dist_args[0].bounds[part]
    local = []
    for a in args:
        if isinstance(a, DistributedArray):
            local.append(a.parts[part])
        else:
            local.append(a)
    local.append(Int(lo))
    local.append(Int(hi - lo))
    return local


def _check_broadcast_writes(kernel, args, local_args) -> None:
    """Reject kernels that write a broadcast plain :class:`Array`.

    Each rank writing its own copy would invalidate the other ranks'
    copies mid-loop, making the final contents depend on rank order —
    an error, not a race the user should debug.  Called once per
    partition with that partition's *actual* local arguments, so the
    capture inspected is the capture that will run (capture keys depend
    on argument signatures and closure values, which this must not
    assume are partition-invariant).
    """
    captured = get_runtime().get_captured(kernel, local_args)
    for (name, _proxy), arg in zip(captured.params, args):
        if isinstance(arg, Array) and captured.info.writes(name):
            raise HPLError(
                f"kernel {captured.kernel_name!r} writes its broadcast "
                f"Array argument {name!r}; every device would invalidate "
                "the other devices' copies, leaving the result dependent "
                "on execution order.  Partition it as a DistributedArray "
                "(or make the kernel read-only on it) instead")


def _launch(kernel, device: HPLDevice, args, dist_args, part: int):
    lo, hi = dist_args[0].bounds[part]
    return hpl_eval(kernel).global_(hi - lo).device(device)(
        *_local_args(args, dist_args, part))


def _record_calibration(kernel_name: str, launches) -> None:
    """Feed observed throughputs back into the calibration store."""
    for device, partition, result in launches:
        try:
            seconds = result.kernel_event.duration
        except Exception:       # profiling disabled on a custom queue
            continue
        _CALIBRATION.record(kernel_name, device.name,
                            partition.size, seconds)


def _run_static(kernel, cluster, args, dist_args, partitions,
                kernel_name: str) -> list:
    """One launch per non-empty partition on its assigned device."""
    launches = []
    for part_index, partition in enumerate(partitions):
        if partition.size <= 0:
            continue
        device = cluster.devices[partition.rank]
        _check_broadcast_writes(kernel, args,
                                _local_args(args, dist_args, part_index))
        with trace.span("cluster_partition", category="cluster",
                        kernel=kernel_name, device=device.label,
                        rank=partition.rank, lo=partition.lo,
                        hi=partition.hi):
            result = _launch(kernel, device, args, dist_args, part_index)
        launches.append((device, partition, result))
    for _device, _partition, result in launches:
        result.wait()
    return launches


def _run_dynamic(kernel, cluster, args, dist_args, scheduler,
                 kernel_name: str) -> list:
    """On-demand chunk dispatch: each chunk goes to the device whose
    event graph drains first on the simulated timeline.

    Chunks are cut lazily — the scheduler sizes each one for the device
    that requests it (its throughput share of the remaining work), so a
    slow device never grabs a large early chunk.  A completion callback
    on every chunk's kernel event returns its device to the ready-heap
    stamped with the chunk's simulated end time, so assignment order is
    decided by the devices' simulated clocks — the behaviour of a real
    work-stealing host thread — not by host-loop enqueue order.

    The DistributedArray arguments end up partitioned along the chunk
    bounds (their host copies refreshed first, so the chunk views read
    current data); ``gather`` works on the chunk layout as usual.
    """
    devices = cluster.devices
    n = dist_args[0].n
    registry = trace.get_registry()
    weights, source = scheduler.weights_for(cluster, kernel_name)
    total_w = sum(weights)
    if total_w <= 0:
        raise HPLError("scheduler weights must sum to > 0")
    min_chunk = scheduler.min_chunk_for(n, len(devices))
    for a in dist_args:
        a._sync_parts()
    bounds: list[tuple[int, int]] = []
    new_parts: dict = {id(a): [] for a in dist_args}
    ready = [(int(d.queue.clock * 1e9), rank)
             for rank, d in enumerate(devices)]
    heapq.heapify(ready)
    launches = []
    lo = 0
    while lo < n:
        _avail_ns, rank = heapq.heappop(ready)
        device = devices[rank]
        size = scheduler.next_chunk(n - lo, len(devices),
                                    weights[rank] / total_w, min_chunk)
        hi = lo + size
        bounds.append((lo, hi))
        local = []
        for a in args:
            if isinstance(a, DistributedArray):
                part = Array(a.dtype, size, data=a._full[lo:hi])
                new_parts[id(a)].append(part)
                local.append(part)
            else:
                local.append(a)
        local.append(Int(lo))
        local.append(Int(size))
        partition = Partition(lo, hi, rank)
        _check_broadcast_writes(kernel, args, local)
        with trace.span("cluster_chunk", category="cluster",
                        kernel=kernel_name, device=device.label,
                        rank=rank, chunk=len(bounds) - 1, lo=lo, hi=hi,
                        weights=source):
            result = hpl_eval(kernel).global_(size).device(device)(*local)

        def _drained(event, rank=rank, device=device,
                     partition=partition):
            heapq.heappush(ready, (event.end_ns, rank))
            registry.counter("cluster.chunks_dispatched").inc()
            registry.counter("cluster.chunk_items").inc(partition.size)
            registry.counter(
                f"cluster.chunks[{device.label}]").inc()
            registry.counter(
                f"cluster.chunk_items[{device.label}]").inc(
                partition.size)
            registry.histogram("cluster.chunk_seconds").observe(
                event.duration)

        result.kernel_event.add_callback(_drained)
        # drive this chunk's event graph now so the device's drain time
        # is known before the next chunk is assigned
        result.wait()
        launches.append((device, partition, result))
        lo = hi
    for a in dist_args:
        a.bounds = bounds
        a.parts = new_parts[id(a)]
    return launches


def cluster_eval(kernel, cluster: Cluster, *args, deferred: bool = True,
                 schedule=None):
    """Evaluate ``kernel`` once per partition, owner-computes style.

    ``kernel`` is an ordinary HPL kernel function whose **last two
    parameters** must be ``offset`` (Int: the partition's global start
    index) and ``count`` (Int: partition length); each
    :class:`DistributedArray` argument is replaced by the device-local
    partition, while plain Arrays and scalars are broadcast to every
    device (each device keeps its own coherent copy).  Broadcast plain
    Arrays must be read-only in the kernel (an :class:`HPLError` is
    raised otherwise).

    ``schedule`` selects the partitioning policy: ``None`` keeps the
    arrays' current partitioning (block-uniform unless repartitioned),
    while ``"uniform"``, ``"weighted"``, ``"dynamic"`` or a
    :class:`Scheduler` instance re-plan the index space — repartitioning
    every DistributedArray argument to the plan's bounds — before
    launching.  All policies compute bit-identical results; they differ
    only in who computes what (see ``docs/cluster.md``).

    With ``deferred=True`` (the default) every device's queue records
    its partition's transfers and launch as an event graph, all
    partitions are launched asynchronously, and a single barrier at the
    end executes them dependency-ordered — so the per-device simulated
    timelines overlap instead of serializing with the host loop.
    ``deferred=False`` runs eagerly; the numerical results are
    identical either way.

    Returns the list of per-partition :class:`EvalResult` objects (all
    complete by return), in dispatch order.
    """
    dist_args = [a for a in args if isinstance(a, DistributedArray)]
    if not dist_args:
        raise HPLError("cluster_eval needs at least one DistributedArray")
    n = dist_args[0].n
    for a in dist_args:
        if a.n != n or a.cluster is not cluster:
            raise HPLError("all DistributedArrays must share the same "
                           "size and cluster")
    kernel_name = getattr(kernel, "__name__", repr(kernel))

    scheduler = get_scheduler(schedule)
    dynamic = scheduler is not None and scheduler.dynamic
    if scheduler is not None and not dynamic:
        with trace.span("cluster_schedule", category="cluster",
                        policy=scheduler.name, kernel=kernel_name, n=n,
                        devices=len(cluster)):
            partitions = scheduler.plan(n, cluster,
                                        kernel_name=kernel_name)
            bounds = [(p.lo, p.hi) for p in partitions]
            for a in dist_args:
                a.repartition(bounds)
    elif not dynamic:
        for a in dist_args:
            if a.bounds != dist_args[0].bounds:
                raise HPLError(
                    "all DistributedArrays must share the same "
                    "partitioning; pass schedule=... to re-plan them "
                    "together")
        partitions = [Partition(lo, hi, rank) for rank, (lo, hi)
                      in enumerate(dist_args[0].bounds)]

    devices = cluster.devices
    previous = [d.deferred for d in devices]
    if deferred:
        for d in devices:
            d.set_deferred(True)
    try:
        if dynamic:
            with trace.span("cluster_schedule", category="cluster",
                            policy=scheduler.name, kernel=kernel_name,
                            n=n, devices=len(cluster)):
                launches = _run_dynamic(kernel, cluster, args, dist_args,
                                        scheduler, kernel_name)
        else:
            launches = _run_static(kernel, cluster, args, dist_args,
                                   partitions, kernel_name)
    finally:
        for device, was_deferred in zip(devices, previous):
            device.set_deferred(was_deferred)
    _record_calibration(kernel_name, launches)
    return [result for _device, _partition, result in launches]


# -- timeline measurement -------------------------------------------------------


@dataclass
class ClusterTimeline:
    """Simulated-time shape of one multi-device run (see
    :func:`timeline_of`)."""

    #: wall-clock span on the simulated timeline: latest event end minus
    #: earliest event start, across every device involved
    makespan_seconds: float
    #: per-device busy time (sum of that device's event durations),
    #: keyed by device *label* — identity, not model name — so two
    #: same-model devices get separate buckets
    busy_seconds: dict
    #: what the same work would take with the devices serialized
    serialized_seconds: float = field(init=False)
    #: serialized / makespan — ~N on N equally-loaded devices
    overlap_factor: float = field(init=False)

    def __post_init__(self) -> None:
        self.serialized_seconds = sum(self.busy_seconds.values())
        self.overlap_factor = (self.serialized_seconds
                               / self.makespan_seconds
                               if self.makespan_seconds > 0 else 1.0)


def timeline_of(results) -> ClusterTimeline:
    """Measure the overlap of completed EvalResults and/or Events.

    ``results`` may mix :class:`EvalResult` objects and bare events
    (e.g. ``DistributedArray.last_gather_events``).  The events carry
    simulated start/end stamps on their device's timeline; the makespan
    spans all of them, while the serialized time is what a
    one-device-at-a-time host loop would pay.  Busy time is keyed by
    device *identity* (label), never by model name: two identical
    devices must not merge into one bucket.
    """
    events = []
    for r in results:
        events.extend(r.events if hasattr(r, "events") else [r])
    if not events:
        raise HPLError("timeline_of needs at least one event")
    start = min(e.profile_start for e in events)
    end = max(e.profile_end for e in events)
    busy: dict = {}
    for event in events:
        key = event.device_label or event.device_name
        busy[key] = busy.get(key, 0.0) + event.duration
    return ClusterTimeline(makespan_seconds=(end - start) * 1e-9,
                           busy_seconds=busy)
