"""Multi-device / distributed-memory execution (§VII future work).

The paper closes by planning "to extend the high-productivity features
of HPL to handle distributed memory parallelism by running HPL on a
cluster of SMP nodes in which each node can contain multiple
heterogeneous computing devices".  This module implements that layer on
top of the simulated platform:

* a :class:`Cluster` is an ordered set of devices (possibly spanning the
  simulated "nodes" — every SimCL device has its own memory, so device
  boundaries already model node boundaries for data-movement purposes);
* :class:`DistributedArray` block-partitions a 1-D HPL Array across the
  cluster along its first dimension;
* :func:`cluster_eval` runs an elementwise-style kernel on every
  partition concurrently (owner-computes), giving each device its slice
  of every distributed argument plus the partition offset.

Communication is staged through host memory (the "interconnect"), with
per-transfer costs accounted by each device's PCIe model — exactly how a
one-host multi-GPU OpenCL program moves data.
"""

from __future__ import annotations

import numpy as np

from ..errors import DomainError, HPLError
from .array import Array
from .dtypes import HPLType
from .evaluator import eval as hpl_eval
from .runtime import HPLDevice, get_runtime
from .scalars import Int


class Cluster:
    """An ordered group of HPL devices acting as one execution target."""

    def __init__(self, devices=None) -> None:
        if devices is None:
            devices = [d for d in get_runtime().devices if not d.is_cpu]
            if not devices:
                devices = list(get_runtime().devices)
        devices = list(devices)
        if not devices:
            raise HPLError("a Cluster needs at least one device")
        for d in devices:
            if not isinstance(d, HPLDevice):
                raise HPLError(f"{d!r} is not an HPL device")
        self.devices = devices

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return f"<Cluster of {len(self.devices)} device(s)>"

    def partition_bounds(self, n: int) -> list[tuple[int, int]]:
        """Contiguous block partition of ``n`` elements over the devices."""
        if n < len(self.devices):
            raise DomainError(
                f"cannot partition {n} element(s) over "
                f"{len(self.devices)} devices")
        base, extra = divmod(n, len(self.devices))
        bounds = []
        start = 0
        for rank in range(len(self.devices)):
            size = base + (1 if rank < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds


class DistributedArray:
    """A 1-D array block-partitioned across a :class:`Cluster`.

    Each partition is an ordinary HPL :class:`Array` owned by one
    device; :meth:`gather` assembles the full contents on the host.
    """

    def __init__(self, dtype: HPLType, n: int, cluster: Cluster,
                 data: np.ndarray | None = None) -> None:
        self.dtype = dtype
        self.n = int(n)
        self.cluster = cluster
        self.bounds = cluster.partition_bounds(self.n)
        self.parts: list[Array] = []
        for (lo, hi) in self.bounds:
            part = Array(dtype, hi - lo)
            if data is not None:
                part.data[:] = np.asarray(data[lo:hi],
                                          dtype=dtype.np_dtype)
            self.parts.append(part)

    @property
    def size(self) -> int:
        return self.n

    def gather(self) -> np.ndarray:
        """Assemble the full array on the host (device->host transfers)."""
        out = np.empty(self.n, dtype=self.dtype.np_dtype)
        for (lo, hi), part in zip(self.bounds, self.parts):
            out[lo:hi] = part.read()
        return out

    def scatter(self, data: np.ndarray) -> None:
        """Replace the contents from a host array."""
        data = np.asarray(data, dtype=self.dtype.np_dtype)
        if data.size != self.n:
            raise HPLError(
                f"scatter of {data.size} element(s) into a "
                f"{self.n}-element DistributedArray")
        for (lo, hi), part in zip(self.bounds, self.parts):
            part.data[:] = data[lo:hi]

    def __repr__(self) -> str:
        return (f"<DistributedArray {self.dtype}[{self.n}] over "
                f"{len(self.cluster)} device(s)>")


def cluster_eval(kernel, cluster: Cluster, *args):
    """Evaluate ``kernel`` once per partition, owner-computes style.

    ``kernel`` is an ordinary HPL kernel function whose **last two
    parameters** must be ``offset`` (Int: the partition's global start
    index) and ``count`` (Int: partition length); each
    :class:`DistributedArray` argument is replaced by the device-local
    partition, while plain Arrays and scalars are broadcast to every
    device (each device keeps its own coherent copy).

    Returns the list of per-partition :class:`EvalResult` objects.
    """
    dist_args = [a for a in args if isinstance(a, DistributedArray)]
    if not dist_args:
        raise HPLError("cluster_eval needs at least one DistributedArray")
    n = dist_args[0].n
    for a in dist_args:
        if a.n != n or a.cluster is not cluster:
            raise HPLError("all DistributedArrays must share the same "
                           "size and cluster")

    results = []
    for rank, device in enumerate(cluster.devices):
        lo, hi = dist_args[0].bounds[rank]
        local_args = []
        for a in args:
            if isinstance(a, DistributedArray):
                local_args.append(a.parts[rank])
            else:
                local_args.append(a)
        local_args.append(Int(lo))
        local_args.append(Int(hi - lo))
        result = hpl_eval(kernel).global_(hi - lo).device(device) \
            (*local_args)
        results.append(result)
    return results
