"""Multi-device / distributed-memory execution (§VII future work).

The paper closes by planning "to extend the high-productivity features
of HPL to handle distributed memory parallelism by running HPL on a
cluster of SMP nodes in which each node can contain multiple
heterogeneous computing devices".  This module implements that layer on
top of the simulated platform:

* a :class:`Cluster` is an ordered set of devices (possibly spanning the
  simulated "nodes" — every SimCL device has its own memory, so device
  boundaries already model node boundaries for data-movement purposes);
* :class:`DistributedArray` block-partitions a 1-D HPL Array across the
  cluster along its first dimension;
* :func:`cluster_eval` runs an elementwise-style kernel on every
  partition concurrently (owner-computes), giving each device its slice
  of every distributed argument plus the partition offset.

Communication is staged through host memory (the "interconnect"), with
per-transfer costs accounted by each device's PCIe model — exactly how a
one-host multi-GPU OpenCL program moves data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DomainError, HPLError
from .array import Array
from .dtypes import HPLType
from .evaluator import eval as hpl_eval
from .runtime import HPLDevice, get_runtime
from .scalars import Int


class Cluster:
    """An ordered group of HPL devices acting as one execution target."""

    def __init__(self, devices=None) -> None:
        if devices is None:
            devices = [d for d in get_runtime().devices if not d.is_cpu]
            if not devices:
                devices = list(get_runtime().devices)
        devices = list(devices)
        if not devices:
            raise HPLError("a Cluster needs at least one device")
        for d in devices:
            if not isinstance(d, HPLDevice):
                raise HPLError(f"{d!r} is not an HPL device")
        self.devices = devices

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return f"<Cluster of {len(self.devices)} device(s)>"

    def partition_bounds(self, n: int) -> list[tuple[int, int]]:
        """Contiguous block partition of ``n`` elements over the devices."""
        if n < len(self.devices):
            raise DomainError(
                f"cannot partition {n} element(s) over "
                f"{len(self.devices)} devices")
        base, extra = divmod(n, len(self.devices))
        bounds = []
        start = 0
        for rank in range(len(self.devices)):
            size = base + (1 if rank < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds


class DistributedArray:
    """A 1-D array block-partitioned across a :class:`Cluster`.

    Each partition is an ordinary HPL :class:`Array` owned by one
    device; :meth:`gather` assembles the full contents on the host.
    """

    def __init__(self, dtype: HPLType, n: int, cluster: Cluster,
                 data: np.ndarray | None = None) -> None:
        self.dtype = dtype
        self.n = int(n)
        self.cluster = cluster
        self.bounds = cluster.partition_bounds(self.n)
        self.parts: list[Array] = []
        for (lo, hi) in self.bounds:
            part = Array(dtype, hi - lo)
            if data is not None:
                part.data[:] = np.asarray(data[lo:hi],
                                          dtype=dtype.np_dtype)
            self.parts.append(part)

    @property
    def size(self) -> int:
        return self.n

    def gather(self) -> np.ndarray:
        """Assemble the full array on the host (device->host transfers)."""
        out = np.empty(self.n, dtype=self.dtype.np_dtype)
        for (lo, hi), part in zip(self.bounds, self.parts):
            out[lo:hi] = part.read()
        return out

    def scatter(self, data: np.ndarray) -> None:
        """Replace the contents from a host array."""
        data = np.asarray(data, dtype=self.dtype.np_dtype)
        if data.size != self.n:
            raise HPLError(
                f"scatter of {data.size} element(s) into a "
                f"{self.n}-element DistributedArray")
        for (lo, hi), part in zip(self.bounds, self.parts):
            part.data[:] = data[lo:hi]

    def __repr__(self) -> str:
        return (f"<DistributedArray {self.dtype}[{self.n}] over "
                f"{len(self.cluster)} device(s)>")


def _local_args(args, dist_args, rank: int) -> list:
    """Per-rank argument list: partitions swapped in, offset/count added."""
    lo, hi = dist_args[0].bounds[rank]
    local = []
    for a in args:
        if isinstance(a, DistributedArray):
            local.append(a.parts[rank])
        else:
            local.append(a)
    local.append(Int(lo))
    local.append(Int(hi - lo))
    return local


def _check_broadcast_writes(kernel, args, local_args) -> None:
    """Reject kernels that write a broadcast plain :class:`Array`.

    Each rank writing its own copy would invalidate the other ranks'
    copies mid-loop, making the final contents depend on rank order —
    an error, not a race the user should debug.
    """
    captured = get_runtime().get_captured(kernel, local_args)
    for (name, _proxy), arg in zip(captured.params, args):
        if isinstance(arg, Array) and captured.info.writes(name):
            raise HPLError(
                f"kernel {captured.kernel_name!r} writes its broadcast "
                f"Array argument {name!r}; every device would invalidate "
                "the other devices' copies, leaving the result dependent "
                "on execution order.  Partition it as a DistributedArray "
                "(or make the kernel read-only on it) instead")


def cluster_eval(kernel, cluster: Cluster, *args, deferred: bool = True):
    """Evaluate ``kernel`` once per partition, owner-computes style.

    ``kernel`` is an ordinary HPL kernel function whose **last two
    parameters** must be ``offset`` (Int: the partition's global start
    index) and ``count`` (Int: partition length); each
    :class:`DistributedArray` argument is replaced by the device-local
    partition, while plain Arrays and scalars are broadcast to every
    device (each device keeps its own coherent copy).  Broadcast plain
    Arrays must be read-only in the kernel (an :class:`HPLError` is
    raised otherwise).

    With ``deferred=True`` (the default) every device's queue records
    its partition's transfers and launch as an event graph, all
    partitions are launched asynchronously, and a single barrier at the
    end executes them dependency-ordered — so the per-device simulated
    timelines overlap instead of serializing with the host loop.
    ``deferred=False`` runs eagerly; the numerical results are
    identical either way.

    Returns the list of per-partition :class:`EvalResult` objects (all
    complete by return).
    """
    dist_args = [a for a in args if isinstance(a, DistributedArray)]
    if not dist_args:
        raise HPLError("cluster_eval needs at least one DistributedArray")
    n = dist_args[0].n
    for a in dist_args:
        if a.n != n or a.cluster is not cluster:
            raise HPLError("all DistributedArrays must share the same "
                           "size and cluster")
    _check_broadcast_writes(kernel, args,
                            _local_args(args, dist_args, 0))

    devices = cluster.devices
    previous = [d.deferred for d in devices]
    if deferred:
        for d in devices:
            d.set_deferred(True)
    try:
        results = []
        for rank, device in enumerate(devices):
            lo, hi = dist_args[0].bounds[rank]
            result = hpl_eval(kernel).global_(hi - lo).device(device) \
                (*_local_args(args, dist_args, rank))
            results.append(result)
        # single barrier: drive every device's event graph to completion
        for result in results:
            result.wait()
    finally:
        for device, was_deferred in zip(devices, previous):
            device.set_deferred(was_deferred)
    return results


@dataclass
class ClusterTimeline:
    """Simulated-time shape of one multi-device run (see
    :func:`timeline_of`)."""

    #: wall-clock span on the simulated timeline: latest event end minus
    #: earliest event start, across every device involved
    makespan_seconds: float
    #: per-device busy time (sum of that device's event durations)
    busy_seconds: dict
    #: what the same work would take with the devices serialized
    serialized_seconds: float = field(init=False)
    #: serialized / makespan — ~N on N equally-loaded devices
    overlap_factor: float = field(init=False)

    def __post_init__(self) -> None:
        self.serialized_seconds = sum(self.busy_seconds.values())
        self.overlap_factor = (self.serialized_seconds
                               / self.makespan_seconds
                               if self.makespan_seconds > 0 else 1.0)


def timeline_of(results) -> ClusterTimeline:
    """Measure the overlap of a list of (completed) EvalResults.

    The events of each result carry simulated start/end stamps on their
    device's timeline; the makespan spans all of them, while the
    serialized time is what a one-device-at-a-time host loop would pay.
    """
    events = [e for r in results for e in r.events]
    if not events:
        raise HPLError("timeline_of needs at least one event")
    start = min(e.profile_start for e in events)
    end = max(e.profile_end for e in events)
    busy: dict = {}
    for event in events:
        busy[event.device_name] = busy.get(event.device_name, 0.0) \
            + event.duration
    return ClusterTimeline(makespan_seconds=(end - start) * 1e-9,
                           busy_seconds=busy)
