"""OpenCL C code generation from the captured HPL kernel AST.

This is the HPL backend of the paper (§III): "Our current implementation
of the library generates OpenCL C versions of the HPL kernels, which are
then compiled to binary with the OpenCL compiler."  The generated source
is ordinary OpenCL C, compiled by :mod:`repro.clc` through the SimCL
:class:`~repro.ocl.program.Program` — the very path hand-written kernels
take, so HPL and manual OpenCL run on identical substrate.
"""

from __future__ import annotations

from ..errors import KernelCaptureError
from . import dtypes as D
from . import kast as K
from .predefined import PREDEFINED
from .proxy import ArrayHandle

#: C operator precedence for minimal-parenthesis emission
_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}
_UNARY_PREC = 11
_PRIMARY_PREC = 12


def _float_literal(value: float, dtype: D.HPLType) -> str:
    text = repr(float(value))
    if "e" in text or "E" in text:
        pass
    elif "." not in text and "inf" not in text and "nan" not in text:
        text += ".0"
    if dtype is D.float_:
        text += "f"
    return text


def _int_suffix(dtype: D.HPLType) -> str:
    return {"uint": "u", "long": "L", "ulong": "UL"}.get(dtype.name, "")


class CodeGenerator:
    """Emit the OpenCL C for one captured kernel."""

    def __init__(self, kernel_name: str, params: list, body: list,
                 param_access: dict) -> None:
        """``params`` is the ordered list of (name, proxy) pairs;
        ``param_access`` maps array parameter names to ('r'|'w'|'rw')."""
        self.kernel_name = kernel_name
        self.params = params
        self.body = body
        self.param_access = param_access
        self._lines: list[str] = []
        self._indent = 0

    # -- public --------------------------------------------------------------

    def generate(self) -> str:
        sig = ", ".join(self._param_decl(name, proxy)
                        for name, proxy in self.params)
        self._emit(f"__kernel void {self.kernel_name}({sig})")
        self._emit("{")
        self._indent += 1
        for stmt in self.body:
            self._stmt(stmt)
        self._indent -= 1
        self._emit("}")
        return "\n".join(self._lines) + "\n"

    # -- declarations ------------------------------------------------------------

    def _param_decl(self, name: str, proxy) -> str:
        if isinstance(proxy, ArrayHandle):
            space = {"global": "__global", "constant": "__constant",
                     "local": "__local"}[proxy.mem]
            qual = ("const " if self.param_access.get(name) == "r"
                    and proxy.mem == "global" else "")
            return f"{space} {qual}{proxy.dtype.name}* {name}"
        return f"{proxy.dtype.name} {name}"

    # -- statements -----------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self._lines.append("    " * self._indent + text)

    def _stmt(self, stmt: K.Stmt) -> None:
        if isinstance(stmt, K.DeclScalar):
            init = (f" = {self._expr(stmt.init)}"
                    if stmt.init is not None else "")
            self._emit(f"{stmt.dtype.name} {stmt.name}{init};")
        elif isinstance(stmt, K.DeclArray):
            size = 1
            for s in stmt.shape:
                size *= int(s)
            prefix = "__local " if stmt.mem == D.LOCAL else ""
            self._emit(f"{prefix}{stmt.dtype.name} {stmt.name}[{size}];")
        elif isinstance(stmt, K.Assign):
            self._emit(f"{self._lvalue(stmt.target)} {stmt.op} "
                       f"{self._expr(stmt.value)};")
        elif isinstance(stmt, K.If):
            first = True
            for cond, body in stmt.branches:
                if cond is None:
                    self._emit("else {")
                elif first:
                    self._emit(f"if ({self._expr(cond)}) {{")
                else:
                    self._emit(f"else if ({self._expr(cond)}) {{")
                first = False
                self._indent += 1
                for s in body:
                    self._stmt(s)
                self._indent -= 1
                self._emit("}")
        elif isinstance(stmt, K.For):
            var = stmt.var.name
            self._emit(
                f"for ({var} = {self._expr(stmt.start)}; "
                f"{var} {stmt.cmp} {self._expr(stmt.limit)}; "
                f"{var} += {self._expr(stmt.step)}) {{")
            self._indent += 1
            for s in stmt.body:
                self._stmt(s)
            self._indent -= 1
            self._emit("}")
        elif isinstance(stmt, K.While):
            self._emit(f"while ({self._expr(stmt.cond)}) {{")
            self._indent += 1
            for s in stmt.body:
                self._stmt(s)
            self._indent -= 1
            self._emit("}")
        elif isinstance(stmt, K.Barrier):
            flags = []
            if stmt.flags & 1:
                flags.append("CLK_LOCAL_MEM_FENCE")
            if stmt.flags & 2:
                flags.append("CLK_GLOBAL_MEM_FENCE")
            self._emit(f"barrier({' | '.join(flags)});")
        elif isinstance(stmt, K.Break):
            self._emit("break;")
        elif isinstance(stmt, K.Continue):
            self._emit("continue;")
        elif isinstance(stmt, K.Return):
            self._emit("return;")
        else:  # pragma: no cover
            raise KernelCaptureError(
                f"cannot generate code for {type(stmt).__name__}")

    # -- expressions --------------------------------------------------------------------

    def _lvalue(self, target: K.Expr) -> str:
        if isinstance(target, K.IndexRef):
            return self._index(target)
        if isinstance(target, K.VarRef):
            return target.name
        raise KernelCaptureError(
            f"invalid assignment target {type(target).__name__}")

    def _index(self, ref: K.IndexRef) -> str:
        handle: ArrayHandle = ref.array
        shape = handle.shape
        if len(ref.indices) != len(shape):
            raise KernelCaptureError(
                f"{handle.name!r} indexed with {len(ref.indices)} "
                f"indices, needs {len(shape)}")
        if len(shape) == 1:
            return f"{handle.name}[{self._expr(ref.indices[0])}]"
        # row-major linearisation with constant strides from the shape
        strides = []
        acc = 1
        for dim in reversed(shape[1:]):
            acc *= int(dim)
            strides.append(acc)
        strides = list(reversed(strides)) + [1]
        terms = []
        for index, stride in zip(ref.indices, strides):
            part = self._expr(index, _PREC["*"] + 1)
            terms.append(f"{part} * {stride}" if stride != 1 else part)
        return f"{handle.name}[{' + '.join(terms)}]"

    def _expr(self, expr: K.Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr_prec(expr)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, expr: K.Expr) -> tuple[str, int]:
        if isinstance(expr, K.Const):
            dtype = expr.dtype
            if dtype is None:
                dtype = D.double_ if isinstance(expr.value, float) \
                    else D.int_
            if dtype.is_float:
                return _float_literal(expr.value, dtype), _PRIMARY_PREC
            value = int(expr.value)
            if value < 0:
                return f"({value}{_int_suffix(dtype)})", _PRIMARY_PREC
            return f"{value}{_int_suffix(dtype)}", _PRIMARY_PREC
        if isinstance(expr, K.PredefinedRef):
            fn, dim = PREDEFINED[expr.name]
            return f"{fn}({dim})", _PRIMARY_PREC
        if isinstance(expr, K.VarRef):
            return expr.name, _PRIMARY_PREC
        if isinstance(expr, K.IndexRef):
            return self._index(expr), _PRIMARY_PREC
        if isinstance(expr, K.UnOp):
            inner = self._expr(expr.operand, _UNARY_PREC)
            if inner.startswith(expr.op):
                inner = f"({inner})"   # `--x` would lex as decrement
            return f"{expr.op}{inner}", _UNARY_PREC
        if isinstance(expr, K.BinOp):
            prec = _PREC[expr.op]
            lhs = self._expr(expr.lhs, prec)
            rhs = self._expr(expr.rhs, prec + 1)
            return f"{lhs} {expr.op} {rhs}", prec
        if isinstance(expr, K.Cast):
            inner = self._expr(expr.operand, _UNARY_PREC)
            return f"({expr.target.name}){inner}", _UNARY_PREC
        if isinstance(expr, K.Ternary):
            cond = self._expr(expr.cond, 1)
            a = self._expr(expr.then, 1)
            b = self._expr(expr.otherwise, 1)
            return f"{cond} ? {a} : {b}", 0
        if isinstance(expr, K.Call):
            name = expr.name
            if name == "abs" and expr.dtype is not None \
                    and expr.dtype.is_float:
                name = "fabs"
            args = ", ".join(self._expr(a) for a in expr.args)
            return f"{name}({args})", _PRIMARY_PREC
        raise KernelCaptureError(
            f"cannot generate code for expression "
            f"{type(expr).__name__}")


def generate_source(kernel_name: str, params: list, body: list,
                    param_access: dict) -> str:
    """Generate the OpenCL C source of one captured HPL kernel."""
    return CodeGenerator(kernel_name, params, body,
                         param_access).generate()
