"""HPL Arrays (paper §III-A): host-side arrays with device coherence.

``Array(double_, 1000)`` creates a vector usable both in host code and as
a kernel argument.  HPL tracks where the current contents live (host
memory and/or per-device buffers) and moves data lazily: a kernel launch
copies in only the arguments the kernel *reads* (per the access
analysis), and host accesses copy back only when the freshest copy is on
a device.

Host indexing uses parentheses — ``a(i, j)`` — as in the paper, which
reserves square brackets for (dynamically compiled, overhead-free) kernel
code; ``a[i, j]`` also works on the host as a pythonic convenience.
Inside kernels, ``Array(...)`` declares a private (or, with ``Local``, a
scratchpad) array instead — the same dual role the C++ template has.
"""

from __future__ import annotations

import numpy as np

from ..errors import CoherenceError, HPLError, KernelCaptureError
from . import dtypes as D
from . import kast as K
from .builder import KernelBuilder
from .proxy import ArrayHandle


def _normalize_dims(dims) -> tuple[int, ...]:
    if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
        dims = tuple(dims[0])
    shape = tuple(int(d) for d in dims)
    if not shape:
        raise HPLError("an Array needs at least one dimension; use the "
                       "scalar classes (Int, Double, ...) for scalars")
    if any(d <= 0 for d in shape):
        raise HPLError(f"invalid Array shape {shape}")
    return shape


class Array:
    """An HPL array; see the module docstring."""

    def __new__(cls, dtype: D.HPLType, *dims, mem: str | None = None,
                data: np.ndarray | None = None, name: str | None = None):
        builder = KernelBuilder.current()
        if builder is None:
            return super().__new__(cls)
        # inside a kernel: declare a private or local array
        shape = _normalize_dims(dims)
        if data is not None:
            raise KernelCaptureError(
                "in-kernel Array declarations cannot wrap host data")
        space = D.PRIVATE if mem in (None, D.PRIVATE) else mem
        if space not in (D.PRIVATE, D.LOCAL):
            raise KernelCaptureError(
                "arrays declared inside kernels are private by default "
                "or Local; Global/Constant arrays must come from the host")
        var_name = builder.claim_name(name) if name \
            else builder.fresh_name("arr")
        builder.add(K.DeclArray(name=var_name, dtype=dtype, shape=shape,
                                mem=space))
        return ArrayHandle(var_name, dtype, shape, mem=space,
                           is_param=False)

    def __init__(self, dtype: D.HPLType, *dims, mem: str | None = None,
                 data: np.ndarray | None = None,
                 name: str | None = None) -> None:
        if not isinstance(dtype, D.HPLType):
            raise HPLError(
                f"first argument must be an HPL element type "
                f"(float_, double_, int_, ...), got {dtype!r}")
        shape = _normalize_dims(dims)
        self.dtype = dtype
        self.shape = shape
        self.mem = D.GLOBAL if mem is None else mem
        if self.mem not in (D.GLOBAL, D.CONSTANT):
            raise HPLError("host Arrays live in Global or Constant memory")
        self.name = name

        if data is not None:
            data = np.asarray(data)
            if data.dtype != dtype.np_dtype:
                raise HPLError(
                    f"provided storage has dtype {data.dtype}, expected "
                    f"{dtype.np_dtype} — HPL wraps user memory without "
                    "copying, so the types must match")
            if data.size != int(np.prod(shape)):
                raise HPLError(
                    f"provided storage has {data.size} elements, shape "
                    f"{shape} needs {int(np.prod(shape))}")
            self._host = np.ascontiguousarray(data).reshape(shape)
            self._user_owned = True
        else:
            self._host = np.zeros(shape, dtype=dtype.np_dtype)
            self._user_owned = False

        # coherence state
        self._host_valid = True
        self._device_valid: dict = {}    # HPLDevice -> bool
        self._buffers: dict = {}         # HPLDevice -> ocl.Buffer
        # event threading: the command that produced each current copy
        self._device_event: dict = {}    # HPLDevice -> ocl.Event
        #: event of the d2h copy that produced the current host contents
        #: (None when the host copy came from host-side writes)
        self.host_event = None

    # -- geometry -----------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    # -- host access ----------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """Writable NumPy view of the host copy (paper's ``data()``).

        Accessing it synchronises the host copy and conservatively marks
        device copies stale, since HPL cannot see writes through the raw
        pointer.  Use :meth:`read` when you only need to look.
        """
        self._sync_host()
        self._invalidate_devices()
        return self._host

    def read(self) -> np.ndarray:
        """Read-only NumPy view of the (synchronised) host copy."""
        self._sync_host()
        view = self._host.view()
        view.flags.writeable = False
        return view

    def fill(self, value) -> "Array":
        """Set every element to ``value`` (host-side write)."""
        self._host[...] = value
        self._host_valid = True
        self._invalidate_devices()
        return self

    def __call__(self, *indices):
        """Element read with parentheses, as in host HPL code."""
        self._sync_host()
        return self._host[tuple(int(i) for i in indices)]

    def __getitem__(self, key):
        if KernelBuilder.current() is not None:
            raise KernelCaptureError(
                f"host Array {self._label()} used inside a kernel; pass "
                "it as a kernel argument instead of capturing it")
        self._sync_host()
        view = self._host[key]
        if isinstance(view, np.ndarray):
            view = view.view()
            view.flags.writeable = False
        return view

    def __setitem__(self, key, value) -> None:
        if KernelBuilder.current() is not None:
            raise KernelCaptureError(
                f"host Array {self._label()} written inside a kernel; "
                "pass it as a kernel argument instead")
        self._sync_host()
        self._host[key] = value
        self._invalidate_devices()

    def __len__(self) -> int:
        return self.shape[0]

    def _label(self) -> str:
        return self.name or f"<Array {self.dtype}{list(self.shape)}>"

    def __repr__(self) -> str:
        where = ["host"] if self._host_valid else []
        where += [dev.name for dev, ok in self._device_valid.items() if ok]
        return (f"<hpl.Array {self.dtype}{list(self.shape)} "
                f"mem={self.mem} valid_on={where}>")

    # -- coherence (driven by the HPL runtime) ------------------------------------------

    @staticmethod
    def _live_devices():
        """Devices of the current runtime, or None when no runtime exists
        (``reset_runtime()`` was called and nothing re-created one)."""
        from .runtime import HPLRuntime
        rt = HPLRuntime._instance
        return None if rt is None else set(rt.devices)

    def _purge_dead_devices(self) -> None:
        """Drop buffers keyed by devices of a reset runtime.

        A copy that is both valid and the array's *only* valid copy is
        kept, so :meth:`_sync_host` can raise a clear error instead of a
        silent "no valid copy anywhere"."""
        live = self._live_devices()
        dead = [dev for dev in self._buffers
                if live is None or dev not in live]
        for dev in dead:
            if self._host_valid or not self._device_valid.get(dev):
                self._buffers.pop(dev, None)
                self._device_valid.pop(dev, None)
                self._device_event.pop(dev, None)

    def _sync_host(self):
        """Bring the host copy up to date; returns the d2h event if one
        was needed (already complete), else None."""
        event = self.enqueue_host_sync()
        if event is not None:
            event.wait()     # host code touches the data right after
        return event

    def enqueue_host_sync(self):
        """Enqueue (without waiting) the d2h copy refreshing the host.

        Returns the transfer event, or ``None`` when the host copy is
        already valid.  The host copy becomes valid when the event
        *completes* (a completion callback flips the state), so callers
        must ``wait()`` the event — or drive the queue — before touching
        the data.  Enqueueing the copies of several arrays on different
        devices before waiting any of them lets the transfers overlap on
        the simulated timeline instead of serializing with the host loop
        (see :meth:`DistributedArray.gather`).
        """
        if self._host_valid:
            return None
        live = self._live_devices()
        stale = []
        for dev, ok in self._device_valid.items():
            if not ok:
                continue
            if live is None or dev not in live:
                stale.append(dev)
                continue
            producer = self._device_event.get(dev)
            event = dev.read_buffer(
                self._buffers[dev], self._host,
                wait_for=[producer] if producer is not None else None)

            def _done(ev, self=self):
                if ev.is_failed:
                    return      # d2h never ran; the host copy is still stale
                self._host_valid = True
                self.host_event = ev

            event.add_callback(_done)
            return event
        if stale:
            raise CoherenceError(
                f"the freshest copy of {self._label()} lives on "
                f"{', '.join(d.name for d in stale)} of a runtime that "
                "was reset; its contents are unrecoverable.  Sync arrays "
                "to the host (e.g. via read()) before reset_runtime()")
        raise HPLError(
            f"{self._label()} has no valid copy anywhere (internal "
            "coherence error)")

    def _invalidate_devices(self) -> None:
        for dev in self._device_valid:
            self._device_valid[dev] = False
        self._device_event.clear()
        self.host_event = None

    def ensure_on_device(self, dev, *, will_read: bool):
        """Make sure a buffer exists on ``dev``; copy data only if the
        kernel will read this argument and the device copy is stale.

        Returns the h2d event when a copy was enqueued, else None.  The
        copy waits on the d2h event that produced the host contents (if
        any), so cross-device movement is ordered on the event graph,
        not by host-loop side effects.
        """
        self._purge_dead_devices()
        if dev not in self._buffers:
            self._buffers[dev] = dev.create_buffer(self.nbytes)
            self._device_valid[dev] = False
        if will_read and not self._device_valid[dev]:
            self._sync_host()
            deps = [self.host_event] if self.host_event is not None \
                else None
            event = dev.write_buffer(self._buffers[dev], self._host,
                                     wait_for=deps)
            self._device_valid[dev] = True
            self._device_event[dev] = event

            def _undo(ev, self=self, dev=dev):
                # the h2d never ran (injected fault or failed
                # dependency): forget the optimistic validity so a
                # retry re-copies instead of dead-ending on the
                # failed producer event
                if not ev.is_failed:
                    return
                if self._device_event.get(dev) is ev:
                    self._device_valid[dev] = False
                    self._device_event.pop(dev, None)

            event.add_callback(_undo)
            return event
        return None

    def mark_written_on(self, dev, event=None) -> None:
        """After a kernel wrote this array on ``dev``.

        ``event`` is the kernel's event; recording it lets later
        transfers and launches depend on the write explicitly.  If that
        event later *fails* (fault injection, failed dependency), the
        kernel never touched memory, so the pre-launch coherence state
        is restored — a retry sees the array exactly as before the
        doomed launch.
        """
        prev = (self._host_valid, self.host_event,
                dict(self._device_valid), dict(self._device_event))
        for d in self._device_valid:
            self._device_valid[d] = d is dev
        self._device_valid[dev] = True
        self._host_valid = False
        self.host_event = None
        if event is not None:
            self._device_event[dev] = event

            def _undo(ev, self=self, dev=dev, prev=prev):
                if not ev.is_failed:
                    return
                if self._device_event.get(dev) is not ev:
                    return      # a newer write superseded this one
                self._host_valid, self.host_event = prev[0], prev[1]
                restored_valid = dict(prev[2])
                for d in self._device_valid:    # buffers created since
                    restored_valid.setdefault(d, False)
                self._device_valid = restored_valid
                self._device_event = dict(prev[3])

            event.add_callback(_undo)

    def device_event_on(self, dev):
        """The event that produced the copy on ``dev``, if recorded."""
        return self._device_event.get(dev)

    def buffer_on(self, dev):
        return self._buffers[dev]

    # -- kernel-side handle ------------------------------------------------------------------

    def make_handle(self, param_name: str) -> ArrayHandle:
        """The tracing proxy standing in for this array."""
        return ArrayHandle(param_name, self.dtype, self.shape,
                           mem=self.mem, is_param=True)

    def signature(self) -> tuple:
        """Cache-key component describing this argument.

        1-D arrays share kernels across lengths; for 2-D/3-D arrays the
        row strides are baked into the generated source, so the shape
        participates in the key.
        """
        shape_part = self.shape[1:] if self.ndim > 1 else ()
        return ("a", self.dtype.name, self.ndim, self.mem, shape_part)
