"""``eval(kernel)(args...)`` — kernel invocation (paper §III-C).

The syntax mirrors the paper exactly, modulo Python keywords::

    eval(saxpy)(y, x, a)                               # defaults
    eval(f).global_(4, 8).local_(2, 4)(a)              # explicit domains
    eval(f).device(hpl.get_device("Quadro"))(a, b)     # explicit device

Defaults: the kernel runs on the first non-CPU device, the global domain
is the dimensions of the first argument, and the local domain is chosen
by the library.
"""

from __future__ import annotations

from .. import trace
from ..errors import DomainError, HPLError
from .array import Array
from .runtime import EvalResult, HPLDevice, HPLRuntime, get_runtime


class Evaluator:
    """Fluent launch configuration returned by :func:`eval`."""

    def __init__(self, func) -> None:
        if not callable(func):
            raise HPLError(f"eval() needs a kernel function, got {func!r}")
        self._func = func
        self._global: tuple | None = None
        self._local: tuple | None = None
        self._device: HPLDevice | None = None

    # -- fluent configuration ----------------------------------------------------

    def global_(self, *dims) -> "Evaluator":
        """Set the global domain (up to 3 dimensions)."""
        self._global = self._dims(dims, "global")
        return self

    def local_(self, *dims) -> "Evaluator":
        """Set the local domain (must divide the global domain)."""
        self._local = self._dims(dims, "local")
        return self

    def device(self, dev) -> "Evaluator":
        """Select the device that evaluates the kernel."""
        if isinstance(dev, (str, int)):
            from .runtime import get_device
            dev = get_device(dev)
        if not isinstance(dev, HPLDevice):
            raise HPLError(f"not an HPL device: {dev!r}")
        self._device = dev
        return self

    @staticmethod
    def _dims(dims, what: str) -> tuple:
        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        out = tuple(int(d) for d in dims)
        if not 1 <= len(out) <= 3 or any(d <= 0 for d in out):
            raise DomainError(f"invalid {what} domain {dims!r}")
        return out

    # -- invocation ------------------------------------------------------------------

    def __call__(self, *args) -> EvalResult:
        with trace.span("eval", category="hpl",
                        func=getattr(self._func, "__name__",
                                     repr(self._func))) as espan:
            return self._invoke(args, espan)

    def _invoke(self, args, espan) -> EvalResult:
        rt: HPLRuntime = get_runtime()
        device = self._device or rt.default_device

        compiled, from_cache = rt.get_compiled(self._func, args, device)
        captured = compiled.captured
        info = captured.info
        espan.set_attrs(kernel=captured.kernel_name, device=device.name,
                        cache="hit" if from_cache else "miss")

        global_size = self._global
        if global_size is None:
            global_size = self._default_global(args, captured)
        local_size = self._local
        if local_size is not None:
            if len(local_size) != len(global_size):
                raise DomainError(
                    f"local domain {local_size} must have the same "
                    f"number of dimensions as the global domain "
                    f"{global_size}")
            for g, loc in zip(global_size, local_size):
                if g % loc:
                    raise DomainError(
                        f"local domain {local_size} does not divide the "
                        f"global domain {global_size} of kernel "
                        f"{captured.kernel_name!r} (dimension of size "
                        f"{g} is not a multiple of {loc})")

        # bind arguments, copying in only what the kernel will read;
        # each transfer event is tied to the argument that caused it,
        # and the launch waits on every argument's producing event
        transfers: list = []
        dep_events: list = []
        with trace.span("bind_args", category="hpl",
                        kernel=captured.kernel_name):
            kernel = compiled.program.create_kernel(captured.kernel_name)
            for index, ((name, _proxy), arg) in enumerate(
                    zip(captured.params, args)):
                if isinstance(arg, Array):
                    h2d = arg.ensure_on_device(device,
                                               will_read=info.reads(name))
                    kernel.set_arg(index, arg.buffer_on(device))
                    if h2d is not None:
                        transfers.append((name, h2d))
                        dep_events.append(h2d)
                    else:
                        producer = arg.device_event_on(device)
                        if producer is not None \
                                and producer not in dep_events:
                            dep_events.append(producer)
                else:
                    value = arg.value if hasattr(arg, "value") else arg
                    kernel.set_arg(index, value)

        with trace.span("launch", category="hpl",
                        kernel=captured.kernel_name, device=device.name,
                        global_size=global_size,
                        local_size=local_size) as lspan:
            event = device.queue.enqueue_nd_range_kernel(
                kernel, global_size, local_size,
                wait_for=dep_events or None)
            if event.is_complete:
                lspan.set_attr("sim_kernel_seconds", event.duration)
        rt.stats.launches += 1

        # coherence: the device now owns every array the kernel wrote,
        # and the kernel event is recorded as its producing event
        for (name, _proxy), arg in zip(captured.params, args):
            if isinstance(arg, Array) and info.writes(name):
                arg.mark_written_on(device, event)

        return EvalResult(
            kernel_event=event,
            transfer_events=[e for _n, e in transfers],
            transfers=transfers,
            codegen_seconds=0.0 if from_cache else captured.codegen_seconds,
            build_seconds=0.0 if from_cache else compiled.build_seconds,
            from_cache=from_cache,
            device=device,
            source=captured.source,
            kernel_name=captured.kernel_name,
        )

    @staticmethod
    def _default_global(args, captured) -> tuple:
        """Paper §III-C: "the global domain of the evaluation of a kernel
        is given by the dimensions of its first argument"."""
        for arg in args:
            if isinstance(arg, Array):
                return arg.shape
        raise DomainError(
            "cannot infer a global domain: no Array argument; use "
            ".global_(...)")


def eval(kernel) -> Evaluator:  # noqa: A001 - paper-mandated name
    """Request the parallel evaluation of ``kernel`` (see module docs)."""
    return Evaluator(kernel)


#: alias for contexts where shadowing builtins is unwelcome
eval_ = eval
