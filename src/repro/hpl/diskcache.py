"""Persistent, cross-process kernel binary cache.

The paper's runtime "stores internally and reuses the binaries of the
kernels it generates" (§V-B) — but the in-memory ``_captured``/``_compiled``
caches of :mod:`repro.hpl.runtime` die with the process, so every cold
start pays the full clc compile cost again.  This module adds the third
cache layer: a content-addressed on-disk store of serialized
:class:`~repro.clc.ir.ProgramIR` blobs shared by every process on the
machine, in the spirit of pocl's kernel compiler cache.

Key anatomy (see docs/caching.md)::

    sha256("hpl-kernel-cache" \\0 <package version> \\0 <IR schema version>
           \\0 <build options> \\0 <device caps> \\0 <preprocessed source>)

so a cache entry is invalidated automatically by a compiler upgrade, an
IR schema change, different ``-D`` options, a source edit, or a device
capability (fp64) difference.  Entries are written atomically
(temp file + ``os.replace``) so concurrent readers can never observe a
torn blob, eviction runs under an ``flock`` so concurrent benchsuite
processes do not race each other, and the store is LRU size-capped
(mtime is touched on every hit).

Enabling the cache::

    import repro.hpl as hpl
    hpl.configure(cache_dir="~/.cache/hpl-kernels")   # or
    $ HPL_CACHE_DIR=~/.cache/hpl-kernels python app.py

Inspection CLI::

    python -m repro.hpl.diskcache {ls,stats,purge} [--cache-dir DIR]

Metrics (process-global registry): ``hpl.disk_cache_hits``,
``hpl.disk_cache_misses``, ``hpl.disk_cache_bytes`` (bytes written).
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
from pathlib import Path

from .. import trace
from .._version import __version__
from ..clc.ir import IR_SCHEMA_VERSION, ProgramIR
from ..errors import IRSchemaError

try:                                    # POSIX only; harmless elsewhere
    import fcntl
except ImportError:                     # pragma: no cover - non-POSIX
    fcntl = None

#: environment variables honoured on first use
ENV_CACHE_DIR = "HPL_CACHE_DIR"
ENV_CACHE_MAX_BYTES = "HPL_CACHE_MAX_BYTES"

#: default LRU size cap (generous: entries are a few KB each)
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_ENTRY_SUFFIX = ".irbin"
_SOURCE_SUFFIX = ".jitsrc"


def cache_key(preprocessed_source: str, options: str = "",
              device_caps=(), opt_signature: str = "",
              engine_signature: str = "") -> str:
    """Content-addressed key of one compile: sha256 over every input
    that can change the produced IR or its validity on a device.

    ``opt_signature`` (see :func:`repro.clc.passes.opt_signature`)
    identifies the middle-end configuration — opt level, pass-pipeline
    version and bytecode version — because entries store the
    *post-optimization* artifact (IR + bytecode), not just the
    front-end output.  ``engine_signature`` identifies the execution
    backends the build targets (engine names + their codegen versions,
    see :func:`repro.ocl.program.engine_signature_of`): codegen-capable
    backends cache generated source alongside the IR, so switching
    engines or bumping a codegen version must miss rather than serve an
    artifact produced for a different backend.
    """
    h = hashlib.sha256()
    for part in ("hpl-kernel-cache", __version__, str(IR_SCHEMA_VERSION),
                 options, repr(tuple(device_caps)), opt_signature,
                 engine_signature, preprocessed_source):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


class KernelDiskCache:
    """A directory of ``<sha256>.irbin`` entries with LRU eviction."""

    def __init__(self, path, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.path = Path(path).expanduser()
        self.max_bytes = int(max_bytes)
        if self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.path.mkdir(parents=True, exist_ok=True)

    def key_of(self, preprocessed_source: str, options: str = "",
               device_caps=(), opt_signature: str = "",
               engine_signature: str = "") -> str:
        """See :func:`cache_key`."""
        return cache_key(preprocessed_source, options, device_caps,
                         opt_signature, engine_signature)

    # -- internal ----------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.path / (key + _ENTRY_SUFFIX)

    def _source_path(self, key: str) -> Path:
        return self.path / (key + _SOURCE_SUFFIX)

    @contextlib.contextmanager
    def _locked(self):
        """Cross-process exclusive lock over mutations of the store.

        After acquiring the flock the lock file's identity is
        re-checked: if another process unlinked and recreated ``.lock``
        while we blocked, our lock lives on an orphaned inode and
        excludes nobody — so close and take the lock again on the
        current file.  (``purge`` never removes ``.lock`` precisely to
        keep this loop from spinning, but a foreign ``rm`` must not
        silently void mutual exclusion either.)
        """
        if fcntl is None:               # pragma: no cover - non-POSIX
            yield
            return
        lock_path = self.path / ".lock"
        while True:
            fh = open(lock_path, "a+b")
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    current = os.stat(lock_path)
                except OSError:         # unlinked while we blocked
                    continue
                held = os.fstat(fh.fileno())
                if (current.st_dev, current.st_ino) \
                        != (held.st_dev, held.st_ino):
                    continue            # recreated: lock the new file
                try:
                    yield
                finally:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
                return
            finally:
                fh.close()

    @staticmethod
    def _registry():
        return trace.get_registry()

    # -- lookup / store ----------------------------------------------------

    def get(self, key: str) -> ProgramIR | None:
        """The cached IR for ``key``, or None (a counted miss).

        A torn, corrupt, or schema-mismatched entry is removed and
        reported as a miss — the caller recompiles and overwrites it.
        """
        with trace.span("disk_cache_lookup", category="hpl",
                        key=key[:12]) as sp:
            path = self._entry_path(key)
            try:
                blob = path.read_bytes()
                program = ProgramIR.from_bytes(blob)
            except (OSError, IRSchemaError):
                with contextlib.suppress(OSError):
                    if path.exists():   # invalid entry: drop it
                        path.unlink()
                self._registry().counter("hpl.disk_cache_misses").inc()
                sp.set_attr("outcome", "miss")
                return None
            with contextlib.suppress(OSError):
                os.utime(path)          # LRU: mark recently used
            self._registry().counter("hpl.disk_cache_hits").inc()
            sp.set_attr("outcome", "hit")
            return program

    def put(self, key: str, program: ProgramIR) -> None:
        """Store ``program`` under ``key`` atomically, then evict LRU."""
        with trace.span("disk_cache_store", category="hpl",
                        key=key[:12]) as sp:
            blob = program.to_bytes()
            tmp = self.path / (
                f".{key}.{os.getpid()}.{threading.get_ident()}.tmp")
            try:
                tmp.write_bytes(blob)
                os.replace(tmp, self._entry_path(key))
            finally:
                with contextlib.suppress(OSError):
                    tmp.unlink()
            self._registry().counter("hpl.disk_cache_bytes").inc(len(blob))
            sp.set_attr("bytes", len(blob))
            with self._locked():
                self._evict_lru()

    # -- generated-source sidecars (codegen backends) ----------------------

    def get_source(self, key: str) -> str | None:
        """Cached generated source for ``key``, or None.

        Sidecar entries (``<key>.jitsrc``) hold the Python module a
        codegen backend (e.g. the ``jit`` engine) emitted for a program;
        ``key`` is the backend's own codegen key, not an ``.irbin`` key.
        """
        path = self._source_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._registry().counter("hpl.disk_cache_misses").inc()
            return None
        with contextlib.suppress(OSError):
            os.utime(path)              # LRU: mark recently used
        self._registry().counter("hpl.disk_cache_hits").inc()
        return text

    def put_source(self, key: str, text: str) -> None:
        """Store generated source under ``key`` atomically."""
        tmp = self.path / (
            f".{key}.{os.getpid()}.{threading.get_ident()}.src.tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self._source_path(key))
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink()
        self._registry().counter("hpl.disk_cache_bytes").inc(len(text))

    def _evict_lru(self) -> None:
        """Remove oldest entries until the store fits the cap.

        Runs under :meth:`_locked`, but the mtime order was scanned in
        this process and ``get``/``put`` mutate entries without taking
        the lock — so every candidate is re-stat'ed immediately before
        its unlink.  An entry whose mtime moved since the scan was hit
        or overwritten concurrently: it is no longer the LRU victim the
        scan chose, so it survives this round (the next ``put`` evicts
        again if the store is still over the cap).
        """
        entries = self._all_entries()
        total = sum(size for _p, size, _m in entries)
        # oldest mtime first; stop as soon as we fit under the cap
        for path, size, mtime in sorted(entries, key=lambda e: e[2]):
            if total <= self.max_bytes:
                return
            try:
                st = path.stat()
            except OSError:             # already gone: freed elsewhere
                total -= size
                continue
            if st.st_mtime != mtime:    # touched/replaced since scan
                continue
            with contextlib.suppress(OSError):
                path.unlink()
                total -= st.st_size

    def _all_entries(self) -> list[tuple[Path, int, float]]:
        """``(path, size, mtime)`` of every evictable file: ``.irbin``
        entries and ``.jitsrc`` generated-source sidecars."""
        out = []
        for suffix in (_ENTRY_SUFFIX, _SOURCE_SUFFIX):
            for path in self.path.glob("*" + suffix):
                try:
                    st = path.stat()
                except OSError:         # raced with an eviction
                    continue
                out.append((path, st.st_size, st.st_mtime))
        return out

    # -- inspection --------------------------------------------------------

    def entries(self) -> list[tuple[str, int, float]]:
        """``(key, size_bytes, mtime)`` for every complete entry."""
        out = []
        for path in self.path.glob("*" + _ENTRY_SUFFIX):
            try:
                st = path.stat()
            except OSError:             # raced with an eviction
                continue
            out.append((path.name[:-len(_ENTRY_SUFFIX)],
                        st.st_size, st.st_mtime))
        return out

    def purge(self) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps ``.jitsrc`` generated-source sidecars and stale
        ``.tmp`` files abandoned by killed writers.  The ``.lock`` file
        itself is never removed: a concurrent :meth:`_locked` holder
        flocks that very inode, and unlinking it would let the next
        locker acquire a *new* file while the old holder still believes
        it has exclusivity.
        """
        removed = 0
        with self._locked():
            for key, _size, _mtime in self.entries():
                with contextlib.suppress(OSError):
                    self._entry_path(key).unlink()
                    removed += 1
            for source in self.path.glob("*" + _SOURCE_SUFFIX):
                with contextlib.suppress(OSError):
                    source.unlink()
                    removed += 1
            for stale in self.path.glob(".*.tmp"):
                with contextlib.suppress(OSError):
                    stale.unlink()
        return removed

    def stats(self) -> dict:
        """Plain-data summary: store contents plus this process's hit
        and miss counters."""
        entries = self.entries()
        registry = self._registry()
        return {
            "path": str(self.path),
            "entries": len(entries),
            "total_bytes": sum(size for _k, size, _m in entries),
            "max_bytes": self.max_bytes,
            "hits": registry.counter("hpl.disk_cache_hits").value,
            "misses": registry.counter("hpl.disk_cache_misses").value,
            "bytes_written": registry.counter("hpl.disk_cache_bytes").value,
        }

    def __repr__(self) -> str:
        return (f"<KernelDiskCache {str(self.path)!r} "
                f"max_bytes={self.max_bytes}>")


# -- process-global activation ----------------------------------------------------

_active: KernelDiskCache | None = None
_configured = False
_config_lock = threading.Lock()


def configure(cache_dir=None, max_bytes: int | None = None
              ) -> KernelDiskCache | None:
    """Enable (or, with ``cache_dir=None``, disable) the disk cache.

    Takes precedence over the ``HPL_CACHE_DIR`` environment variable.
    Returns the active :class:`KernelDiskCache`, or None when disabled.
    """
    global _active, _configured
    with _config_lock:
        _configured = True
        if cache_dir is None:
            _active = None
        else:
            _active = KernelDiskCache(
                cache_dir, max_bytes if max_bytes is not None
                else _env_max_bytes())
        return _active


def active_cache() -> KernelDiskCache | None:
    """The process's disk cache: explicit configuration wins, else the
    ``HPL_CACHE_DIR`` environment variable (read once), else None."""
    global _active, _configured
    if _configured:
        return _active
    with _config_lock:
        if not _configured:
            env_dir = os.environ.get(ENV_CACHE_DIR)
            _active = (KernelDiskCache(env_dir, _env_max_bytes())
                       if env_dir else None)
            _configured = True
    return _active


def _env_max_bytes() -> int:
    raw = os.environ.get(ENV_CACHE_MAX_BYTES)
    try:
        return int(raw) if raw else DEFAULT_MAX_BYTES
    except ValueError:
        return DEFAULT_MAX_BYTES


# -- command-line interface --------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    """``python -m repro.hpl.diskcache {ls,stats,purge}``."""
    import argparse
    import datetime
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.hpl.diskcache",
        description="Inspect or manage the persistent HPL kernel cache.")
    parser.add_argument("action", choices=("ls", "stats", "purge"),
                        help="list entries, print a summary, or delete "
                             "every entry")
    parser.add_argument("--cache-dir", default=None,
                        help=f"cache directory (default: ${ENV_CACHE_DIR})")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    ns = parser.parse_args(argv)

    cache_dir = ns.cache_dir or os.environ.get(ENV_CACHE_DIR)
    if not cache_dir:
        parser.error(f"no cache directory: pass --cache-dir or set "
                     f"${ENV_CACHE_DIR}")
    cache = KernelDiskCache(cache_dir, _env_max_bytes())

    if ns.action == "ls":
        entries = sorted(cache.entries(), key=lambda e: e[2], reverse=True)
        if ns.json:
            print(json.dumps([{"key": k, "bytes": s, "mtime": m}
                              for k, s, m in entries], indent=2))
        else:
            for key, size, mtime in entries:
                when = datetime.datetime.fromtimestamp(mtime) \
                    .strftime("%Y-%m-%d %H:%M:%S")
                print(f"{key}  {size:>8} B  {when}")
            print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
    elif ns.action == "stats":
        stats = cache.stats()
        if ns.json:
            print(json.dumps(stats, indent=2))
        else:
            for key, value in stats.items():
                print(f"{key:>14}: {value}")
    else:                               # purge
        removed = cache.purge()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.path}")
    return 0


if __name__ == "__main__":              # pragma: no cover - exercised via CLI
    raise SystemExit(main())
