"""Predefined kernel variables (paper §III-B).

``idx/idy/idz`` identify the work-item in the global domain, ``lidx/...``
within its local domain, ``gidx/...`` identify the group.  ``szx/...``,
``lszx/...`` and ``ngroupx/...`` give the global size, the local size and
the group count in each dimension.
"""

from __future__ import annotations

from . import kast as K

#: mapping: predefined variable -> (OpenCL C query, dimension)
PREDEFINED = {
    "idx": ("get_global_id", 0),
    "idy": ("get_global_id", 1),
    "idz": ("get_global_id", 2),
    "lidx": ("get_local_id", 0),
    "lidy": ("get_local_id", 1),
    "lidz": ("get_local_id", 2),
    "gidx": ("get_group_id", 0),
    "gidy": ("get_group_id", 1),
    "gidz": ("get_group_id", 2),
    "szx": ("get_global_size", 0),
    "szy": ("get_global_size", 1),
    "szz": ("get_global_size", 2),
    "lszx": ("get_local_size", 0),
    "lszy": ("get_local_size", 1),
    "lszz": ("get_local_size", 2),
    "ngroupx": ("get_num_groups", 0),
    "ngroupy": ("get_num_groups", 1),
    "ngroupz": ("get_num_groups", 2),
}

idx = K.PredefinedRef("idx")
idy = K.PredefinedRef("idy")
idz = K.PredefinedRef("idz")
lidx = K.PredefinedRef("lidx")
lidy = K.PredefinedRef("lidy")
lidz = K.PredefinedRef("lidz")
gidx = K.PredefinedRef("gidx")
gidy = K.PredefinedRef("gidy")
gidz = K.PredefinedRef("gidz")
szx = K.PredefinedRef("szx")
szy = K.PredefinedRef("szy")
szz = K.PredefinedRef("szz")
lszx = K.PredefinedRef("lszx")
lszy = K.PredefinedRef("lszy")
lszz = K.PredefinedRef("lszz")
ngroupx = K.PredefinedRef("ngroupx")
ngroupy = K.PredefinedRef("ngroupy")
ngroupz = K.PredefinedRef("ngroupz")

__all__ = list(PREDEFINED) + ["PREDEFINED"]
