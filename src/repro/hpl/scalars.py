"""Scalar convenience types: ``Int``, ``Uint``, ``Double``, ... (§III-A).

The paper defines scalars as ``Array`` with ``ndim=0`` and provides these
classes for convenience.  Their behaviour depends on where they are
instantiated:

* **inside a kernel** (while tracing): ``i = Int()`` declares a private
  scalar variable and returns a :class:`~repro.hpl.proxy.ScalarVar`
  usable in expressions, ``for_`` loops and with ``.assign()``;
* **on the host**: ``a = Double(3.5)`` creates a typed scalar container
  that can be passed to kernels by value (``a.value`` reads it back).
"""

from __future__ import annotations

from . import dtypes as D
from . import kast as K
from .builder import KernelBuilder
from .proxy import ScalarVar


class HostScalar:
    """A typed scalar living on the host, passable to kernels by value."""

    __slots__ = ("dtype", "_value")

    def __init__(self, dtype: D.HPLType, value=0) -> None:
        self.dtype = dtype
        self._value = self._coerce(value)

    def _coerce(self, value):
        return (float(value) if self.dtype.is_float else int(value))

    @property
    def value(self):
        return self._value

    @value.setter
    def value(self, new) -> None:
        self._value = self._coerce(new)

    def set(self, new) -> "HostScalar":
        self.value = new
        return self

    def __float__(self) -> float:
        return float(self._value)

    def __int__(self) -> int:
        return int(self._value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._value!r})"


def _scalar_class(type_name: str, hpl_type: D.HPLType):
    class _Scalar(HostScalar):
        dtype_static = hpl_type

        def __new__(cls, value=0, name: str | None = None):
            builder = KernelBuilder.current()
            if builder is None:
                return super().__new__(cls)
            # inside a kernel: declare a private scalar variable
            var_name = builder.claim_name(name) if name \
                else builder.fresh_name("v")
            init = K.as_expr(value, hint=hpl_type) if value is not None \
                else None
            if init is not None:
                init = K.resolve_untyped(init, hpl_type)
            builder.add(K.DeclScalar(name=var_name, dtype=hpl_type,
                                     init=init))
            return ScalarVar(name=var_name, dtype=hpl_type)

        def __init__(self, value=0, name: str | None = None):
            # only reached for host scalars (kernel path returns ScalarVar)
            super().__init__(hpl_type, value if value is not None else 0)

    _Scalar.__name__ = type_name
    _Scalar.__qualname__ = type_name
    _Scalar.__doc__ = (f"HPL ``{type_name}`` scalar "
                       f"(OpenCL ``{hpl_type.name}``); see module docs.")
    return _Scalar


Int = _scalar_class("Int", D.int_)
Uint = _scalar_class("Uint", D.uint_)
Long = _scalar_class("Long", D.long_)
Ulong = _scalar_class("Ulong", D.ulong_)
Short = _scalar_class("Short", D.short_)
Ushort = _scalar_class("Ushort", D.ushort_)
Char = _scalar_class("Char", D.char_)
Uchar = _scalar_class("Uchar", D.uchar_)
Float = _scalar_class("Float", D.float_)
Double = _scalar_class("Double", D.double_)

SCALAR_CLASSES = (Int, Uint, Long, Ulong, Short, Ushort, Char, Uchar,
                  Float, Double)

__all__ = ["HostScalar", "Int", "Uint", "Long", "Ulong", "Short", "Ushort",
           "Char", "Uchar", "Float", "Double", "SCALAR_CLASSES"]
