"""Proxy objects that stand in for kernel data during tracing.

* :class:`ArrayHandle` — an array visible to kernel code: a kernel
  argument, or a private/local array declared inside the kernel body.
  Indexing with square brackets builds :class:`~repro.hpl.kast.IndexRef`
  nodes (paper §III-A: brackets in kernels, parentheses on the host).
* :class:`ScalarParam` — a by-value scalar argument.
* scalar variables declared in kernels are plain
  :class:`~repro.hpl.kast.VarRef` nodes (created by the ``Int()``/
  ``Double()``/... convenience classes in :mod:`repro.hpl.scalars`).
"""

from __future__ import annotations

from ..errors import KernelCaptureError
from . import dtypes as D
from . import kast as K
from .builder import KernelBuilder


class _InPlace:
    """Sentinel returned by ``__iadd__``-style ops on element references.

    ``a[i] += v`` makes Python call ``a.__setitem__(i, result)`` after the
    ``__iadd__``; the sentinel lets ``__setitem__`` recognise that the
    statement was already recorded and skip the double write.
    """

    __slots__ = ("ref",)

    def __init__(self, ref: K.IndexRef) -> None:
        self.ref = ref


_AUG_OPS = {"+": "+=", "-": "-=", "*": "*=", "/": "/=", "%": "%=",
            "&": "&=", "|": "|=", "^": "^="}


def _record_assign(target, op: str, value) -> None:
    builder = KernelBuilder.require("assignment to kernel data")
    value = K.as_expr(value, hint=target.dtype)
    value = K.resolve_untyped(value, target.dtype)
    builder.add(K.Assign(target=target, op=op, value=value))


class ElementRef(K.IndexRef):
    """An ``a[i]``/``a[i][j]`` reference supporting augmented assignment."""

    def assign(self, value) -> None:
        """Explicit store: ``a[i].assign(v)`` ≡ C++ ``a[i] = v``.

        Plain stores are normally written ``a[i] = v`` (via the parent
        handle's ``__setitem__``); ``assign`` exists for symmetry with
        scalar variables.
        """
        _record_assign(self, "=", value)

    def _aug(self, op: str, value) -> "_InPlace":
        _record_assign(self, _AUG_OPS[op], value)
        return _InPlace(self)

    def __iadd__(self, value):
        return self._aug("+", value)

    def __isub__(self, value):
        return self._aug("-", value)

    def __imul__(self, value):
        return self._aug("*", value)

    def __itruediv__(self, value):
        return self._aug("/", value)

    def __imod__(self, value):
        return self._aug("%", value)

    def __iand__(self, value):
        return self._aug("&", value)

    def __ior__(self, value):
        return self._aug("|", value)

    def __ixor__(self, value):
        return self._aug("^", value)


class ScalarVar(K.VarRef):
    """A private scalar variable; supports ``assign`` and ``+=`` etc."""

    def assign(self, value) -> "ScalarVar":
        _record_assign(self, "=", value)
        return self

    def _aug(self, op: str, value) -> "ScalarVar":
        _record_assign(self, _AUG_OPS[op], value)
        return self

    def __iadd__(self, value):
        return self._aug("+", value)

    def __isub__(self, value):
        return self._aug("-", value)

    def __imul__(self, value):
        return self._aug("*", value)

    def __itruediv__(self, value):
        return self._aug("/", value)

    def __imod__(self, value):
        return self._aug("%", value)

    def __iand__(self, value):
        return self._aug("&", value)

    def __ior__(self, value):
        return self._aug("|", value)

    def __ixor__(self, value):
        return self._aug("^", value)


class ScalarParam(K.VarRef):
    """A by-value scalar kernel argument (read-only inside the kernel)."""

    def assign(self, value) -> None:
        raise KernelCaptureError(
            f"scalar argument {self.name!r} is passed by value; assigning "
            "to it would be invisible to the host. Declare a private "
            "variable instead.")

    def __iadd__(self, value):
        self.assign(value)

    __isub__ = __imul__ = __itruediv__ = __iadd__


class ArrayHandle:
    """An array usable inside a kernel (argument or local declaration)."""

    def __init__(self, name: str, dtype: D.HPLType, shape: tuple,
                 mem: str = D.GLOBAL, is_param: bool = True) -> None:
        self.name = name
        self.dtype = dtype
        self.shape = tuple(int(s) for s in shape)
        self.mem = mem
        self.is_param = is_param

    @property
    def ndim(self) -> int:
        return len(self.shape)

    # -- indexing ----------------------------------------------------------------

    def _indices_of(self, key) -> list:
        keys = key if isinstance(key, tuple) else (key,)
        return [K.as_expr(k, hint=D.int_) for k in keys]

    def __getitem__(self, key):
        indices = self._indices_of(key)
        if len(indices) > self.ndim:
            raise KernelCaptureError(
                f"{self.name!r} has {self.ndim} dimension(s); got "
                f"{len(indices)} indices")
        if len(indices) < self.ndim:
            return _PartialIndex(self, indices)
        return ElementRef(array=self, indices=indices, dtype=self.dtype)

    def __setitem__(self, key, value) -> None:
        indices = self._indices_of(key)
        if isinstance(value, _InPlace):
            return  # statement already recorded by the augmented op
        if len(indices) != self.ndim:
            raise KernelCaptureError(
                f"assignment to {self.name!r} needs {self.ndim} "
                f"index(es), got {len(indices)}")
        target = ElementRef(array=self, indices=indices, dtype=self.dtype)
        _record_assign(target, "=", value)

    def __repr__(self) -> str:
        return (f"<ArrayHandle {self.name} {self.dtype}"
                f"{list(self.shape)} {self.mem}>")

    def __bool__(self):
        raise KernelCaptureError(
            "an HPL array has no truth value inside a kernel")


class _PartialIndex:
    """Intermediate of chained indexing ``a[i][j]`` on a 2-D/3-D array."""

    __slots__ = ("handle", "indices")

    def __init__(self, handle: ArrayHandle, indices: list) -> None:
        self.handle = handle
        self.indices = indices

    def __getitem__(self, key):
        more = self.handle._indices_of(key)
        total = self.indices + more
        if len(total) > self.handle.ndim:
            raise KernelCaptureError(
                f"{self.handle.name!r}: too many indices")
        if len(total) < self.handle.ndim:
            return _PartialIndex(self.handle, total)
        return ElementRef(array=self.handle, indices=total,
                          dtype=self.handle.dtype)

    def __setitem__(self, key, value) -> None:
        if isinstance(value, _InPlace):
            return
        more = self.handle._indices_of(key)
        total = self.indices + more
        if len(total) != self.handle.ndim:
            raise KernelCaptureError(
                f"assignment to {self.handle.name!r} needs "
                f"{self.handle.ndim} index(es)")
        target = ElementRef(array=self.handle, indices=total,
                            dtype=self.handle.dtype)
        _record_assign(target, "=", value)
