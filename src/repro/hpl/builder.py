"""Kernel capture: the tracing context that records HPL statements.

Exactly one :class:`KernelBuilder` is active while ``eval`` traces a
kernel function.  Proxy objects and control-flow constructs look the
active builder up (:meth:`KernelBuilder.current`) and append statement
nodes to the innermost open block.
"""

from __future__ import annotations

import threading

from ..errors import KernelCaptureError
from . import kast as K

_tls = threading.local()


class KernelBuilder:
    """Records the statement tree of one kernel while it is traced."""

    def __init__(self, kernel_name: str) -> None:
        self.kernel_name = kernel_name
        self.body: list[K.Stmt] = []
        self._blocks: list[list] = [self.body]
        #: stack of (kind, stmt) for open control constructs
        self._frames: list[tuple[str, K.Stmt]] = []
        self._names: set[str] = set()
        self._counter = 0
        #: handles of in-kernel declarations, in declaration order
        self.local_decls: list = []

    # -- activation -------------------------------------------------------------

    @classmethod
    def current(cls) -> "KernelBuilder | None":
        return getattr(_tls, "builder", None)

    @classmethod
    def require(cls, what: str) -> "KernelBuilder":
        builder = cls.current()
        if builder is None:
            raise KernelCaptureError(
                f"{what} may only be used inside an HPL kernel "
                "(during eval())")
        return builder

    def __enter__(self) -> "KernelBuilder":
        if KernelBuilder.current() is not None:
            raise KernelCaptureError(
                "nested kernel capture: eval() cannot be called from "
                "inside a kernel body")
        _tls.builder = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _tls.builder = None
        if exc_type is None and self._frames:
            kind, _ = self._frames[-1]
            raise KernelCaptureError(
                f"kernel {self.kernel_name!r} left a {kind}_ construct "
                f"open; missing end{kind}_()?")

    # -- statement recording --------------------------------------------------------

    def add(self, stmt: K.Stmt) -> None:
        self._blocks[-1].append(stmt)

    def push_block(self, kind: str, stmt: K.Stmt, body: list) -> None:
        self._frames.append((kind, stmt))
        self._blocks.append(body)

    def switch_block(self, kind: str, body: list) -> K.Stmt:
        """elif_/else_: replace the innermost branch body of an if_."""
        frame_kind, stmt = self._top(kind)
        self._blocks.pop()
        self._blocks.append(body)
        return stmt

    def pop_block(self, kind: str) -> K.Stmt:
        _, stmt = self._top(kind)
        self._frames.pop()
        self._blocks.pop()
        return stmt

    def _top(self, kind: str) -> tuple[str, K.Stmt]:
        if not self._frames:
            raise KernelCaptureError(
                f"end{kind}_()/{kind} continuation used without an open "
                f"{kind}_")
        frame_kind, stmt = self._frames[-1]
        if frame_kind != kind:
            raise KernelCaptureError(
                f"mismatched control nesting: expected end{frame_kind}_() "
                f"before closing {kind}_")
        return frame_kind, stmt

    # -- names ------------------------------------------------------------------------

    def fresh_name(self, prefix: str) -> str:
        while True:
            self._counter += 1
            name = f"{prefix}{self._counter}"
            if name not in self._names:
                self._names.add(name)
                return name

    def reserve_names(self, names) -> None:
        """Mark names as taken (kernel parameters, before tracing)."""
        self._names.update(names)

    def claim_name(self, name: str) -> str:
        """Reserve a user-provided name, uniquifying on collision."""
        if name not in self._names:
            self._names.add(name)
            return name
        return self.fresh_name(name + "_")
