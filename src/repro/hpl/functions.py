"""Device functions callable inside HPL kernels (paper §III-B).

``barrier(LOCAL | GLOBAL)`` synchronises the threads of a group and makes
the requested memory visible.  The math functions mirror the OpenCL C
builtins; applied to plain Python numbers outside a kernel they compute
the value directly (convenient for host-side reference code).
"""

from __future__ import annotations

import math

from ..errors import KernelCaptureError
from . import dtypes as D
from . import kast as K
from .builder import KernelBuilder

#: barrier flags (paper §III-B): consistency of local and/or global memory
LOCAL = 1
GLOBAL = 2

__all__ = ["LOCAL", "GLOBAL", "barrier", "cast", "where", "not_",
           "sqrt", "rsqrt", "cbrt", "exp", "exp2", "log", "log2", "log10",
           "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "pow",
           "fabs", "floor", "ceil", "trunc", "round_", "fmod", "fmin",
           "fmax", "fma", "hypot", "abs_", "min_", "max_", "clamp"]


def barrier(flags: int = LOCAL) -> None:
    """Barrier synchronization of all threads of the group."""
    builder = KernelBuilder.require("barrier")
    if flags not in (LOCAL, GLOBAL, LOCAL | GLOBAL):
        raise KernelCaptureError(
            "barrier flags must be LOCAL, GLOBAL or LOCAL|GLOBAL")
    builder.add(K.Barrier(flags=flags))


def cast(value, dtype: D.HPLType) -> K.Expr:
    """Explicit conversion, like a C cast: ``cast(x, float_)``."""
    return K.Cast(target=dtype, operand=K.as_expr(value, hint=dtype))


def where(cond, a, b) -> K.Expr:
    """The C ternary operator: ``cond ? a : b``."""
    ae, be = K.as_expr(a), K.as_expr(b)
    dt = ae.dtype if ae.dtype is not None else be.dtype
    ae = K.resolve_untyped(ae, dt) if dt else ae
    be = K.resolve_untyped(be, dt) if dt else be
    if ae.dtype is not None and be.dtype is not None:
        dt = D.promote(ae.dtype, be.dtype)
    return K.Ternary(cond=K.as_expr(cond), then=ae, otherwise=be, dtype=dt)


def not_(value) -> K.Expr:
    """Logical negation ``!x``."""
    return K.UnOp("!", K.as_expr(value), D.int_)


# -- math builtins ---------------------------------------------------------------

def _float_result(args: list[K.Expr]) -> D.HPLType:
    if any(a.dtype is D.double_ for a in args):
        return D.double_
    if any(a.dtype is not None and a.dtype.is_float for a in args):
        return D.float_
    return D.double_  # integer/untyped inputs follow C's double rule


def _common_result(args: list[K.Expr]) -> D.HPLType:
    dt = None
    for a in args:
        adt = a.dtype
        if adt is None:
            continue
        dt = adt if dt is None else D.promote(dt, adt)
    return dt if dt is not None else D.int_


def _make_math(name: str, arity: int, host_impl, float_only: bool = True):
    def fn(*args):
        if len(args) != arity:
            raise TypeError(f"{name}() takes {arity} argument(s), got "
                            f"{len(args)}")
        if all(isinstance(a, (int, float)) for a in args):
            return host_impl(*args)
        exprs = [K.as_expr(a) for a in args]
        dtype = (_float_result(exprs) if float_only
                 else _common_result(exprs))
        exprs = [K.resolve_untyped(e, dtype) for e in exprs]
        return K.Call(name=name, args=exprs, dtype=dtype)

    fn.__name__ = name
    fn.__qualname__ = name
    fn.__doc__ = (f"OpenCL ``{name}`` inside kernels; {host_impl.__module__}"
                  f".{host_impl.__name__} on plain numbers.")
    return fn


sqrt = _make_math("sqrt", 1, math.sqrt)
rsqrt = _make_math("rsqrt", 1, lambda x: 1.0 / math.sqrt(x))
cbrt = _make_math("cbrt", 1, lambda x: math.copysign(abs(x) ** (1 / 3), x))
exp = _make_math("exp", 1, math.exp)
exp2 = _make_math("exp2", 1, lambda x: 2.0 ** x)
log = _make_math("log", 1, math.log)
log2 = _make_math("log2", 1, math.log2)
log10 = _make_math("log10", 1, math.log10)
sin = _make_math("sin", 1, math.sin)
cos = _make_math("cos", 1, math.cos)
tan = _make_math("tan", 1, math.tan)
asin = _make_math("asin", 1, math.asin)
acos = _make_math("acos", 1, math.acos)
atan = _make_math("atan", 1, math.atan)
atan2 = _make_math("atan2", 2, math.atan2)
pow = _make_math("pow", 2, math.pow)
fabs = _make_math("fabs", 1, math.fabs)
floor = _make_math("floor", 1, math.floor)
ceil = _make_math("ceil", 1, math.ceil)
trunc = _make_math("trunc", 1, math.trunc)
round_ = _make_math("round", 1, round)
fmod = _make_math("fmod", 2, math.fmod)
fmin = _make_math("fmin", 2, min)
fmax = _make_math("fmax", 2, max)
fma = _make_math("fma", 3, lambda a, b, c: a * b + c)
hypot = _make_math("hypot", 2, math.hypot)

abs_ = _make_math("abs", 1, abs, float_only=False)
min_ = _make_math("min", 2, min, float_only=False)
max_ = _make_math("max", 2, max, float_only=False)
clamp = _make_math("clamp", 3,
                   lambda x, lo, hi: min(max(x, lo), hi),
                   float_only=False)
