"""Versioned, content-addressed cluster checkpoints.

A :class:`CheckpointStore` persists the host buffers of every
:class:`~repro.hpl.cluster.DistributedArray` in a ``cluster_eval``
together with the list of completed blocks, so a killed run can be
resumed (``cluster_eval(checkpoint=dir, resume=True)``) and reproduce
bit-identical results without recomputing finished work.  See
``docs/resilience.md``.

Layout of a checkpoint directory::

    MANIFEST.json           versioned metadata + blob references
    objects/<sha256>.bin    content-addressed array snapshots

Writes are crash-safe the way the persistent kernel cache's are: every
file is written to a temporary name in its final directory and
atomically renamed into place, blobs strictly before the manifest that
references them — so a reader (or a resumed run) only ever observes a
complete, self-consistent snapshot, never a torn one.  Blobs are named
by the SHA-256 of their contents, which makes re-writing an unchanged
array free and lets :meth:`load` detect corruption byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import numpy as np

from ..errors import CheckpointError

#: bump when the manifest schema changes; older snapshots are rejected
#: (a resumed run recomputes from scratch rather than misreading them)
FORMAT_VERSION = 1

MANIFEST = "MANIFEST.json"


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-file + rename (atomic on
    POSIX within one filesystem, which same-directory guarantees)."""
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CheckpointStore:
    """Snapshot/restore of one run's distributed host buffers.

    ``run_id`` is a JSON-compatible dict identifying the computation
    (kernel name, problem size, array dtypes); :meth:`load` returns
    ``None`` — a fresh start, not an error — when the directory holds
    no snapshot or one from a *different* run, and raises
    :class:`~repro.errors.CheckpointError` only for a snapshot that
    claims to match but cannot be trusted (wrong format version,
    missing blob, contents not matching their digest).
    """

    def __init__(self, directory) -> None:
        self.directory = os.fspath(directory)
        self.objects = os.path.join(self.directory, "objects")
        os.makedirs(self.objects, exist_ok=True)

    def _blob_path(self, sha: str) -> str:
        return os.path.join(self.objects, f"{sha}.bin")

    def save(self, run_id: dict, arrays, completed) -> int:
        """Persist the arrays + completed block list; bytes written.

        Unchanged arrays cost nothing beyond the digest: their blob
        already exists under its content address.
        """
        blobs = []
        written = 0
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            data = arr.tobytes()
            sha = hashlib.sha256(data).hexdigest()
            path = self._blob_path(sha)
            if not os.path.exists(path):
                _atomic_write(path, data)
                written += len(data)
            blobs.append({"sha256": sha, "dtype": str(arr.dtype),
                          "size": int(arr.size)})
        manifest = {
            "version": FORMAT_VERSION,
            "run": run_id,
            "completed": [[int(lo), int(hi)] for lo, hi in completed],
            "blobs": blobs,
        }
        payload = json.dumps(manifest, sort_keys=True).encode()
        _atomic_write(os.path.join(self.directory, MANIFEST), payload)
        return written + len(payload)

    def load(self, run_id: dict):
        """The snapshot for ``run_id``: ``(arrays, completed)`` or None.

        ``arrays`` are fresh host ndarrays in manifest order;
        ``completed`` is the list of ``(lo, hi)`` finished blocks.
        """
        path = os.path.join(self.directory, MANIFEST)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        try:
            manifest = json.loads(raw)
        except ValueError as exc:
            raise CheckpointError(
                f"checkpoint manifest {path} is not valid JSON") from exc
        if not isinstance(manifest, dict) \
                or manifest.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint manifest {path} has format version "
                f"{manifest.get('version') if isinstance(manifest, dict) else '?'}, "
                f"this build reads version {FORMAT_VERSION}")
        if manifest.get("run") != run_id:
            return None     # someone else's snapshot: start fresh
        arrays = []
        for blob in manifest["blobs"]:
            bpath = self._blob_path(blob["sha256"])
            try:
                with open(bpath, "rb") as fh:
                    data = fh.read()
            except FileNotFoundError as exc:
                raise CheckpointError(
                    f"checkpoint blob {blob['sha256']} referenced by "
                    f"{path} is missing") from exc
            if hashlib.sha256(data).hexdigest() != blob["sha256"]:
                raise CheckpointError(
                    f"checkpoint blob {blob['sha256']} is corrupt "
                    "(contents do not match their content address)")
            arr = np.frombuffer(data, dtype=blob["dtype"]).copy()
            if arr.size != blob["size"]:
                raise CheckpointError(
                    f"checkpoint blob {blob['sha256']} holds {arr.size} "
                    f"element(s), manifest expects {blob['size']}")
            arrays.append(arr)
        completed = [(int(lo), int(hi))
                     for lo, hi in manifest["completed"]]
        return arrays, completed
