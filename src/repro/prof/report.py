"""Profile renderers: annotated source, flamegraph, roofline, JSON.

All renderers take :class:`~repro.prof.core.KernelProfile` objects
(usually the merged-by-kernel view from ``Profiler.merged()``) and
return strings — the CLI and the benchsuite print them, tests golden-
match them.

Formats
-------
``annotate``
    The kernel's generated OpenCL C source with one stat gutter per
    line: share of modeled cost, dynamic executions, ops, global bytes
    and transactions, coalescing efficiency, SIMT occupancy.  Divergent
    branches and low-occupancy regions are summarized underneath.
``flame``
    Brendan Gregg's collapsed-stack format, one frame stack per source
    line (``device;kernel;L<n> <source>``), weighted by modeled cost in
    nanoseconds — feed it to any flamegraph renderer.
``roofline``
    Per-device table of arithmetic intensity against the compute and
    bandwidth ceilings, labeling each kernel compute- or memory-bound.
``json``
    Loss-free dump; ``python -m repro.prof annotate/flame/roofline``
    re-render it.
"""

from __future__ import annotations

import json

from .core import KernelProfile

#: annotate: a line must carry at least this cost share to be flagged hot
HOT_THRESHOLD = 0.10

_RULE_WIDTH = 78


def _rule() -> str:
    return "-" * _RULE_WIDTH


def _fmt_count(value: float) -> str:
    value = float(value)
    if value >= 1e9:
        return f"{value / 1e9:.1f}G"
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.2f}us"


def _profile_header(profile: KernelProfile) -> list[str]:
    out = [
        f"kernel {profile.kernel}  [{profile.engine} engine @ "
        f"{profile.device}]",
        f"  launches={profile.launches}  work_items={profile.work_items}"
        f"  work_groups={profile.work_groups}"
        f"  modeled_time={_fmt_seconds(profile.total_s)}",
    ]
    ai = profile.arithmetic_intensity
    ai_txt = f"{ai:.3f}" if ai != float("inf") else "inf"
    out.append(
        f"  bound={profile.bound}  AI={ai_txt} ops/B"
        f"  ridge={profile.ridge_point:.3f} ops/B"
        f"  compute={_fmt_seconds(profile.compute_s)}"
        f"  memory={_fmt_seconds(profile.memory_s)}")
    return out


def annotate(profile: KernelProfile) -> str:
    """Annotated-source view of one kernel profile."""
    total_cost = profile.line_cost_total()
    src_lines = profile.source.splitlines()
    out = _profile_header(profile)
    out.append(f"  attributed: {profile.attributed_fraction() * 100.0:.1f}%"
               " of modeled cost on source lines")
    out.append(_rule())
    out.append(f"{'line':>5} {'cost%':>6} {'execs':>8} {'ops':>8}"
               f" {'bytes':>8} {'tx':>6} {'coal%':>6} {'occ%':>5}  source")
    out.append(_rule())

    n_lines = max(len(src_lines), max(profile.lines, default=0))
    for lineno in range(1, n_lines + 1):
        text = src_lines[lineno - 1] if lineno - 1 < len(src_lines) else ""
        rec = profile.lines.get(lineno)
        if rec is None:
            out.append(f"{lineno:>5} {'':>6} {'':>8} {'':>8}"
                       f" {'':>8} {'':>6} {'':>6} {'':>5}  {text}")
            continue
        share = rec.cost_seconds / total_cost if total_cost > 0 else 0.0
        coal = (f"{rec.coalescing(profile.segment_bytes) * 100.0:.0f}"
                if rec.transactions > 0 and not profile.is_cpu else "")
        occ = (f"{rec.occupancy * 100.0:.0f}"
               if rec.lane_slots > 0 else "")
        marker = " *HOT*" if share >= HOT_THRESHOLD else ""
        out.append(
            f"{lineno:>5} {share * 100.0:>5.1f}% {_fmt_count(rec.execs):>8}"
            f" {_fmt_count(rec.ops):>8} {_fmt_count(rec.mem_bytes):>8}"
            f" {_fmt_count(rec.transactions):>6} {coal:>6} {occ:>5}"
            f"  {text}{marker}")

    unattributed = profile.lines.get(0)
    if unattributed is not None and total_cost > 0:
        share = unattributed.cost_seconds / total_cost
        out.append(_rule())
        out.append(f"(unattributed: {share * 100.0:.1f}% of cost on"
                   f" instructions without a source line)")

    divergent = profile.divergent_branches()
    if divergent:
        out.append(_rule())
        out.append("divergent branches (worst first):")
        for line, rec in divergent[:10]:
            out.append(
                f"  line {line:>4}: {rec.events} exec(s),"
                f" {rec.divergent} divergent,"
                f" {rec.taken_fraction * 100.0:.1f}% of active lanes"
                " took the then-side")

    low_occ = sorted(
        ((line, rec) for line, rec in profile.lines.items()
         if line > 0 and rec.lane_slots > 0 and rec.occupancy < 0.999),
        key=lambda kv: kv[1].occupancy)
    if low_occ:
        out.append(_rule())
        out.append("lane occupancy below 100%:")
        for line, rec in low_occ[:10]:
            out.append(f"  line {line:>4}: {rec.occupancy * 100.0:.1f}%"
                       f" average active lanes")
    out.append(_rule())
    return "\n".join(out)


def _frame_text(lineno: int, src_lines: list[str]) -> str:
    if lineno <= 0:
        return "L0 <unattributed>"
    text = (src_lines[lineno - 1].strip()
            if lineno - 1 < len(src_lines) else "")
    text = text.replace(";", ",")   # ';' separates collapsed-stack frames
    return f"L{lineno} {text}".strip()


def flame(profiles: list[KernelProfile]) -> str:
    """Collapsed-stack flamegraph: one line per source line, cost in ns."""
    out = []
    for profile in profiles:
        src_lines = profile.source.splitlines()
        root = f"{profile.device};{profile.kernel} [{profile.engine}]"
        for lineno, rec in sorted(profile.lines.items()):
            weight = int(round(rec.cost_seconds * 1e9))
            if weight <= 0:
                continue
            out.append(f"{root};{_frame_text(lineno, src_lines)} {weight}")
    return "\n".join(out)


def roofline(profiles: list[KernelProfile]) -> str:
    """Per-device roofline tables over every profiled kernel."""
    by_device: dict[str, list[KernelProfile]] = {}
    for profile in profiles:
        by_device.setdefault(profile.device, []).append(profile)

    out = []
    for device in sorted(by_device):
        batch = by_device[device]
        spec = batch[0]
        out.append(f"roofline @ {device}: "
                   f"compute {spec.compute_ceiling / 1e9:.1f} Gops/s, "
                   f"bandwidth {spec.bandwidth_ceiling / 1e9:.1f} GB/s, "
                   f"ridge {spec.ridge_point:.3f} ops/B")
        out.append(_rule())
        out.append(f"{'kernel':<28} {'engine':<8} {'AI ops/B':>9}"
                   f" {'compute':>10} {'memory':>10}  bound")
        out.append(_rule())
        for profile in sorted(batch, key=lambda p: p.kernel):
            ai = profile.arithmetic_intensity
            ai_txt = f"{ai:>9.3f}" if ai != float("inf") else f"{'inf':>9}"
            out.append(
                f"{profile.kernel[:27]:<28} {profile.engine:<8} {ai_txt}"
                f" {_fmt_seconds(profile.compute_s):>10}"
                f" {_fmt_seconds(profile.memory_s):>10}"
                f"  {profile.bound}-bound")
        out.append(_rule())
        out.append("")
    return "\n".join(out).rstrip("\n")


def to_json(profiles: list[KernelProfile]) -> str:
    """Loss-free JSON dump the CLI can re-render later."""
    doc = {"version": 1,
           "profiles": [profile.to_dict() for profile in profiles]}
    return json.dumps(doc, indent=1, sort_keys=True)


def from_json(text: str) -> list[KernelProfile]:
    doc = json.loads(text)
    return [KernelProfile.from_dict(row)
            for row in doc.get("profiles", [])]


def hotlines(profiles: list[KernelProfile], top: int = 5) -> str:
    """Compact per-kernel hot-line tables (the benchsuite ``--profile``
    report block)."""
    out = []
    for profile in profiles:
        src_lines = profile.source.splitlines()
        total_cost = profile.line_cost_total()
        out.extend(_profile_header(profile))
        ranked = sorted(
            ((line, rec) for line, rec in profile.lines.items()
             if line > 0 and rec.cost_seconds > 0),
            key=lambda kv: -kv[1].cost_seconds)[:top]
        for line, rec in ranked:
            share = rec.cost_seconds / total_cost if total_cost else 0.0
            text = (src_lines[line - 1].strip()
                    if line - 1 < len(src_lines) else "")
            out.append(f"    {share * 100.0:>5.1f}%  L{line:<4} {text[:56]}")
        out.append("")
    return "\n".join(out).rstrip("\n")
