"""``python -m repro.prof`` — kernel profiler command line.

Two modes of operation:

``run`` profiles one of the built-in benchmark kernels on a simulated
device and renders the result directly::

    python -m repro.prof run reduction                  # annotated source
    python -m repro.prof run spmv --format roofline
    python -m repro.prof run ep --format json -o ep.json

``annotate`` / ``flame`` / ``roofline`` re-render a profile that was
previously saved as JSON (by ``run --format json`` or the benchsuite's
``--profile-out``)::

    python -m repro.prof annotate ep.json
    python -m repro.prof flame ep.json -o ep.flame
"""

from __future__ import annotations

import argparse
import sys

from . import enable, get_profiler, reset
from .core import merge_profiles
from .report import annotate, flame, from_json, roofline, to_json


def _run_ep(device: str) -> None:
    from ..benchsuite.datasets import EP_CLASSES
    from ..benchsuite.ep.driver import ep_problem, run_hpl
    # class S scaled down to 8192 pairs: small enough to simulate in a
    # second, big enough that the LCG arithmetic dominates the fixed
    # per-item output traffic (EP must profile as compute-bound)
    run_hpl(ep_problem("S", shift=EP_CLASSES["S"] - 13),
            device_name=device)


def _run_spmv(device: str) -> None:
    from ..benchsuite.spmv.driver import run_hpl, spmv_problem
    run_hpl(spmv_problem(n_run=256), device_name=device)


def _run_reduction(device: str) -> None:
    from ..benchsuite.reduction.driver import reduction_problem, run_hpl
    # one element per work item (256 lanes x 64 groups)
    run_hpl(reduction_problem(n_run=1 << 14), device_name=device)


_TARGETS = {
    "ep": _run_ep,
    "spmv": _run_spmv,
    "reduction": _run_reduction,
}

_FORMATS = ("annotate", "flame", "json", "roofline")


def _render(profiles: list, fmt: str) -> str:
    if fmt == "annotate":
        return "\n\n".join(annotate(p) for p in profiles)
    if fmt == "flame":
        return flame(profiles)
    if fmt == "roofline":
        return roofline(profiles)
    return to_json(profiles)


def _emit(text: str, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as f:
            f.write(text)
            if not text.endswith("\n"):
                f.write("\n")
    else:
        print(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.prof",
        description="source-level kernel profiler")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="profile a built-in benchmark kernel")
    run_p.add_argument("target", choices=sorted(_TARGETS),
                       help="benchmark kernel to profile")
    run_p.add_argument("--device", default="Tesla",
                       help="simulated device (default: Tesla)")
    run_p.add_argument("--format", choices=_FORMATS, default="annotate",
                       dest="fmt", help="output format (default: annotate)")
    run_p.add_argument("-o", "--output", help="write to a file")

    for name, help_ in (("annotate", "annotated source per kernel"),
                        ("flame", "collapsed-stack flamegraph lines"),
                        ("roofline", "roofline classification table")):
        p = sub.add_parser(name, help=f"render a saved profile: {help_}")
        p.add_argument("profile", help="profile JSON written by "
                                       "'run --format json'")
        p.add_argument("-o", "--output", help="write to a file")

    ns = parser.parse_args(argv)

    if ns.command == "run":
        enable()
        reset()
        from ..hpl.runtime import reset_runtime
        reset_runtime()
        _TARGETS[ns.target](ns.device)
        profiles = merge_profiles(get_profiler().drain())
        if not profiles:
            print("no kernel launches were profiled", file=sys.stderr)
            return 1
        _emit(_render(profiles, ns.fmt), ns.output)
        return 0

    try:
        with open(ns.profile, encoding="utf-8") as f:
            profiles = from_json(f.read())
    except OSError as exc:
        print(f"error: cannot read {ns.profile}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"error: {ns.profile} is not a profile JSON: {exc}",
              file=sys.stderr)
        return 2
    if not profiles:
        print(f"error: {ns.profile} contains no profiles", file=sys.stderr)
        return 2
    _emit(_render(profiles, ns.command), ns.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
