"""``repro.prof`` — source-level kernel profiler.

Attributes the cost model's counters back to kernel source lines (via
the ``line`` debug info the clc bytecode carries), tracks SIMT
divergence and lane occupancy in the vector engine, measures memory
coalescing from the warp address streams, and classifies each kernel
against its device's roofline (compute- vs. memory-bound).

Enable with any of::

    hpl.configure(profile=True)
    HPL_PROFILE=1 python ...
    from repro import prof; prof.enable()

then read results::

    for profile in prof.get_profiler().merged():
        print(report.annotate(profile))

or use the CLI: ``python -m repro.prof run reduction``.

Disabled (the default), the engines pay one attribute check per launch
and one ``is not None`` check on a local per counted instruction — see
``tests/prof/test_overhead.py``.
"""

from __future__ import annotations

import os

from .core import (BranchStat, KernelProfile, LaunchCollector, LineStat,
                   Profiler, build_profile, merge_profiles)

__all__ = [
    "BranchStat", "KernelProfile", "LaunchCollector", "LineStat",
    "Profiler", "build_profile", "merge_profiles",
    "get_profiler", "set_profiler", "enable", "disable", "is_enabled",
    "reset", "begin_launch", "finish_launch",
]


def _env_enabled() -> bool:
    value = os.environ.get("HPL_PROFILE", "")
    return value not in ("", "0", "false", "False", "no")


#: the process-global profiler; honors HPL_PROFILE at import time
_default_profiler = Profiler(enabled=_env_enabled())


def get_profiler() -> Profiler:
    """The process-global profiler (always exists; may be disabled)."""
    return _default_profiler


def set_profiler(profiler: Profiler) -> Profiler:
    """Replace the process-global profiler (tests, embedders)."""
    global _default_profiler
    _default_profiler = profiler
    return profiler


def enable() -> Profiler:
    _default_profiler.enabled = True
    return _default_profiler


def disable() -> None:
    _default_profiler.enabled = False


def is_enabled() -> bool:
    return _default_profiler.enabled


def reset() -> None:
    """Drop collected profiles; keeps the enabled/disabled state.

    (:func:`repro.hpl.runtime.reset_runtime` calls this, and the
    benchsuite resets the runtime mid-run while ``--profile`` is on —
    clearing must not silently turn profiling off.)
    """
    _default_profiler.clear()


def begin_launch(kernel: str, engine: str, spec, source: str,
                 work_items: int, work_groups: int):
    """Engine entry point: a collector, or ``None`` while disabled."""
    profiler = _default_profiler
    if not profiler.enabled:
        return None
    return profiler.begin_launch(kernel, engine, spec, source,
                                 work_items, work_groups)


def finish_launch(col, counters):
    """Engine exit point: finalize ``col`` (no-op when ``None``)."""
    if col is None:
        return None
    return _default_profiler.finish_launch(col, counters)
