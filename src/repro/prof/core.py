"""Kernel profiler core: per-launch collectors and per-line statistics.

Both execution engines feed this module.  When profiling is enabled a
launch gets a :class:`LaunchCollector`; the engines call its recording
methods from the exact sites that already update
:class:`~repro.ocl.costmodel.CostCounters`, so every counted ALU op,
memory access, transaction and barrier is *also* attributed to the
kernel source line the bytecode (or tree node) carries.  The vector
engine additionally records SIMT facts the serial engine cannot see:
active-lane occupancy per instruction and per-branch divergence.

When the launch finishes, :func:`build_profile` converts the raw tallies
into a :class:`KernelProfile`: per-line modeled cost (the additive form
of the device cost model, so cost fractions are well-defined per line),
the launch's :func:`~repro.ocl.costmodel.kernel_time` breakdown, and a
roofline classification — arithmetic intensity against the device's
compute and bandwidth ceilings — labeling the kernel compute- or
memory-bound.

Import discipline: this module must not import :mod:`repro.ocl` (or
hpl/benchsuite) at module level — the engines import ``repro.prof``,
so the cost model is reached through function-local imports only.
"""

from __future__ import annotations

import threading


class LineStat:
    """Everything attributed to one source line of one kernel."""

    __slots__ = ("execs", "alu_ops", "fp64_ops", "loads", "stores",
                 "mem_bytes", "transactions", "local_accesses",
                 "barriers", "lane_slots", "active_lanes", "cost_seconds")

    _FIELDS = __slots__

    def __init__(self) -> None:
        self.execs = 0          # dynamic executions (1 per work-item)
        self.alu_ops = 0.0      # weighted fp32-equivalent ALU ops
        self.fp64_ops = 0.0
        self.loads = 0          # global loads (per work-item)
        self.stores = 0
        self.mem_bytes = 0      # global bytes moved
        self.transactions = 0   # coalesced memory transactions
        self.local_accesses = 0
        self.barriers = 0
        self.lane_slots = 0     # SIMT slots offered (vector engine only)
        self.active_lanes = 0   # SIMT slots actually active
        self.cost_seconds = 0.0  # modeled cost (filled by build_profile)

    @property
    def ops(self) -> float:
        return self.alu_ops + self.fp64_ops

    @property
    def occupancy(self) -> float:
        """Average active-lane fraction; 1.0 when lanes were not tracked."""
        if self.lane_slots <= 0:
            return 1.0
        return self.active_lanes / self.lane_slots

    def coalescing(self, segment_bytes: int) -> float:
        """Fraction of transferred segment bytes the kernel actually used."""
        if self.transactions <= 0 or segment_bytes <= 0:
            return 1.0
        return min(1.0, self.mem_bytes / (self.transactions
                                          * segment_bytes))

    def merge(self, other: "LineStat") -> None:
        for f in self._FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f))

    def to_dict(self) -> dict:
        return {f: getattr(self, f) for f in self._FIELDS}

    @classmethod
    def from_dict(cls, row: dict) -> "LineStat":
        rec = cls()
        for f in cls._FIELDS:
            if f in row:
                setattr(rec, f, row[f])
        return rec


class BranchStat:
    """Divergence record of one masked branch (vector engine)."""

    __slots__ = ("events", "divergent", "active_lanes", "taken_lanes")

    def __init__(self) -> None:
        self.events = 0          # times the branch executed
        self.divergent = 0       # executions where lanes split both ways
        self.active_lanes = 0    # lanes active at the branch, summed
        self.taken_lanes = 0     # lanes that took the then-side, summed

    @property
    def taken_fraction(self) -> float:
        if self.active_lanes <= 0:
            return 0.0
        return self.taken_lanes / self.active_lanes

    def add(self, active: int, taken: int) -> None:
        self.events += 1
        if 0 < taken < active:
            self.divergent += 1
        self.active_lanes += active
        self.taken_lanes += taken

    def merge(self, other: "BranchStat") -> None:
        self.events += other.events
        self.divergent += other.divergent
        self.active_lanes += other.active_lanes
        self.taken_lanes += other.taken_lanes

    def to_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}

    @classmethod
    def from_dict(cls, row: dict) -> "BranchStat":
        rec = cls()
        for f in cls.__slots__:
            if f in row:
                setattr(rec, f, row[f])
        return rec


class LaunchCollector:
    """Raw per-line tallies of one kernel launch (one engine run).

    The recording methods are called from the engines' hot loops, but
    only while profiling is enabled — disabled launches never allocate
    a collector, so the hot-loop cost of the feature when off is a
    single ``is not None`` check on a local.
    """

    __slots__ = ("kernel", "engine", "spec", "source", "work_items",
                 "work_groups", "lines", "branches")

    def __init__(self, kernel: str, engine: str, spec, source: str,
                 work_items: int, work_groups: int) -> None:
        self.kernel = kernel
        self.engine = engine
        self.spec = spec
        self.source = source
        self.work_items = work_items
        self.work_groups = work_groups
        self.lines: dict[int, LineStat] = {}
        self.branches: dict[int, BranchStat] = {}

    def _line(self, line: int) -> LineStat:
        rec = self.lines.get(line)
        if rec is None:
            rec = self.lines[line] = LineStat()
        return rec

    # -- recording (engine hot-loop API) -----------------------------------

    def op(self, line: int, execs: int, cost: float, is_double: bool,
           slots: int = 0) -> None:
        """``execs`` ALU executions of weighted ``cost`` each."""
        rec = self._line(line)
        rec.execs += execs
        if is_double:
            rec.fp64_ops += cost * execs
        else:
            rec.alu_ops += cost * execs
        rec.lane_slots += slots
        rec.active_lanes += execs if slots else 0

    def mem(self, line: int, execs: int, nbytes: int, tx: int,
            is_store: bool, slots: int = 0) -> None:
        """``execs`` global accesses moving ``nbytes`` in ``tx``
        transactions."""
        rec = self._line(line)
        rec.execs += execs
        if is_store:
            rec.stores += execs
        else:
            rec.loads += execs
        rec.mem_bytes += nbytes
        rec.transactions += tx
        rec.lane_slots += slots
        rec.active_lanes += execs if slots else 0

    def local(self, line: int, execs: int, slots: int = 0) -> None:
        rec = self._line(line)
        rec.execs += execs
        rec.local_accesses += execs
        rec.lane_slots += slots
        rec.active_lanes += execs if slots else 0

    def barrier(self, line: int, count: int) -> None:
        rec = self._line(line)
        rec.barriers += count

    def branch(self, line: int, active: int, taken: int) -> None:
        rec = self.branches.get(line)
        if rec is None:
            rec = self.branches[line] = BranchStat()
        rec.add(active, taken)


#: fields of CostCounters snapshot kept in a profile
_COUNTER_FIELDS = ("work_items", "work_groups", "alu_ops", "fp64_ops",
                   "global_loads", "global_stores", "global_load_bytes",
                   "global_store_bytes", "global_load_transactions",
                   "global_store_transactions", "local_accesses",
                   "barriers")

_SUMMED_SCALARS = ("compute_s", "memory_s", "barrier_s", "launch_s",
                   "total_s", "weighted_ops", "bytes_moved")


class KernelProfile:
    """One kernel's profile: per-line cost, divergence and roofline."""

    __slots__ = ("kernel", "engine", "device", "is_cpu", "work_items",
                 "work_groups", "launches", "lines", "branches",
                 "counters", "compute_s", "memory_s", "barrier_s",
                 "launch_s", "total_s", "weighted_ops", "bytes_moved",
                 "compute_ceiling", "bandwidth_ceiling", "segment_bytes",
                 "source")

    def __init__(self) -> None:
        self.kernel = ""
        self.engine = ""
        self.device = ""
        self.is_cpu = False
        self.work_items = 0
        self.work_groups = 0
        self.launches = 0
        self.lines: dict[int, LineStat] = {}
        self.branches: dict[int, BranchStat] = {}
        self.counters: dict = {}
        self.compute_s = 0.0
        self.memory_s = 0.0
        self.barrier_s = 0.0
        self.launch_s = 0.0
        self.total_s = 0.0
        self.weighted_ops = 0.0   # fp32-equivalent ops (fp64 re-weighted)
        self.bytes_moved = 0.0    # segment bytes (GPU) / exact bytes (CPU)
        self.compute_ceiling = 0.0   # weighted ops / second
        self.bandwidth_ceiling = 0.0  # bytes / second
        self.segment_bytes = 0
        self.source = ""

    # -- derived -----------------------------------------------------------

    @property
    def key(self) -> tuple:
        return (self.kernel, self.engine, self.device)

    @property
    def arithmetic_intensity(self) -> float:
        """Weighted ops per byte of global traffic."""
        if self.bytes_moved <= 0:
            return float("inf")
        return self.weighted_ops / self.bytes_moved

    @property
    def ridge_point(self) -> float:
        """AI at which the roofline's two ceilings meet (ops/byte)."""
        if self.bandwidth_ceiling <= 0:
            return float("inf")
        return self.compute_ceiling / self.bandwidth_ceiling

    @property
    def bound(self) -> str:
        """``"compute"`` or ``"memory"`` — which ceiling binds."""
        return "compute" if self.compute_s >= self.memory_s else "memory"

    def line_cost_total(self) -> float:
        return sum(rec.cost_seconds for rec in self.lines.values())

    def attributed_fraction(self) -> float:
        """Fraction of modeled per-line cost on real (non-zero) lines."""
        total = self.line_cost_total()
        if total <= 0:
            return 1.0
        attributed = sum(rec.cost_seconds
                         for line, rec in self.lines.items() if line > 0)
        return attributed / total

    def divergent_branches(self) -> list[tuple[int, BranchStat]]:
        """(line, stat) of branches that actually split lanes, worst
        first (by divergent executions, then by lane imbalance)."""
        out = [(line, rec) for line, rec in self.branches.items()
               if rec.divergent > 0]
        out.sort(key=lambda kv: (-kv[1].divergent,
                                 abs(kv[1].taken_fraction - 0.5)))
        return out

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "KernelProfile") -> None:
        """Fold another launch of the same kernel into this profile."""
        self.launches += other.launches
        self.work_items = max(self.work_items, other.work_items)
        self.work_groups = max(self.work_groups, other.work_groups)
        for f in _SUMMED_SCALARS:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        for name, value in other.counters.items():
            if name in ("work_items", "work_groups"):
                self.counters[name] = max(self.counters.get(name, 0), value)
            else:
                self.counters[name] = self.counters.get(name, 0) + value
        for line, rec in other.lines.items():
            mine = self.lines.get(line)
            if mine is None:
                self.lines[line] = LineStat.from_dict(rec.to_dict())
            else:
                mine.merge(rec)
        for line, rec in other.branches.items():
            mine = self.branches.get(line)
            if mine is None:
                self.branches[line] = BranchStat.from_dict(rec.to_dict())
            else:
                mine.merge(rec)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel, "engine": self.engine,
            "device": self.device, "is_cpu": self.is_cpu,
            "work_items": self.work_items,
            "work_groups": self.work_groups, "launches": self.launches,
            "counters": dict(self.counters),
            **{f: getattr(self, f) for f in _SUMMED_SCALARS},
            "compute_ceiling": self.compute_ceiling,
            "bandwidth_ceiling": self.bandwidth_ceiling,
            "segment_bytes": self.segment_bytes,
            "arithmetic_intensity": self.arithmetic_intensity
            if self.bytes_moved > 0 else None,
            "ridge_point": self.ridge_point,
            "bound": self.bound,
            "attributed_fraction": self.attributed_fraction(),
            "lines": {str(line): rec.to_dict()
                      for line, rec in sorted(self.lines.items())},
            "branches": {str(line): rec.to_dict()
                         for line, rec in sorted(self.branches.items())},
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "KernelProfile":
        p = cls()
        for f in ("kernel", "engine", "device", "is_cpu", "work_items",
                  "work_groups", "launches", "compute_ceiling",
                  "bandwidth_ceiling", "segment_bytes", "source"):
            if f in row:
                setattr(p, f, row[f])
        for f in _SUMMED_SCALARS:
            setattr(p, f, row.get(f, 0.0))
        p.counters = dict(row.get("counters") or {})
        p.lines = {int(line): LineStat.from_dict(rec)
                   for line, rec in (row.get("lines") or {}).items()}
        p.branches = {int(line): BranchStat.from_dict(rec)
                      for line, rec in (row.get("branches") or {}).items()}
        return p


def build_profile(col: LaunchCollector, counters) -> KernelProfile:
    """Finalize one launch: per-line modeled cost + roofline numbers."""
    from ..ocl.costmodel import kernel_time

    spec = col.spec
    p = KernelProfile()
    p.kernel = col.kernel
    p.engine = col.engine
    p.device = spec.name
    p.is_cpu = bool(spec.is_cpu)
    p.work_items = col.work_items
    p.work_groups = col.work_groups
    p.launches = 1
    p.lines = col.lines
    p.branches = col.branches
    p.counters = {f: getattr(counters, f) for f in _COUNTER_FIELDS}
    p.source = col.source
    p.segment_bytes = spec.segment_bytes

    clock_hz = spec.clock_ghz * 1e9
    p.compute_ceiling = spec.compute_units * clock_hz * spec.ipc
    p.bandwidth_ceiling = spec.mem_bandwidth_gbs * 1e9
    fp64_weight = 1.0 / spec.fp64_ratio if spec.fp64_ratio > 0 else 1.0
    barrier_s = spec.barrier_cycles / clock_hz

    p.weighted_ops = (counters.alu_ops + counters.fp64_ops * fp64_weight
                      + counters.local_accesses * spec.local_access_cost)
    if spec.is_cpu:
        p.bytes_moved = float(counters.global_bytes)
    else:
        p.bytes_moved = float(counters.global_transactions
                              * spec.segment_bytes)

    try:
        breakdown = kernel_time(counters, spec)
        p.compute_s = breakdown.compute
        p.memory_s = breakdown.memory
        p.barrier_s = breakdown.barrier
        p.launch_s = breakdown.launch
        p.total_s = breakdown.total
    except ValueError:
        # device can't model these counters (e.g. fp64 on a device
        # without it) — keep the raw tallies, leave times at zero
        pass

    for rec in p.lines.values():
        w = (rec.alu_ops + rec.fp64_ops * fp64_weight
             + rec.local_accesses * spec.local_access_cost)
        mem_bytes = (rec.mem_bytes if spec.is_cpu
                     else rec.transactions * spec.segment_bytes)
        rec.cost_seconds = (w / p.compute_ceiling
                            + mem_bytes / p.bandwidth_ceiling
                            + rec.barriers * barrier_s)
    return p


def merge_profiles(profiles) -> list[KernelProfile]:
    """Aggregate launches by (kernel, engine, device), insertion order."""
    merged: dict[tuple, KernelProfile] = {}
    for p in profiles:
        mine = merged.get(p.key)
        if mine is None:
            clone = KernelProfile.from_dict(p.to_dict())
            merged[p.key] = clone
        else:
            mine.merge(p)
    return list(merged.values())


class Profiler:
    """Process-global profile store; disabled by default."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._profiles: list[KernelProfile] = []

    # -- engine API --------------------------------------------------------

    def begin_launch(self, kernel: str, engine: str, spec, source: str,
                     work_items: int, work_groups: int):
        """A collector for the launch, or ``None`` while disabled."""
        if not self.enabled:
            return None
        return LaunchCollector(kernel, engine, spec, source,
                               work_items, work_groups)

    def finish_launch(self, col: LaunchCollector | None, counters):
        """Finalize a collector into a stored :class:`KernelProfile`.

        Also attaches a summary to the current trace span (when tracing
        is on) and bumps the ``prof.*`` metrics.
        """
        if col is None:
            return None
        from .. import trace

        profile = build_profile(col, counters)
        with self._lock:
            self._profiles.append(profile)

        span = trace.current_span()
        if span is not None:
            hot = max(profile.lines.items(),
                      key=lambda kv: kv[1].cost_seconds,
                      default=(0, None))[0]
            span.set_attrs(prof_bound=profile.bound,
                           prof_total_seconds=profile.total_s,
                           prof_hot_line=hot,
                           prof_attributed=round(
                               profile.attributed_fraction(), 4))
        registry = trace.get_registry()
        registry.counter("prof.launches").inc()
        registry.counter("prof.divergent_branches").inc(
            sum(1 for _line, rec in profile.branches.items()
                if rec.divergent))
        registry.gauge("prof.kernels").set(
            len({p.key for p in self._profiles}))
        return profile

    # -- results -----------------------------------------------------------

    def profiles(self) -> list[KernelProfile]:
        with self._lock:
            return list(self._profiles)

    def merged(self) -> list[KernelProfile]:
        return merge_profiles(self.profiles())

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def drain(self) -> list[KernelProfile]:
        """Snapshot and clear (the benchsuite's per-target consumption)."""
        with self._lock:
            out = list(self._profiles)
            self._profiles.clear()
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)
