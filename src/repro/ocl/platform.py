"""The SimCL platform: entry point of the simulated OpenCL host API.

``get_platforms()[0].get_devices()`` is the discovery path, exactly like a
real OpenCL installation.  The set of simulated devices defaults to the
paper's machine (Tesla C2050 + Quadro FX 380 + Xeon host) and can be
reconfigured for tests via :func:`set_platform_devices`.
"""

from __future__ import annotations

from .api import device_type
from .device import Device
from .devicedb import DEFAULT_DEVICES, DeviceSpec

_current_specs: tuple[DeviceSpec, ...] = DEFAULT_DEVICES
_default_engine: str | None = None


def set_platform_devices(specs, engine: str | None = None) -> None:
    """Replace the simulated device roster (affects new ``get_platforms``).

    ``engine=None`` leaves devices on the process-wide default backend
    (``hpl.configure(engine=)`` / ``$HPL_ENGINE`` / ``vector``); an
    explicit name pins every roster device to that backend.
    """
    global _current_specs, _default_engine
    _current_specs = tuple(specs)
    _default_engine = engine


def reset_platform_devices() -> None:
    """Restore the paper's default machine configuration."""
    set_platform_devices(DEFAULT_DEVICES, None)


class Platform:
    """The (single) SimCL platform."""

    name = "SimCL"
    vendor = "repro"
    version = "OpenCL 1.2 SimCL"
    profile = "FULL_PROFILE"

    def __init__(self, specs=None, engine: str | None = None) -> None:
        specs = _current_specs if specs is None else tuple(specs)
        engine = _default_engine if engine is None else engine
        self._devices = tuple(Device(s, engine, index=i)
                              for i, s in enumerate(specs))

    def get_devices(self, dtype: device_type = device_type.ALL):
        """Devices of the requested type, GPU-class devices first."""
        if dtype == device_type.DEFAULT:
            dtype = device_type.ALL
        return [d for d in self._devices if d.type & dtype]

    def __repr__(self) -> str:
        return f"<Platform {self.name} with {len(self._devices)} devices>"


def get_platforms() -> list[Platform]:
    """Like ``clGetPlatformIDs``: the list of available platforms."""
    return [Platform()]
