"""NumPy-codegen JIT execution backend.

Instead of interpreting :class:`~repro.clc.lower.KernelBytecode` one
instruction at a time, this backend compiles each bytecode function into
generated Python source that executes the whole work-group as straight
NumPy operations with masked divergence — the per-instruction dispatch
loop, tuple indexing and opcode chains of the interpreter disappear, and
consecutive counted ALU instructions charge the cost counters in one
batched add per basic block (exact, because every static op cost is an
integer-valued float).

The generated code mirrors :meth:`VectorEngine._bx_span` operation for
operation — same ``to_dtype`` coercions, same mask algebra, same
transaction counting from actual byte addresses — so buffers, cost
counters and per-line profiler attribution are bit-identical to the
vector engine.  Per-line profiling works through the same
``LaunchCollector`` calls, emitted as literal ``(line, cost)`` replay
statements from the instruction→line sidecar the lowerer already stamps
on every instruction.

Generated module source is memoized in-process per program and cached on
disk next to the ``ProgramIR`` entries (``.jitsrc`` sidecars in
:mod:`repro.hpl.diskcache`), keyed by program source, bytecode/pipeline
versions and :data:`JIT_CODEGEN_VERSION`.  When codegen fails for any
reason the engine silently falls back to the inherited interpreter, so
``jit`` is always safe to select.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ...clc.builtins import BUILTINS
from ...clc.lower import (BYTECODE_VERSION, L_A, L_AUX, L_B, L_C, L_DST,
                          L_ISDBL, L_ISFLOAT, L_LINE, L_NP, L_UNI,
                          L_VCOST, OP_ADD, OP_ATOMIC, OP_BAND,
                          OP_BARRIER, OP_BNOT, OP_BOR, OP_BREAK,
                          OP_BUILTIN, OP_BXOR,
                          OP_CALL, OP_CAST, OP_CASTF, OP_CEQ, OP_CGE,
                          OP_CGT, OP_CLE, OP_CLT, OP_CNE, OP_CONST,
                          OP_CONTINUE, OP_DECLARR, OP_DIV, OP_IF,
                          OP_LAND, OP_LD, OP_LNOT, OP_LOOP, OP_LOR,
                          OP_MOD, OP_MOV, OP_MUL, OP_NEG, OP_RET,
                          OP_SELECT, OP_SHL, OP_SHR, OP_ST, OP_SUB,
                          OP_WIQ, SPACE_GLOBAL, SPACE_LOCAL,
                          linked_program)
from ...errors import KernelLaunchError
from ..costmodel import count_index_transactions, count_transactions
from .base import (ATOMIC_UFUNCS, GLOBAL_ID_KEYS, GROUP_ID_KEYS,
                   LOCAL_ID_KEYS, MAX_LOOP_ITERATIONS, Mem,
                   register_engine)
from .carith import (c_idiv_raw, c_imod_raw, c_shl, c_shr, to_dtype,
                     truth)
from .vector import VectorEngine, _BFrame

#: bump whenever the emitted code changes — invalidates cached sources
JIT_CODEGEN_VERSION = 1

#: in-process memo: codegen cache key -> generated module source
_source_memo: dict[str, str] = {}

#: names the generated source expects in its exec namespace
_EXEC_ENV = {
    "np": np,
    "BUILTINS": BUILTINS,
    "ATOMIC_UFUNCS": ATOMIC_UFUNCS,
    "to_dtype": to_dtype,
    "truth": truth,
    # raw variants: generated code always runs under the launch loop's
    # np.errstate(all="ignore"), so per-call errstate guards are waste
    "c_idiv": c_idiv_raw,
    "c_imod": c_imod_raw,
    "c_shl": c_shl,
    "c_shr": c_shr,
    "count_transactions": count_transactions,
    "count_index_transactions": count_index_transactions,
    "Mem": Mem,
    "BFrame": _BFrame,
    "KernelLaunchError": KernelLaunchError,
}


def clear_cache() -> None:
    """Drop the in-process generated-source memo (``reset_runtime()``
    calls this so a reset never serves stale codegen)."""
    _source_memo.clear()


def source_cache_key(program_source: str, opt_level, pipeline_version
                     ) -> str | None:
    """Disk-cache key for a program's generated module, or ``None`` when
    the program carries no source to key by."""
    if not program_source:
        return None
    h = hashlib.sha256()
    for part in ("hpl-jit-codegen", str(JIT_CODEGEN_VERSION),
                 str(BYTECODE_VERSION), str(opt_level),
                 str(pipeline_version), program_source):
        h.update(part.encode("utf-8", "replace"))
        h.update(b"\x00")
    return h.hexdigest()


# -- code generation -----------------------------------------------------------------

_ARITH_EXPR = {
    OP_ADD: "R[{a}] + R[{b}]",
    OP_SUB: "R[{a}] - R[{b}]",
    OP_MUL: "R[{a}] * R[{b}]",
    OP_MOD: "c_imod(R[{a}], R[{b}])",
    OP_SHL: "c_shl(R[{a}], R[{b}])",
    OP_SHR: "c_shr(R[{a}], R[{b}])",
    # OP_DIV handled separately (needs the is_float flag)
    OP_BAND: "R[{a}] & R[{b}]",
    OP_BOR: "R[{a}] | R[{b}]",
    OP_BXOR: "R[{a}] ^ R[{b}]",
}

_CMP_EXPR = {
    OP_CEQ: "R[{a}] == R[{b}]",
    OP_CNE: "R[{a}] != R[{b}]",
    OP_CLT: "R[{a}] < R[{b}]",
    OP_CGT: "R[{a}] > R[{b}]",
    OP_CLE: "R[{a}] <= R[{b}]",
    OP_CGE: "R[{a}] >= R[{b}]",
    OP_LAND: "truth(R[{a}]) & truth(R[{b}])",
    OP_LOR: "truth(R[{a}]) | truth(R[{b}])",
}


class _ModuleEmitter:
    """Emits one Python module for a whole ``ProgramBytecode``."""

    def __init__(self, pbc) -> None:
        self.linked = linked_program(pbc)
        self.dtypes: dict[str, str] = {}     # np dtype name -> ref
        self.consts: dict[tuple, str] = {}   # (dtype ref, literal) -> ref
        self.const_lines: list[str] = []
        self.builtins: dict[str, str] = {}
        self.atomics: dict[str, str] = {}

    # -- constant pools --------------------------------------------------------

    def dtype_ref(self, np_dtype) -> str:
        name = np.dtype(np_dtype).name
        ref = f"_D_{name}"
        self.dtypes[name] = ref
        return ref

    def const_ref(self, value) -> str:
        dref = self.dtype_ref(value.dtype)
        if np.issubdtype(value.dtype, np.floating):
            lit = f"float.fromhex({float(value).hex()!r})"
        else:
            lit = repr(int(value))
        key = (dref, lit)
        ref = self.consts.get(key)
        if ref is None:
            ref = f"_K{len(self.consts)}"
            self.consts[key] = ref
            self.const_lines.append(f"{ref} = {dref}.type({lit})")
        return ref

    def builtin_ref(self, name: str) -> str:
        ref = f"_B_{name}"
        self.builtins[name] = ref
        return ref

    def atomic_ref(self, op: str) -> str:
        if op == "dec":
            op = "sub"
        ref = f"_AT_{op}"
        self.atomics[op] = ref
        return ref

    # -- assembly --------------------------------------------------------------

    def generate(self) -> str:
        fn_blocks = []
        for fname in self.linked:
            code, kbc = self.linked[fname]
            fn_blocks.append(_FnEmitter(self, code, kbc).emit())
        lines = [
            f"# generated by repro.ocl.engines.jit codegen "
            f"v{JIT_CODEGEN_VERSION} -- do not edit",
            "import numpy as np",
            "_asarray = np.asarray",
            "_cnz = np.count_nonzero",
            "_ndim = np.ndim",
            "_nmin = np.minimum",
            "_nmax = np.maximum",
            "_where = np.where",
        ]
        for name in sorted(self.dtypes):
            lines.append(f"{self.dtypes[name]} = np.dtype({name!r})")
        lines.extend(self.const_lines)
        for name in sorted(self.builtins):
            lines.append(
                f"{self.builtins[name]} = BUILTINS[{name!r}].impl")
        for op in sorted(self.atomics):
            lines.append(f"{self.atomics[op]} = ATOMIC_UFUNCS[{op!r}].at")
        for block in fn_blocks:
            lines.append("")
            lines.extend(block)
        pairs = ", ".join(f"{name!r}: f_{name}" for name in self.linked)
        lines.append("")
        lines.append(f"FUNCS = {{{pairs}}}")
        return "\n".join(lines) + "\n"


class _FnEmitter:
    """Emits ``def f_<name>(E, F, mask, full)`` for one bytecode
    function, mirroring ``VectorEngine._bx_span`` exactly."""

    def __init__(self, mod: _ModuleEmitter, code, kbc) -> None:
        self.mod = mod
        self.code = code
        self.kbc = kbc
        self.spans: list[list[str]] = []
        self.n_spans = 0

    def emit(self) -> list[str]:
        top = self.span_fn(0, len(self.code))
        lines = [f"def f_{self.kbc.name}(E, F, mask, full):"]
        for pre in ("R = F.regs", "M = F.mems", "counters = E.counters",
                    "col = E._col", "n = E.n", "_gf = E.group_flat",
                    "_ln = E.lane", "_wp = E.warp_ids",
                    "_seg = E.spec.segment_bytes",
                    "_ww = E.spec.warp_size"):
            lines.append("    " + pre)
        for span in self.spans:
            lines.extend("    " + s for s in span)
        lines.append(f"    return {top}(mask, full)")
        return lines

    def span_fn(self, pos: int, end: int) -> str:
        name = f"_s{self.n_spans}"
        self.n_spans += 1
        body = self.span_body(pos, end)
        fn = [f"def {name}(mask, full):",
              "    n_act = n if full else int(_cnz(mask))"]
        fn.extend("    " + s for s in body)
        fn.append("    return mask, full")
        self.spans.append(fn)
        return name

    # -- span emission ---------------------------------------------------------

    def _coerce(self, out: list[str], expr: str, np_dtype, dst: int,
                trunc: bool) -> None:
        """Emit ``R[dst] = <expr coerced to np_dtype>``.

        The interpreter coerces through :func:`to_dtype` (``trunc``) or
        ``.astype(dt, copy=False)``; both are identity when the value
        already has the target dtype — the overwhelmingly common case —
        so the generated code guards the (expensive) coercion call with
        a pointer comparison against the interned dtype singleton.  A
        false-negative ``is`` merely re-runs the exact interpreter
        coercion, never changes a value.
        """
        dt = self.mod.dtype_ref(np_dtype)
        out.append(f"_r = {expr}")
        if trunc and np.issubdtype(np_dtype, np.integer):
            # to_dtype differs from a plain cast only for float sources
            # (C truncation toward zero); the target dtype is static, so
            # only the source kind needs a runtime test
            out.append(f"R[{dst}] = _r if _r.dtype is {dt} "
                       f"else (to_dtype(_r, {dt}) if _r.dtype.kind == 'f' "
                       f"else _r.astype({dt}, copy=False))")
        else:
            out.append(f"R[{dst}] = _r if _r.dtype is {dt} "
                       f"else _r.astype({dt}, copy=False)")

    def span_body(self, pos: int, end: int) -> list[str]:
        out: list[str] = []
        #: pending batched ALU charges: (line, cost, is_double)
        pend: list[tuple[int, float, bool]] = []

        def flush() -> None:
            if not pend:
                return
            alu = sum(c for _, c, d in pend if not d)
            fp64 = sum(c for _, c, d in pend if d)
            if alu:
                out.append(f"counters.alu_ops += {alu!r} * n_act")
            if fp64:
                out.append(f"counters.fp64_ops += {fp64!r} * n_act")
            out.append("if col is not None:")
            for line, cost, dbl in pend:
                out.append(f"    col.op({line}, n_act, {cost!r}, "
                           f"{bool(dbl)}, n)")
            pend.clear()

        code = self.code
        while pos < end:
            ins = code[pos]
            op = ins[0]
            d, a, b, c = ins[L_DST], ins[L_A], ins[L_B], ins[L_C]
            line = ins[L_LINE]
            if OP_ADD <= op <= OP_BXOR:
                if op == OP_DIV:
                    # float / inlined: the launch loop's errstate already
                    # ignores divide warnings, so this equals c_div
                    expr = (f"R[{a}] / R[{b}]" if ins[L_ISFLOAT]
                            else f"c_idiv(R[{a}], R[{b}])")
                else:
                    expr = _ARITH_EXPR[op].format(a=a, b=b)
                self._coerce(out, expr, ins[L_NP], d, trunc=True)
                pend.append((line, ins[L_VCOST], bool(ins[L_ISDBL])))
            elif OP_CEQ <= op <= OP_LOR:
                expr = _CMP_EXPR[op].format(a=a, b=b)
                out.append(f"R[{d}] = _asarray({expr}).astype(np.int32)")
                pend.append((line, 1.0, False))
            elif op == OP_MOV:
                if ins[L_UNI] == 2:
                    out.append(f"R[{d}] = R[{a}]")
                else:
                    dt = self.mod.dtype_ref(ins[L_NP])
                    out.extend([
                        "if full:",
                        f"    R[{d}] = R[{a}]",
                        "else:",
                        f"    _o = R[{d}]",
                        "    if _o is None:",
                        f"        _o = {dt}.type(0)",
                        f"    _r = _where(mask, R[{a}], _o)",
                        f"    R[{d}] = _r if _r.dtype is {dt} "
                        f"else _r.astype({dt}, copy=False)",
                    ])
            elif op == OP_CASTF or op == OP_CAST:
                self._coerce(out, f"R[{a}]", ins[L_NP], d, trunc=True)
                if op == OP_CAST:
                    pend.append((line, 1.0, bool(ins[L_ISDBL])))
            elif op == OP_CONST:
                ref = self.mod.const_ref(ins[L_AUX])
                out.append(f"R[{d}] = {ref}")
            elif op == OP_SELECT:
                pend.append((line, 1.0, bool(ins[L_ISDBL])))
                self._coerce(out,
                             f"_where(truth(R[{a}]), R[{b}], R[{c}])",
                             ins[L_NP], d, trunc=False)
            elif op == OP_NEG:
                self._coerce(out, f"(-R[{a}])", ins[L_NP], d,
                             trunc=False)
                pend.append((line, 1.0, bool(ins[L_ISDBL])))
            elif op == OP_BNOT:
                self._coerce(out, f"(~R[{a}])", ins[L_NP], d,
                             trunc=False)
                pend.append((line, 1.0, False))
            elif op == OP_LNOT:
                out.append(f"R[{d}] = np.logical_not(truth(R[{a}]))"
                           ".astype(np.int32)")
                pend.append((line, 1.0, False))
            elif op == OP_WIQ:
                qcode, dim, name = ins[L_AUX]
                if qcode == 0:
                    expr = f"E.ids[{GLOBAL_ID_KEYS[dim]!r}]"
                elif qcode == 1:
                    expr = f"E.ids[{LOCAL_ID_KEYS[dim]!r}]"
                elif qcode == 2:
                    expr = f"E.ids[{GROUP_ID_KEYS[dim]!r}]"
                elif qcode == 3:
                    expr = "np.int32(E.nd.dim)"
                elif qcode == 4:
                    expr = "np.int64(0)"
                else:
                    expr = f"np.int64(E.nd.size_of({name!r}, {dim}))"
                self._coerce(out, expr, ins[L_NP], d, trunc=True)
            elif op == OP_BUILTIN:
                _impl, arg_regs, name = ins[L_AUX]
                bref = self.mod.builtin_ref(name)
                args = ", ".join(f"R[{r}]" for r in arg_regs)
                pend.append((line, ins[L_VCOST], bool(ins[L_ISDBL])))
                self._coerce(out, f"{bref}({args})", ins[L_NP], d,
                             trunc=True)
            elif op == OP_LD:
                flush()
                self._emit_ld(out, ins)
            elif op == OP_ST:
                flush()
                self._emit_st(out, ins)
            elif op == OP_ATOMIC:
                flush()
                self._emit_atomic(out, ins)
            elif op == OP_DECLARR:
                flush()
                self._emit_declarr(out, ins)
            elif op == OP_BARRIER:
                flush()
                out.extend([
                    "if full:",
                    "    _ag = E.nd.total_groups",
                    "else:",
                    "    _ag = int(np.unique(_gf[mask]).size)",
                    "counters.barriers += _ag",
                    "if col is not None:",
                    f"    col.barrier({line}, _ag)",
                ])
            elif op == OP_CALL:
                flush()
                self._emit_call(out, ins)
            elif op == OP_IF:
                flush()
                tlen, elen = ins[L_AUX]
                body = pos + 1
                self._emit_if(out, ins, body, tlen, elen)
                pos = body + tlen + elen
                continue
            elif op == OP_LOOP:
                flush()
                self._emit_loop(out, ins, pos)
                clen, blen, ulen, _ = ins[L_AUX]
                pos = pos + 1 + clen + blen + ulen
                continue
            elif op == OP_BREAK:
                flush()
                out.append("return E._dead, False")
                return out
            elif op == OP_CONTINUE:
                flush()
                out.extend([
                    "_cm = E._bloops[-1]",
                    "E._bloops[-1] = mask if _cm is None else (_cm | mask)",
                    "return E._dead, False",
                ])
                return out
            elif op == OP_RET:
                flush()
                if a >= 0:
                    out.extend([
                        "if F.ret_np is not None:",
                        f"    _v = R[{a}]",
                        "    if _v.dtype is not F.ret_np:",
                        "        _v = to_dtype(_v, F.ret_np)",
                        "    _p = F.ret_value",
                        "    if _p is None:",
                        "        _p = np.zeros(n, dtype=F.ret_np)",
                        "    F.ret_value = _where(mask, _v, _p)"
                        ".astype(F.ret_np, copy=False)",
                    ])
                out.extend([
                    "if F.return_mask is None:",
                    "    F.return_mask = mask",
                    "else:",
                    "    F.return_mask = F.return_mask | mask",
                    "return E._dead, False",
                ])
                return out
            else:  # pragma: no cover - lowerer never emits others
                raise NotImplementedError(f"jit: opcode {op}")
            pos += 1
        flush()
        return out

    # -- memory / structured ops ----------------------------------------------

    def _emit_index(self, out: list[str], slot: int, b: int,
                    line: int) -> None:
        """Shared ST/ATOMIC (and non-global LD) prologue: broadcast the
        index register, bounds-check, clamp (``np.clip`` equivalent,
        via the cheaper minimum/maximum ufuncs)."""
        out.extend([
            f"_m = M[{slot}]",
            f"_i = E._broadcast(R[{b}])",
            # when every lane (active or not) is in bounds, the exact
            # check cannot raise and the clamp is the identity
            "if 0 <= _i.min() and _i.max() < _m.size:",
            "    _s = _i",
            "else:",
            f"    E._check_bounds(_i, _m, mask, {line})",
            "    _s = _nmin(_nmax(_i, 0), _m.size - 1)",
        ])

    def _emit_ld(self, out: list[str], ins) -> None:
        slot, space = ins[L_AUX]
        d, b, line = ins[L_DST], ins[L_B], ins[L_LINE]
        if space == SPACE_GLOBAL:
            # ``take`` fuses the upper-bound check into the gather (it
            # raises IndexError past the end, and the min() guard rules
            # out the negative wrap-around), so the fast path runs one
            # reduction + one gather instead of two reductions + a
            # fancy index
            out.extend([
                f"_m = M[{slot}]",
                f"_i = E._broadcast(R[{b}])",
                "_r = None",
                "if 0 <= _i.min():",
                "    try:",
                "        _r = _m.array.take(_i)",
                "        _s = _i",
                "    except IndexError:",
                "        pass",
                "if _r is None:",
                f"    E._check_bounds(_i, _m, mask, {line})",
                "    _s = _nmin(_nmax(_i, 0), _m.size - 1)",
                "    _r = _m.array[_s]",
                "_z = _m.array.dtype.itemsize",
                "_t = count_index_transactions(_s if full else _s[mask],"
                " _wp if full else _wp[mask], _seg, _z,"
                " _ww if full else 0)",
                "counters.global_loads += n_act",
                "counters.global_load_bytes += n_act * _z",
                "counters.global_load_transactions += _t",
                "if col is not None:",
                f"    col.mem({line}, n_act, n_act * _z, _t, False, n)",
                f"R[{d}] = _r",
            ])
            return
        self._emit_index(out, slot, b, line)
        if space == SPACE_LOCAL:
            out.extend([
                "counters.local_accesses += n_act",
                "if col is not None:",
                f"    col.local({line}, n_act, n)",
                f"R[{d}] = _m.array[_gf, _s]",
            ])
        else:
            out.extend([
                "counters.alu_ops += n_act",
                "if col is not None:",
                f"    col.op({line}, n_act, 1.0, False, n)",
                f"R[{d}] = _m.array[_ln, _s]",
            ])

    def _emit_st(self, out: list[str], ins) -> None:
        slot, space = ins[L_AUX]
        b, c, line = ins[L_B], ins[L_C], ins[L_LINE]
        self._emit_index(out, slot, b, line)
        out.extend([
            f"_v = E._broadcast(R[{c}])",
            "if _v.dtype is not _m.array.dtype:",
            "    _v = to_dtype(_v, _m.array.dtype)",
            "_sm = _s if full else _s[mask]",
            "_vm = _v if full else _v[mask]",
        ])
        if space == SPACE_GLOBAL:
            out.extend([
                "_m.array[_sm] = _vm",
                "_z = _m.array.dtype.itemsize",
                "_t = count_index_transactions(_sm,"
                " _wp if full else _wp[mask], _seg, _z,"
                " _ww if full else 0)",
                "counters.global_stores += n_act",
                "counters.global_store_bytes += n_act * _z",
                "counters.global_store_transactions += _t",
                "if col is not None:",
                f"    col.mem({line}, n_act, n_act * _z, _t, True, n)",
            ])
        elif space == SPACE_LOCAL:
            out.extend([
                "_g = _gf if full else _gf[mask]",
                "_m.array[_g, _sm] = _vm",
                "counters.local_accesses += n_act",
                "if col is not None:",
                f"    col.local({line}, n_act, n)",
            ])
        else:
            out.extend([
                "_l = _ln if full else _ln[mask]",
                "_m.array[_l, _sm] = _vm",
                "counters.alu_ops += n_act",
                "if col is not None:",
                f"    col.op({line}, n_act, 1.0, False, n)",
            ])

    def _emit_atomic(self, out: list[str], ins) -> None:
        opstr, slot, space = ins[L_AUX]
        b, c, line = ins[L_B], ins[L_C], ins[L_LINE]
        at = self.mod.atomic_ref(opstr)
        self._emit_index(out, slot, b, line)
        out.append("_sm = _s if full else _s[mask]")
        if c >= 0:
            out.extend([
                f"_v = E._broadcast(R[{c}])",
                "if _v.dtype is not _m.array.dtype:",
                "    _v = to_dtype(_v, _m.array.dtype)",
                "_vm = _v if full else _v[mask]",
            ])
        else:
            out.append("_vm = np.ones(n_act, dtype=_m.array.dtype)")
        if space == SPACE_LOCAL:
            out.extend([
                "_g = _gf if full else _gf[mask]",
                "counters.local_accesses += 2 * n_act",
                "if col is not None:",
                f"    col.local({line}, 2 * n_act, n)",
                f"{at}(_m.array, (_g, _sm), _vm)",
            ])
        else:
            out.extend([
                "_z = _m.array.dtype.itemsize",
                "counters.global_loads += n_act",
                "counters.global_stores += n_act",
                "counters.global_load_bytes += n_act * _z",
                "counters.global_store_bytes += n_act * _z",
                "_t = count_index_transactions(_sm,"
                " _wp if full else _wp[mask], _seg, _z,"
                " _ww if full else 0)",
                "counters.global_load_transactions += _t",
                "counters.global_store_transactions += _t",
                "if col is not None:",
                f"    col.mem({line}, n_act, n_act * _z, _t, False, n)",
                f"    col.mem({line}, n_act, n_act * _z, _t, True, n)",
                f"{at}(_m.array, _sm, _vm)",
            ])

    def _emit_declarr(self, out: list[str], ins) -> None:
        slot, size, np_dtype, space, name, nbytes = ins[L_AUX]
        dt = self.mod.dtype_ref(np_dtype)
        out.append(f"if M[{slot}] is None:")
        if space == SPACE_LOCAL:
            out.extend([
                f"    E._account_local({nbytes})",
                f"    M[{slot}] = Mem(np.zeros((E.nd.total_groups, "
                f"{size}), dtype={dt}), 'local', 'local', {name!r})",
            ])
        else:
            out.append(
                f"    M[{slot}] = Mem(np.zeros((n, {size}), dtype={dt}),"
                f" 'private', 'private', {name!r})")

    def _emit_call(self, out: list[str], ins) -> None:
        fname, binds, ret_np = ins[L_AUX]
        d = ins[L_DST]
        _ccode, ckbc = self.mod.linked[fname]
        if ret_np is None:
            rref = "None"
        else:
            rref = self.mod.dtype_ref(ret_np)
        out.append(f"_cf = BFrame({ckbc.n_regs}, {ckbc.n_mems}, {rref})")
        for bind in binds:
            if bind[0] == "mem":
                out.append(f"_cf.mems[{bind[2]}] = M[{bind[1]}]")
            else:
                pdt = self.mod.dtype_ref(bind[3])
                out.append(f"_r = R[{bind[1]}]")
                out.append(f"_cf.regs[{bind[2]}] = _r if _r.dtype is "
                           f"{pdt} else to_dtype(_r, {pdt})")
        out.append(f"f_{fname}(E, _cf, mask, full)")
        if ret_np is None:
            out.append(f"R[{d}] = np.int32(0)")
        else:
            out.extend([
                "_rv = _cf.ret_value",
                f"R[{d}] = _rv if _rv is not None else {rref}.type(0)",
            ])

    # -- control flow -----------------------------------------------------------

    def _emit_if(self, out: list[str], ins, body: int, tlen: int,
                 elen: int) -> None:
        creg, line = ins[L_A], ins[L_LINE]
        s_then = self.span_fn(body, body + tlen)
        s_else = (self.span_fn(body + tlen, body + tlen + elen)
                  if elen else None)
        out.append(f"_c = R[{creg}]")
        out.append("if _ndim(_c) == 0:")
        out.append("    if _c != 0:")
        out.append(f"        mask, full = {s_then}(mask, full)")
        if s_else is not None:
            out.append("    else:")
            out.append(f"        mask, full = {s_else}(mask, full)")
        out.extend([
            "else:",
            "    _cb = truth(_c)",
            "    _tm = mask & _cb",
            "    _em = mask & ~_cb",
            "    if col is not None:",
            f"        col.branch({line}, n_act, int(_cnz(_tm)))",
            "    if _tm.any():",
            f"        _ot, _x = {s_then}(_tm, False)",
            "    else:",
            "        _ot = _tm",
        ])
        if s_else is not None:
            out.extend([
                "    if _em.any():",
                f"        _oe, _x = {s_else}(_em, False)",
                "    else:",
                "        _oe = _em",
            ])
        else:
            out.append("    _oe = _em")
        out.extend([
            "    mask = _ot | _oe",
            "    full = bool(mask.all())",
            "if not full and not mask.any():",
            "    return mask, full",
            "n_act = n if full else int(_cnz(mask))",
        ])

    def _emit_loop(self, out: list[str], ins, pos: int) -> None:
        clen, blen, ulen, is_do = ins[L_AUX]
        creg, line = ins[L_A], ins[L_LINE]
        cond_start = pos + 1
        body_start = cond_start + clen
        upd_start = body_start + blen
        end_pos = upd_start + ulen
        s_cond = self.span_fn(cond_start, body_start)
        s_body = self.span_fn(body_start, upd_start)
        s_upd = self.span_fn(upd_start, end_pos) if ulen else None
        out.extend([
            "_act = mask",
            "_af = full",
            f"_first = {bool(is_do)}",
            "_it = 0",
            "while True:",
            "    if not _first:",
            "        if not (_af or _act.any()):",
            "            break",
            f"        _act, _af = {s_cond}(_act, _af)",
            f"        _c = R[{creg}]",
            "        if _ndim(_c) == 0:",
            "            if _c == 0:",
            "                break",
            "        else:",
            "            _cb = truth(_c)",
            "            if not (_af and bool(_cb.all())):",
            "                _act = _act & _cb",
            "                _af = False",
            "    _first = False",
            "    if not (_af or _act.any()):",
            "        break",
            "    E._bloops.append(None)",
            f"    _aft, _x = {s_body}(_act, _af)",
            "    _cm = E._bloops.pop()",
            "    if _cm is not None:",
            "        _aft = _aft | _cm",
            "    _af = bool(_aft.all())",
        ])
        if s_upd is not None:
            out.extend([
                "    if _af or _aft.any():",
                f"        {s_upd}(_aft, _af)",
            ])
        out.extend([
            "    _act = _aft",
            "    _it += 1",
            f"    if _it > {MAX_LOOP_ITERATIONS}:",
            "        raise KernelLaunchError(",
            f"            'loop at line {line} exceeded "
            f"{MAX_LOOP_ITERATIONS} iterations (infinite loop?)')",
            "if F.return_mask is not None:",
            "    mask = mask & ~F.return_mask",
            "    full = bool(mask.all())",
            "    if not full and not mask.any():",
            "        return mask, full",
            "    n_act = n if full else int(_cnz(mask))",
        ])


def generate_module(pbc) -> str:
    """Generated Python module source for every function of ``pbc``."""
    return _ModuleEmitter(pbc).generate()


def load_module(source: str):
    """Exec generated module source; returns its name->function dict."""
    ns = dict(_EXEC_ENV)
    exec(compile(source, "<hpl-jit>", "exec"), ns)
    return ns["FUNCS"]


# -- the engine ----------------------------------------------------------------------


@register_engine
class JitEngine(VectorEngine):
    """Whole-work-group execution through generated NumPy code.

    Inherits the vector engine's launch plumbing, argument binding, tree
    fallback (``-O0`` programs carry no bytecode) and bounds/atomic
    helpers; only the bytecode execution path is replaced by compiled
    functions.  Any codegen failure falls back to the interpreter.
    """

    name = "jit"
    capabilities = frozenset({"tree", "bytecode", "simt", "codegen"})
    codegen_version = JIT_CODEGEN_VERSION

    @classmethod
    def prebuild(cls, ir, spec) -> None:
        """Build-time hook (called by ``Program.build``): generate and
        compile the module now, so it lands in build accounting and the
        disk cache rather than in the first launch.  The result is
        memoized on the bytecode object, which every later engine
        instance for this program shares."""
        if getattr(ir, "bytecode", None) is not None:
            cls(ir, spec)._jit_functions()

    def _run_bytecode(self, entry, kernel, args) -> None:
        code, kbc = entry
        funcs = self._jit_functions()
        fn = None if funcs is None else funcs.get(kbc.name)
        if fn is None:
            super()._run_bytecode(entry, kernel, args)
            return
        frame = self._bc_frame(kbc, args)
        self._bloops = []
        self._dead = np.zeros(self.n, dtype=bool)
        mask = np.ones(self.n, dtype=bool)
        fn(self, frame, mask, True)

    def _jit_functions(self):
        """Compiled function dict for this program's bytecode, memoized
        on the bytecode object (an ad-hoc attribute the IR codec never
        serializes, like ``_linked``); ``None`` when codegen failed."""
        pbc = self.program.bytecode
        cached = getattr(pbc, "_jit", None)
        if cached is not None and cached[0] == JIT_CODEGEN_VERSION:
            return cached[1]
        try:
            funcs = load_module(self._module_source(pbc))
        except Exception:  # fall back to the interpreter, never fail
            funcs = None
        pbc._jit = (JIT_CODEGEN_VERSION, funcs)
        return funcs

    def _module_source(self, pbc) -> str:
        key = source_cache_key(getattr(self.program, "source", ""),
                               getattr(pbc, "opt_level", None),
                               getattr(pbc, "pipeline_version", None))
        if key is not None:
            src = _source_memo.get(key)
            if src is not None:
                return src
            cache = self._disk_cache()
            if cache is not None:
                src = cache.get_source(key)
                if src is not None:
                    _source_memo[key] = src
                    return src
        src = generate_module(pbc)
        if key is not None:
            _source_memo[key] = src
            cache = self._disk_cache()
            if cache is not None:
                cache.put_source(key, src)
        return src

    @staticmethod
    def _disk_cache():
        from ...hpl.diskcache import active_cache
        return active_cache()
