"""Shared engine infrastructure: the execution-backend registry, NDRange
geometry, argument bindings, and the helpers every backend needs.

An execution backend ("engine") is a class with

* a ``name`` class attribute (the registry key),
* ``__init__(self, program, spec)`` taking the compiled
  :class:`~repro.clc.ir.ProgramIR` and a
  :class:`~repro.ocl.devicedb.DeviceSpec`,
* ``run(kernel_name, args, global_size, local_size=None)`` returning a
  filled :class:`~repro.ocl.costmodel.CostCounters`,
* a ``capabilities`` frozenset of feature flags (``"tree"``,
  ``"bytecode"``, ``"simt"``, ``"codegen"``) and a ``codegen_version``
  int (0 for interpreters; bumped whenever a code-generating backend
  changes its emitted code, so cached artifacts are invalidated).

Backends register themselves with :func:`register_engine` (usable as a
decorator); :class:`~repro.ocl.device.Device` resolves names through
:func:`get_engine_class`.  The default engine for devices constructed
without an explicit name is resolved by :func:`default_engine`:
``hpl.configure(engine=...)`` wins, then the ``HPL_ENGINE`` environment
variable, then ``"vector"``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from ...clc.lower import BYTECODE_VERSION, linked_program
from ...clc.types import CLType, PointerType, ScalarType
from ...errors import (InvalidKernelArgs, InvalidWorkDimension,
                       InvalidWorkGroupSize, OutOfResources)

#: environment variable naming the default execution backend
ENV_ENGINE = "HPL_ENGINE"

#: loop-iteration cap shared by every backend (infinite-loop tripwire)
MAX_LOOP_ITERATIONS = 50_000_000

#: work-item id-array keys per query kind, indexed by dimension — the
#: dispatch tables previously duplicated by the serial and vector engines
GLOBAL_ID_KEYS = ("idx", "idy", "idz")
LOCAL_ID_KEYS = ("lidx", "lidy", "lidz")
GROUP_ID_KEYS = ("gidx", "gidy", "gidz")

#: atomic op name -> NumPy ufunc (``.at`` for unbuffered scatter);
#: ``inc``/``dec`` are normalized to add/sub with an operand of 1
ATOMIC_UFUNCS = {"add": np.add, "inc": np.add,
                 "sub": np.subtract, "dec": np.subtract,
                 "min": np.minimum, "max": np.maximum}


# -- backend registry ----------------------------------------------------------------

_REGISTRY: dict[str, type] = {}
_default_override: str | None = None


def register_engine(cls):
    """Register an execution backend class under ``cls.name``.

    Usable as a class decorator.  The class must carry a non-empty
    ``name`` and a ``run`` method; re-registering a name replaces the
    previous backend (latest wins), which is what lets tests install
    instrumented engines.
    """
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(
            f"engine class {cls!r} must define a string 'name' attribute")
    if not callable(getattr(cls, "run", None)):
        raise ValueError(f"engine {name!r} must define a run() method")
    _REGISTRY[name] = cls
    return cls


def available_engines() -> list[str]:
    """Sorted names of every registered execution backend."""
    return sorted(_REGISTRY)


def get_engine_class(name: str):
    """The backend class registered under ``name``.

    Unknown names raise a ``ValueError`` that lists the registered
    backends, so a typo'd ``Device(engine=...)`` or ``HPL_ENGINE`` is
    immediately actionable.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered backends: "
            + ", ".join(available_engines())) from None


def set_default_engine(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    This is what ``hpl.configure(engine=...)`` calls; it takes
    precedence over ``$HPL_ENGINE``.  Devices constructed without an
    explicit engine re-resolve on every launch, so switching the
    default mid-session takes effect immediately.
    """
    global _default_override
    if name is not None:
        get_engine_class(name)          # validate eagerly
    _default_override = name


def default_engine() -> str:
    """The engine name devices fall back to: the
    ``hpl.configure(engine=...)`` override, else a validated
    ``$HPL_ENGINE``, else ``"vector"``."""
    if _default_override is not None:
        return _default_override
    env = os.environ.get(ENV_ENGINE)
    if env:
        get_engine_class(env)           # validate: typos must not
        return env                      # silently fall back
    return "vector"


def linked_entry(program, kernel_name: str):
    """``(linked functions dict, entry)`` for ``kernel_name`` when the
    program ships bytecode the engines understand (O1+), else
    ``(None, None)`` — the tree-walking fallback.  Shared by every
    bytecode-capable backend so the version check cannot drift."""
    pbc = getattr(program, "bytecode", None)
    if pbc is None or getattr(pbc, "version", None) != BYTECODE_VERSION:
        return None, None
    linked = linked_program(pbc)
    return linked, linked.get(kernel_name)


def wiq_value(qcode: int, dim: int, name: str, ids, nd):
    """Value of an ``OP_WIQ`` work-item query: lane id arrays when
    ``ids`` holds the whole NDRange (lock-step backends), plain ints for
    a single item (serial backend).  Callers coerce to the destination
    dtype themselves."""
    if qcode == 0:
        return ids[GLOBAL_ID_KEYS[dim]]
    if qcode == 1:
        return ids[LOCAL_ID_KEYS[dim]]
    if qcode == 2:
        return ids[GROUP_ID_KEYS[dim]]
    if qcode == 3:
        return np.int32(nd.dim)
    if qcode == 4:
        return np.int64(0)
    return np.int64(nd.size_of(name, dim))


class Mem:
    """A memory object visible to kernel code under a name (shared by
    the lock-step backends; the serial engine keeps its own slim view)."""

    __slots__ = ("array", "kind", "space", "name")

    def __init__(self, array: np.ndarray, kind: str, space: str,
                 name: str) -> None:
        self.array = array
        self.kind = kind      # buffer | local | private
        self.space = space    # global | constant | local | private
        self.name = name

    @property
    def size(self) -> int:
        return self.array.shape[-1]


def _as_tuple(size) -> tuple[int, ...]:
    if isinstance(size, int):
        return (size,)
    return tuple(int(s) for s in size)


#: (global_size, local_size) -> read-only lane-id arrays; see lane_ids()
_LANE_IDS_CACHE: dict = {}


class NDRange:
    """Geometry of one kernel launch: global/local domains up to 3-D.

    Work-items are flattened **group-major**: all items of group 0 first
    (local x fastest), then group 1, ... — the natural layout for the
    lock-step vector engine and for per-warp coalescing measurement.
    """

    def __init__(self, global_size, local_size=None,
                 max_work_group_size: int = 1 << 30,
                 max_work_item_sizes=(1 << 30,) * 3) -> None:
        gsize = _as_tuple(global_size)
        if not 1 <= len(gsize) <= 3:
            raise InvalidWorkDimension(
                f"global domain must have 1-3 dimensions, got {len(gsize)}")
        if any(g <= 0 for g in gsize):
            raise InvalidWorkDimension(f"empty global domain {gsize}")
        if local_size is None:
            lsize = self._default_local(gsize, max_work_group_size,
                                        max_work_item_sizes)
        else:
            lsize = _as_tuple(local_size)
            if len(lsize) != len(gsize):
                raise InvalidWorkGroupSize(
                    f"local domain {lsize} must match global domain "
                    f"dimensionality {gsize}")
        for g, l, cap in zip(gsize, lsize, max_work_item_sizes):
            if l <= 0 or l > cap:
                raise InvalidWorkGroupSize(f"bad local size {lsize}")
            if g % l != 0:
                raise InvalidWorkGroupSize(
                    f"local size {lsize} does not divide global size "
                    f"{gsize}")
        group_items = math.prod(lsize)
        if group_items > max_work_group_size:
            raise InvalidWorkGroupSize(
                f"work-group of {group_items} items exceeds the device "
                f"maximum {max_work_group_size}")

        self.dim = len(gsize)
        self.global_size = gsize
        self.local_size = lsize
        self.num_groups = tuple(g // l for g, l in zip(gsize, lsize))
        self.items_per_group = group_items
        self.total_items = math.prod(gsize)
        self.total_groups = math.prod(self.num_groups)

    @staticmethod
    def _default_local(gsize: tuple[int, ...], cap: int,
                       item_caps=(1 << 30,) * 3) -> tuple[int, ...]:
        """Pick a local size the way the HPL runtime does: the largest
        power-of-two divisor of each dimension whose product stays within
        the device limit (at most 256 items, a universally safe default).

        Each dimension is additionally clamped to the device's
        per-dimension ``max_work_item_sizes`` cap, so the auto-picked
        default always passes the validation the explicit path enforces.
        """
        budget = min(cap, 256)
        lsize = []
        for g, dim_cap in zip(gsize, item_caps):
            limit = min(budget, dim_cap)
            l = 1
            while l * 2 <= limit and g % (l * 2) == 0:
                l *= 2
            lsize.append(l)
            budget = max(1, budget // l)
        return tuple(lsize)

    # -- flattened id arrays (vector engine) -----------------------------------

    def lane_ids(self) -> dict[str, np.ndarray]:
        """Per-lane id arrays in group-major order (see class docstring).

        Memoized across launches of the same NDRange shape; the arrays
        are shared and must be treated as read-only, which every engine
        already does (registers are never mutated in place).
        """
        key = (self.global_size, self.local_size)
        hit = _LANE_IDS_CACHE.get(key)
        if hit is not None:
            return hit
        n = self.total_items
        lane = np.arange(n, dtype=np.int64)
        ipg = self.items_per_group
        group = lane // ipg
        within = lane % ipg

        lx_, ly_, lz_ = (self.local_size + (1, 1, 1))[:3]
        ngx, ngy, _ngz = (self.num_groups + (1, 1, 1))[:3]

        lx = within % lx_
        ly = (within // lx_) % ly_
        lz = within // (lx_ * ly_)
        gx_ = group % ngx
        gy_ = (group // ngx) % ngy
        gz_ = group // (ngx * ngy)

        ids = {
            "lidx": lx, "lidy": ly, "lidz": lz,
            "gidx": gx_, "gidy": gy_, "gidz": gz_,
            "idx": gx_ * lx_ + lx,
            "idy": gy_ * ly_ + ly,
            "idz": gz_ * lz_ + lz,
            "group_flat": group,
            "lane": lane,
        }
        ids = {k: v.astype(np.int64) for k, v in ids.items()}
        if n <= (1 << 20):          # don't pin huge launches in memory
            if len(_LANE_IDS_CACHE) >= 64:
                _LANE_IDS_CACHE.clear()
            _LANE_IDS_CACHE[key] = ids
        return ids

    def item_ids(self, flat: int) -> dict[str, int]:
        """Scalar ids of one flattened work-item (serial engine)."""
        ipg = self.items_per_group
        group, within = divmod(flat, ipg)
        lx_, ly_, lz_ = (self.local_size + (1, 1, 1))[:3]
        ngx, ngy, _ngz = (self.num_groups + (1, 1, 1))[:3]
        lx = within % lx_
        ly = (within // lx_) % ly_
        lz = within // (lx_ * ly_)
        gx_ = group % ngx
        gy_ = (group // ngx) % ngy
        gz_ = group // (ngx * ngy)
        return {
            "lidx": lx, "lidy": ly, "lidz": lz,
            "gidx": gx_, "gidy": gy_, "gidz": gz_,
            "idx": gx_ * lx_ + lx, "idy": gy_ * ly_ + ly,
            "idz": gz_ * lz_ + lz,
            "group_flat": group,
        }

    def size_of(self, what: str, dim: int) -> int:
        """Value of a ``get_*_size``-style query for dimension ``dim``."""
        table = {
            "get_global_size": self.global_size,
            "get_local_size": self.local_size,
            "get_num_groups": self.num_groups,
        }
        seq = table[what]
        return seq[dim] if dim < len(seq) else 1


# -- argument bindings ---------------------------------------------------------------

@dataclass
class ScalarBinding:
    """A by-value scalar kernel argument."""
    value: object
    type: ScalarType


@dataclass
class BufferBinding:
    """A device buffer bound to a pointer parameter.

    ``array`` is the buffer's backing store viewed with the parameter's
    element dtype (1-D).  ``space`` is ``global`` or ``constant``.
    """
    array: np.ndarray
    space: str = "global"


@dataclass
class LocalBinding:
    """A ``__local`` pointer argument given by size only (clSetKernelArg
    with a NULL pointer), as the reduction benchmark uses."""
    nbytes: int


def check_args(kernel, args, spec=None) -> None:
    """Validate binding kinds/counts against the kernel signature.

    With a :class:`~repro.ocl.devicedb.DeviceSpec` the address-space
    checks become device-aware: a ``__constant`` pointer parameter must
    be fed a constant-space buffer that fits the device's constant
    buffer size limit (``CL_DEVICE_MAX_CONSTANT_BUFFER_SIZE``).
    """
    params = kernel.params
    if len(args) != len(params):
        raise InvalidKernelArgs(
            f"kernel {kernel.name!r} expects {len(params)} argument(s), "
            f"got {len(args)}")
    for param, arg in zip(params, args):
        ptype: CLType = param.type
        if isinstance(ptype, ScalarType):
            if not isinstance(arg, ScalarBinding):
                raise InvalidKernelArgs(
                    f"argument {param.name!r} must be a scalar")
        elif isinstance(ptype, PointerType):
            if ptype.address_space == "local":
                if not isinstance(arg, LocalBinding):
                    raise InvalidKernelArgs(
                        f"argument {param.name!r} is a __local pointer; "
                        "bind it with a LocalBinding(size)")
            elif not isinstance(arg, BufferBinding):
                raise InvalidKernelArgs(
                    f"argument {param.name!r} must be a buffer")
            else:
                if arg.array.dtype != ptype.pointee.np_dtype:
                    raise InvalidKernelArgs(
                        f"buffer dtype {arg.array.dtype} does not match "
                        f"parameter {param.name!r} element type "
                        f"{ptype.pointee}")
                if arg.space != ptype.address_space:
                    raise InvalidKernelArgs(
                        f"argument {param.name!r} is a "
                        f"__{ptype.address_space} pointer but the bound "
                        f"buffer lives in __{arg.space} memory")
                if (ptype.address_space == "constant" and spec is not None
                        and arg.array.nbytes
                        > spec.max_constant_buffer_bytes):
                    raise OutOfResources(
                        f"__constant argument {param.name!r} is "
                        f"{arg.array.nbytes} B, but {spec.name} caps "
                        f"constant buffers at "
                        f"{spec.max_constant_buffer_bytes} B")
        else:  # pragma: no cover - signature rules prevent this
            raise InvalidKernelArgs(f"unsupported parameter type {ptype}")
