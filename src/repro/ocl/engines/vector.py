"""Lock-step SIMT execution engine.

Every work-item of the NDRange executes simultaneously as one NumPy
"lane"; private variables are length-``n`` arrays, divergent control flow
runs under boolean activity masks (the classic whole-NDRange vectorization
used by SIMT simulators).  Because all lanes advance in lock step,
work-group barriers are natural synchronisation points and cost only their
model time.

While executing, the engine measures the dynamic cost of the launch:
weighted ALU ops per active lane, global/local memory traffic and — from
the *actual byte addresses* each warp touches — the number of coalesced
memory transactions.  This is what makes the simulated GPU reward
contiguous accesses and punish scattered ones, reproducing the first-order
performance effects the paper's evaluation relies on.
"""

from __future__ import annotations

import numpy as np

from ... import trace
from ...clc import ir as I
from ...clc.builtins import BUILTINS
from ...clc.types import DOUBLE, PointerType, ScalarType
from ...errors import InvalidKernelArgs, KernelLaunchError, OutOfResources
from ..costmodel import CostCounters, count_transactions
from .base import (BufferBinding, LocalBinding, NDRange, ScalarBinding,
                   check_args)
from .carith import c_div, c_imod, c_shl, c_shr, to_dtype, truth

#: weighted cost (in fp32-add units) of the arithmetic operators
_OP_COST = {"+": 1.0, "-": 1.0, "*": 1.0,
            "/": 8.0, "%": 16.0,
            "<<": 1.0, ">>": 1.0, "&": 1.0, "|": 1.0, "^": 1.0,
            "==": 1.0, "!=": 1.0, "<": 1.0, ">": 1.0, "<=": 1.0,
            ">=": 1.0, "&&": 1.0, "||": 1.0}

_MAX_LOOP_ITERATIONS = 50_000_000


class _Mem:
    """A memory object visible to kernel code under a name."""

    __slots__ = ("array", "kind", "space", "name")

    def __init__(self, array: np.ndarray, kind: str, space: str,
                 name: str) -> None:
        self.array = array
        self.kind = kind      # buffer | local | private
        self.space = space    # global | constant | local | private
        self.name = name

    @property
    def size(self) -> int:
        return self.array.shape[-1]


class _Frame:
    """One function activation: environment + return bookkeeping."""

    def __init__(self, n: int, ret_dtype=None) -> None:
        self.env: dict[str, object] = {}
        self.return_mask = np.zeros(n, dtype=bool)
        self.ret_value = (np.zeros(n, dtype=ret_dtype)
                          if ret_dtype is not None else None)


class _Loop:
    def __init__(self, n: int) -> None:
        self.break_mask = np.zeros(n, dtype=bool)
        self.continue_mask = np.zeros(n, dtype=bool)


class VectorEngine:
    """Execute one kernel launch over a whole NDRange in lock step."""

    name = "vector"

    def __init__(self, program, spec) -> None:
        self.program = program
        self.spec = spec

    # -- public ------------------------------------------------------------------

    def run(self, kernel_name: str, args: list, global_size,
            local_size=None) -> CostCounters:
        kernel = self.program.functions.get(kernel_name)
        if kernel is None or not kernel.is_kernel:
            raise InvalidKernelArgs(f"no kernel named {kernel_name!r}")
        check_args(kernel, args, self.spec)

        nd = NDRange(global_size, local_size,
                     max_work_group_size=self.spec.max_work_group_size,
                     max_work_item_sizes=self.spec.max_work_item_sizes)
        self.nd = nd
        self.n = nd.total_items
        ids = nd.lane_ids()
        self.ids = ids
        self.group_flat = ids["group_flat"]
        self.lane = ids["lane"]
        self.warp_ids = self.lane // max(1, self.spec.warp_size)

        self.counters = CostCounters(work_items=self.n,
                                     work_groups=nd.total_groups)
        self.frames: list[_Frame] = []
        self.loops: list[_Loop] = []
        self._local_bytes = 0

        frame = _Frame(self.n)
        self._bind_args(frame, kernel, args)
        self.frames.append(frame)

        mask = np.ones(self.n, dtype=bool)
        with trace.span("engine_run", category="simcl", engine=self.name,
                        kernel=kernel_name, work_items=self.n):
            with np.errstate(all="ignore"):
                self._run_block(kernel.body, mask)
        self.frames.pop()
        return self.counters

    # -- argument binding ----------------------------------------------------------

    def _bind_args(self, frame: _Frame, kernel, args) -> None:
        for param, arg in zip(kernel.params, args):
            if isinstance(arg, ScalarBinding):
                dtype = param.type.np_dtype
                frame.env[param.name] = dtype.type(arg.value)
            elif isinstance(arg, BufferBinding):
                space = param.type.address_space
                frame.env[param.name] = _Mem(arg.array, "buffer", space,
                                             param.name)
            elif isinstance(arg, LocalBinding):
                elem = param.type.pointee
                nelems = arg.nbytes // elem.size
                self._account_local(arg.nbytes)
                storage = np.zeros((self.nd.total_groups, nelems),
                                   dtype=elem.np_dtype)
                frame.env[param.name] = _Mem(storage, "local", "local",
                                             param.name)
            else:  # pragma: no cover - check_args filters this
                raise InvalidKernelArgs(f"bad binding for {param.name!r}")

    def _account_local(self, nbytes: int) -> None:
        self._local_bytes += nbytes
        if self._local_bytes > self.spec.local_mem_bytes:
            raise OutOfResources(
                f"work-group needs {self._local_bytes} B of local memory; "
                f"{self.spec.name} provides {self.spec.local_mem_bytes} B")

    # -- statement execution -----------------------------------------------------------

    def _run_block(self, stmts: list, mask: np.ndarray) -> np.ndarray:
        for stmt in stmts:
            if not mask.any():
                return mask
            mask = self._run_stmt(stmt, mask)
        return mask

    def _run_stmt(self, stmt, mask: np.ndarray) -> np.ndarray:
        frame = self.frames[-1]
        if isinstance(stmt, I.DeclVar):
            dtype = stmt.type.np_dtype
            if stmt.name not in frame.env:
                frame.env[stmt.name] = np.zeros(self.n, dtype=dtype)
            if stmt.init is not None:
                value = self._eval(stmt.init, mask)
                self._store_scalar(frame.env[stmt.name], value, mask)
            return mask
        if isinstance(stmt, I.DeclArray):
            if stmt.name not in frame.env:
                if stmt.space == "local":
                    nbytes = stmt.size * stmt.element.size
                    self._account_local(nbytes)
                    storage = np.zeros((self.nd.total_groups, stmt.size),
                                       dtype=stmt.element.np_dtype)
                    frame.env[stmt.name] = _Mem(storage, "local", "local",
                                                stmt.name)
                else:
                    storage = np.zeros((self.n, stmt.size),
                                       dtype=stmt.element.np_dtype)
                    frame.env[stmt.name] = _Mem(storage, "private",
                                                "private", stmt.name)
            return mask
        if isinstance(stmt, I.Store):
            self._exec_store(stmt, mask)
            return mask
        if isinstance(stmt, I.AtomicRMW):
            self._exec_atomic(stmt, mask)
            return mask
        if isinstance(stmt, I.EvalExpr):
            self._eval(stmt.expr, mask)
            return mask
        if isinstance(stmt, I.If):
            cond = truth(self._broadcast(self._eval(stmt.cond, mask)))
            then_mask = mask & cond
            else_mask = mask & ~cond
            out_then = (self._run_block(stmt.then, then_mask)
                        if then_mask.any() else then_mask)
            out_else = (self._run_block(stmt.otherwise, else_mask)
                        if else_mask.any() else else_mask)
            return out_then | out_else
        if isinstance(stmt, I.While):
            return self._exec_while(stmt, mask)
        if isinstance(stmt, I.Break):
            self.loops[-1].break_mask |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, I.Continue):
            self.loops[-1].continue_mask |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, I.Return):
            if stmt.value is not None and frame.ret_value is not None:
                value = self._broadcast(self._eval(stmt.value, mask))
                frame.ret_value[mask] = to_dtype(
                    value, frame.ret_value.dtype)[mask]
            frame.return_mask |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, I.BarrierStmt):
            active_groups = int(np.unique(self.group_flat[mask]).size)
            self.counters.barriers += active_groups
            return mask
        raise KernelLaunchError(
            f"vector engine cannot execute {type(stmt).__name__}")

    def _exec_while(self, stmt: I.While, mask: np.ndarray) -> np.ndarray:
        active = mask.copy()
        first = stmt.is_do_while
        iterations = 0
        while True:
            if not first:
                if not active.any():
                    break
                cond = truth(self._broadcast(self._eval(stmt.cond, active)))
                active = active & cond
            first = False
            if not active.any():
                break
            loop = _Loop(self.n)
            self.loops.append(loop)
            after = self._run_block(stmt.body, active)
            self.loops.pop()
            after = after | loop.continue_mask
            if stmt.update and after.any():
                for u in stmt.update:
                    self._run_stmt(u, after)
            active = after
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise KernelLaunchError(
                    f"loop at line {stmt.line} exceeded "
                    f"{_MAX_LOOP_ITERATIONS} iterations (infinite loop?)")
        frame = self.frames[-1]
        return mask & ~frame.return_mask

    # -- stores --------------------------------------------------------------------------

    def _store_scalar(self, storage: np.ndarray, value,
                      mask: np.ndarray) -> None:
        value = self._broadcast(value)
        storage[mask] = to_dtype(value, storage.dtype)[mask]

    def _exec_store(self, stmt: I.Store, mask: np.ndarray) -> None:
        frame = self.frames[-1]
        target = stmt.target
        value = self._eval(stmt.value, mask)
        if target.index is None:
            storage = frame.env[target.name]
            if not isinstance(storage, np.ndarray):
                # scalar parameter materialised lazily upon first write
                storage = np.full(self.n, storage)
                frame.env[target.name] = storage
            self._store_scalar(storage, value, mask)
            return
        mem: _Mem = frame.env[target.name]
        idx = self._broadcast(self._eval(target.index, mask)).astype(
            np.int64, copy=False)
        self._check_bounds(idx, mem, mask, stmt.line)
        safe = np.clip(idx, 0, mem.size - 1)
        valm = to_dtype(self._broadcast(value), mem.array.dtype)
        active = int(np.count_nonzero(mask))
        if mem.kind == "buffer":
            mem.array[safe[mask]] = valm[mask]
            itemsize = mem.array.dtype.itemsize
            self.counters.global_stores += active
            self.counters.global_store_bytes += active * itemsize
            self.counters.global_store_transactions += count_transactions(
                safe[mask] * itemsize, self.warp_ids[mask],
                self.spec.segment_bytes)
        elif mem.kind == "local":
            mem.array[self.group_flat[mask], safe[mask]] = valm[mask]
            self.counters.local_accesses += active
        else:  # private array
            mem.array[self.lane[mask], safe[mask]] = valm[mask]
            self.counters.alu_ops += active  # address arithmetic

    def _exec_atomic(self, stmt: I.AtomicRMW, mask: np.ndarray) -> None:
        frame = self.frames[-1]
        target = stmt.target
        mem: _Mem = frame.env[target.name]
        idx = self._broadcast(self._eval(target.index, mask)).astype(
            np.int64, copy=False)
        self._check_bounds(idx, mem, mask, stmt.line)
        safe = np.clip(idx, 0, mem.size - 1)
        if stmt.value is not None:
            val = to_dtype(self._broadcast(self._eval(stmt.value, mask)),
                           mem.array.dtype)[mask]
        else:
            val = np.ones(int(np.count_nonzero(mask)),
                          dtype=mem.array.dtype)
        op = stmt.op
        if op == "dec":
            op, val = "sub", val
        if mem.kind == "local":
            index = (self.group_flat[mask], safe[mask])
            self.counters.local_accesses += 2 * len(val)
        else:
            index = safe[mask]
            itemsize = mem.array.dtype.itemsize
            n = len(val)
            self.counters.global_loads += n
            self.counters.global_stores += n
            self.counters.global_load_bytes += n * itemsize
            self.counters.global_store_bytes += n * itemsize
            tx = count_transactions(safe[mask] * itemsize,
                                    self.warp_ids[mask],
                                    self.spec.segment_bytes)
            self.counters.global_load_transactions += tx
            self.counters.global_store_transactions += tx
        if op in ("add", "inc"):
            np.add.at(mem.array, index, val)
        elif op == "sub":
            np.subtract.at(mem.array, index, val)
        elif op == "min":
            np.minimum.at(mem.array, index, val)
        elif op == "max":
            np.maximum.at(mem.array, index, val)
        else:  # pragma: no cover
            raise KernelLaunchError(f"unknown atomic op {op!r}")

    def _check_bounds(self, idx: np.ndarray, mem: _Mem,
                      mask: np.ndarray, line: int) -> None:
        bad = mask & ((idx < 0) | (idx >= mem.size))
        if bad.any():
            lane = int(np.argmax(bad))
            raise KernelLaunchError(
                f"work-item {lane} accessed {mem.name}[{int(idx[lane])}] "
                f"out of bounds (size {mem.size}) at line {line}")

    # -- expression evaluation ----------------------------------------------------------------

    def _broadcast(self, value):
        arr = np.asarray(value)
        if arr.ndim == 0:
            return np.broadcast_to(arr, (self.n,))
        return arr

    def _count_alu(self, cost: float, mask: np.ndarray, type_) -> None:
        active = int(np.count_nonzero(mask))
        if isinstance(type_, ScalarType) and type_ is DOUBLE:
            self.counters.fp64_ops += cost * active
        else:
            self.counters.alu_ops += cost * active

    def _eval(self, expr: I.Expr, mask: np.ndarray):
        frame = self.frames[-1]
        if isinstance(expr, I.Const):
            return expr.type.np_dtype.type(expr.value)
        if isinstance(expr, I.Var):
            value = frame.env[expr.name]
            if isinstance(value, _Mem):
                return value  # bare array name (only legal as call arg)
            return value
        if isinstance(expr, I.Load):
            return self._eval_load(expr, mask)
        if isinstance(expr, I.Convert):
            value = self._eval(expr.operand, mask)
            self._count_alu(1.0, mask, expr.type)
            return to_dtype(value, expr.type.np_dtype)
        if isinstance(expr, I.Unary):
            return self._eval_unary(expr, mask)
        if isinstance(expr, I.Binary):
            return self._eval_binary(expr, mask)
        if isinstance(expr, I.Select):
            cond = truth(self._broadcast(self._eval(expr.cond, mask)))
            a = self._broadcast(self._eval(expr.then, mask))
            b = self._broadcast(self._eval(expr.otherwise, mask))
            self._count_alu(1.0, mask, expr.type)
            return np.where(cond, a, b).astype(expr.type.np_dtype,
                                               copy=False)
        if isinstance(expr, I.CallBuiltin):
            return self._eval_builtin(expr, mask)
        if isinstance(expr, I.CallFunction):
            return self._eval_call(expr, mask)
        raise KernelLaunchError(
            f"vector engine cannot evaluate {type(expr).__name__}")

    def _eval_load(self, expr: I.Load, mask: np.ndarray):
        frame = self.frames[-1]
        mem: _Mem = frame.env[expr.base]
        idx = self._broadcast(self._eval(expr.index, mask)).astype(
            np.int64, copy=False)
        self._check_bounds(idx, mem, mask, expr.line)
        safe = np.clip(idx, 0, mem.size - 1)
        active = int(np.count_nonzero(mask))
        if mem.kind == "buffer":
            itemsize = mem.array.dtype.itemsize
            self.counters.global_loads += active
            self.counters.global_load_bytes += active * itemsize
            self.counters.global_load_transactions += count_transactions(
                safe[mask] * itemsize, self.warp_ids[mask],
                self.spec.segment_bytes)
            return mem.array[safe]
        if mem.kind == "local":
            self.counters.local_accesses += active
            return mem.array[self.group_flat, safe]
        self.counters.alu_ops += active
        return mem.array[self.lane, safe]

    def _eval_unary(self, expr: I.Unary, mask: np.ndarray):
        operand = self._eval(expr.operand, mask)
        self._count_alu(1.0, mask, expr.type)
        if expr.op == "-":
            return (-operand).astype(expr.type.np_dtype, copy=False)
        if expr.op == "~":
            return (~operand).astype(expr.type.np_dtype, copy=False)
        if expr.op == "!":
            return np.logical_not(truth(operand)).astype(np.int32)
        raise KernelLaunchError(f"unknown unary {expr.op!r}")

    def _eval_binary(self, expr: I.Binary, mask: np.ndarray):
        lhs = self._eval(expr.lhs, mask)
        rhs = self._eval(expr.rhs, mask)
        op = expr.op
        self._count_alu(_OP_COST.get(op, 1.0), mask, expr.type)
        dtype = expr.type.np_dtype if isinstance(expr.type,
                                                 ScalarType) else None
        if op == "+":
            result = lhs + rhs
        elif op == "-":
            result = lhs - rhs
        elif op == "*":
            result = lhs * rhs
        elif op == "/":
            result = c_div(lhs, rhs, expr.type.is_float)
        elif op == "%":
            result = c_imod(lhs, rhs)
        elif op == "<<":
            result = c_shl(lhs, rhs)
        elif op == ">>":
            result = c_shr(lhs, rhs)
        elif op == "&":
            result = lhs & rhs
        elif op == "|":
            result = lhs | rhs
        elif op == "^":
            result = lhs ^ rhs
        elif op == "==":
            return (lhs == rhs).astype(np.int32)
        elif op == "!=":
            return (lhs != rhs).astype(np.int32)
        elif op == "<":
            return (lhs < rhs).astype(np.int32)
        elif op == ">":
            return (lhs > rhs).astype(np.int32)
        elif op == "<=":
            return (lhs <= rhs).astype(np.int32)
        elif op == ">=":
            return (lhs >= rhs).astype(np.int32)
        elif op == "&&":
            return (truth(lhs) & truth(rhs)).astype(np.int32)
        elif op == "||":
            return (truth(lhs) | truth(rhs)).astype(np.int32)
        else:
            raise KernelLaunchError(f"unknown binary {op!r}")
        if dtype is not None:
            result = to_dtype(result, dtype)
        return result

    def _eval_builtin(self, expr: I.CallBuiltin, mask: np.ndarray):
        name = expr.name
        if name.startswith("get_"):
            return self._workitem_query(name, expr.args)
        b = BUILTINS[name]
        args = [self._eval(a, mask) for a in expr.args]
        self._count_alu(b.cost, mask, expr.type)
        result = b.impl(*args)
        return to_dtype(result, expr.type.np_dtype)

    def _workitem_query(self, name: str, args: list):
        dim = int(args[0].value) if args else 0
        if name == "get_work_dim":
            return np.int32(self.nd.dim)
        if name == "get_global_offset":
            return np.int64(0)
        if name == "get_global_id":
            return self.ids[("idx", "idy", "idz")[dim]]
        if name == "get_local_id":
            return self.ids[("lidx", "lidy", "lidz")[dim]]
        if name == "get_group_id":
            return self.ids[("gidx", "gidy", "gidz")[dim]]
        return np.int64(self.nd.size_of(name, dim))

    def _eval_call(self, expr: I.CallFunction, mask: np.ndarray):
        func = self.program.functions[expr.name]
        ret_dtype = (None if func.return_type.is_void
                     else func.return_type.np_dtype)
        frame = _Frame(self.n, ret_dtype)
        caller = self.frames[-1]
        for param, arg in zip(func.params, expr.args):
            if isinstance(param.type, PointerType):
                # sema guarantees this is a Var naming a memory object
                frame.env[param.name] = caller.env[arg.name]
            else:
                value = self._broadcast(self._eval(arg, mask))
                frame.env[param.name] = to_dtype(
                    value, param.type.np_dtype).copy()
        self.frames.append(frame)
        self._run_block(func.body, mask.copy())
        self.frames.pop()
        if ret_dtype is None:
            return np.int32(0)
        return frame.ret_value
