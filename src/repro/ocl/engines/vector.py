"""Lock-step SIMT execution engine.

Every work-item of the NDRange executes simultaneously as one NumPy
"lane"; private variables are length-``n`` arrays, divergent control flow
runs under boolean activity masks (the classic whole-NDRange vectorization
used by SIMT simulators).  Because all lanes advance in lock step,
work-group barriers are natural synchronisation points and cost only their
model time.

While executing, the engine measures the dynamic cost of the launch:
weighted ALU ops per active lane, global/local memory traffic and — from
the *actual byte addresses* each warp touches — the number of coalesced
memory transactions.  This is what makes the simulated GPU reward
contiguous accesses and punish scattered ones, reproducing the first-order
performance effects the paper's evaluation relies on.
"""

from __future__ import annotations

import numpy as np

from ... import prof, trace
from ...clc import ir as I
from ...clc.builtins import BUILTINS
from ...clc.lower import (L_A, L_AUX, L_B, L_C, L_DST,
                          L_ISDBL, L_ISFLOAT, L_LINE, L_NP, L_UNI,
                          L_VCOST, OP_ADD, OP_ATOMIC, OP_BARRIER,
                          OP_BNOT, OP_BREAK, OP_BUILTIN, OP_BXOR,
                          OP_CALL, OP_CAST, OP_CASTF, OP_CEQ, OP_CONST,
                          OP_CONTINUE, OP_DECLARR, OP_IF,
                          OP_LD, OP_LNOT, OP_LOOP, OP_LOR, OP_MOV,
                          OP_NEG, OP_RET, OP_SELECT,
                          OP_ST, OP_WIQ, SPACE_GLOBAL, SPACE_LOCAL)
from ...clc.types import DOUBLE, SCALAR_TYPES, PointerType, ScalarType
from ...errors import InvalidKernelArgs, KernelLaunchError, OutOfResources
from ..costmodel import (CostCounters, count_index_transactions,
                         count_transactions)
from .base import (ATOMIC_UFUNCS, GLOBAL_ID_KEYS, GROUP_ID_KEYS,
                   LOCAL_ID_KEYS, MAX_LOOP_ITERATIONS, BufferBinding,
                   LocalBinding, Mem as _Mem, NDRange, ScalarBinding,
                   check_args, linked_entry, register_engine, wiq_value)
from .carith import (binary_value, c_div, c_imod, c_shl, c_shr,
                     compare_value, to_dtype, truth)

#: weighted cost (in fp32-add units) of the arithmetic operators
_OP_COST = {"+": 1.0, "-": 1.0, "*": 1.0,
            "/": 8.0, "%": 16.0,
            "<<": 1.0, ">>": 1.0, "&": 1.0, "|": 1.0, "^": 1.0,
            "==": 1.0, "!=": 1.0, "<": 1.0, ">": 1.0, "<=": 1.0,
            ">=": 1.0, "&&": 1.0, "||": 1.0}

_MAX_LOOP_ITERATIONS = MAX_LOOP_ITERATIONS


def _as_key(size):
    """Hashable form of an NDRange size argument (int, sequence or None)."""
    if size is None or isinstance(size, int):
        return size
    return tuple(size)


class _Frame:
    """One function activation: environment + return bookkeeping."""

    def __init__(self, n: int, ret_dtype=None) -> None:
        self.env: dict[str, object] = {}
        self.return_mask = np.zeros(n, dtype=bool)
        self.ret_value = (np.zeros(n, dtype=ret_dtype)
                          if ret_dtype is not None else None)


class _Loop:
    def __init__(self, n: int) -> None:
        self.break_mask = np.zeros(n, dtype=bool)
        self.continue_mask = np.zeros(n, dtype=bool)


class _BFrame:
    """One bytecode function activation: register/memory files."""

    __slots__ = ("regs", "mems", "return_mask", "ret_value", "ret_np")

    def __init__(self, n_regs: int, n_mems: int, ret_np=None) -> None:
        self.regs: list = [None] * n_regs
        self.mems: list = [None] * n_mems
        self.return_mask = None    # lazily-created bool mask
        self.ret_value = None
        self.ret_np = ret_np


@register_engine
class VectorEngine:
    """Execute one kernel launch over a whole NDRange in lock step."""

    name = "vector"
    capabilities = frozenset({"tree", "bytecode", "simt"})
    codegen_version = 0

    def __init__(self, program, spec) -> None:
        self.program = program
        self.spec = spec
        #: per-launch profiler collector; None whenever profiling is off
        self._col = None

    # -- public ------------------------------------------------------------------

    def run(self, kernel_name: str, args: list, global_size,
            local_size=None) -> CostCounters:
        kernel = self.program.functions.get(kernel_name)
        if kernel is None or not kernel.is_kernel:
            raise InvalidKernelArgs(f"no kernel named {kernel_name!r}")
        check_args(kernel, args, self.spec)

        nd_key = (_as_key(global_size), _as_key(local_size))
        nd = self._nd_cache.get(nd_key) if hasattr(self, "_nd_cache") \
            else None
        if nd is None:
            nd = NDRange(global_size, local_size,
                         max_work_group_size=self.spec.max_work_group_size,
                         max_work_item_sizes=self.spec.max_work_item_sizes)
            if not hasattr(self, "_nd_cache"):
                self._nd_cache = {}
            self._nd_cache[nd_key] = nd
        self.nd = nd
        self.n = nd.total_items
        ids = nd.lane_ids()
        self.ids = ids
        self.group_flat = ids["group_flat"]
        self.lane = ids["lane"]
        # derived per-warp ids, memoized next to the lane ids they come
        # from (the dict is shared across launches of this shape)
        wkey = f"_warp{self.spec.warp_size}"
        warp = ids.get(wkey)
        if warp is None:
            warp = self.lane // max(1, self.spec.warp_size)
            ids[wkey] = warp
        self.warp_ids = warp

        self.counters = CostCounters(work_items=self.n,
                                     work_groups=nd.total_groups)
        self.frames: list[_Frame] = []
        self.loops: list[_Loop] = []
        self._local_bytes = 0

        entry = self._bytecode_entry(kernel_name)
        self._col = prof.begin_launch(kernel_name, self.name, self.spec,
                                      getattr(self.program, "source", ""),
                                      self.n, nd.total_groups)
        try:
            with trace.span("engine_run", category="simcl",
                            engine=self.name, kernel=kernel_name,
                            work_items=self.n,
                            bytecode=entry is not None):
                with np.errstate(all="ignore"):
                    if entry is not None:
                        self._run_bytecode(entry, kernel, args)
                    else:
                        frame = _Frame(self.n)
                        self._bind_args(frame, kernel, args)
                        self.frames.append(frame)
                        mask = np.ones(self.n, dtype=bool)
                        self._run_block(kernel.body, mask)
                        self.frames.pop()
                prof.finish_launch(self._col, self.counters)
        finally:
            self._col = None
        return self.counters

    def _bytecode_entry(self, kernel_name: str):
        """(linked code, KernelBytecode) when the program ships bytecode
        this engine understands (O1+), else None (tree fallback)."""
        self._linked, entry = linked_entry(self.program, kernel_name)
        return entry

    # -- argument binding ----------------------------------------------------------

    def _bind_args(self, frame: _Frame, kernel, args) -> None:
        for param, arg in zip(kernel.params, args):
            if isinstance(arg, ScalarBinding):
                dtype = param.type.np_dtype
                frame.env[param.name] = dtype.type(arg.value)
            elif isinstance(arg, BufferBinding):
                space = param.type.address_space
                frame.env[param.name] = _Mem(arg.array, "buffer", space,
                                             param.name)
            elif isinstance(arg, LocalBinding):
                elem = param.type.pointee
                nelems = arg.nbytes // elem.size
                self._account_local(arg.nbytes)
                storage = np.zeros((self.nd.total_groups, nelems),
                                   dtype=elem.np_dtype)
                frame.env[param.name] = _Mem(storage, "local", "local",
                                             param.name)
            else:  # pragma: no cover - check_args filters this
                raise InvalidKernelArgs(f"bad binding for {param.name!r}")

    def _account_local(self, nbytes: int) -> None:
        self._local_bytes += nbytes
        if self._local_bytes > self.spec.local_mem_bytes:
            raise OutOfResources(
                f"work-group needs {self._local_bytes} B of local memory; "
                f"{self.spec.name} provides {self.spec.local_mem_bytes} B")

    # -- statement execution -----------------------------------------------------------

    def _run_block(self, stmts: list, mask: np.ndarray) -> np.ndarray:
        for stmt in stmts:
            if not mask.any():
                return mask
            mask = self._run_stmt(stmt, mask)
        return mask

    def _run_stmt(self, stmt, mask: np.ndarray) -> np.ndarray:
        frame = self.frames[-1]
        if isinstance(stmt, I.DeclVar):
            dtype = stmt.type.np_dtype
            if stmt.name not in frame.env:
                frame.env[stmt.name] = np.zeros(self.n, dtype=dtype)
            if stmt.init is not None:
                value = self._eval(stmt.init, mask)
                self._store_scalar(frame.env[stmt.name], value, mask)
            return mask
        if isinstance(stmt, I.DeclArray):
            if stmt.name not in frame.env:
                if stmt.space == "local":
                    nbytes = stmt.size * stmt.element.size
                    self._account_local(nbytes)
                    storage = np.zeros((self.nd.total_groups, stmt.size),
                                       dtype=stmt.element.np_dtype)
                    frame.env[stmt.name] = _Mem(storage, "local", "local",
                                                stmt.name)
                else:
                    storage = np.zeros((self.n, stmt.size),
                                       dtype=stmt.element.np_dtype)
                    frame.env[stmt.name] = _Mem(storage, "private",
                                                "private", stmt.name)
            return mask
        if isinstance(stmt, I.Store):
            self._exec_store(stmt, mask)
            return mask
        if isinstance(stmt, I.AtomicRMW):
            self._exec_atomic(stmt, mask)
            return mask
        if isinstance(stmt, I.EvalExpr):
            self._eval(stmt.expr, mask)
            return mask
        if isinstance(stmt, I.If):
            cond = truth(self._broadcast(self._eval(stmt.cond, mask)))
            then_mask = mask & cond
            else_mask = mask & ~cond
            col = self._col
            if col is not None:
                col.branch(stmt.line, int(np.count_nonzero(mask)),
                           int(np.count_nonzero(then_mask)))
            out_then = (self._run_block(stmt.then, then_mask)
                        if then_mask.any() else then_mask)
            out_else = (self._run_block(stmt.otherwise, else_mask)
                        if else_mask.any() else else_mask)
            return out_then | out_else
        if isinstance(stmt, I.While):
            return self._exec_while(stmt, mask)
        if isinstance(stmt, I.Break):
            self.loops[-1].break_mask |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, I.Continue):
            self.loops[-1].continue_mask |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, I.Return):
            if stmt.value is not None and frame.ret_value is not None:
                value = self._broadcast(self._eval(stmt.value, mask))
                frame.ret_value[mask] = to_dtype(
                    value, frame.ret_value.dtype)[mask]
            frame.return_mask |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, I.BarrierStmt):
            active_groups = int(np.unique(self.group_flat[mask]).size)
            self.counters.barriers += active_groups
            col = self._col
            if col is not None:
                col.barrier(stmt.line, active_groups)
            return mask
        raise KernelLaunchError(
            f"vector engine cannot execute {type(stmt).__name__}")

    def _exec_while(self, stmt: I.While, mask: np.ndarray) -> np.ndarray:
        active = mask.copy()
        first = stmt.is_do_while
        iterations = 0
        while True:
            if not first:
                if not active.any():
                    break
                cond = truth(self._broadcast(self._eval(stmt.cond, active)))
                active = active & cond
            first = False
            if not active.any():
                break
            loop = _Loop(self.n)
            self.loops.append(loop)
            after = self._run_block(stmt.body, active)
            self.loops.pop()
            after = after | loop.continue_mask
            if stmt.update and after.any():
                for u in stmt.update:
                    self._run_stmt(u, after)
            active = after
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise KernelLaunchError(
                    f"loop at line {stmt.line} exceeded "
                    f"{_MAX_LOOP_ITERATIONS} iterations (infinite loop?)")
        frame = self.frames[-1]
        return mask & ~frame.return_mask

    # -- stores --------------------------------------------------------------------------

    def _store_scalar(self, storage: np.ndarray, value,
                      mask: np.ndarray) -> None:
        value = self._broadcast(value)
        storage[mask] = to_dtype(value, storage.dtype)[mask]

    def _exec_store(self, stmt: I.Store, mask: np.ndarray) -> None:
        frame = self.frames[-1]
        target = stmt.target
        value = self._eval(stmt.value, mask)
        if target.index is None:
            storage = frame.env[target.name]
            if not isinstance(storage, np.ndarray):
                # scalar parameter materialised lazily upon first write
                storage = np.full(self.n, storage)
                frame.env[target.name] = storage
            self._store_scalar(storage, value, mask)
            return
        mem: _Mem = frame.env[target.name]
        idx = self._broadcast(self._eval(target.index, mask)).astype(
            np.int64, copy=False)
        self._check_bounds(idx, mem, mask, stmt.line)
        safe = np.clip(idx, 0, mem.size - 1)
        valm = to_dtype(self._broadcast(value), mem.array.dtype)
        active = int(np.count_nonzero(mask))
        col = self._col
        if mem.kind == "buffer":
            mem.array[safe[mask]] = valm[mask]
            itemsize = mem.array.dtype.itemsize
            tx = count_transactions(
                safe[mask] * itemsize, self.warp_ids[mask],
                self.spec.segment_bytes)
            self.counters.global_stores += active
            self.counters.global_store_bytes += active * itemsize
            self.counters.global_store_transactions += tx
            if col is not None:
                col.mem(stmt.line, active, active * itemsize, tx, True,
                        self.n)
        elif mem.kind == "local":
            mem.array[self.group_flat[mask], safe[mask]] = valm[mask]
            self.counters.local_accesses += active
            if col is not None:
                col.local(stmt.line, active, self.n)
        else:  # private array
            mem.array[self.lane[mask], safe[mask]] = valm[mask]
            self.counters.alu_ops += active  # address arithmetic
            if col is not None:
                col.op(stmt.line, active, 1.0, False, self.n)

    def _exec_atomic(self, stmt: I.AtomicRMW, mask: np.ndarray) -> None:
        frame = self.frames[-1]
        target = stmt.target
        mem: _Mem = frame.env[target.name]
        idx = self._broadcast(self._eval(target.index, mask)).astype(
            np.int64, copy=False)
        self._check_bounds(idx, mem, mask, stmt.line)
        safe = np.clip(idx, 0, mem.size - 1)
        if stmt.value is not None:
            val = to_dtype(self._broadcast(self._eval(stmt.value, mask)),
                           mem.array.dtype)[mask]
        else:
            val = np.ones(int(np.count_nonzero(mask)),
                          dtype=mem.array.dtype)
        op = stmt.op
        if op == "dec":
            op, val = "sub", val
        col = self._col
        if mem.kind == "local":
            index = (self.group_flat[mask], safe[mask])
            self.counters.local_accesses += 2 * len(val)
            if col is not None:
                col.local(stmt.line, 2 * len(val), self.n)
        else:
            index = safe[mask]
            itemsize = mem.array.dtype.itemsize
            n = len(val)
            self.counters.global_loads += n
            self.counters.global_stores += n
            self.counters.global_load_bytes += n * itemsize
            self.counters.global_store_bytes += n * itemsize
            tx = count_transactions(safe[mask] * itemsize,
                                    self.warp_ids[mask],
                                    self.spec.segment_bytes)
            self.counters.global_load_transactions += tx
            self.counters.global_store_transactions += tx
            if col is not None:
                col.mem(stmt.line, n, n * itemsize, tx, False, self.n)
                col.mem(stmt.line, n, n * itemsize, tx, True, self.n)
        ufunc = ATOMIC_UFUNCS.get(op)
        if ufunc is None:  # pragma: no cover
            raise KernelLaunchError(f"unknown atomic op {op!r}")
        ufunc.at(mem.array, index, val)

    def _check_bounds(self, idx: np.ndarray, mem: _Mem,
                      mask: np.ndarray, line: int) -> None:
        bad = mask & ((idx < 0) | (idx >= mem.size))
        if bad.any():
            lane = int(np.argmax(bad))
            raise KernelLaunchError(
                f"work-item {lane} accessed {mem.name}[{int(idx[lane])}] "
                f"out of bounds (size {mem.size}) at line {line}")

    # -- expression evaluation ----------------------------------------------------------------

    def _broadcast(self, value):
        arr = np.asarray(value)
        if arr.ndim == 0:
            return np.broadcast_to(arr, (self.n,))
        return arr

    def _count_alu(self, cost: float, mask: np.ndarray, type_,
                   line: int = 0) -> None:
        active = int(np.count_nonzero(mask))
        is_double = isinstance(type_, ScalarType) and type_ is DOUBLE
        if is_double:
            self.counters.fp64_ops += cost * active
        else:
            self.counters.alu_ops += cost * active
        col = self._col
        if col is not None:
            col.op(line, active, cost, is_double, self.n)

    def _eval(self, expr: I.Expr, mask: np.ndarray):
        frame = self.frames[-1]
        if isinstance(expr, I.Const):
            return expr.type.np_dtype.type(expr.value)
        if isinstance(expr, I.Var):
            value = frame.env[expr.name]
            if isinstance(value, _Mem):
                return value  # bare array name (only legal as call arg)
            return value
        if isinstance(expr, I.Load):
            return self._eval_load(expr, mask)
        if isinstance(expr, I.Convert):
            value = self._eval(expr.operand, mask)
            self._count_alu(1.0, mask, expr.type, expr.line)
            return to_dtype(value, expr.type.np_dtype)
        if isinstance(expr, I.Unary):
            return self._eval_unary(expr, mask)
        if isinstance(expr, I.Binary):
            return self._eval_binary(expr, mask)
        if isinstance(expr, I.Select):
            cond = truth(self._broadcast(self._eval(expr.cond, mask)))
            a = self._broadcast(self._eval(expr.then, mask))
            b = self._broadcast(self._eval(expr.otherwise, mask))
            self._count_alu(1.0, mask, expr.type, expr.line)
            return np.where(cond, a, b).astype(expr.type.np_dtype,
                                               copy=False)
        if isinstance(expr, I.CallBuiltin):
            return self._eval_builtin(expr, mask)
        if isinstance(expr, I.CallFunction):
            return self._eval_call(expr, mask)
        raise KernelLaunchError(
            f"vector engine cannot evaluate {type(expr).__name__}")

    def _eval_load(self, expr: I.Load, mask: np.ndarray):
        frame = self.frames[-1]
        mem: _Mem = frame.env[expr.base]
        idx = self._broadcast(self._eval(expr.index, mask)).astype(
            np.int64, copy=False)
        self._check_bounds(idx, mem, mask, expr.line)
        safe = np.clip(idx, 0, mem.size - 1)
        active = int(np.count_nonzero(mask))
        col = self._col
        if mem.kind == "buffer":
            itemsize = mem.array.dtype.itemsize
            tx = count_transactions(
                safe[mask] * itemsize, self.warp_ids[mask],
                self.spec.segment_bytes)
            self.counters.global_loads += active
            self.counters.global_load_bytes += active * itemsize
            self.counters.global_load_transactions += tx
            if col is not None:
                col.mem(expr.line, active, active * itemsize, tx, False,
                        self.n)
            return mem.array[safe]
        if mem.kind == "local":
            self.counters.local_accesses += active
            if col is not None:
                col.local(expr.line, active, self.n)
            return mem.array[self.group_flat, safe]
        self.counters.alu_ops += active
        if col is not None:
            col.op(expr.line, active, 1.0, False, self.n)
        return mem.array[self.lane, safe]

    def _eval_unary(self, expr: I.Unary, mask: np.ndarray):
        operand = self._eval(expr.operand, mask)
        self._count_alu(1.0, mask, expr.type, expr.line)
        if expr.op == "-":
            return (-operand).astype(expr.type.np_dtype, copy=False)
        if expr.op == "~":
            return (~operand).astype(expr.type.np_dtype, copy=False)
        if expr.op == "!":
            return np.logical_not(truth(operand)).astype(np.int32)
        raise KernelLaunchError(f"unknown unary {expr.op!r}")

    def _eval_binary(self, expr: I.Binary, mask: np.ndarray):
        lhs = self._eval(expr.lhs, mask)
        rhs = self._eval(expr.rhs, mask)
        op = expr.op
        self._count_alu(_OP_COST.get(op, 1.0), mask, expr.type, expr.line)
        dtype = expr.type.np_dtype if isinstance(expr.type,
                                                 ScalarType) else None
        if op == "+":
            result = lhs + rhs
        elif op == "-":
            result = lhs - rhs
        elif op == "*":
            result = lhs * rhs
        elif op == "/":
            result = c_div(lhs, rhs, expr.type.is_float)
        elif op == "%":
            result = c_imod(lhs, rhs)
        elif op == "<<":
            result = c_shl(lhs, rhs)
        elif op == ">>":
            result = c_shr(lhs, rhs)
        elif op == "&":
            result = lhs & rhs
        elif op == "|":
            result = lhs | rhs
        elif op == "^":
            result = lhs ^ rhs
        elif op == "==":
            return (lhs == rhs).astype(np.int32)
        elif op == "!=":
            return (lhs != rhs).astype(np.int32)
        elif op == "<":
            return (lhs < rhs).astype(np.int32)
        elif op == ">":
            return (lhs > rhs).astype(np.int32)
        elif op == "<=":
            return (lhs <= rhs).astype(np.int32)
        elif op == ">=":
            return (lhs >= rhs).astype(np.int32)
        elif op == "&&":
            return (truth(lhs) & truth(rhs)).astype(np.int32)
        elif op == "||":
            return (truth(lhs) | truth(rhs)).astype(np.int32)
        else:
            raise KernelLaunchError(f"unknown binary {op!r}")
        if dtype is not None:
            result = to_dtype(result, dtype)
        return result

    def _eval_builtin(self, expr: I.CallBuiltin, mask: np.ndarray):
        name = expr.name
        if name.startswith("get_"):
            return self._workitem_query(name, expr.args)
        b = BUILTINS[name]
        args = [self._eval(a, mask) for a in expr.args]
        self._count_alu(b.cost, mask, expr.type, expr.line)
        result = b.impl(*args)
        return to_dtype(result, expr.type.np_dtype)

    def _workitem_query(self, name: str, args: list):
        dim = int(args[0].value) if args else 0
        if name == "get_work_dim":
            return np.int32(self.nd.dim)
        if name == "get_global_offset":
            return np.int64(0)
        if name == "get_global_id":
            return self.ids[GLOBAL_ID_KEYS[dim]]
        if name == "get_local_id":
            return self.ids[LOCAL_ID_KEYS[dim]]
        if name == "get_group_id":
            return self.ids[GROUP_ID_KEYS[dim]]
        return np.int64(self.nd.size_of(name, dim))

    def _eval_call(self, expr: I.CallFunction, mask: np.ndarray):
        func = self.program.functions[expr.name]
        ret_dtype = (None if func.return_type.is_void
                     else func.return_type.np_dtype)
        frame = _Frame(self.n, ret_dtype)
        caller = self.frames[-1]
        for param, arg in zip(func.params, expr.args):
            if isinstance(param.type, PointerType):
                # sema guarantees this is a Var naming a memory object
                frame.env[param.name] = caller.env[arg.name]
            else:
                value = self._broadcast(self._eval(arg, mask))
                frame.env[param.name] = to_dtype(
                    value, param.type.np_dtype).copy()
        self.frames.append(frame)
        self._run_block(func.body, mask.copy())
        self.frames.pop()
        if ret_dtype is None:
            return np.int32(0)
        return frame.ret_value

    # -- bytecode interpreter (O1+) ------------------------------------------
    #
    # Same lane semantics and counters as the tree walker above, driven by
    # the flat bytecode from repro.clc.lower.  Two structural wins over the
    # tree: no isinstance dispatch per node, and instructions whose
    # uniformity analysis proved them LAUNCH-uniform execute once as numpy
    # scalars instead of length-n lane arrays (masked blends are skipped
    # for their variable writes).  Cost counters still charge every
    # logically-active lane, so the cost model is unchanged by how the
    # host happens to evaluate an instruction.

    def _bc_frame(self, kbc, args) -> _BFrame:
        """Bind launch arguments into a fresh bytecode activation frame
        (shared with the JIT engine, which compiles the body but keeps
        the interpreter's binding semantics)."""
        frame = _BFrame(kbc.n_regs, kbc.n_mems)
        for p, arg in zip(kbc.params, args):
            if p[0] == "scalar":
                dtype = SCALAR_TYPES[p[2]].np_dtype
                frame.regs[p[3]] = dtype.type(arg.value)
            elif isinstance(arg, BufferBinding):
                frame.mems[p[3]] = _Mem(arg.array, "buffer", p[4], p[1])
            else:   # LocalBinding
                elem = SCALAR_TYPES[p[2]]
                nelems = arg.nbytes // elem.size
                self._account_local(arg.nbytes)
                storage = np.zeros((self.nd.total_groups, nelems),
                                   dtype=elem.np_dtype)
                frame.mems[p[3]] = _Mem(storage, "local", "local", p[1])
        return frame

    def _run_bytecode(self, entry, kernel, args) -> None:
        code, kbc = entry
        frame = self._bc_frame(kbc, args)
        self._bloops: list = []
        self._dead = np.zeros(self.n, dtype=bool)
        mask = np.ones(self.n, dtype=bool)
        self._bx_span(code, 0, len(code), frame, mask, True)

    def _bx_span(self, code, pos, end, frame, mask, full):
        """Execute ``code[pos:end]`` under ``mask``; returns the
        (possibly narrowed) ``(mask, full)`` the caller continues with.
        Masks are never mutated in place — every narrowing makes a new
        array — so returned masks are safe to alias."""
        counters = self.counters
        regs = frame.regs
        mems = frame.mems
        col = self._col
        n = self.n
        n_act = n if full else int(np.count_nonzero(mask))
        while pos < end:
            ins = code[pos]
            op = ins[0]
            if OP_ADD <= op <= OP_BXOR:
                result = binary_value(op, regs[ins[L_A]], regs[ins[L_B]],
                                      ins[L_ISFLOAT])
                regs[ins[L_DST]] = to_dtype(result, ins[L_NP])
                if ins[L_ISDBL]:
                    counters.fp64_ops += ins[L_VCOST] * n_act
                else:
                    counters.alu_ops += ins[L_VCOST] * n_act
                if col is not None:
                    col.op(ins[L_LINE], n_act, ins[L_VCOST],
                           ins[L_ISDBL], n)
            elif OP_CEQ <= op <= OP_LOR:
                r = compare_value(op, regs[ins[L_A]], regs[ins[L_B]])
                regs[ins[L_DST]] = np.asarray(r).astype(np.int32)
                counters.alu_ops += n_act
                if col is not None:
                    col.op(ins[L_LINE], n_act, 1.0, False, n)
            elif op == OP_MOV:
                value = regs[ins[L_A]]
                if full or ins[L_UNI] == 2:
                    regs[ins[L_DST]] = value
                else:
                    old = regs[ins[L_DST]]
                    if old is None:
                        old = ins[L_NP].type(0)
                    regs[ins[L_DST]] = np.where(mask, value, old).astype(
                        ins[L_NP], copy=False)
            elif op == OP_LD:
                slot, space = ins[L_AUX]
                mem: _Mem = mems[slot]
                idx = self._broadcast(regs[ins[L_B]]).astype(np.int64,
                                                             copy=False)
                self._check_bounds(idx, mem, mask, ins[L_LINE])
                safe = np.clip(idx, 0, mem.size - 1)
                if space == SPACE_GLOBAL:
                    itemsize = mem.array.dtype.itemsize
                    tx = count_index_transactions(
                        safe if full else safe[mask],
                        self.warp_ids if full else self.warp_ids[mask],
                        self.spec.segment_bytes, itemsize,
                        self.spec.warp_size if full else 0)
                    counters.global_loads += n_act
                    counters.global_load_bytes += n_act * itemsize
                    counters.global_load_transactions += tx
                    if col is not None:
                        col.mem(ins[L_LINE], n_act, n_act * itemsize,
                                tx, False, n)
                    regs[ins[L_DST]] = mem.array[safe]
                elif space == SPACE_LOCAL:
                    counters.local_accesses += n_act
                    if col is not None:
                        col.local(ins[L_LINE], n_act, n)
                    regs[ins[L_DST]] = mem.array[self.group_flat, safe]
                else:
                    counters.alu_ops += n_act
                    if col is not None:
                        col.op(ins[L_LINE], n_act, 1.0, False, n)
                    regs[ins[L_DST]] = mem.array[self.lane, safe]
            elif op == OP_ST:
                slot, space = ins[L_AUX]
                mem = mems[slot]
                idx = self._broadcast(regs[ins[L_B]]).astype(np.int64,
                                                             copy=False)
                self._check_bounds(idx, mem, mask, ins[L_LINE])
                safe = np.clip(idx, 0, mem.size - 1)
                valm = to_dtype(self._broadcast(regs[ins[L_C]]),
                                mem.array.dtype)
                safe_m = safe if full else safe[mask]
                valm_m = valm if full else valm[mask]
                if space == SPACE_GLOBAL:
                    mem.array[safe_m] = valm_m
                    itemsize = mem.array.dtype.itemsize
                    tx = count_index_transactions(
                        safe_m,
                        self.warp_ids if full else self.warp_ids[mask],
                        self.spec.segment_bytes, itemsize,
                        self.spec.warp_size if full else 0)
                    counters.global_stores += n_act
                    counters.global_store_bytes += n_act * itemsize
                    counters.global_store_transactions += tx
                    if col is not None:
                        col.mem(ins[L_LINE], n_act, n_act * itemsize,
                                tx, True, n)
                elif space == SPACE_LOCAL:
                    gf = self.group_flat if full else self.group_flat[mask]
                    mem.array[gf, safe_m] = valm_m
                    counters.local_accesses += n_act
                    if col is not None:
                        col.local(ins[L_LINE], n_act, n)
                else:
                    ln = self.lane if full else self.lane[mask]
                    mem.array[ln, safe_m] = valm_m
                    counters.alu_ops += n_act
                    if col is not None:
                        col.op(ins[L_LINE], n_act, 1.0, False, n)
            elif op == OP_CASTF or op == OP_CAST:
                regs[ins[L_DST]] = to_dtype(regs[ins[L_A]], ins[L_NP])
                if op == OP_CAST:
                    if ins[L_ISDBL]:
                        counters.fp64_ops += n_act
                    else:
                        counters.alu_ops += n_act
                    if col is not None:
                        col.op(ins[L_LINE], n_act, 1.0, ins[L_ISDBL], n)
            elif op == OP_CONST:
                regs[ins[L_DST]] = ins[L_AUX]
            elif op == OP_SELECT:
                cond = truth(regs[ins[L_A]])
                if ins[L_ISDBL]:
                    counters.fp64_ops += n_act
                else:
                    counters.alu_ops += n_act
                if col is not None:
                    col.op(ins[L_LINE], n_act, 1.0, ins[L_ISDBL], n)
                regs[ins[L_DST]] = np.where(
                    cond, regs[ins[L_B]], regs[ins[L_C]]).astype(
                        ins[L_NP], copy=False)
            elif op == OP_NEG:
                regs[ins[L_DST]] = (-regs[ins[L_A]]).astype(ins[L_NP],
                                                            copy=False)
                if ins[L_ISDBL]:
                    counters.fp64_ops += n_act
                else:
                    counters.alu_ops += n_act
                if col is not None:
                    col.op(ins[L_LINE], n_act, 1.0, ins[L_ISDBL], n)
            elif op == OP_BNOT:
                regs[ins[L_DST]] = (~regs[ins[L_A]]).astype(ins[L_NP],
                                                            copy=False)
                counters.alu_ops += n_act
                if col is not None:
                    col.op(ins[L_LINE], n_act, 1.0, False, n)
            elif op == OP_LNOT:
                regs[ins[L_DST]] = np.logical_not(
                    truth(regs[ins[L_A]])).astype(np.int32)
                counters.alu_ops += n_act
                if col is not None:
                    col.op(ins[L_LINE], n_act, 1.0, False, n)
            elif op == OP_WIQ:
                qcode, dim, name = ins[L_AUX]
                value = wiq_value(qcode, dim, name, self.ids, self.nd)
                regs[ins[L_DST]] = to_dtype(value, ins[L_NP])
            elif op == OP_BUILTIN:
                impl, arg_regs, _name = ins[L_AUX]
                bargs = [regs[r] for r in arg_regs]
                if ins[L_ISDBL]:
                    counters.fp64_ops += ins[L_VCOST] * n_act
                else:
                    counters.alu_ops += ins[L_VCOST] * n_act
                if col is not None:
                    col.op(ins[L_LINE], n_act, ins[L_VCOST],
                           ins[L_ISDBL], n)
                regs[ins[L_DST]] = to_dtype(impl(*bargs), ins[L_NP])
            elif op == OP_IF:
                tlen, elen = ins[L_AUX]
                body = pos + 1
                cond = regs[ins[L_A]]
                if np.ndim(cond) == 0:
                    # uniform branch: no mask ops, single taken side
                    if cond != 0:
                        mask, full = self._bx_span(code, body,
                                                   body + tlen,
                                                   frame, mask, full)
                    elif elen:
                        mask, full = self._bx_span(code, body + tlen,
                                                   body + tlen + elen,
                                                   frame, mask, full)
                else:
                    condb = truth(cond)
                    tmask = mask & condb
                    emask = mask & ~condb
                    if col is not None:
                        col.branch(ins[L_LINE], n_act,
                                   int(np.count_nonzero(tmask)))
                    if tmask.any():
                        out_t, _ = self._bx_span(code, body, body + tlen,
                                                 frame, tmask, False)
                    else:
                        out_t = tmask
                    if elen and emask.any():
                        out_e, _ = self._bx_span(code, body + tlen,
                                                 body + tlen + elen,
                                                 frame, emask, False)
                    else:
                        out_e = emask
                    mask = out_t | out_e
                    full = bool(mask.all())
                if not full and not mask.any():
                    return mask, full
                n_act = n if full else int(np.count_nonzero(mask))
                pos = body + tlen + elen
                continue
            elif op == OP_LOOP:
                clen, blen, ulen, is_do = ins[L_AUX]
                cond_start = pos + 1
                body_start = cond_start + clen
                upd_start = body_start + blen
                end_pos = upd_start + ulen
                creg = ins[L_A]
                active, afull = mask, full
                first = is_do
                iterations = 0
                while True:
                    if not first:
                        if not (afull or active.any()):
                            break
                        active, afull = self._bx_span(
                            code, cond_start, body_start, frame, active,
                            afull)
                        cond = regs[creg]
                        if np.ndim(cond) == 0:
                            if cond == 0:
                                break
                        else:
                            condb = truth(cond)
                            if not (afull and bool(condb.all())):
                                active = active & condb
                                afull = False
                    first = False
                    if not (afull or active.any()):
                        break
                    self._bloops.append(None)
                    after, _ = self._bx_span(code, body_start, upd_start,
                                             frame, active, afull)
                    cm = self._bloops.pop()
                    if cm is not None:
                        after = after | cm
                    afull = bool(after.all())
                    if ulen and (afull or after.any()):
                        self._bx_span(code, upd_start, end_pos, frame,
                                      after, afull)
                    active = after
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERATIONS:
                        raise KernelLaunchError(
                            f"loop at line {ins[L_LINE]} exceeded "
                            f"{_MAX_LOOP_ITERATIONS} iterations "
                            f"(infinite loop?)")
                if frame.return_mask is not None:
                    mask = mask & ~frame.return_mask
                    full = bool(mask.all())
                    if not full and not mask.any():
                        return mask, full
                    n_act = n if full else int(np.count_nonzero(mask))
                pos = end_pos
                continue
            elif op == OP_BARRIER:
                if full:
                    active_groups = self.nd.total_groups
                else:
                    active_groups = int(
                        np.unique(self.group_flat[mask]).size)
                counters.barriers += active_groups
                if col is not None:
                    col.barrier(ins[L_LINE], active_groups)
            elif op == OP_ATOMIC:
                self._bx_atomic(ins, regs, mems, mask, full, n_act)
            elif op == OP_DECLARR:
                slot, size, np_dtype, space, name, nbytes = ins[L_AUX]
                if mems[slot] is None:
                    if space == SPACE_LOCAL:
                        self._account_local(nbytes)
                        storage = np.zeros((self.nd.total_groups, size),
                                           dtype=np_dtype)
                        mems[slot] = _Mem(storage, "local", "local", name)
                    else:
                        storage = np.zeros((n, size), dtype=np_dtype)
                        mems[slot] = _Mem(storage, "private", "private",
                                          name)
            elif op == OP_CALL:
                fname, binds, ret_np = ins[L_AUX]
                ccode, ckbc = self._linked[fname]
                cframe = _BFrame(ckbc.n_regs, ckbc.n_mems, ret_np)
                for bind in binds:
                    if bind[0] == "mem":
                        cframe.mems[bind[2]] = mems[bind[1]]
                    else:
                        cframe.regs[bind[2]] = to_dtype(regs[bind[1]],
                                                        bind[3])
                self._bx_span(ccode, 0, len(ccode), cframe, mask, full)
                if ret_np is None:
                    regs[ins[L_DST]] = np.int32(0)
                elif cframe.ret_value is not None:
                    regs[ins[L_DST]] = cframe.ret_value
                else:
                    regs[ins[L_DST]] = ret_np.type(0)
            elif op == OP_BREAK:
                return self._dead, False
            elif op == OP_CONTINUE:
                cm = self._bloops[-1]
                self._bloops[-1] = mask if cm is None else (cm | mask)
                return self._dead, False
            elif op == OP_RET:
                if ins[L_A] >= 0 and frame.ret_np is not None:
                    value = to_dtype(regs[ins[L_A]], frame.ret_np)
                    prev = frame.ret_value
                    if prev is None:
                        prev = np.zeros(n, dtype=frame.ret_np)
                    frame.ret_value = np.where(mask, value, prev).astype(
                        frame.ret_np, copy=False)
                if frame.return_mask is None:
                    frame.return_mask = mask
                else:
                    frame.return_mask = frame.return_mask | mask
                return self._dead, False
            else:  # pragma: no cover
                raise KernelLaunchError(f"bad opcode {op}")
            pos += 1
        return mask, full

    def _bx_atomic(self, ins, regs, mems, mask, full, n_act) -> None:
        opstr, slot, space = ins[L_AUX]
        mem: _Mem = mems[slot]
        idx = self._broadcast(regs[ins[L_B]]).astype(np.int64, copy=False)
        self._check_bounds(idx, mem, mask, ins[L_LINE])
        safe = np.clip(idx, 0, mem.size - 1)
        safe_m = safe if full else safe[mask]
        if ins[L_C] >= 0:
            valm = to_dtype(self._broadcast(regs[ins[L_C]]),
                            mem.array.dtype)
            val = valm if full else valm[mask]
        else:
            val = np.ones(n_act, dtype=mem.array.dtype)
        op = opstr
        if op == "dec":
            op = "sub"
        counters = self.counters
        col = self._col
        if space == SPACE_LOCAL:
            gf = self.group_flat if full else self.group_flat[mask]
            index = (gf, safe_m)
            counters.local_accesses += 2 * n_act
            if col is not None:
                col.local(ins[L_LINE], 2 * n_act, self.n)
        else:
            index = safe_m
            itemsize = mem.array.dtype.itemsize
            counters.global_loads += n_act
            counters.global_stores += n_act
            counters.global_load_bytes += n_act * itemsize
            counters.global_store_bytes += n_act * itemsize
            tx = count_index_transactions(
                safe_m,
                self.warp_ids if full else self.warp_ids[mask],
                self.spec.segment_bytes, itemsize,
                self.spec.warp_size if full else 0)
            counters.global_load_transactions += tx
            counters.global_store_transactions += tx
            if col is not None:
                col.mem(ins[L_LINE], n_act, n_act * itemsize, tx, False,
                        self.n)
                col.mem(ins[L_LINE], n_act, n_act * itemsize, tx, True,
                        self.n)
        ufunc = ATOMIC_UFUNCS.get(op)
        if ufunc is None:  # pragma: no cover
            raise KernelLaunchError(f"unknown atomic op {op!r}")
        ufunc.at(mem.array, index, val)
