"""C arithmetic semantics on top of NumPy.

NumPy's integer division/modulo floor toward negative infinity; C (and
OpenCL C) truncate toward zero.  Shifts in OpenCL take the amount modulo
the bit width.  These helpers implement the C behaviour for both array and
scalar operands, and are shared by the serial and vector engines so the
two cannot disagree.
"""

from __future__ import annotations

import numpy as np


def c_idiv(a, b):
    """C integer division: truncation toward zero, div-by-zero yields 0."""
    with np.errstate(divide="ignore", invalid="ignore"):
        b_safe = np.where(b == 0, 1, b)
        q = np.floor_divide(a, b_safe)
        r = a - q * b_safe
        fix = (r != 0) & ((a < 0) != (b_safe < 0))
        q = np.where(fix, q + np.asarray(1, dtype=np.result_type(q)), q)
        return np.where(b == 0, np.asarray(0, dtype=np.result_type(q)), q)


def c_imod(a, b):
    """C integer remainder: ``a - b * c_idiv(a, b)`` (sign of ``a``)."""
    q = c_idiv(a, b)
    return np.where(b == 0, np.asarray(0, dtype=np.result_type(a)),
                    a - q * b)


def c_shl(a, b):
    """OpenCL ``<<``: shift amount taken modulo the bit width of ``a``."""
    bits = np.dtype(np.result_type(a)).itemsize * 8
    return a << (b.astype(np.int64) % bits if hasattr(b, "astype")
                 else int(b) % bits)


def c_shr(a, b):
    """OpenCL ``>>`` (arithmetic for signed, logical for unsigned)."""
    bits = np.dtype(np.result_type(a)).itemsize * 8
    return a >> (b.astype(np.int64) % bits if hasattr(b, "astype")
                 else int(b) % bits)


def c_div(a, b, is_float: bool):
    """C ``/`` for either float or integer operand types."""
    if is_float:
        with np.errstate(divide="ignore", invalid="ignore"):
            return a / b
    return c_idiv(a, b)


def truth(x):
    """C truthiness of a value/array: nonzero -> 1."""
    return x != 0


def to_dtype(value, np_dtype):
    """Convert a value/array to ``np_dtype`` with C truncation semantics."""
    arr = np.asarray(value)
    if np.issubdtype(np_dtype, np.integer) and np.issubdtype(
            arr.dtype, np.floating):
        with np.errstate(invalid="ignore", over="ignore"):
            arr = np.nan_to_num(np.trunc(arr),
                                nan=0.0, posinf=0.0, neginf=0.0)
            # cast via int64 first so out-of-range values wrap instead of
            # raising on platforms where float->small-int is checked
            return arr.astype(np.int64, copy=False).astype(np_dtype,
                                                           copy=False)
    with np.errstate(over="ignore", invalid="ignore"):
        return arr.astype(np_dtype, copy=False)
