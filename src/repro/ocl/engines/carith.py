"""C arithmetic semantics on top of NumPy.

NumPy's integer division/modulo floor toward negative infinity; C (and
OpenCL C) truncate toward zero.  Shifts in OpenCL take the amount modulo
the bit width.  These helpers implement the C behaviour for both array and
scalar operands, and are shared by every execution backend so no two can
disagree.  :func:`binary_value` / :func:`compare_value` are the single
bytecode arithmetic dispatch used by the serial and vector interpreters
(previously two identical if/elif tables) and by the JIT code generator,
which emits the same expressions these helpers compute.
"""

from __future__ import annotations

import numpy as np

from ...clc.lower import (OP_ADD, OP_BAND, OP_BOR, OP_CEQ, OP_CGE, OP_CGT,
                          OP_CLE, OP_CLT, OP_CNE, OP_DIV, OP_LAND, OP_MOD,
                          OP_MUL, OP_SHL, OP_SHR, OP_SUB)


def c_idiv_raw(a, b):
    """:func:`c_idiv` without the errstate guard — for callers already
    running under ``np.errstate(all="ignore")`` (the engines' launch
    loop, the JIT's generated code)."""
    # np.fmod on integers is the C '%' (remainder has the dividend's
    # sign), so truncated division is (a - fmod(a, b)) / b exactly
    if np.ndim(b) == 0 and b != 0:
        # scalar nonzero divisor (the common shape: ``x / N``) — skip
        # the div-by-zero select entirely
        return (a - np.fmod(a, b)) // b
    b_safe = np.where(b == 0, 1, b)
    q = (a - np.fmod(a, b_safe)) // b_safe
    return np.where(b == 0, np.asarray(0, dtype=np.result_type(q)), q)


def c_idiv(a, b):
    """C integer division: truncation toward zero, div-by-zero yields 0."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return c_idiv_raw(a, b)


def c_imod_raw(a, b):
    """:func:`c_imod` without the errstate guard (see
    :func:`c_idiv_raw`)."""
    if np.ndim(b) == 0 and b != 0:
        return np.fmod(a, b)
    return np.where(b == 0, np.asarray(0, dtype=np.result_type(a)),
                    np.fmod(a, np.where(b == 0, 1, b)))


def c_imod(a, b):
    """C integer remainder: ``a - b * c_idiv(a, b)`` (sign of ``a``)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return c_imod_raw(a, b)


def c_shl(a, b):
    """OpenCL ``<<``: shift amount taken modulo the bit width of ``a``."""
    bits = np.dtype(np.result_type(a)).itemsize * 8
    return a << (b.astype(np.int64) % bits if hasattr(b, "astype")
                 else int(b) % bits)


def c_shr(a, b):
    """OpenCL ``>>`` (arithmetic for signed, logical for unsigned)."""
    bits = np.dtype(np.result_type(a)).itemsize * 8
    return a >> (b.astype(np.int64) % bits if hasattr(b, "astype")
                 else int(b) % bits)


def c_div(a, b, is_float: bool):
    """C ``/`` for either float or integer operand types."""
    if is_float:
        with np.errstate(divide="ignore", invalid="ignore"):
            return a / b
    return c_idiv(a, b)


def truth(x):
    """C truthiness of a value/array: nonzero -> 1."""
    return x != 0


def binary_value(op: int, lhs, rhs, is_float):
    """Raw (pre-``to_dtype``) result of an ``OP_ADD..OP_BXOR`` bytecode
    arithmetic instruction on scalar or lane-array operands."""
    if op == OP_ADD:
        return lhs + rhs
    if op == OP_SUB:
        return lhs - rhs
    if op == OP_MUL:
        return lhs * rhs
    if op == OP_DIV:
        return c_div(lhs, rhs, is_float)
    if op == OP_MOD:
        return c_imod(lhs, rhs)
    if op == OP_SHL:
        return c_shl(lhs, rhs)
    if op == OP_SHR:
        return c_shr(lhs, rhs)
    if op == OP_BAND:
        return lhs & rhs
    if op == OP_BOR:
        return lhs | rhs
    return lhs ^ rhs  # OP_BXOR


def compare_value(op: int, lhs, rhs):
    """Boolean result of an ``OP_CEQ..OP_LOR`` bytecode comparison
    (callers coerce to the C ``int`` result themselves)."""
    if op == OP_CEQ:
        return lhs == rhs
    if op == OP_CNE:
        return lhs != rhs
    if op == OP_CLT:
        return lhs < rhs
    if op == OP_CGT:
        return lhs > rhs
    if op == OP_CLE:
        return lhs <= rhs
    if op == OP_CGE:
        return lhs >= rhs
    if op == OP_LAND:
        return truth(lhs) & truth(rhs)
    return truth(lhs) | truth(rhs)  # OP_LOR


def to_dtype(value, np_dtype):
    """Convert a value/array to ``np_dtype`` with C truncation semantics."""
    arr = np.asarray(value)
    if np.issubdtype(np_dtype, np.integer) and np.issubdtype(
            arr.dtype, np.floating):
        with np.errstate(invalid="ignore", over="ignore"):
            arr = np.nan_to_num(np.trunc(arr),
                                nan=0.0, posinf=0.0, neginf=0.0)
            # cast via int64 first so out-of-range values wrap instead of
            # raising on platforms where float->small-int is checked
            return arr.astype(np.int64, copy=False).astype(np_dtype,
                                                           copy=False)
    with np.errstate(over="ignore", invalid="ignore"):
        return arr.astype(np_dtype, copy=False)
