"""Per-work-item reference interpreter.

Executes work-groups one at a time; inside a group, every work-item runs
as a Python generator that yields when it reaches a ``barrier()``.  The
group driver advances all items to the barrier before any item proceeds —
real OpenCL barrier semantics, including detection of divergent barriers
(some items reach a barrier other items never execute), which the real
hardware turns into a hang.

This engine is deliberately simple and slow.  It exists as the correctness
oracle for :class:`~repro.ocl.engines.vector.VectorEngine` (the two are
differentially tested) and to run small problems in tests.
"""

from __future__ import annotations

import numpy as np

from ... import prof, trace
from ...clc import ir as I
from ...clc.builtins import BUILTINS
from ...clc.lower import (L_A, L_AUX, L_B, L_C, L_DST,
                          L_ISDBL, L_ISFLOAT, L_LINE, L_NP, L_SCOST,
                          OP_ADD, OP_ATOMIC,
                          OP_BARRIER, OP_BNOT, OP_BREAK,
                          OP_BUILTIN, OP_BXOR, OP_CALL, OP_CAST, OP_CASTF,
                          OP_CEQ,
                          OP_CONST, OP_CONTINUE, OP_DECLARR,
                          OP_IF, OP_LD, OP_LNOT, OP_LOOP,
                          OP_LOR,
                          OP_MOV, OP_NEG, OP_RET, OP_SELECT,
                          OP_ST, OP_WIQ,
                          SPACE_GLOBAL, SPACE_LOCAL)
from ...clc.types import DOUBLE, SCALAR_TYPES, PointerType, ScalarType
from ...errors import InvalidKernelArgs, KernelLaunchError, OutOfResources
from ..costmodel import CostCounters
from .base import (ATOMIC_UFUNCS, GLOBAL_ID_KEYS, GROUP_ID_KEYS,
                   LOCAL_ID_KEYS, MAX_LOOP_ITERATIONS, BufferBinding,
                   LocalBinding, NDRange, ScalarBinding, check_args,
                   linked_entry, register_engine, wiq_value)
from .carith import (binary_value, c_div, c_imod, c_shl, c_shr,
                     compare_value, to_dtype)

_MAX_LOOP_ITERATIONS = MAX_LOOP_ITERATIONS


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value=None) -> None:
        self.value = value
        super().__init__()


class _SMem:
    """Shared or private memory object (serial engine)."""

    __slots__ = ("array", "name")

    def __init__(self, array: np.ndarray, name: str) -> None:
        self.array = array
        self.name = name

    @property
    def size(self) -> int:
        return self.array.shape[-1]


class _ItemState:
    """Environment of one work-item inside one function activation."""

    def __init__(self, ids: dict, nd: NDRange) -> None:
        self.env: dict[str, object] = {}
        self.ids = ids
        self.nd = nd


@register_engine
class SerialEngine:
    """Execute a kernel launch one work-item at a time (with barriers)."""

    name = "serial"
    capabilities = frozenset({"tree", "bytecode"})
    codegen_version = 0

    def __init__(self, program, spec) -> None:
        self.program = program
        self.spec = spec
        #: per-launch profiler collector; None whenever profiling is off
        self._col = None

    def run(self, kernel_name: str, args: list, global_size,
            local_size=None) -> CostCounters:
        kernel = self.program.functions.get(kernel_name)
        if kernel is None or not kernel.is_kernel:
            raise InvalidKernelArgs(f"no kernel named {kernel_name!r}")
        check_args(kernel, args, self.spec)
        nd = NDRange(global_size, local_size,
                     max_work_group_size=self.spec.max_work_group_size,
                     max_work_item_sizes=self.spec.max_work_item_sizes)
        self.nd = nd
        self.counters = CostCounters(work_items=nd.total_items,
                                     work_groups=nd.total_groups)
        ipg = nd.items_per_group

        entry = self._bytecode_entry(kernel_name)
        self._col = prof.begin_launch(kernel_name, self.name, self.spec,
                                      getattr(self.program, "source", ""),
                                      nd.total_items, nd.total_groups)
        try:
            with trace.span("engine_run", category="simcl",
                            engine=self.name, kernel=kernel_name,
                            work_items=nd.total_items,
                            bytecode=entry is not None):
                with np.errstate(all="ignore"):
                    if entry is not None:
                        self._run_bytecode(entry, kernel, args)
                    else:
                        for group in range(nd.total_groups):
                            local_mems = self._make_local_mems(kernel,
                                                               args)
                            gens = []
                            for within in range(ipg):
                                flat = group * ipg + within
                                state = self._item_state(kernel, args,
                                                         flat, local_mems)
                                gens.append(self._exec_kernel(kernel,
                                                              state))
                            self._drive_group(gens)
                prof.finish_launch(self._col, self.counters)
        finally:
            self._col = None
        return self.counters

    def _bytecode_entry(self, kernel_name: str):
        """(linked code, KernelBytecode) when the program ships bytecode
        this engine understands (O1+), else None (tree fallback)."""
        self._linked, entry = linked_entry(self.program, kernel_name)
        return entry

    # -- group driving -------------------------------------------------------------

    def _drive_group(self, gens: list) -> None:
        live = list(range(len(gens)))
        while live:
            arrived: dict[int, object] = {}
            finished: list[int] = []
            for i in live:
                try:
                    arrived[i] = next(gens[i])
                except StopIteration:
                    finished.append(i)
            if arrived and finished:
                raise KernelLaunchError(
                    "barrier divergence: some work-items of a group "
                    "finished while others wait at a barrier")
            if arrived:
                stmts = set(id(s) for s in arrived.values())
                if len(stmts) > 1:
                    raise KernelLaunchError(
                        "barrier divergence: work-items of a group reached "
                        "different barrier() statements")
                self.counters.barriers += 1
                col = self._col
                if col is not None:
                    marker = next(iter(arrived.values()))
                    line = (marker[L_LINE] if isinstance(marker, tuple)
                            else getattr(marker, "line", 0))
                    col.barrier(line, 1)
            live = [i for i in live if i not in finished]
            if not arrived:
                break

    # -- setup ----------------------------------------------------------------------

    def _make_local_mems(self, kernel, args) -> dict[str, _SMem]:
        mems: dict[str, _SMem] = {}
        local_bytes = 0
        for param, arg in zip(kernel.params, args):
            if isinstance(arg, LocalBinding):
                elem = param.type.pointee
                nelems = arg.nbytes // elem.size
                local_bytes += arg.nbytes
                mems[param.name] = _SMem(
                    np.zeros(nelems, dtype=elem.np_dtype), param.name)
        # __local arrays declared in the body are created lazily per group
        self._group_local_decls: dict[str, _SMem] = {}
        for name in kernel.local_arrays:
            pass  # allocated on first DeclArray execution per group
        if local_bytes > self.spec.local_mem_bytes:
            raise OutOfResources(
                f"work-group needs {local_bytes} B of local memory; "
                f"{self.spec.name} provides {self.spec.local_mem_bytes} B")
        return mems

    def _item_state(self, kernel, args, flat: int,
                    local_mems: dict[str, _SMem]) -> _ItemState:
        ids = self.nd.item_ids(flat)
        state = _ItemState(ids, self.nd)
        for param, arg in zip(kernel.params, args):
            if isinstance(arg, ScalarBinding):
                state.env[param.name] = param.type.np_dtype.type(arg.value)
            elif isinstance(arg, BufferBinding):
                state.env[param.name] = _SMem(arg.array, param.name)
            elif isinstance(arg, LocalBinding):
                state.env[param.name] = local_mems[param.name]
        state.group_local = self._group_local_decls
        return state

    # -- statement execution (generators yield at barriers) ---------------------------

    def _exec_kernel(self, kernel, state: _ItemState):
        try:
            yield from self._exec_block(kernel.body, state)
        except _ReturnSignal:
            pass

    def _exec_block(self, stmts: list, state: _ItemState):
        for stmt in stmts:
            yield from self._exec_stmt(stmt, state)

    def _exec_stmt(self, stmt, state: _ItemState):
        if isinstance(stmt, I.DeclVar):
            dtype = stmt.type.np_dtype
            value = (self._eval(stmt.init, state)
                     if stmt.init is not None else 0)
            state.env[stmt.name] = dtype.type(
                np.asarray(to_dtype(value, dtype)))
        elif isinstance(stmt, I.DeclArray):
            if stmt.space == "local":
                mem = state.group_local.get(stmt.name)
                if mem is None:
                    mem = _SMem(np.zeros(stmt.size,
                                         dtype=stmt.element.np_dtype),
                                stmt.name)
                    state.group_local[stmt.name] = mem
                state.env[stmt.name] = mem
            else:
                state.env[stmt.name] = _SMem(
                    np.zeros(stmt.size, dtype=stmt.element.np_dtype),
                    stmt.name)
        elif isinstance(stmt, I.Store):
            self._exec_store(stmt, state)
        elif isinstance(stmt, I.AtomicRMW):
            self._exec_atomic(stmt, state)
        elif isinstance(stmt, I.EvalExpr):
            self._eval(stmt.expr, state)
        elif isinstance(stmt, I.If):
            if self._truthy(self._eval(stmt.cond, state)):
                yield from self._exec_block(stmt.then, state)
            else:
                yield from self._exec_block(stmt.otherwise, state)
        elif isinstance(stmt, I.While):
            yield from self._exec_while(stmt, state)
        elif isinstance(stmt, I.Break):
            raise _BreakSignal()
        elif isinstance(stmt, I.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, I.Return):
            value = (self._eval(stmt.value, state)
                     if stmt.value is not None else None)
            raise _ReturnSignal(value)
        elif isinstance(stmt, I.BarrierStmt):
            yield stmt
        else:  # pragma: no cover
            raise KernelLaunchError(
                f"serial engine cannot execute {type(stmt).__name__}")

    def _exec_while(self, stmt: I.While, state: _ItemState):
        iterations = 0
        first = stmt.is_do_while
        while True:
            if not first and not self._truthy(self._eval(stmt.cond, state)):
                break
            first = False
            try:
                yield from self._exec_block(stmt.body, state)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            for u in stmt.update:
                yield from self._exec_stmt(u, state)
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise KernelLaunchError(
                    f"loop at line {stmt.line} exceeded iteration limit")

    # -- stores ---------------------------------------------------------------------------

    def _exec_store(self, stmt: I.Store, state: _ItemState) -> None:
        value = self._eval(stmt.value, state)
        target = stmt.target
        if target.index is None:
            dtype = target.type.np_dtype
            state.env[target.name] = dtype.type(
                np.asarray(to_dtype(value, dtype)))
            return
        mem: _SMem = state.env[target.name]
        idx = int(self._eval(target.index, state))
        self._bounds(idx, mem, stmt.line)
        mem.array[idx] = np.asarray(to_dtype(value, mem.array.dtype))
        itemsize = mem.array.dtype.itemsize
        col = self._col
        if target.space in ("global", "constant"):
            self.counters.global_stores += 1
            self.counters.global_store_bytes += itemsize
            self.counters.global_store_transactions += 1
            if col is not None:
                col.mem(stmt.line, 1, itemsize, 1, True)
        elif target.space == "local":
            self.counters.local_accesses += 1
            if col is not None:
                col.local(stmt.line, 1)

    def _exec_atomic(self, stmt: I.AtomicRMW, state: _ItemState) -> None:
        mem: _SMem = state.env[stmt.target.name]
        idx = int(self._eval(stmt.target.index, state))
        self._bounds(idx, mem, stmt.line)
        dtype = mem.array.dtype
        val = (np.asarray(to_dtype(self._eval(stmt.value, state), dtype))
               if stmt.value is not None else dtype.type(1))
        op = stmt.op
        if op in ATOMIC_UFUNCS:
            mem.array[idx] = ATOMIC_UFUNCS[op](mem.array[idx], val)
        itemsize = dtype.itemsize
        col = self._col
        if stmt.target.space == "local":
            self.counters.local_accesses += 2
            if col is not None:
                col.local(stmt.line, 2)
        else:
            self.counters.global_loads += 1
            self.counters.global_stores += 1
            self.counters.global_load_bytes += itemsize
            self.counters.global_store_bytes += itemsize
            self.counters.global_load_transactions += 1
            self.counters.global_store_transactions += 1
            if col is not None:
                col.mem(stmt.line, 1, itemsize, 1, False)
                col.mem(stmt.line, 1, itemsize, 1, True)

    def _bounds(self, idx: int, mem: _SMem, line: int) -> None:
        if idx < 0 or idx >= mem.size:
            raise KernelLaunchError(
                f"access {mem.name}[{idx}] out of bounds "
                f"(size {mem.size}) at line {line}")

    # -- expressions ------------------------------------------------------------------------

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value != 0)

    def _count(self, cost: float, type_, line: int = 0) -> None:
        is_double = isinstance(type_, ScalarType) and type_ is DOUBLE
        if is_double:
            self.counters.fp64_ops += cost
        else:
            self.counters.alu_ops += cost
        col = self._col
        if col is not None:
            col.op(line, 1, cost, is_double)

    def _eval(self, expr: I.Expr, state: _ItemState):
        if isinstance(expr, I.Const):
            return expr.type.np_dtype.type(expr.value)
        if isinstance(expr, I.Var):
            return state.env[expr.name]
        if isinstance(expr, I.Load):
            mem: _SMem = state.env[expr.base]
            idx = int(self._eval(expr.index, state))
            self._bounds(idx, mem, expr.line)
            itemsize = mem.array.dtype.itemsize
            col = self._col
            if expr.space in ("global", "constant"):
                self.counters.global_loads += 1
                self.counters.global_load_bytes += itemsize
                self.counters.global_load_transactions += 1
                if col is not None:
                    col.mem(expr.line, 1, itemsize, 1, False)
            elif expr.space == "local":
                self.counters.local_accesses += 1
                if col is not None:
                    col.local(expr.line, 1)
            else:
                self.counters.alu_ops += 1
                if col is not None:
                    col.op(expr.line, 1, 1.0, False)
            return mem.array[idx]
        if isinstance(expr, I.Convert):
            self._count(1.0, expr.type, expr.line)
            return expr.type.np_dtype.type(
                np.asarray(to_dtype(self._eval(expr.operand, state),
                                    expr.type.np_dtype)))
        if isinstance(expr, I.Unary):
            operand = self._eval(expr.operand, state)
            self._count(1.0, expr.type, expr.line)
            if expr.op == "-":
                return expr.type.np_dtype.type(
                    np.asarray(to_dtype(-operand, expr.type.np_dtype)))
            if expr.op == "~":
                return expr.type.np_dtype.type(~operand)
            return np.int32(0 if self._truthy(operand) else 1)
        if isinstance(expr, I.Binary):
            return self._eval_binary(expr, state)
        if isinstance(expr, I.Select):
            cond = self._truthy(self._eval(expr.cond, state))
            self._count(1.0, expr.type, expr.line)
            branch = expr.then if cond else expr.otherwise
            return self._eval(branch, state)
        if isinstance(expr, I.CallBuiltin):
            return self._eval_builtin(expr, state)
        if isinstance(expr, I.CallFunction):
            return self._eval_call(expr, state)
        raise KernelLaunchError(
            f"serial engine cannot evaluate {type(expr).__name__}")

    def _eval_binary(self, expr: I.Binary, state: _ItemState):
        op = expr.op
        if op == "&&":
            # genuine short-circuit, unlike the lock-step vector engine
            self._count(1.0, expr.type, expr.line)
            if not self._truthy(self._eval(expr.lhs, state)):
                return np.int32(0)
            return np.int32(1 if self._truthy(self._eval(expr.rhs, state))
                            else 0)
        if op == "||":
            self._count(1.0, expr.type, expr.line)
            if self._truthy(self._eval(expr.lhs, state)):
                return np.int32(1)
            return np.int32(1 if self._truthy(self._eval(expr.rhs, state))
                            else 0)
        lhs = self._eval(expr.lhs, state)
        rhs = self._eval(expr.rhs, state)
        self._count(1.0, expr.type, expr.line)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            table = {"==": lhs == rhs, "!=": lhs != rhs, "<": lhs < rhs,
                     ">": lhs > rhs, "<=": lhs <= rhs, ">=": lhs >= rhs}
            return np.int32(1 if table[op] else 0)
        dtype = expr.type.np_dtype
        if op == "+":
            result = lhs + rhs
        elif op == "-":
            result = lhs - rhs
        elif op == "*":
            result = lhs * rhs
        elif op == "/":
            result = c_div(lhs, rhs, expr.type.is_float)
        elif op == "%":
            result = c_imod(lhs, rhs)
        elif op == "<<":
            result = c_shl(lhs, rhs)
        elif op == ">>":
            result = c_shr(lhs, rhs)
        elif op == "&":
            result = lhs & rhs
        elif op == "|":
            result = lhs | rhs
        elif op == "^":
            result = lhs ^ rhs
        else:  # pragma: no cover
            raise KernelLaunchError(f"unknown binary {op!r}")
        return dtype.type(np.asarray(to_dtype(result, dtype)))

    def _eval_builtin(self, expr: I.CallBuiltin, state: _ItemState):
        name = expr.name
        if name.startswith("get_"):
            dim = int(expr.args[0].value) if expr.args else 0
            if name == "get_work_dim":
                return np.int32(self.nd.dim)
            if name == "get_global_offset":
                return np.int64(0)
            key = {"get_global_id": GLOBAL_ID_KEYS,
                   "get_local_id": LOCAL_ID_KEYS,
                   "get_group_id": GROUP_ID_KEYS}.get(name)
            if key is not None:
                return np.int64(state.ids[key[dim]])
            return np.int64(self.nd.size_of(name, dim))
        b = BUILTINS[name]
        args = [self._eval(a, state) for a in expr.args]
        self._count(b.cost, expr.type, expr.line)
        return expr.type.np_dtype.type(
            np.asarray(to_dtype(b.impl(*args), expr.type.np_dtype)))

    def _eval_call(self, expr: I.CallFunction, state: _ItemState):
        func = self.program.functions[expr.name]
        fstate = _ItemState(state.ids, self.nd)
        fstate.group_local = state.group_local
        for param, arg in zip(func.params, expr.args):
            if isinstance(param.type, PointerType):
                fstate.env[param.name] = state.env[arg.name]
            else:
                fstate.env[param.name] = param.type.np_dtype.type(
                    np.asarray(to_dtype(self._eval(arg, state),
                                        param.type.np_dtype)))
        gen = self._exec_block(func.body, fstate)
        try:
            for _ in gen:
                raise KernelLaunchError(
                    "barrier() executed inside a helper function")
        except _ReturnSignal as ret:
            if func.return_type.is_void:
                return np.int32(0)
            return func.return_type.np_dtype.type(
                np.asarray(to_dtype(ret.value, func.return_type.np_dtype)))
        if func.return_type.is_void:
            return np.int32(0)
        raise KernelLaunchError(
            f"helper {func.name!r} fell off the end without returning")

    # -- bytecode interpreter (O1+) ------------------------------------------
    #
    # Same observable semantics as the tree walker above — identical
    # numerics (every result goes through the same to_dtype coercions),
    # identical memory/barrier counters, generators still yield at
    # barriers so _drive_group keeps detecting divergence — but one flat
    # dispatch per instruction instead of isinstance chains per node.

    def _run_bytecode(self, entry, kernel, args) -> None:
        code, kbc = entry
        nd = self.nd
        ipg = nd.items_per_group
        scalar_binds = []
        buffer_binds = []
        local_params = []
        for p, arg in zip(kbc.params, args):
            if p[0] == "scalar":
                dtype = SCALAR_TYPES[p[2]].np_dtype
                scalar_binds.append((p[3], dtype.type(arg.value)))
            elif isinstance(arg, BufferBinding):
                buffer_binds.append((p[3], _SMem(arg.array, p[1])))
            else:
                local_params.append((p[3], p[1]))
        for group in range(nd.total_groups):
            local_mems = self._make_local_mems(kernel, args)
            group_decls: dict[int, _SMem] = {}
            gens = []
            for within in range(ipg):
                flat = group * ipg + within
                gens.append(self._bc_item(code, kbc, flat, scalar_binds,
                                          buffer_binds, local_params,
                                          local_mems, group_decls))
            self._drive_group(gens)

    def _bc_item(self, code, kbc, flat, scalar_binds, buffer_binds,
                 local_params, local_mems, group_decls):
        regs: list = [None] * kbc.n_regs
        mems: list = [None] * kbc.n_mems
        for reg, value in scalar_binds:
            regs[reg] = value
        for slot, mem in buffer_binds:
            mems[slot] = mem
        for slot, name in local_params:
            mems[slot] = local_mems[name]
        ids = self.nd.item_ids(flat)
        try:
            yield from self._bc_span(code, 0, len(code), regs, mems, ids,
                                     group_decls)
        except _ReturnSignal:
            pass

    def _bc_span(self, code, pos, end, regs, mems, ids, gl):
        counters = self.counters
        col = self._col
        while pos < end:
            ins = code[pos]
            op = ins[0]
            if OP_ADD <= op <= OP_BXOR:
                result = binary_value(op, regs[ins[L_A]], regs[ins[L_B]],
                                      ins[L_ISFLOAT])
                dtype = ins[L_NP]
                regs[ins[L_DST]] = dtype.type(
                    np.asarray(to_dtype(result, dtype)))
                if ins[L_ISDBL]:
                    counters.fp64_ops += 1.0
                else:
                    counters.alu_ops += 1.0
                if col is not None:
                    col.op(ins[L_LINE], 1, 1.0, ins[L_ISDBL])
            elif OP_CEQ <= op <= OP_LOR:
                r = compare_value(op, regs[ins[L_A]], regs[ins[L_B]])
                regs[ins[L_DST]] = np.int32(1) if r else np.int32(0)
                counters.alu_ops += 1.0
                if col is not None:
                    col.op(ins[L_LINE], 1, 1.0, False)
            elif op == OP_MOV:
                regs[ins[L_DST]] = regs[ins[L_A]]
            elif op == OP_LD:
                slot, space = ins[L_AUX]
                mem: _SMem = mems[slot]
                idx = int(regs[ins[L_B]])
                self._bounds(idx, mem, ins[L_LINE])
                if space == SPACE_GLOBAL:
                    itemsize = mem.array.dtype.itemsize
                    counters.global_loads += 1
                    counters.global_load_bytes += itemsize
                    counters.global_load_transactions += 1
                    if col is not None:
                        col.mem(ins[L_LINE], 1, itemsize, 1, False)
                elif space == SPACE_LOCAL:
                    counters.local_accesses += 1
                    if col is not None:
                        col.local(ins[L_LINE], 1)
                else:
                    counters.alu_ops += 1
                    if col is not None:
                        col.op(ins[L_LINE], 1, 1.0, False)
                regs[ins[L_DST]] = mem.array[idx]
            elif op == OP_ST:
                value = regs[ins[L_C]]
                slot, space = ins[L_AUX]
                mem = mems[slot]
                idx = int(regs[ins[L_B]])
                self._bounds(idx, mem, ins[L_LINE])
                mem.array[idx] = np.asarray(to_dtype(value,
                                                     mem.array.dtype))
                if space == SPACE_GLOBAL:
                    itemsize = mem.array.dtype.itemsize
                    counters.global_stores += 1
                    counters.global_store_bytes += itemsize
                    counters.global_store_transactions += 1
                    if col is not None:
                        col.mem(ins[L_LINE], 1, itemsize, 1, True)
                elif space == SPACE_LOCAL:
                    counters.local_accesses += 1
                    if col is not None:
                        col.local(ins[L_LINE], 1)
            elif op == OP_CASTF or op == OP_CAST:
                dtype = ins[L_NP]
                regs[ins[L_DST]] = dtype.type(
                    np.asarray(to_dtype(regs[ins[L_A]], dtype)))
                if op == OP_CAST:
                    if ins[L_ISDBL]:
                        counters.fp64_ops += 1.0
                    else:
                        counters.alu_ops += 1.0
                    if col is not None:
                        col.op(ins[L_LINE], 1, 1.0, ins[L_ISDBL])
            elif op == OP_CONST:
                regs[ins[L_DST]] = ins[L_AUX]
            elif op == OP_SELECT:
                if ins[L_ISDBL]:
                    counters.fp64_ops += 1.0
                else:
                    counters.alu_ops += 1.0
                if col is not None:
                    col.op(ins[L_LINE], 1, 1.0, ins[L_ISDBL])
                regs[ins[L_DST]] = (regs[ins[L_B]]
                                    if regs[ins[L_A]] != 0
                                    else regs[ins[L_C]])
            elif op == OP_NEG:
                dtype = ins[L_NP]
                regs[ins[L_DST]] = dtype.type(
                    np.asarray(to_dtype(-regs[ins[L_A]], dtype)))
                if ins[L_ISDBL]:
                    counters.fp64_ops += 1.0
                else:
                    counters.alu_ops += 1.0
                if col is not None:
                    col.op(ins[L_LINE], 1, 1.0, ins[L_ISDBL])
            elif op == OP_BNOT:
                regs[ins[L_DST]] = ins[L_NP].type(~regs[ins[L_A]])
                counters.alu_ops += 1.0
                if col is not None:
                    col.op(ins[L_LINE], 1, 1.0, False)
            elif op == OP_LNOT:
                regs[ins[L_DST]] = (np.int32(0) if regs[ins[L_A]] != 0
                                    else np.int32(1))
                counters.alu_ops += 1.0
                if col is not None:
                    col.op(ins[L_LINE], 1, 1.0, False)
            elif op == OP_WIQ:
                qcode, dim, name = ins[L_AUX]
                value = wiq_value(qcode, dim, name, ids, self.nd)
                regs[ins[L_DST]] = ins[L_NP].type(value)
            elif op == OP_BUILTIN:
                impl, arg_regs, _name = ins[L_AUX]
                bargs = [regs[r] for r in arg_regs]
                if ins[L_ISDBL]:
                    counters.fp64_ops += ins[L_SCOST]
                else:
                    counters.alu_ops += ins[L_SCOST]
                if col is not None:
                    col.op(ins[L_LINE], 1, ins[L_SCOST], ins[L_ISDBL])
                dtype = ins[L_NP]
                regs[ins[L_DST]] = dtype.type(
                    np.asarray(to_dtype(impl(*bargs), dtype)))
            elif op == OP_IF:
                tlen, elen = ins[L_AUX]
                body = pos + 1
                if regs[ins[L_A]] != 0:
                    yield from self._bc_span(code, body, body + tlen,
                                             regs, mems, ids, gl)
                else:
                    yield from self._bc_span(code, body + tlen,
                                             body + tlen + elen,
                                             regs, mems, ids, gl)
                pos = body + tlen + elen
                continue
            elif op == OP_LOOP:
                clen, blen, ulen, is_do = ins[L_AUX]
                cond_start = pos + 1
                body_start = cond_start + clen
                upd_start = body_start + blen
                end_pos = upd_start + ulen
                creg = ins[L_A]
                first = is_do
                iterations = 0
                while True:
                    if not first:
                        yield from self._bc_span(code, cond_start,
                                                 body_start, regs, mems,
                                                 ids, gl)
                        if not regs[creg] != 0:
                            break
                    first = False
                    try:
                        yield from self._bc_span(code, body_start,
                                                 upd_start, regs, mems,
                                                 ids, gl)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        pass
                    if ulen:
                        yield from self._bc_span(code, upd_start, end_pos,
                                                 regs, mems, ids, gl)
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERATIONS:
                        raise KernelLaunchError(
                            f"loop at line {ins[L_LINE]} exceeded "
                            f"iteration limit")
                pos = end_pos
                continue
            elif op == OP_BARRIER:
                yield ins
            elif op == OP_ATOMIC:
                self._bc_atomic(ins, regs, mems)
            elif op == OP_DECLARR:
                slot, size, np_dtype, space, name, _nbytes = ins[L_AUX]
                if space == SPACE_LOCAL:
                    mem = gl.get(slot)
                    if mem is None:
                        mem = _SMem(np.zeros(size, dtype=np_dtype), name)
                        gl[slot] = mem
                    mems[slot] = mem
                else:
                    mems[slot] = _SMem(np.zeros(size, dtype=np_dtype),
                                       name)
            elif op == OP_CALL:
                yield from self._bc_call(ins, regs, mems, ids, gl)
            elif op == OP_BREAK:
                raise _BreakSignal()
            elif op == OP_CONTINUE:
                raise _ContinueSignal()
            elif op == OP_RET:
                raise _ReturnSignal(regs[ins[L_A]]
                                    if ins[L_A] >= 0 else None)
            else:  # pragma: no cover
                raise KernelLaunchError(f"bad opcode {op}")
            pos += 1

    def _bc_atomic(self, ins, regs, mems) -> None:
        opstr, slot, space = ins[L_AUX]
        mem: _SMem = mems[slot]
        idx = int(regs[ins[L_B]])
        self._bounds(idx, mem, ins[L_LINE])
        dtype = mem.array.dtype
        val = (np.asarray(to_dtype(regs[ins[L_C]], dtype))
               if ins[L_C] >= 0 else dtype.type(1))
        if opstr in ATOMIC_UFUNCS:
            mem.array[idx] = ATOMIC_UFUNCS[opstr](mem.array[idx], val)
        counters = self.counters
        col = self._col
        if space == SPACE_LOCAL:
            counters.local_accesses += 2
            if col is not None:
                col.local(ins[L_LINE], 2)
        else:
            itemsize = dtype.itemsize
            counters.global_loads += 1
            counters.global_stores += 1
            counters.global_load_bytes += itemsize
            counters.global_store_bytes += itemsize
            counters.global_load_transactions += 1
            counters.global_store_transactions += 1
            if col is not None:
                col.mem(ins[L_LINE], 1, itemsize, 1, False)
                col.mem(ins[L_LINE], 1, itemsize, 1, True)

    def _bc_call(self, ins, regs, mems, ids, gl):
        fname, binds, ret_np = ins[L_AUX]
        ccode, ckbc = self._linked[fname]
        cregs: list = [None] * ckbc.n_regs
        cmems: list = [None] * ckbc.n_mems
        for bind in binds:
            if bind[0] == "mem":
                cmems[bind[2]] = mems[bind[1]]
            else:
                pdt = bind[3]
                cregs[bind[2]] = pdt.type(
                    np.asarray(to_dtype(regs[bind[1]], pdt)))
        gen = self._bc_span(ccode, 0, len(ccode), cregs, cmems, ids, gl)
        try:
            for _ in gen:
                raise KernelLaunchError(
                    "barrier() executed inside a helper function")
        except _ReturnSignal as ret:
            if ret_np is None:
                regs[ins[L_DST]] = np.int32(0)
            else:
                regs[ins[L_DST]] = ret_np.type(
                    np.asarray(to_dtype(ret.value, ret_np)))
            return
        if ret_np is not None:
            raise KernelLaunchError(
                f"helper {fname!r} fell off the end without returning")
        regs[ins[L_DST]] = np.int32(0)
        return
        yield  # pragma: no cover - makes this a generator like _bc_span
