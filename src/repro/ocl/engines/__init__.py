"""Execution engines that run compiled kernel IR.

Two engines implement the same interface:

* :class:`~repro.ocl.engines.serial.SerialEngine` — a per-work-item
  reference interpreter with generator-based barriers.  Slow, obviously
  correct; used for small problems and as the differential-testing oracle.
* :class:`~repro.ocl.engines.vector.VectorEngine` — a lock-step SIMT
  engine that executes every work-item of the NDRange simultaneously as
  NumPy lanes, handling divergence with activity masks.  This is how the
  simulated GPUs execute real workloads at tolerable wall-clock cost.

Both engines fill a :class:`repro.ocl.costmodel.CostCounters` while they
run; the cost model turns those counts into simulated device time.
"""

from .base import BufferBinding, LocalBinding, NDRange, ScalarBinding
from .serial import SerialEngine
from .vector import VectorEngine

__all__ = ["NDRange", "ScalarBinding", "BufferBinding", "LocalBinding",
           "SerialEngine", "VectorEngine"]
