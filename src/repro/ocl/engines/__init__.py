"""Execution backends that run compiled kernel IR.

Three engines implement the backend protocol documented in
:mod:`repro.ocl.engines.base` and register themselves with its registry:

* :class:`~repro.ocl.engines.serial.SerialEngine` — a per-work-item
  reference interpreter with generator-based barriers.  Slow, obviously
  correct; used for small problems and as the differential-testing oracle.
* :class:`~repro.ocl.engines.vector.VectorEngine` — a lock-step SIMT
  engine that executes every work-item of the NDRange simultaneously as
  NumPy lanes, handling divergence with activity masks.  This is how the
  simulated GPUs execute real workloads at tolerable wall-clock cost.
* :class:`~repro.ocl.engines.jit.JitEngine` — compiles each kernel's
  optimized bytecode into generated Python/NumPy source (no interpreter
  dispatch loop) with results, cost counters and per-line profiles
  bit-identical to the vector engine.

Every engine fills a :class:`repro.ocl.costmodel.CostCounters` while it
runs; the cost model turns those counts into simulated device time.
Custom backends register via :func:`register_engine` and become
selectable through ``Device(engine=...)``, ``hpl.configure(engine=...)``
and ``$HPL_ENGINE`` — see ``docs/engines.md``.
"""

from .base import (BufferBinding, LocalBinding, NDRange, ScalarBinding,
                   available_engines, default_engine, get_engine_class,
                   register_engine, set_default_engine)
from .jit import JitEngine
from .serial import SerialEngine
from .vector import VectorEngine

__all__ = ["NDRange", "ScalarBinding", "BufferBinding", "LocalBinding",
           "SerialEngine", "VectorEngine", "JitEngine",
           "register_engine", "get_engine_class", "available_engines",
           "default_engine", "set_default_engine"]
