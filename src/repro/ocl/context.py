"""Contexts tie devices, buffers and programs together."""

from __future__ import annotations

from ..errors import InvalidDevice, InvalidValue
from .device import Device


class Context:
    """A SimCL context over one or more devices of the platform."""

    def __init__(self, devices) -> None:
        if isinstance(devices, Device):
            devices = [devices]
        devices = list(devices)
        if not devices:
            raise InvalidValue("a context needs at least one device")
        for d in devices:
            if not isinstance(d, Device):
                raise InvalidDevice(f"{d!r} is not a Device")
        self.devices = tuple(devices)

    def __repr__(self) -> str:
        names = ", ".join(d.name for d in self.devices)
        return f"<Context [{names}]>"
