"""``repro.ocl`` — SimCL, a simulated OpenCL 1.x platform.

The host-facing surface mirrors the OpenCL object model (and pyopencl's
naming): :func:`get_platforms` → :class:`Device` → :class:`Context` →
:class:`CommandQueue` / :class:`Buffer` / :class:`Program` /
:class:`Kernel` → :class:`Event`.

Kernels are OpenCL C source strings compiled by :mod:`repro.clc` and run
functionally by the engines in :mod:`repro.ocl.engines`; time is modelled
by :mod:`repro.ocl.costmodel` over dynamic counts measured during
execution.  See DESIGN.md for why this substrate preserves the behaviours
the paper's evaluation depends on.
"""

from .api import (CLK_GLOBAL_MEM_FENCE, CLK_LOCAL_MEM_FENCE,
                  command_status, command_type, device_type, mem_flags,
                  queue_properties)
from .buffer import Buffer, LocalMemory
from .context import Context
from .costmodel import CostCounters, TimeBreakdown, kernel_time, transfer_time
from .device import Device
from .devicedb import (DEFAULT_DEVICES, QUADRO_FX380, TESLA_C2050,
                       XEON_HOST, XEON_SERIAL, DeviceSpec, spec_by_name)
from .event import Event, wait_for_events
from .faults import FaultPlan, FaultSpec
from .kernel_obj import Kernel
from .platform import (Platform, get_platforms, reset_platform_devices,
                       set_platform_devices)
from .program import Program
from .queue import CommandQueue

__all__ = [
    "get_platforms", "Platform", "Device", "Context", "CommandQueue",
    "Buffer", "LocalMemory", "Program", "Kernel", "Event",
    "wait_for_events", "FaultPlan", "FaultSpec",
    "mem_flags", "device_type", "command_type", "command_status",
    "queue_properties",
    "CLK_LOCAL_MEM_FENCE", "CLK_GLOBAL_MEM_FENCE",
    "DeviceSpec", "TESLA_C2050", "QUADRO_FX380", "XEON_HOST", "XEON_SERIAL",
    "DEFAULT_DEVICES", "spec_by_name", "set_platform_devices",
    "reset_platform_devices",
    "CostCounters", "TimeBreakdown", "kernel_time", "transfer_time",
]
