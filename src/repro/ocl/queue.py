"""Command queues: eager or deferred, in-order or out-of-order.

Two execution modes share one cost model:

``eager`` (the default)
    Commands execute inside the enqueue call (results are immediately
    visible to the host) but their *cost* is accounted on a per-device
    simulated clock, so profiling-based measurement code works exactly
    as it would against a real driver.

``deferred``
    ``enqueue_*`` records the command and returns an :class:`Event` in
    the QUEUED state; nothing executes until :meth:`flush`,
    :meth:`finish`, or ``event.wait()`` drives it.  Because each queue
    stamps its own simulated clock only when commands actually run —
    with every command's start time pushed past the completion of its
    ``wait_for`` dependencies — work enqueued on several devices from
    one host loop overlaps on the simulated timeline instead of
    serializing in enqueue order.

Every ``enqueue_*`` accepts ``wait_for=[events]``, the OpenCL event
wait list: the command's simulated start time is at least the latest
dependency completion (on any queue), and in deferred mode execution
order respects those edges.  An **out-of-order** queue additionally
schedules pending commands by the dependency DAG — the runnable command
with the earliest possible start goes first — rather than by enqueue
order.

Every stamped command is also reported to :mod:`repro.trace` as a
completed span on the device's simulated timeline, parented to the
host-side span that was open *at enqueue time* (so deferred commands
still attribute to the eval that caused them), and transfer/launch
volumes feed the global metrics registry.
"""

from __future__ import annotations

import itertools

import numpy as np

from .. import trace
from ..errors import (CommandCancelled, InvalidProgramExecutable,
                      InvalidValue)
from .api import command_status, command_type, queue_properties
from .buffer import Buffer
from .context import Context
from .costmodel import kernel_time, transfer_time
from .device import Device
from .event import Event
from .faults import active_plan, op_name
from .kernel_obj import Kernel


class _Command:
    """One recorded deferred command: its event plus the work closure."""

    __slots__ = ("event", "payload", "attrs", "index", "trace_parent")

    def __init__(self, event: Event, payload, attrs: dict, index: int,
                 trace_parent: int | None) -> None:
        self.event = event
        #: () -> (duration_s, counters, breakdown, extra_trace_attrs)
        self.payload = payload
        self.attrs = attrs
        self.index = index
        self.trace_parent = trace_parent


class CommandQueue:
    """Mirror of ``cl_command_queue`` (optionally deferred/out-of-order)."""

    def __init__(self, context: Context, device: Device | None = None,
                 profiling: bool = True, deferred: bool = False,
                 out_of_order: bool = False,
                 properties: int = 0) -> None:
        if not isinstance(context, Context):
            raise InvalidValue("first argument must be a Context")
        if properties & queue_properties.OUT_OF_ORDER_EXEC_MODE_ENABLE:
            out_of_order = True
        if properties & queue_properties.PROFILING_ENABLE:
            profiling = True
        if device is None:
            device = context.devices[0]
        if device not in context.devices:
            raise InvalidValue(f"{device.name} is not part of the context")
        self.context = context
        self.device = device
        self.profiling = profiling
        self.deferred = deferred
        self.out_of_order = out_of_order
        #: simulated device clock, seconds
        self.clock = 0.0
        self._pending: list[_Command] = []
        self._seq = itertools.count()

    # -- internal ----------------------------------------------------------------

    @staticmethod
    def _dep_list(wait_for) -> tuple:
        deps = tuple(wait_for) if wait_for else ()
        for dep in deps:
            if not isinstance(dep, Event):
                raise InvalidValue(
                    f"wait_for entries must be Events, got {dep!r}")
        return deps

    def _enqueue(self, command: command_type, payload, wait_for,
                 **attrs) -> Event:
        deps = self._dep_list(wait_for)
        if not self.deferred:
            # eager: dependencies may still be pending on a deferred
            # queue — drive them to a terminal state (failures
            # propagate onto this event in _execute), then run
            for dep in deps:
                dep.drive()
            event = Event(command=command,
                          status=command_status.QUEUED, wait_list=deps,
                          _profiling_enabled=self.profiling,
                          device_name=self.device.name,
                          device_label=self.device.label)
            parent = trace.current_span()
            self._execute(event, payload, attrs,
                          parent.span_id if parent else None)
            return event
        event = Event(command=command, status=command_status.QUEUED,
                      wait_list=deps,
                      _profiling_enabled=self.profiling,
                      device_name=self.device.name,
                      device_label=self.device.label, _queue=self)
        parent = trace.current_span()
        self._pending.append(_Command(
            event, payload, attrs, next(self._seq),
            parent.span_id if parent else None))
        return event

    def _execute(self, event: Event, payload, attrs: dict,
                 trace_parent: int | None) -> None:
        """Run one command's payload and stamp its simulated interval.

        A command whose dependency failed does not run at all — its
        event inherits the dependency's error status, mirroring how an
        OpenCL runtime abandons commands downstream of an aborted one.
        Before the payload runs the active :class:`FaultPlan` (if any)
        may fail the command outright or stretch its duration.
        """
        event.status = command_status.SUBMITTED
        failed_dep = next(
            (d for d in event.wait_list if d.is_failed), None)
        if failed_dep is not None:
            event._fail(failed_dep.status, failed_dep.error)
            return
        dep_end = max((d.end_ns for d in event.wait_list), default=0)
        start = max(self.clock, dep_end * 1e-9)
        plan = active_plan()
        op = op_name(event.command)
        if plan is not None:
            injection = plan.draw(self.device.label, op, start)
            if injection is not None:
                start_ns = int(start * 1e9)
                trace.device_event(
                    self.device.label, "fault_inject", start_ns,
                    start_ns, category="fault", parent_id=trace_parent,
                    op=op, code=int(injection.status),
                    fault_kind=injection.kind)
                trace.get_registry().counter(
                    "simcl.faults_injected").inc()
                event._fail(injection.status, injection.error)
                return
        event.status = command_status.RUNNING
        duration, counters, breakdown, extra = payload()
        if plan is not None:
            duration *= plan.slow_factor(self.device.label, op)
        self.clock = start + duration
        start_ns = int(start * 1e9)
        end_ns = int(self.clock * 1e9)
        event.queued_ns = event.submit_ns = event.start_ns = start_ns
        event.end_ns = end_ns
        event.counters = counters
        event.breakdown = breakdown
        trace.device_event(self.device.label, event.command.name.lower(),
                           start_ns, end_ns, category="simcl",
                           parent_id=trace_parent, **attrs, **extra)
        event._complete()

    # -- deferred-mode scheduling ------------------------------------------------

    def _command_of(self, event: Event) -> _Command | None:
        for cmd in self._pending:
            if cmd.event is event:
                return cmd
        return None

    def _run_deferred(self, cmd: _Command) -> None:
        for dep in cmd.event.wait_list:
            if not dep.is_complete:
                dep.drive()     # may recurse into this or another queue
        if cmd not in self._pending:    # a recursive wait already ran it
            return
        self._pending.remove(cmd)
        self._execute(cmd.event, cmd.payload, cmd.attrs, cmd.trace_parent)

    def _cancel(self, event: Event) -> None:
        """Tear down one pending command and its pending dependents.

        The command's payload never runs (so device buffers and host
        memory are untouched) and its event terminates with the
        CANCELLED status, firing callbacks exactly like a failure — so
        coherence rollback installed by the HPL layer still happens.
        Same-queue dependents are swept eagerly; dependents recorded on
        other queues are abandoned lazily, by the failed-dependency
        check in :meth:`_execute`, the moment anything drives them.
        """
        cmd = self._command_of(event)
        if cmd is None:
            return
        self._pending.remove(cmd)
        event._fail(command_status.CANCELLED, CommandCancelled(
            f"{event.command.name} cancelled before execution on "
            f"{self.device.label}"))
        swept = True
        while swept:
            swept = False
            for cmd in list(self._pending):
                if any(d.is_cancelled for d in cmd.event.wait_list):
                    self._pending.remove(cmd)
                    cmd.event._fail(
                        command_status.CANCELLED, CommandCancelled(
                            f"{cmd.event.command.name} depends on a "
                            f"cancelled command"))
                    swept = True

    def cancel_pending(self) -> int:
        """Cancel every still-recorded command on this queue; returns
        how many events were cancelled (dependents included)."""
        cancelled = 0
        while self._pending:
            before = len(self._pending)
            self._cancel(self._pending[-1].event)
            cancelled += before - len(self._pending)
        return cancelled

    def _schedule_next(self) -> _Command:
        """The pending command to run next.

        In-order queues are FIFO.  Out-of-order queues pick, among the
        commands whose dependencies have all completed, the one with the
        earliest possible start time on this device's timeline (ties
        broken by enqueue order); if every pending command is blocked on
        another queue, fall back to the oldest so its cross-queue waits
        get driven.
        """
        if not self.out_of_order or len(self._pending) == 1:
            return self._pending[0]
        best = None
        best_key = None
        clock_ns = int(self.clock * 1e9)
        for cmd in self._pending:
            if any(not dep.is_complete for dep in cmd.event.wait_list):
                continue
            ready_ns = max((d.end_ns for d in cmd.event.wait_list),
                           default=0)
            key = (max(ready_ns, clock_ns), cmd.index)
            if best is None or key < best_key:
                best, best_key = cmd, key
        return best if best is not None else self._pending[0]

    def _execute_until(self, event: Event) -> None:
        """Drive pending commands until ``event`` is terminal
        (COMPLETE or failed with a negative status)."""
        while event.status is command_status.QUEUED:
            if self.out_of_order:
                cmd = self._command_of(event)
                if cmd is None:     # completed by a recursive wait
                    return
                self._run_deferred(cmd)
            else:
                if not self._pending:
                    return
                self._run_deferred(self._schedule_next())

    # -- transfers ------------------------------------------------------------------

    def enqueue_write_buffer(self, buffer: Buffer, hostbuf: np.ndarray,
                             wait_for=None) -> Event:
        """Copy host memory into a device buffer."""
        host = np.asarray(hostbuf)
        if self.deferred:
            # snapshot now: OpenCL allows the host to reuse its memory
            # after a (simulated-)blocking enqueue returns
            host = np.array(host, copy=True)
        nbytes = host.nbytes
        duration = transfer_time(nbytes, self.device.spec)

        def payload():
            buffer.write_from(host)
            registry = trace.get_registry()
            registry.counter("simcl.h2d_transfers").inc()
            registry.counter("simcl.h2d_bytes").inc(nbytes)
            return duration, None, None, {}

        return self._enqueue(command_type.WRITE_BUFFER, payload, wait_for,
                             bytes=nbytes)

    def enqueue_read_buffer(self, buffer: Buffer, hostbuf: np.ndarray,
                            wait_for=None) -> Event:
        """Copy a device buffer back into host memory."""
        duration = transfer_time(hostbuf.nbytes, self.device.spec)
        nbytes = hostbuf.nbytes

        def payload():
            buffer.read_into(hostbuf)
            registry = trace.get_registry()
            registry.counter("simcl.d2h_transfers").inc()
            registry.counter("simcl.d2h_bytes").inc(nbytes)
            return duration, None, None, {}

        return self._enqueue(command_type.READ_BUFFER, payload, wait_for,
                             bytes=nbytes)

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer,
                            nbytes: int | None = None,
                            wait_for=None) -> Event:
        """Device-to-device copy within the same (simulated) memory."""
        nbytes = min(src.size, dst.size) if nbytes is None else nbytes
        duration = nbytes / (self.device.spec.mem_bandwidth_gbs * 1e9)

        def payload():
            dst._data[:nbytes] = src._data[:nbytes]
            registry = trace.get_registry()
            registry.counter("simcl.d2d_transfers").inc()
            registry.counter("simcl.d2d_bytes").inc(nbytes)
            return duration, None, None, {}

        return self._enqueue(command_type.COPY_BUFFER, payload, wait_for,
                             bytes=nbytes)

    # -- kernels ----------------------------------------------------------------------

    def enqueue_nd_range_kernel(self, kernel: Kernel, global_size,
                                local_size=None, wait_for=None) -> Event:
        """Execute a kernel over an NDRange and account its model time.

        Argument bindings are captured at enqueue time (as
        ``clSetKernelArg`` semantics require); the kernel body runs —
        and reads its buffers — when the command executes.
        """
        if not kernel.program.built_for(self.device):
            raise InvalidProgramExecutable(
                f"kernel {kernel.name!r} enqueued on {self.device.name}, "
                "but its program holds no executable for that device "
                "(build(devices=...) never included it, or its build "
                "failed)")
        args = kernel.bound_args()
        name = kernel.name
        program_ir = kernel.program.ir

        def payload():
            with trace.span("enqueue_kernel", category="simcl",
                            kernel=name, device=self.device.name,
                            engine=self.device.engine_name) as sp:
                engine = self.device.make_engine(program_ir)
                counters = engine.run(name, args, global_size, local_size)
                breakdown = kernel_time(counters, self.device.spec)
                sp.set_attr("sim_seconds", breakdown.total)
            trace.get_registry().counter("simcl.kernel_launches").inc()
            return breakdown.total, counters, breakdown, {}

        return self._enqueue(command_type.NDRANGE_KERNEL, payload,
                             wait_for, kernel=name)

    def enqueue_marker(self, wait_for=None) -> Event:
        """A zero-duration command that completes after ``wait_for``
        (or, with no list, after everything enqueued so far)."""
        if wait_for is None:
            wait_for = [cmd.event for cmd in self._pending]

        def payload():
            return 0.0, None, None, {}

        return self._enqueue(command_type.MARKER, payload, wait_for)

    # -- completion --------------------------------------------------------------------

    def flush(self) -> None:
        """Execute every recorded command (no-op on an eager queue)."""
        while self._pending:
            self._run_deferred(self._schedule_next())

    def finish(self) -> None:
        """Execute and complete everything enqueued (``clFinish``)."""
        self.flush()

    @property
    def pending(self) -> int:
        """Number of recorded-but-unexecuted commands."""
        return len(self._pending)

    def __repr__(self) -> str:
        mode = "deferred" if self.deferred else "eager"
        order = ", out-of-order" if self.out_of_order else ""
        return (f"<CommandQueue on {self.device.name!r} {mode}{order} "
                f"clock={self.clock:.6f}s pending={len(self._pending)}>")
