"""In-order command queues with a simulated device timeline.

Commands execute **eagerly** (results are immediately visible to the
host — the simulator has no real asynchrony to model) but their *cost* is
accounted on a per-device simulated clock: each enqueue advances the
clock by the modelled duration and stamps the returned event with
queued/submit/start/end times, so profiling-based measurement code works
exactly as it would against a real driver.

Every stamped command is also reported to :mod:`repro.trace` as a
completed span on the device's simulated timeline (a no-op unless
tracing is enabled), and transfer/launch volumes feed the global metrics
registry — the Chrome-trace exporter renders these as one track per
device alongside the host's wall-clock track.
"""

from __future__ import annotations

import numpy as np

from .. import trace
from ..errors import InvalidValue
from .api import command_type
from .buffer import Buffer
from .context import Context
from .costmodel import kernel_time, transfer_time
from .device import Device
from .event import Event
from .kernel_obj import Kernel


class CommandQueue:
    """Mirror of ``cl_command_queue`` (in-order, optional profiling)."""

    def __init__(self, context: Context, device: Device | None = None,
                 profiling: bool = True) -> None:
        if not isinstance(context, Context):
            raise InvalidValue("first argument must be a Context")
        if device is None:
            device = context.devices[0]
        if device not in context.devices:
            raise InvalidValue(f"{device.name} is not part of the context")
        self.context = context
        self.device = device
        self.profiling = profiling
        #: simulated device clock, seconds
        self.clock = 0.0

    # -- internal ----------------------------------------------------------------

    def _stamp(self, command: command_type, duration: float,
               counters=None, breakdown=None, **trace_attrs) -> Event:
        start = self.clock
        self.clock = start + duration
        start_ns = int(start * 1e9)
        end_ns = int(self.clock * 1e9)
        trace.device_event(self.device.name, command.name.lower(),
                           start_ns, end_ns, category="simcl",
                           **trace_attrs)
        return Event(command=command,
                     queued_ns=start_ns,
                     submit_ns=start_ns,
                     start_ns=start_ns,
                     end_ns=end_ns,
                     counters=counters, breakdown=breakdown,
                     _profiling_enabled=self.profiling,
                     device_name=self.device.name)

    # -- transfers ------------------------------------------------------------------

    def enqueue_write_buffer(self, buffer: Buffer,
                             hostbuf: np.ndarray) -> Event:
        """Copy host memory into a device buffer."""
        host = np.asarray(hostbuf)
        buffer.write_from(host)
        duration = transfer_time(host.nbytes, self.device.spec)
        registry = trace.get_registry()
        registry.counter("simcl.h2d_transfers").inc()
        registry.counter("simcl.h2d_bytes").inc(host.nbytes)
        return self._stamp(command_type.WRITE_BUFFER, duration,
                           bytes=host.nbytes)

    def enqueue_read_buffer(self, buffer: Buffer,
                            hostbuf: np.ndarray) -> Event:
        """Copy a device buffer back into host memory."""
        buffer.read_into(hostbuf)
        duration = transfer_time(hostbuf.nbytes, self.device.spec)
        registry = trace.get_registry()
        registry.counter("simcl.d2h_transfers").inc()
        registry.counter("simcl.d2h_bytes").inc(hostbuf.nbytes)
        return self._stamp(command_type.READ_BUFFER, duration,
                           bytes=hostbuf.nbytes)

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer,
                            nbytes: int | None = None) -> Event:
        """Device-to-device copy within the same (simulated) memory."""
        nbytes = min(src.size, dst.size) if nbytes is None else nbytes
        dst._data[:nbytes] = src._data[:nbytes]
        duration = nbytes / (self.device.spec.mem_bandwidth_gbs * 1e9)
        return self._stamp(command_type.COPY_BUFFER, duration,
                           bytes=nbytes)

    # -- kernels ----------------------------------------------------------------------

    def enqueue_nd_range_kernel(self, kernel: Kernel, global_size,
                                local_size=None) -> Event:
        """Execute a kernel over an NDRange and account its model time."""
        args = kernel.bound_args()
        with trace.span("enqueue_kernel", category="simcl",
                        kernel=kernel.name, device=self.device.name) as sp:
            engine = self.device.make_engine(kernel.program.ir)
            counters = engine.run(kernel.name, args, global_size,
                                  local_size)
            breakdown = kernel_time(counters, self.device.spec)
            sp.set_attr("sim_seconds", breakdown.total)
        trace.get_registry().counter("simcl.kernel_launches").inc()
        return self._stamp(command_type.NDRANGE_KERNEL, breakdown.total,
                           counters=counters, breakdown=breakdown,
                           kernel=kernel.name)

    def finish(self) -> None:
        """All SimCL commands are eager, so finish() is a no-op."""

    def flush(self) -> None:
        """No-op, as for :meth:`finish`."""

    def __repr__(self) -> str:
        return (f"<CommandQueue on {self.device.name!r} "
                f"clock={self.clock:.6f}s>")
