"""Analytic device performance model for SimCL.

The execution engines *functionally* execute every kernel and, while doing
so, fill a :class:`CostCounters` with dynamic counts: weighted ALU
operations, global/local memory traffic, memory *transactions* (derived
from the real per-warp address streams, so coalescing is measured, not
assumed), and barriers.  :func:`kernel_time` converts those counts into a
simulated execution time for a given :class:`DeviceSpec`.

The model is a standard throughput/roofline hybrid:

* **GPU**: compute time and memory time overlap, so the kernel time is
  ``max(compute, memory) + launch overhead``.  Compute throughput is
  ``compute_units x clock x ipc`` weighted-ops per second (fp64 ops are
  scaled by ``1/fp64_ratio``).  Memory time is
  ``transactions x segment_bytes / bandwidth``: scattered accesses cost
  whole segments, which is exactly why spmv sees a small fraction of the
  speedup EP sees — the first-order effect behind the spread in Figure 7.
* **CPU**: a serial/low-parallelism processor cannot overlap as deeply, so
  time is ``compute + memory`` with byte-accurate (not segment) traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .devicedb import DeviceSpec


@dataclass
class CostCounters:
    """Dynamic execution counts for one kernel launch (whole NDRange)."""

    work_items: int = 0
    work_groups: int = 0
    #: weighted ALU operations (1.0 == one fp32 add), excluding fp64
    alu_ops: float = 0.0
    #: weighted ALU operations executed in double precision
    fp64_ops: float = 0.0
    global_loads: int = 0
    global_stores: int = 0
    global_load_bytes: int = 0
    global_store_bytes: int = 0
    #: 128-byte-segment transactions measured from real address streams
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    local_accesses: int = 0
    barriers: int = 0

    def merge(self, other: "CostCounters") -> None:
        """Accumulate ``other`` into ``self`` (used across launches)."""
        for f in ("alu_ops", "fp64_ops", "global_loads", "global_stores",
                  "global_load_bytes", "global_store_bytes",
                  "global_load_transactions", "global_store_transactions",
                  "local_accesses", "barriers"):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        self.work_items = max(self.work_items, other.work_items)
        self.work_groups = max(self.work_groups, other.work_groups)

    @property
    def global_bytes(self) -> int:
        return self.global_load_bytes + self.global_store_bytes

    @property
    def global_transactions(self) -> int:
        return (self.global_load_transactions
                + self.global_store_transactions)

    def scaled(self, factor: float) -> "CostCounters":
        """A copy with every extensive quantity multiplied by ``factor``.

        Used to extrapolate simulated time when a benchmark runs a scaled
        problem size (see EXPERIMENTS.md).
        """
        c = CostCounters(work_items=int(self.work_items * factor),
                         work_groups=int(self.work_groups * factor))
        for f in ("alu_ops", "fp64_ops", "local_accesses", "barriers"):
            setattr(c, f, getattr(self, f) * factor)
        for f in ("global_loads", "global_stores", "global_load_bytes",
                  "global_store_bytes", "global_load_transactions",
                  "global_store_transactions"):
            setattr(c, f, int(getattr(self, f) * factor))
        return c


@dataclass
class TimeBreakdown:
    """Simulated kernel time with its components, in seconds."""

    compute: float
    memory: float
    barrier: float
    launch: float
    total: float


def kernel_time(counters: CostCounters, spec: DeviceSpec) -> TimeBreakdown:
    """Simulated execution time of one launch on ``spec``."""
    throughput = spec.compute_units * spec.clock_ghz * 1e9 * spec.ipc
    weighted_ops = counters.alu_ops
    if counters.fp64_ops:
        if spec.fp64_ratio <= 0:
            raise ValueError(
                f"{spec.name} does not support double precision")
        weighted_ops += counters.fp64_ops / spec.fp64_ratio
    # local memory traffic shares ALU issue slots
    weighted_ops += counters.local_accesses * spec.local_access_cost
    compute = weighted_ops / throughput

    bw = spec.mem_bandwidth_gbs * 1e9
    if spec.is_cpu:
        memory = counters.global_bytes / bw
    else:
        memory = counters.global_transactions * spec.segment_bytes / bw

    barrier = (counters.barriers * spec.barrier_cycles
               / (spec.clock_ghz * 1e9))
    launch = spec.launch_overhead_us * 1e-6

    if spec.is_cpu:
        total = compute + memory + barrier + launch
    else:
        total = max(compute, memory) + barrier + launch
    return TimeBreakdown(compute=compute, memory=memory, barrier=barrier,
                         launch=launch, total=total)


def transfer_time(nbytes: int, spec: DeviceSpec) -> float:
    """Simulated host<->device transfer time for ``nbytes``, seconds."""
    if nbytes <= 0:
        return spec.transfer_latency_us * 1e-6
    return (spec.transfer_latency_us * 1e-6
            + nbytes / (spec.transfer_gbs * 1e9))


# -- coalescing ----------------------------------------------------------------

def _count_segment_transactions(segments, warp_ids, warp_width: int):
    """Distinct ``(warp, segment)`` pairs for per-lane segment indices.

    ``warp_width`` is an optional caller promise that
    ``warp_ids == arange(n) // warp_width`` (every warp full, lanes
    warp-major) — the shape every engine produces when no lane is
    masked off.  It replaces the O(n log n) sort of combined keys with
    one short per-warp (axis-1) sort, or no sort at all when every
    warp's segments ascend (coalesced and strided accesses alike).
    """
    import numpy as np

    n = len(segments)
    if n == 1:
        return 1
    if segments.dtype.kind == "u":
        segments = segments.astype(np.int64, copy=False)
    if 0 < warp_width < n and n % warp_width == 0:
        seg2d = segments.reshape(n // warp_width, warp_width)
        deltas = seg2d[:, 1:] - seg2d[:, :-1]
        if not (deltas < 0).any():
            # every warp ascending: each within-warp segment change is
            # one extra transaction
            return (n // warp_width) + int(np.count_nonzero(deltas))
        rows = np.sort(seg2d, axis=1)
        return (n // warp_width) + int(
            np.count_nonzero(rows[:, 1:] != rows[:, :-1]))
    # distinct-count via sort: equivalent to np.unique(keys).size but
    # without the hash table; the sorted linear pass first because
    # already-ascending key streams are the common masked pattern
    keys = (warp_ids.astype(np.int64, copy=False) * (1 << 40)
            + segments.astype(np.int64, copy=False))
    deltas = keys[1:] - keys[:-1]
    if not (deltas < 0).any():
        return 1 + int(np.count_nonzero(deltas))
    keys.sort()
    return 1 + int(np.count_nonzero(keys[1:] != keys[:-1]))


def count_transactions(byte_addresses, warp_ids, segment_bytes: int,
                       warp_width: int = 0):
    """Number of memory transactions for a vector of accesses.

    ``byte_addresses`` and ``warp_ids`` are equal-length integer arrays:
    the byte address each active lane touches and the warp each lane
    belongs to.  A transaction is one distinct ``segment_bytes``-sized
    segment touched by one warp — the Fermi-style coalescing rule.
    """
    if len(byte_addresses) == 0:
        return 0
    return _count_segment_transactions(byte_addresses // segment_bytes,
                                       warp_ids, warp_width)


def count_index_transactions(indices, warp_ids, segment_bytes: int,
                             itemsize: int, warp_width: int = 0):
    """:func:`count_transactions` taking element indices + item size.

    Equivalent to ``count_transactions(indices * itemsize, ...)`` but,
    for the power-of-two sizes every OpenCL scalar type has, derives
    the segment of each access with a single shift instead of a
    multiply plus a divide — this runs on every load/store span of
    every launch, so the saved passes are measurable.
    """
    n = len(indices)
    if n == 0:
        return 0
    ratio = segment_bytes // itemsize
    if ratio > 0 and segment_bytes == itemsize * ratio \
            and not (ratio & (ratio - 1)):
        segments = indices >> ratio.bit_length() - 1 if ratio > 1 \
            else indices
    else:
        import numpy as np
        segments = (indices.astype(np.int64, copy=False)
                    * itemsize) // segment_bytes
    return _count_segment_transactions(segments, warp_ids, warp_width)
