"""Programs: OpenCL C source compiled for the context's devices."""

from __future__ import annotations

from ..clc import compile_source
from ..clc.ir import ProgramIR
from ..errors import BuildProgramFailure, CompileError, InvalidValue
from .context import Context
from .kernel_obj import Kernel


class Program:
    """Mirror of ``clCreateProgramWithSource`` + ``clBuildProgram``.

    ``build()`` runs the :mod:`repro.clc` compiler and then performs the
    per-device checks a vendor compiler would do (e.g. rejecting kernels
    that require ``cl_khr_fp64`` on a device without double support, which
    is exactly why the paper's EP benchmark cannot run on the Quadro FX
    380).  Diagnostics end up in :attr:`build_log`, like a real build log.
    """

    def __init__(self, context: Context, source: str) -> None:
        if not isinstance(context, Context):
            raise InvalidValue("first argument must be a Context")
        self.context = context
        self.source = source
        self.ir: ProgramIR | None = None
        self.build_log = ""
        self._built = False

    def build(self, options: str = "", devices=None) -> "Program":
        devices = list(devices) if devices is not None \
            else list(self.context.devices)
        try:
            self.ir = compile_source(self.source, options)
        except CompileError as exc:
            self.build_log = str(exc)
            raise BuildProgramFailure(str(exc), build_log=self.build_log) \
                from exc
        issues = []
        for dev in devices:
            for fn in self.ir.kernels.values():
                if fn.uses_fp64 and not dev.supports_fp64:
                    issues.append(
                        f"{dev.name}: kernel {fn.name!r} uses double "
                        "precision but the device does not support "
                        "cl_khr_fp64")
        if issues:
            self.build_log = "\n".join(issues)
            raise BuildProgramFailure(issues[0], build_log=self.build_log)
        self.build_log = "build succeeded"
        self._built = True
        return self

    @property
    def kernel_names(self) -> list[str]:
        self._require_built()
        return sorted(self.ir.kernels)

    def create_kernel(self, name: str) -> Kernel:
        """Mirror of ``clCreateKernel``."""
        self._require_built()
        if name not in self.ir.kernels:
            raise InvalidValue(f"no kernel {name!r} in program "
                               f"(have: {', '.join(self.kernel_names)})")
        return Kernel(self, name)

    def all_kernels(self) -> dict[str, Kernel]:
        return {name: self.create_kernel(name) for name in self.kernel_names}

    def _require_built(self) -> None:
        if not self._built:
            raise InvalidValue("program is not built; call build() first")

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"<Program {state}, {len(self.source)} chars>"
