"""Programs: OpenCL C source compiled for the context's devices."""

from __future__ import annotations

from .. import trace
from ..clc import compile_source, preprocess
from ..clc.ir import ProgramIR
from ..errors import (BuildProgramFailure, CompileError, InvalidDevice,
                      InvalidValue)
from .context import Context
from .faults import active_plan
from .kernel_obj import Kernel


def engine_signature_of(devices) -> str:
    """Cache-key component naming the execution backends ``devices``
    resolve to, with their codegen versions (``jit+cg1,vector+cg0``).

    Interpreters carry ``codegen_version = 0`` and produce no generated
    artifacts, but codegen backends cache source next to the IR — so the
    set of target backends (and each backend's codegen version) must be
    part of the compile key: switching engines mid-session or upgrading
    a backend's emitter can never serve a stale artifact.
    """
    from .engines.base import get_engine_class
    parts = set()
    for dev in devices:
        name = dev.engine_name
        cls = get_engine_class(name)
        parts.add(f"{name}+cg{getattr(cls, 'codegen_version', 0)}")
    return ",".join(sorted(parts))


def _disk_cache():
    """The process's persistent kernel cache, or None when disabled.

    Imported lazily: the cache lives in :mod:`repro.hpl.diskcache` (the
    layer that configures it), and ``repro.ocl`` must not depend on
    ``repro.hpl`` at import time.
    """
    from ..hpl import diskcache
    return diskcache.active_cache()


class Program:
    """Mirror of ``clCreateProgramWithSource`` + ``clBuildProgram``.

    ``build()`` runs the :mod:`repro.clc` compiler and then performs the
    per-device checks a vendor compiler would do (e.g. rejecting kernels
    that require ``cl_khr_fp64`` on a device without double support, which
    is exactly why the paper's EP benchmark cannot run on the Quadro FX
    380).  Build status and diagnostics are tracked **per device**, as
    ``clBuildProgram(devices=...)`` semantics require: :attr:`build_logs`
    maps device name to its latest log, :meth:`built_for` answers whether
    a device has an executable, and enqueueing a kernel on a device the
    program was never built for raises
    :class:`~repro.errors.InvalidProgramExecutable` (in the queue).

    When a persistent kernel cache is active (``HPL_CACHE_DIR`` or
    ``hpl.configure(cache_dir=...)``), the compile step is served from
    disk when possible: the cache key covers the preprocessed source,
    build options, compiler version, device fp64 caps, the middle-end
    configuration (opt level, pass-pipeline and bytecode versions) and
    the target execution backends (engine names + codegen versions), so
    a hit is always safe to reuse; per-device validation still runs on
    every build.

    The optimization level comes from the build options (``-O0``..
    ``-O3``, with ``-cl-opt-disable`` forcing ``-O0``) and otherwise
    from ``hpl.configure(opt_level=...)`` / ``$HPL_OPT_LEVEL``.
    """

    def __init__(self, context: Context, source: str) -> None:
        if not isinstance(context, Context):
            raise InvalidValue("first argument must be a Context")
        self.context = context
        self.source = source
        self.ir: ProgramIR | None = None
        #: device name -> diagnostics of that device's latest build
        self.build_logs: dict[str, str] = {}
        #: devices (by identity) holding a current program executable
        self._built_devices: set = set()
        self._last_log = ""

    # -- build ----------------------------------------------------------------

    def build(self, options: str = "", devices=None) -> "Program":
        devices = list(devices) if devices is not None \
            else list(self.context.devices)
        for dev in devices:
            if dev not in self.context.devices:
                raise InvalidDevice(
                    f"{dev.name} is not part of the program's context")

        plan = active_plan()
        if plan is not None:
            for dev in devices:
                error = plan.draw_build(dev.label)
                if error is not None:
                    # an injected build failure leaves the program
                    # unbuilt for the device, like any real one
                    self._built_devices.discard(dev)
                    self.build_logs[dev.name] = f"fault injected: {error}"
                    with trace.span("fault_inject", category="fault",
                                    device=dev.label, op="build",
                                    error=type(error).__name__):
                        pass
                    trace.get_registry().counter(
                        "simcl.faults_injected").inc()
                    raise error

        ir = self._compile(options, devices)

        issues: dict[str, list[str]] = {}
        for dev in devices:
            for fn in ir.kernels.values():
                if fn.uses_fp64 and not dev.supports_fp64:
                    issues.setdefault(dev.name, []).append(
                        f"{dev.name}: kernel {fn.name!r} uses double "
                        "precision but the device does not support "
                        "cl_khr_fp64")
        self.ir = ir
        for dev in devices:
            if dev.name in issues:
                self._built_devices.discard(dev)
                self.build_logs[dev.name] = "\n".join(issues[dev.name])
            else:
                self._built_devices.add(dev)
                self.build_logs[dev.name] = "build succeeded"
        if issues:
            flat = [msg for msgs in issues.values() for msg in msgs]
            self._last_log = "\n".join(flat)
            raise BuildProgramFailure(flat[0], build_log=self._last_log)
        self._last_log = "build succeeded"
        # backends with a build step of their own (the JIT's codegen)
        # run it now, as a vendor compiler would, instead of at the
        # first enqueue
        from .engines.base import get_engine_class
        for dev in devices:
            hook = getattr(get_engine_class(dev.engine_name),
                           "prebuild", None)
            if hook is not None:
                hook(ir, dev.spec)
        return self

    def _compile(self, options: str, devices) -> ProgramIR:
        """Front-end + middle-end run, served from the disk cache when
        possible.  Cached entries hold the *post-optimization* artifact
        (tree IR plus lowered bytecode), so a warm start runs zero
        compiles and zero optimization passes; the opt level is part of
        the cache key via :func:`repro.clc.passes.opt_signature`.

        A failed (re)build leaves the program consistently unbuilt: no
        IR, no built devices, and the failure log on every requested
        device — never a stale ``built`` flag over a failure log.
        """
        # lazy: repro.clc.passes reaches back into repro.ocl.engines for
        # C arithmetic semantics, so importing it at module scope would
        # be circular
        from ..clc.passes import (opt_signature, optimize_program,
                                  resolve_opt_level)

        opt_level = resolve_opt_level(options)
        cache = _disk_cache()
        key = None
        if cache is not None:
            try:
                preprocessed = preprocess(self.source, options)
            except CompileError:
                preprocessed = None     # report it through the build path
            if preprocessed is not None:
                caps = tuple(sorted(
                    {"fp64" if d.supports_fp64 else "nofp64"
                     for d in devices}))
                key = cache.key_of(preprocessed, options, caps,
                                   opt_signature(opt_level),
                                   engine_signature_of(devices))
                hit = cache.get(key)
                if hit is not None:
                    return hit
        try:
            ir = compile_source(self.source, options)
        except CompileError as exc:
            self.ir = None
            self._built_devices.clear()
            self._last_log = str(exc)
            for dev in devices:
                self.build_logs[dev.name] = self._last_log
            raise BuildProgramFailure(str(exc),
                                      build_log=self._last_log) from exc
        optimize_program(ir, opt_level)
        if cache is not None and key is not None:
            cache.put(key, ir)
        return ir

    # -- build status -------------------------------------------------------

    @property
    def build_log(self) -> str:
        """Diagnostics of the most recent :meth:`build` call (all
        requested devices combined); see :attr:`build_logs` for the
        per-device logs."""
        return self._last_log

    def built_for(self, device) -> bool:
        """Whether ``device`` holds a current executable of this program."""
        return self.ir is not None and device in self._built_devices

    @property
    def built_devices(self) -> list:
        """Devices with a current executable, in context order."""
        return [d for d in self.context.devices if self.built_for(d)]

    @property
    def _built(self) -> bool:
        """Back-compat view: built for at least one device."""
        return self.ir is not None and bool(self._built_devices)

    # -- kernels ------------------------------------------------------------

    @property
    def kernel_names(self) -> list[str]:
        self._require_built()
        return sorted(self.ir.kernels)

    def create_kernel(self, name: str) -> Kernel:
        """Mirror of ``clCreateKernel``."""
        self._require_built()
        if name not in self.ir.kernels:
            raise InvalidValue(f"no kernel {name!r} in program "
                               f"(have: {', '.join(self.kernel_names)})")
        return Kernel(self, name)

    def all_kernels(self) -> dict[str, Kernel]:
        return {name: self.create_kernel(name) for name in self.kernel_names}

    def _require_built(self) -> None:
        if not self._built:
            raise InvalidValue("program is not built for any device; "
                               "call build() first")

    def __repr__(self) -> str:
        if self._built:
            names = ", ".join(d.name for d in self.built_devices)
            state = f"built for [{names}]"
        else:
            state = "unbuilt"
        return f"<Program {state}, {len(self.source)} chars>"
