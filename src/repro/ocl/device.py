"""Device objects exposed by the SimCL platform."""

from __future__ import annotations

from .devicedb import DeviceSpec
from .engines.base import default_engine, get_engine_class


class Device:
    """One simulated compute device.

    Mirrors the informational surface of ``clGetDeviceInfo`` and selects
    the execution engine used for kernels enqueued to it.  Engines come
    from the :mod:`repro.ocl.engines.base` registry; pass ``engine=`` for
    an explicit choice, set ``engine`` on the :class:`DeviceSpec` for a
    per-device default, or leave both unset to track the process-wide
    default (``hpl.configure(engine=)`` / ``$HPL_ENGINE`` / ``vector``).
    The unset case re-resolves on every launch, so reconfiguring the
    default mid-session affects already-constructed devices.

    ``index`` is the device's position in the platform roster.  Two
    devices of the same model share a *name* but never an index, so
    :attr:`label` is the identity to key per-device accounting by
    (timeline buckets, trace rows); keying by ``name`` merges same-model
    devices into one bucket.
    """

    def __init__(self, spec: DeviceSpec, engine: str | None = None,
                 index: int | None = None) -> None:
        if engine is not None:
            get_engine_class(engine)    # unknown name -> helpful error now
        self.spec = spec
        self._engine = engine
        self.index = index

    @property
    def engine_name(self) -> str:
        """The resolved backend name: explicit ``Device(engine=)`` >
        ``DeviceSpec.engine`` > process default."""
        if self._engine is not None:
            return self._engine
        spec_engine = getattr(self.spec, "engine", None)
        if spec_engine is not None:
            return spec_engine
        return default_engine()

    # -- clGetDeviceInfo-style properties -----------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def label(self) -> str:
        """Unique identity: the name suffixed with the roster index.

        Directly-constructed devices (no roster) keep the bare name.
        """
        if self.index is None:
            return self.spec.name
        return f"{self.spec.name}#{self.index}"

    @property
    def vendor(self) -> str:
        return self.spec.vendor

    @property
    def type(self):
        return self.spec.type

    @property
    def max_compute_units(self) -> int:
        return self.spec.compute_units

    @property
    def max_clock_frequency(self) -> int:
        """In MHz, like the real query."""
        return int(self.spec.clock_ghz * 1000)

    @property
    def global_mem_size(self) -> int:
        return self.spec.global_mem_bytes

    @property
    def local_mem_size(self) -> int:
        return self.spec.local_mem_bytes

    @property
    def max_work_group_size(self) -> int:
        return self.spec.max_work_group_size

    @property
    def max_work_item_sizes(self) -> tuple:
        return self.spec.max_work_item_sizes

    @property
    def max_constant_buffer_size(self) -> int:
        return self.spec.max_constant_buffer_bytes

    @property
    def extensions(self) -> str:
        return self.spec.extensions

    @property
    def supports_fp64(self) -> bool:
        return self.spec.has_fp64

    @property
    def is_cpu(self) -> bool:
        return self.spec.is_cpu

    @property
    def is_gpu(self) -> bool:
        from .api import device_type
        return bool(self.spec.type & device_type.GPU)

    def make_engine(self, program):
        return get_engine_class(self.engine_name)(program, self.spec)

    def __repr__(self) -> str:
        return f"<Device {self.name!r} ({self.engine_name} engine)>"
