"""Deterministic fault injection for the simulated platform.

A :class:`FaultPlan` describes *when and how* simulated devices
misbehave.  Queues consult the active plan before running each command
and surface injected faults as real OpenCL-style event error statuses
(negative ``cl_int`` codes on :class:`~repro.ocl.event.Event`), so host
code sees exactly what a flaky driver would give it; ``Program.build``
consults it too for transient build failures.

Three clause kinds are supported:

``lost``
    The device dies permanently once its simulated clock reaches
    ``at=`` seconds (default 0, i.e. immediately).  Every command from
    then on fails with ``DEVICE_NOT_AVAILABLE`` / :class:`DeviceLost`.

``transient``
    A specific operation fails once (or ``count=`` consecutive times)
    and then works again — the model for recoverable driver hiccups.
    Select the victim either deterministically (``nth=K``: the K-th
    matching operation, 1-based) or probabilistically (``prob=P`` with
    a seeded per-clause RNG).  ``code=oor`` (default) fails with
    ``OUT_OF_RESOURCES``; ``code=lost`` with ``DEVICE_NOT_AVAILABLE``.

``slow``
    Straggler mode: every matching command's simulated duration is
    multiplied by ``factor=``.  Commands still succeed.

Plans come from :func:`configure` (programmatically, or via
``hpl.configure(faults=...)``) or the ``HPL_FAULTS`` environment
variable, and are written in a tiny one-line grammar — semicolon
separated clauses of ``key=value`` tokens::

    device=Quadro#1 kind=lost at=0.5
    device=Tesla kind=transient op=kernel nth=2 count=2 code=oor
    device=* kind=slow factor=4; seed=7

``device=`` matches case-insensitively against a substring of the
device's unique ``name#index`` label (``*`` matches every device), and
``op=`` is one of ``kernel read write copy marker build any``.
See ``docs/faults.md`` for the full grammar.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field

from ..errors import DeviceLost, FaultPlanError, OutOfResources
from .api import command_status, command_type

#: environment variable consulted on first use when no plan was configured
ENV_VAR = "HPL_FAULTS"

_OPS = ("kernel", "read", "write", "copy", "marker", "build", "any")

_OP_OF_COMMAND = {
    command_type.NDRANGE_KERNEL: "kernel",
    command_type.READ_BUFFER: "read",
    command_type.WRITE_BUFFER: "write",
    command_type.COPY_BUFFER: "copy",
    command_type.MARKER: "marker",
}


def op_name(command: command_type) -> str:
    """The fault-grammar operation name for a queue command type."""
    return _OP_OF_COMMAND.get(command, "other")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause (see the module docstring for semantics)."""

    device: str                     #: label fragment, or ``*`` for all
    kind: str                       #: ``lost`` | ``transient`` | ``slow``
    op: str = "any"
    at: float = 0.0                 #: lost: onset on the simulated clock
    nth: int | None = None          #: transient: 1-based victim index
    prob: float | None = None       #: transient: iid failure probability
    count: int = 1                  #: transient: consecutive failures
    code: str = "oor"               #: ``oor`` | ``lost``
    factor: float = 1.0             #: slow: duration multiplier
    seed: int | None = None         #: per-clause RNG seed override

    def matches_device(self, label: str) -> bool:
        return self.device == "*" or self.device.lower() in label.lower()

    def matches_op(self, op: str) -> bool:
        return self.op == "any" or self.op == op


@dataclass
class Injection:
    """What :meth:`FaultPlan.draw` decided: status code + exception."""

    status: command_status
    error: BaseException
    kind: str                       #: ``lost`` or ``transient``


_CODES = {
    "oor": (command_status.OUT_OF_RESOURCES, OutOfResources),
    "lost": (command_status.DEVICE_NOT_AVAILABLE, DeviceLost),
}


def _injection(code: str, kind: str, label: str, op: str) -> Injection:
    status, exc_type = _CODES[code]
    return Injection(status, exc_type(
        f"injected {kind} fault: {op} on {label}"), kind)


class FaultPlan:
    """A deterministic, seedable schedule of device faults.

    The plan holds both the parsed clauses and the mutable bookkeeping
    that makes injection deterministic: per-clause operation counters,
    per-clause seeded RNGs (for ``prob=`` clauses) and the set of
    devices that have already died.  :meth:`reset` rewinds all of it so
    one plan can drive several independent runs identically.
    """

    def __init__(self, specs, seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        for spec in self.specs:
            _validate(spec)
        self._lock = threading.Lock()
        self.reset()

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the one-line ``HPL_FAULTS`` grammar."""
        specs = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kv = {}
            for token in clause.split():
                if "=" not in token:
                    raise FaultPlanError(
                        f"fault clause token {token!r} is not key=value "
                        f"(in clause {clause!r})")
                key, value = token.split("=", 1)
                if key in kv:
                    raise FaultPlanError(
                        f"duplicate key {key!r} in fault clause {clause!r}")
                kv[key] = value
            if set(kv) == {"seed"}:
                seed = _parse_int(kv["seed"], "seed", clause)
                continue
            specs.append(_spec_from_kv(kv, clause))
        return cls(specs, seed=seed)

    def reset(self) -> None:
        """Rewind all injection state (counters, RNGs, dead devices)."""
        with self._lock:
            self._counts = [0] * len(self.specs)
            self._lost: set[str] = set()
            self._rngs = [
                random.Random(spec.seed if spec.seed is not None
                              else (self.seed * 1000003 + i))
                for i, spec in enumerate(self.specs)]

    # -- queries ------------------------------------------------------------

    def is_lost(self, label: str) -> bool:
        """Has ``label`` already died under this plan?"""
        return label in self._lost

    def slow_factor(self, label: str, op: str) -> float:
        """Combined straggler slowdown for one command (1.0 = none)."""
        factor = 1.0
        for spec in self.specs:
            if (spec.kind == "slow" and spec.matches_device(label)
                    and spec.matches_op(op)):
                factor *= spec.factor
        return factor

    def draw(self, label: str, op: str,
             start_seconds: float) -> Injection | None:
        """Decide the fate of one command about to run.

        Mutates plan state (operation counters, RNG streams, the dead
        set), so call exactly once per command attempt.  Returns an
        :class:`Injection` to fail the command, or None to let it run.
        """
        with self._lock:
            if label in self._lost:
                return _injection("lost", "lost", label, op)
            for i, spec in enumerate(self.specs):
                if not (spec.matches_device(label)
                        and spec.matches_op(op)):
                    continue
                if spec.kind == "lost":
                    if start_seconds >= spec.at:
                        self._lost.add(label)
                        return _injection("lost", "lost", label, op)
                elif spec.kind == "transient":
                    self._counts[i] += 1
                    seen = self._counts[i]
                    if spec.nth is not None:
                        if spec.nth <= seen < spec.nth + spec.count:
                            return _injection(spec.code, "transient",
                                              label, op)
                    elif self._rngs[i].random() < spec.prob:
                        return _injection(spec.code, "transient",
                                          label, op)
        return None

    def draw_build(self, label: str) -> BaseException | None:
        """Like :meth:`draw` for a program build on ``label``."""
        injection = self.draw(label, "build", 0.0)
        return injection.error if injection is not None else None

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
                f"lost={sorted(self._lost)}>")


# -- clause parsing helpers -------------------------------------------------

def _parse_int(value: str, key: str, clause: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise FaultPlanError(
            f"{key}={value!r} is not an integer (in clause "
            f"{clause!r})") from None


def _parse_float(value: str, key: str, clause: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultPlanError(
            f"{key}={value!r} is not a number (in clause "
            f"{clause!r})") from None


_SPEC_KEYS = {"device", "kind", "op", "at", "nth", "prob", "count",
              "code", "factor", "seed"}


def _spec_from_kv(kv: dict, clause: str) -> FaultSpec:
    unknown = set(kv) - _SPEC_KEYS
    if unknown:
        raise FaultPlanError(
            f"unknown key(s) {sorted(unknown)} in fault clause {clause!r}")
    if "kind" not in kv:
        raise FaultPlanError(f"fault clause {clause!r} has no kind=")
    if "device" not in kv:
        raise FaultPlanError(f"fault clause {clause!r} has no device=")
    return FaultSpec(
        device=kv["device"],
        kind=kv["kind"],
        op=kv.get("op", "any"),
        at=_parse_float(kv["at"], "at", clause) if "at" in kv else 0.0,
        nth=_parse_int(kv["nth"], "nth", clause) if "nth" in kv else None,
        prob=(_parse_float(kv["prob"], "prob", clause)
              if "prob" in kv else None),
        count=_parse_int(kv["count"], "count", clause)
        if "count" in kv else 1,
        code=kv.get("code", "oor"),
        factor=(_parse_float(kv["factor"], "factor", clause)
                if "factor" in kv else 1.0),
        seed=_parse_int(kv["seed"], "seed", clause) if "seed" in kv else None,
    )


def _validate(spec: FaultSpec) -> None:
    if spec.kind not in ("lost", "transient", "slow"):
        raise FaultPlanError(
            f"unknown fault kind {spec.kind!r} (expected lost, "
            f"transient, or slow)")
    if spec.op not in _OPS:
        raise FaultPlanError(
            f"unknown fault op {spec.op!r} (expected one of "
            f"{', '.join(_OPS)})")
    if spec.code not in _CODES:
        raise FaultPlanError(
            f"unknown fault code {spec.code!r} (expected oor or lost)")
    if spec.kind == "transient" and spec.nth is not None \
            and spec.prob is not None:
        raise FaultPlanError(
            "a transient clause takes nth= or prob=, not both")
    if spec.nth is not None and spec.nth < 1:
        raise FaultPlanError(f"nth={spec.nth} must be >= 1 (1-based)")
    if spec.prob is not None and not 0.0 < spec.prob <= 1.0:
        raise FaultPlanError(f"prob={spec.prob} must be in (0, 1]")
    if spec.count < 1:
        raise FaultPlanError(f"count={spec.count} must be >= 1")
    if spec.factor < 1.0:
        raise FaultPlanError(
            f"factor={spec.factor} must be >= 1 (slowdowns only)")


# -- process-wide active plan ----------------------------------------------

_active: FaultPlan | None = None
_configured = False
_config_lock = threading.Lock()


def configure(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Install (or clear, with None) the process-wide fault plan.

    Accepts a ready :class:`FaultPlan` or a plan string in the
    ``HPL_FAULTS`` grammar.  Once called, the environment variable is
    no longer consulted.  Returns the installed plan.
    """
    global _active, _configured
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    elif plan is not None and not isinstance(plan, FaultPlan):
        raise FaultPlanError(
            f"faults must be a FaultPlan, a plan string, or None, "
            f"got {plan!r}")
    with _config_lock:
        _active = plan
        _configured = True
    return plan


def active_plan() -> FaultPlan | None:
    """The plan queues consult, honouring ``HPL_FAULTS`` on first use."""
    global _active, _configured
    if _configured:
        return _active
    with _config_lock:
        if not _configured:
            text = os.environ.get(ENV_VAR, "").strip()
            _active = FaultPlan.parse(text) if text else None
            _configured = True
    return _active


def _reset_for_tests() -> None:
    """Forget any configured plan so ``HPL_FAULTS`` is re-read."""
    global _active, _configured
    with _config_lock:
        _active = None
        _configured = False
