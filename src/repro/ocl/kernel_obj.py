"""Kernel objects: argument binding ahead of enqueue."""

from __future__ import annotations

import numbers

import numpy as np

from ..clc.types import PointerType, ScalarType
from ..errors import InvalidKernelArgs, InvalidValue
from .buffer import Buffer, LocalMemory
from .engines.base import BufferBinding, LocalBinding, ScalarBinding


class Kernel:
    """Mirror of ``cl_kernel``: a kernel entry point plus bound arguments."""

    def __init__(self, program, name: str) -> None:
        self.program = program
        self.name = name
        self.function = program.ir.functions[name]
        self._args: list = [None] * len(self.function.params)

    @property
    def num_args(self) -> int:
        return len(self.function.params)

    def set_arg(self, index: int, value) -> None:
        """Bind one argument (``clSetKernelArg``)."""
        if not 0 <= index < self.num_args:
            raise InvalidValue(
                f"kernel {self.name!r} has {self.num_args} arguments; "
                f"index {index} is out of range")
        param = self.function.params[index]
        ptype = param.type
        if isinstance(ptype, ScalarType):
            if isinstance(value, (Buffer, LocalMemory)):
                raise InvalidKernelArgs(
                    f"argument {param.name!r} expects a scalar")
            if not isinstance(value, (numbers.Number, np.generic)):
                raise InvalidKernelArgs(
                    f"argument {param.name!r}: cannot pass "
                    f"{type(value).__name__} as a scalar")
            self._args[index] = ScalarBinding(value, ptype)
        elif isinstance(ptype, PointerType):
            if ptype.address_space == "local":
                if not isinstance(value, LocalMemory):
                    raise InvalidKernelArgs(
                        f"argument {param.name!r} is a __local pointer; "
                        "pass LocalMemory(nbytes)")
                self._args[index] = LocalBinding(value.nbytes)
            else:
                if not isinstance(value, Buffer):
                    raise InvalidKernelArgs(
                        f"argument {param.name!r} expects a Buffer")
                elem = ptype.pointee.np_dtype
                self._args[index] = BufferBinding(
                    value.view(elem), ptype.address_space)
        else:  # pragma: no cover - signatures exclude other types
            raise InvalidKernelArgs(f"unsupported parameter type {ptype}")

    def set_args(self, *values) -> "Kernel":
        """Bind all arguments at once; returns self for chaining."""
        if len(values) != self.num_args:
            raise InvalidKernelArgs(
                f"kernel {self.name!r} expects {self.num_args} "
                f"argument(s), got {len(values)}")
        for i, v in enumerate(values):
            self.set_arg(i, v)
        return self

    def bound_args(self) -> list:
        missing = [p.name for p, a in zip(self.function.params, self._args)
                   if a is None]
        if missing:
            raise InvalidKernelArgs(
                f"kernel {self.name!r} has unbound argument(s): "
                + ", ".join(missing))
        return list(self._args)

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r} ({self.num_args} args)>"
