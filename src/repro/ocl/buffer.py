"""Device memory objects."""

from __future__ import annotations

import numpy as np

from ..errors import InvalidMemObject, InvalidValue, OutOfResources
from .api import mem_flags
from .context import Context


class Buffer:
    """A device buffer, as created by ``clCreateBuffer``.

    The backing store is a byte array on the host (we *are* the device).
    ``hostbuf`` with ``COPY_HOST_PTR`` seeds the contents; ``USE_HOST_PTR``
    aliases the host array so kernel writes are visible in place (zero-copy,
    as CPU OpenCL implementations do).
    """

    def __init__(self, context: Context, flags: mem_flags = mem_flags.READ_WRITE,
                 size: int | None = None, hostbuf: np.ndarray | None = None) -> None:
        if not isinstance(context, Context):
            raise InvalidValue("first argument must be a Context")
        self.context = context
        self.flags = flags

        if hostbuf is not None:
            hostbuf = np.ascontiguousarray(hostbuf)
            if size is None:
                size = hostbuf.nbytes
            elif size != hostbuf.nbytes:
                raise InvalidValue(
                    f"size {size} does not match hostbuf ({hostbuf.nbytes} B)")
        if size is None or size <= 0:
            raise InvalidValue("buffer size must be positive")
        limit = min(d.global_mem_size for d in context.devices)
        if size > limit:
            raise OutOfResources(
                f"buffer of {size} B exceeds device memory ({limit} B)")
        self.size = int(size)

        if hostbuf is not None and flags & mem_flags.USE_HOST_PTR:
            self._data = hostbuf.reshape(-1).view(np.uint8)
        else:
            self._data = np.zeros(self.size, dtype=np.uint8)
            if hostbuf is not None and flags & mem_flags.COPY_HOST_PTR:
                self._data[:] = hostbuf.reshape(-1).view(np.uint8)

    # -- host access used by the queue -----------------------------------------

    def view(self, dtype) -> np.ndarray:
        """The buffer contents viewed as a 1-D array of ``dtype``."""
        dtype = np.dtype(dtype)
        if self.size % dtype.itemsize:
            raise InvalidMemObject(
                f"buffer of {self.size} B cannot be viewed as {dtype}")
        return self._data.view(dtype)

    def read_into(self, out: np.ndarray) -> None:
        out = out.reshape(-1)
        nbytes = out.nbytes
        if nbytes > self.size:
            raise InvalidValue(
                f"read of {nbytes} B exceeds buffer size {self.size}")
        out.view(np.uint8)[:] = self._data[:nbytes]

    def write_from(self, src: np.ndarray) -> None:
        src = np.ascontiguousarray(src).reshape(-1)
        nbytes = src.nbytes
        if nbytes > self.size:
            raise InvalidValue(
                f"write of {nbytes} B exceeds buffer size {self.size}")
        self._data[:nbytes] = src.view(np.uint8)

    def __repr__(self) -> str:
        return f"<Buffer {self.size} B flags={self.flags!r}>"


class LocalMemory:
    """Size-only kernel argument for ``__local`` pointer parameters
    (``clSetKernelArg(kernel, i, nbytes, NULL)``)."""

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise InvalidValue("local memory size must be positive")
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:
        return f"<LocalMemory {self.nbytes} B>"
