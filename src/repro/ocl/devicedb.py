"""Device specifications for the SimCL platform.

The registry models the three processors of the paper's evaluation
(Section V):

* an NVIDIA **Tesla C2050/C2070** — "448 thread processors with a clock rate
  of 1.15 GHz and 6 GB of DRAM",
* an NVIDIA **Quadro FX 380** — "16 thread processors with a clock rate of
  700 MHz and 256 MB of DRAM", no double-precision support,
* the host: "4x Dual-Core Intel 2.13 GHz Xeon processors".

The remaining parameters (bandwidths, launch overhead, fp64 throughput
ratio) come from the public datasheets of those parts and were calibrated
*once* against the two speedup end-points the paper reports (EP ≈ 257x,
spmv ≈ 5.4x, Figure 7); every experiment reuses them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .api import device_type


@dataclass(frozen=True)
class DeviceSpec:
    """Static description + performance model parameters of one device."""

    name: str
    type: device_type
    vendor: str = "SimCL"
    #: number of scalar processing elements working in parallel
    compute_units: int = 1
    #: core clock in GHz
    clock_ghz: float = 1.0
    #: sustained instructions-per-clock of one processing element
    ipc: float = 1.0
    #: fp64 throughput as a fraction of fp32 throughput (0 => unsupported)
    fp64_ratio: float = 0.5
    #: sustained global-memory bandwidth, GB/s
    mem_bandwidth_gbs: float = 10.0
    #: global memory size in bytes
    global_mem_bytes: int = 1 << 30
    #: scratchpad (local) memory available per work-group, bytes
    local_mem_bytes: int = 48 * 1024
    max_work_group_size: int = 1024
    max_work_item_sizes: tuple = (1024, 1024, 64)
    #: per-buffer ``__constant`` size limit (OpenCL minimum: 64 KB)
    max_constant_buffer_bytes: int = 64 * 1024
    #: fixed kernel-launch overhead, microseconds
    launch_overhead_us: float = 8.0
    #: host<->device interconnect bandwidth, GB/s (PCIe for GPUs)
    transfer_gbs: float = 5.0
    #: one-off latency per host<->device transfer, microseconds
    transfer_latency_us: float = 15.0
    #: memory transaction (coalescing segment) size in bytes
    segment_bytes: int = 128
    #: SIMD width for the coalescing model
    warp_size: int = 32
    #: throughput penalty for local-memory traffic relative to registers
    local_access_cost: float = 1.0
    #: cycles a work-group barrier costs
    barrier_cycles: float = 32.0
    #: per-device execution-backend override; ``None`` tracks the
    #: process-wide default (see :mod:`repro.ocl.engines.base`)
    engine: str | None = None

    @property
    def has_fp64(self) -> bool:
        return self.fp64_ratio > 0.0

    @property
    def is_cpu(self) -> bool:
        return bool(self.type & device_type.CPU)

    @property
    def extensions(self) -> str:
        exts = ["cl_khr_global_int32_base_atomics"]
        if self.has_fp64:
            exts.append("cl_khr_fp64")
        return " ".join(exts)


#: The Tesla C2050/C2070 of Section V-B.
TESLA_C2050 = DeviceSpec(
    name="SimCL Tesla C2050/C2070",
    type=device_type.GPU,
    vendor="SimCL (modeling NVIDIA)",
    compute_units=448,
    clock_ghz=1.15,
    ipc=1.0,
    fp64_ratio=0.5,
    mem_bandwidth_gbs=144.0,
    global_mem_bytes=6 * (1 << 30),
    local_mem_bytes=48 * 1024,
    max_work_group_size=1024,
    launch_overhead_us=8.0,
    transfer_gbs=5.5,
)

#: The Quadro FX 380 of Section V-C (16 PEs @ 700 MHz, 256 MB, no fp64).
QUADRO_FX380 = DeviceSpec(
    name="SimCL Quadro FX 380",
    type=device_type.GPU,
    vendor="SimCL (modeling NVIDIA)",
    compute_units=16,
    clock_ghz=0.70,
    ipc=1.0,
    fp64_ratio=0.0,
    mem_bandwidth_gbs=22.4,
    global_mem_bytes=256 * (1 << 20),
    local_mem_bytes=16 * 1024,
    max_work_group_size=512,
    launch_overhead_us=10.0,
    transfer_gbs=2.5,
)

#: The host of Section V-B ("4x Dual-Core Intel 2.13 GHz Xeon"), used both
#: as an OpenCL CPU device and as the serial baseline (1 core).
XEON_HOST = DeviceSpec(
    name="SimCL Xeon E5606 Host",
    type=device_type.CPU,
    vendor="SimCL (modeling Intel)",
    compute_units=8,
    clock_ghz=2.13,
    ipc=2.0,
    fp64_ratio=1.0,
    mem_bandwidth_gbs=12.8,
    global_mem_bytes=16 * (1 << 30),
    local_mem_bytes=32 * 1024,
    max_work_group_size=1024,
    launch_overhead_us=2.0,
    transfer_gbs=20.0,      # "transfers" on a CPU device are memcpys
    transfer_latency_us=1.0,
    warp_size=1,
    segment_bytes=64,
    barrier_cycles=200.0,
)

#: One serial core of the host - the baseline of Figures 6 and 7.
#: ``ipc=0.5`` is the calibration constant fixed in DESIGN.md §1: scalar,
#: non-vectorised g++ output on a 2006-era Xeon sustains well under one
#: weighted op per cycle on these kernels (division/transcendental-heavy,
#: dependent chains).  This single value reproduces both published
#: end-points of Figure 7 (EP ~257x, spmv ~5.4x) and is then reused
#: unchanged for every other experiment.
XEON_SERIAL = replace(
    XEON_HOST,
    name="SimCL Xeon (serial baseline)",
    compute_units=1,
    ipc=0.5,
    launch_overhead_us=0.0,
)

#: Default platform layout: what the paper's test machine exposes.
DEFAULT_DEVICES = (TESLA_C2050, QUADRO_FX380, XEON_HOST)


def spec_by_name(name: str) -> DeviceSpec:
    """Look up one of the registered specs by (exact) name."""
    for spec in (TESLA_C2050, QUADRO_FX380, XEON_HOST, XEON_SERIAL):
        if spec.name == name:
            return spec
    raise KeyError(name)
