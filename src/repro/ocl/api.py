"""Constants mirroring the OpenCL 1.x host API enums used by SimCL."""

from __future__ import annotations

from enum import IntEnum, IntFlag


class mem_flags(IntFlag):
    """``cl_mem_flags`` for :class:`repro.ocl.buffer.Buffer`."""

    READ_WRITE = 1 << 0
    WRITE_ONLY = 1 << 1
    READ_ONLY = 1 << 2
    USE_HOST_PTR = 1 << 3
    ALLOC_HOST_PTR = 1 << 4
    COPY_HOST_PTR = 1 << 5


class device_type(IntFlag):
    """``cl_device_type`` selectors for :meth:`Platform.get_devices`."""

    DEFAULT = 1 << 0
    CPU = 1 << 1
    GPU = 1 << 2
    ACCELERATOR = 1 << 3
    ALL = 0xFFFFFFFF


class command_type(IntFlag):
    """What a queue entry did - surfaced on events for tests/inspection."""

    NDRANGE_KERNEL = 1 << 0
    READ_BUFFER = 1 << 1
    WRITE_BUFFER = 1 << 2
    COPY_BUFFER = 1 << 3
    MARKER = 1 << 4


class command_status(IntEnum):
    """``cl_int`` execution status of a command, as events report it.

    Mirrors ``CL_QUEUED``/``CL_SUBMITTED``/``CL_RUNNING``/``CL_COMPLETE``
    (3/2/1/0) so comparisons like ``status <= command_status.RUNNING``
    mean "at least running", exactly as with the real constants.

    As in OpenCL, an *abnormally terminated* command reports a negative
    ``cl_int`` error code instead of ``COMPLETE``; events whose commands
    failed (or whose dependencies failed — errors propagate through
    ``wait_for=`` chains) carry one of the negative members below.
    """

    COMPLETE = 0
    RUNNING = 1
    SUBMITTED = 2
    QUEUED = 3
    #: the command's device died (``CL_DEVICE_NOT_AVAILABLE``)
    DEVICE_NOT_AVAILABLE = -2
    #: transient resource exhaustion (``CL_OUT_OF_RESOURCES``)
    OUT_OF_RESOURCES = -5
    #: the command was cancelled before it ran (SimCL extension — real
    #: OpenCL has no cancellation, so this uses a code outside the
    #: spec's range; negative so ``is_failed`` machinery composes)
    CANCELLED = -999


class queue_properties(IntFlag):
    """``cl_command_queue_properties`` bits SimCL understands."""

    OUT_OF_ORDER_EXEC_MODE_ENABLE = 1 << 0
    PROFILING_ENABLE = 1 << 1


#: barrier() flag bits (match the values sema gives the CLK_* constants)
CLK_LOCAL_MEM_FENCE = 1
CLK_GLOBAL_MEM_FENCE = 2
