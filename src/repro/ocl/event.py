"""Events: command status, dependencies and (simulated-time) profiling."""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import trace
from ..errors import (CLError, ProfilingDisabledError,
                      ProfilingInfoNotAvailable)
from .api import command_status, command_type
from .costmodel import CostCounters, TimeBreakdown


@dataclass
class Event:
    """Returned by every enqueue; carries status and simulated profiling.

    Events follow the OpenCL lifecycle ``QUEUED -> SUBMITTED -> RUNNING
    -> COMPLETE``.  On an eager queue every event is born COMPLETE (the
    command ran inside the enqueue call); on a deferred queue the event
    stays QUEUED until the queue flushes, the event is waited on, or a
    dependent command needs it.

    A command that fails — through fault injection or a failed
    dependency — terminates abnormally: its event's status becomes a
    *negative* error code (see :class:`command_status`), :attr:`error`
    holds the exception, :meth:`wait` raises it, and callbacks fire
    with the failed event, exactly as ``clSetEventCallback`` promises.

    Times are in nanoseconds on the device's simulated timeline, mirroring
    ``clGetEventProfilingInfo``.  Kernel events additionally expose the
    dynamic :class:`CostCounters` and the :class:`TimeBreakdown` the cost
    model produced — introspection a real driver does not give you.
    """

    command: command_type
    queued_ns: int = 0
    submit_ns: int = 0
    start_ns: int = 0
    end_ns: int = 0
    counters: CostCounters | None = None
    breakdown: TimeBreakdown | None = None
    status: command_status = command_status.COMPLETE
    #: events this command waited on (its incoming DAG edges)
    wait_list: tuple = ()
    #: the exception behind a negative status, if the command failed
    error: BaseException | None = field(default=None, repr=False,
                                        compare=False)
    _profiling_enabled: bool = field(default=True, repr=False)
    #: name of the device whose queue produced this event (diagnostics)
    device_name: str = field(default="", repr=False)
    #: unique identity of that device (``name#index``); unlike
    #: ``device_name`` it distinguishes two devices of the same model,
    #: so per-device accounting must key by it
    device_label: str = field(default="", repr=False)
    #: owning queue, set for deferred commands so wait() can drive them
    _queue: object = field(default=None, repr=False, compare=False)
    _callbacks: list = field(default_factory=list, repr=False,
                             compare=False)

    def _check(self) -> None:
        if not self._profiling_enabled:
            where = (f"the queue on {self.device_name!r}"
                     if self.device_name else "the queue")
            raise ProfilingDisabledError(
                f"profiling info requested for a "
                f"{self.command.name} event, but {where} was created "
                f"with profiling=False")
        if self.is_failed:
            raise ProfilingInfoNotAvailable(
                f"{self.command.name} event failed with "
                f"{self.status.name}; no profiling info exists for an "
                f"abnormally terminated command")
        if self.status is not command_status.COMPLETE:
            raise ProfilingInfoNotAvailable(
                f"{self.command.name} event is {self.status.name}, not "
                f"COMPLETE; call wait() (or flush the queue) before "
                f"reading profiling info")

    @property
    def is_complete(self) -> bool:
        return self.status is command_status.COMPLETE

    @property
    def is_failed(self) -> bool:
        """True when the command terminated abnormally (negative status)."""
        return int(self.status) < 0

    @property
    def is_cancelled(self) -> bool:
        """True when the command was cancelled before its payload ran
        (directly via :meth:`cancel`, or through a cancelled dependency)."""
        return self.status is command_status.CANCELLED

    @property
    def profile_start(self) -> int:
        self._check()
        return self.start_ns

    @property
    def profile_end(self) -> int:
        self._check()
        return self.end_ns

    @property
    def duration_ns(self) -> int:
        self._check()
        return self.end_ns - self.start_ns

    @property
    def duration(self) -> float:
        """Simulated duration in seconds."""
        return self.duration_ns * 1e-9

    # -- completion ---------------------------------------------------------

    def add_callback(self, fn) -> "Event":
        """Call ``fn(event)`` when the event reaches a terminal state.

        Mirrors ``clSetEventCallback(CL_COMPLETE)``: the callback fires
        on successful completion *and* on abnormal termination (check
        ``event.is_failed``); if the event is already terminal it fires
        immediately.
        """
        if self.status is command_status.COMPLETE or self.is_failed:
            self._safe_call(fn)
        else:
            self._callbacks.append(fn)
        return self

    def _safe_call(self, fn) -> None:
        """Run one callback; a raising callback must not corrupt queue
        processing (``clSetEventCallback`` callbacks cannot propagate
        errors either), so swallow and count it."""
        try:
            fn(self)
        except Exception:
            trace.get_registry().counter("simcl.callback_errors").inc()

    def _fire_callbacks(self) -> None:
        self._queue = None
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._safe_call(fn)

    def _complete(self) -> None:
        """Transition to COMPLETE and fire callbacks (queue-internal)."""
        self.status = command_status.COMPLETE
        self._fire_callbacks()

    def _fail(self, status: command_status,
              error: BaseException) -> None:
        """Terminate abnormally and fire callbacks (queue-internal)."""
        self.status = status
        self.error = error
        if status is command_status.CANCELLED:
            trace.get_registry().counter("simcl.cancelled_events").inc()
        self._fire_callbacks()

    def cancel(self) -> bool:
        """Cancel a still-QUEUED deferred command before it runs.

        Returns True when this event transitioned to CANCELLED — its
        payload will never run, its buffers stay untouched, and every
        pending dependent on the same queue is cancelled with it
        (dependents on *other* queues are abandoned the moment they are
        driven, exactly like dependents of a failed command).  Returns
        False when the command already reached a terminal state or ran
        eagerly — cancellation cannot rewind executed work.
        """
        if self.status is not command_status.QUEUED or self._queue is None:
            return False
        self._queue._cancel(self)
        return True

    def drive(self) -> "Event":
        """Execute the command without raising on failure.

        Like :meth:`wait`, but an abnormally terminated command is
        reported through :attr:`status`/:attr:`error` instead of an
        exception — the primitive recovery code builds on.
        """
        if self.status is command_status.QUEUED \
                and self._queue is not None:
            self._queue._execute_until(self)
        return self

    def wait(self) -> "Event":
        """Block until the command has executed; raise if it failed.

        On an eager queue commands run inside enqueue, so this only
        checks for failure; on a deferred queue it executes this
        command and every command it transitively depends on (across
        queues) first.
        """
        self.drive()
        if self.is_failed:
            raise self.error if self.error is not None else CLError(
                f"{self.command.name} failed with {self.status.name}")
        return self


def wait_for_events(events) -> None:
    """``clWaitForEvents``: drive every listed event to completion.

    Raises the first failure found (after driving everything, so no
    work is left stranded behind the raising event).
    """
    events = list(events)
    for event in events:
        event.drive()
    for event in events:
        event.wait()
