"""Events with (simulated-time) profiling information."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProfilingDisabledError
from .api import command_type
from .costmodel import CostCounters, TimeBreakdown


@dataclass
class Event:
    """Returned by every enqueue; carries simulated profiling info.

    Times are in nanoseconds on the device's simulated timeline, mirroring
    ``clGetEventProfilingInfo``.  Kernel events additionally expose the
    dynamic :class:`CostCounters` and the :class:`TimeBreakdown` the cost
    model produced — introspection a real driver does not give you.
    """

    command: command_type
    queued_ns: int = 0
    submit_ns: int = 0
    start_ns: int = 0
    end_ns: int = 0
    counters: CostCounters | None = None
    breakdown: TimeBreakdown | None = None
    _profiling_enabled: bool = field(default=True, repr=False)
    #: name of the device whose queue produced this event (diagnostics)
    device_name: str = field(default="", repr=False)

    def _check(self) -> None:
        if not self._profiling_enabled:
            where = (f"the queue on {self.device_name!r}"
                     if self.device_name else "the queue")
            raise ProfilingDisabledError(
                f"profiling info requested for a "
                f"{self.command.name} event, but {where} was created "
                f"with profiling=False")

    @property
    def profile_start(self) -> int:
        self._check()
        return self.start_ns

    @property
    def profile_end(self) -> int:
        self._check()
        return self.end_ns

    @property
    def duration_ns(self) -> int:
        self._check()
        return self.end_ns - self.start_ns

    @property
    def duration(self) -> float:
        """Simulated duration in seconds."""
        return self.duration_ns * 1e-9

    def wait(self) -> "Event":
        """Commands execute eagerly in SimCL; wait() is a no-op."""
        return self
