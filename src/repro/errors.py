"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  The compiler, the simulated OpenCL
runtime and the HPL layer each have their own subtree mirroring the kind
of diagnostics the corresponding real-world component would emit.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Compiler (repro.clc)
# ---------------------------------------------------------------------------

class CompileError(ReproError):
    """A problem found while compiling OpenCL C source.

    Carries an optional source location so host code (and tests) can point
    at the offending token.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 filename: str = "<kernel>") -> None:
        self.message = message
        self.line = line
        self.col = col
        self.filename = filename
        if line:
            super().__init__(f"{filename}:{line}:{col}: {message}")
        else:
            super().__init__(message)


class PreprocessorError(CompileError):
    """Malformed preprocessor directive or macro usage."""


class LexError(CompileError):
    """The tokenizer met a character sequence it cannot tokenize."""


class ParseError(CompileError):
    """The parser met an unexpected token."""


class SemanticError(CompileError):
    """Type errors, unknown identifiers, address-space violations, ..."""


class IRSchemaError(ReproError):
    """A serialized :class:`~repro.clc.ir.ProgramIR` blob cannot be
    decoded: bad magic, corrupt payload, unknown node kind, or a schema
    version this build of the compiler does not understand.  Raised (and
    caught — a mismatching cache entry is a miss, never a crash) by the
    persistent kernel cache."""


# ---------------------------------------------------------------------------
# Simulated OpenCL runtime (repro.ocl)
# ---------------------------------------------------------------------------

class CLError(ReproError):
    """Base class for runtime errors, mirroring OpenCL error codes."""

    code = "CL_GENERIC_ERROR"

    def __init__(self, message: str = "") -> None:
        super().__init__(f"{self.code}: {message}" if message else self.code)


class InvalidValue(CLError):
    code = "CL_INVALID_VALUE"


class InvalidDevice(CLError):
    code = "CL_INVALID_DEVICE"


class InvalidContext(CLError):
    code = "CL_INVALID_CONTEXT"


class InvalidMemObject(CLError):
    code = "CL_INVALID_MEM_OBJECT"


class InvalidKernelArgs(CLError):
    code = "CL_INVALID_KERNEL_ARGS"


class InvalidWorkGroupSize(CLError):
    code = "CL_INVALID_WORK_GROUP_SIZE"


class InvalidWorkDimension(CLError):
    code = "CL_INVALID_WORK_DIMENSION"


class BuildProgramFailure(CLError):
    code = "CL_BUILD_PROGRAM_FAILURE"

    def __init__(self, message: str = "", build_log: str = "") -> None:
        self.build_log = build_log
        super().__init__(message)


class InvalidProgramExecutable(CLError):
    """A kernel was enqueued on a device its program was never
    (successfully) built for — ``clEnqueueNDRangeKernel`` returns this
    when there is no program executable for the queue's device."""

    code = "CL_INVALID_PROGRAM_EXECUTABLE"


class OutOfResources(CLError):
    code = "CL_OUT_OF_RESOURCES"


class DeviceNotAvailable(CLError):
    code = "CL_DEVICE_NOT_AVAILABLE"


class DeviceLost(DeviceNotAvailable):
    """A simulated device died and will not come back.

    Raised (or surfaced as a ``DEVICE_NOT_AVAILABLE`` event status) by
    the fault-injection layer; :func:`repro.hpl.cluster.cluster_eval`
    treats it as permanent and quarantines the device instead of
    retrying."""


class ProfilingInfoNotAvailable(CLError):
    code = "CL_PROFILING_INFO_NOT_AVAILABLE"


class ProfilingDisabledError(ProfilingInfoNotAvailable):
    """Profiling info was requested from an event whose command queue was
    created with ``profiling=False``.  Subclasses
    :class:`ProfilingInfoNotAvailable` so existing handlers keep working."""


class KernelLaunchError(CLError):
    """A kernel trapped at simulated run time (bad index, div by zero...)."""

    code = "CL_KERNEL_LAUNCH_ERROR"


class CommandCancelled(CLError):
    """A deferred command was cancelled before its payload ran.

    SimCL extension (real OpenCL cannot cancel enqueued commands):
    surfaced as the ``CANCELLED`` event status by :meth:`Event.cancel`
    and propagated — without running payloads — to every dependent
    reached through ``wait_for=`` chains."""

    code = "CL_COMMAND_CANCELLED"


# ---------------------------------------------------------------------------
# HPL layer (repro.hpl)
# ---------------------------------------------------------------------------

class HPLError(ReproError):
    """Base class for errors raised by the Heterogeneous Programming Library."""


class KernelCaptureError(HPLError):
    """The kernel function did something the tracer cannot capture."""


class DomainError(HPLError):
    """Inconsistent global/local execution domains."""


class CoherenceError(HPLError):
    """Illegal host/device data movement (e.g. writing constant memory)."""


class FaultPlanError(HPLError):
    """A fault-plan string (``HPL_FAULTS`` / ``hpl.configure(faults=)``)
    does not follow the grammar documented in ``docs/faults.md``."""


class ClusterExecutionError(HPLError):
    """A cluster evaluation could not be completed even after recovery —
    typically every device in the cluster was quarantined."""


class DeadlineExceeded(HPLError):
    """``cluster_eval(deadline=)`` ran out of simulated time.

    Carries the partial :class:`~repro.hpl.cluster.ClusterResult`
    (``.result``) for the chunks that did finish and the run's
    :class:`~repro.hpl.cluster.FailureSummary` (``.failures``), so a
    caller can checkpoint or report progress instead of losing it."""

    def __init__(self, message: str, result=None, failures=None) -> None:
        super().__init__(message)
        self.result = result
        self.failures = failures


class CheckpointError(HPLError):
    """A cluster checkpoint could not be written, or a snapshot loaded
    for ``resume=True`` is corrupt, truncated, or from an incompatible
    checkpoint format version."""
