"""The benchsuite CLI: ``--profile`` / ``--profile-out`` pipeline.

The acceptance path of the profiler issue: run EP under ``--profile``,
check the hot-line table lands next to the benchmark output, and that
``--profile-out`` writes the JSON + flamegraph pair CI uploads as a
workflow artifact (re-renderable by ``python -m repro.prof``).
"""

from __future__ import annotations

import json

import pytest

from repro import prof
from repro.benchsuite.runner import main as bench_main
from repro.hpl import reset_runtime
from repro.prof.__main__ import main as prof_cli


@pytest.fixture()
def clean_state():
    """Reset runtime and restore a disabled fresh profiler."""
    old = prof.get_profiler()
    prof.set_profiler(prof.Profiler(enabled=False))
    reset_runtime()
    yield
    prof.set_profiler(old)
    reset_runtime()


class TestBenchsuiteProfileFlag:
    def test_ep_with_profile_prints_hot_lines(self, clean_state, capsys):
        assert bench_main(["ep", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "-- kernel profile: ep (hottest source lines) --" in out
        assert "kernel ep_hpl_kernel" in out
        assert "bound=compute" in out
        # hot lines are shown with their cost share and source text
        assert "%  L" in out

    def test_profile_out_writes_artifact_pair(self, clean_state,
                                              tmp_path, capsys):
        prefix = str(tmp_path / "BENCH_profile")
        assert bench_main(["ep", "--profile-out", prefix]) == 0

        doc = json.loads((tmp_path / "BENCH_profile.json").read_text())
        assert doc["version"] == 1
        assert any(p["kernel"] == "ep_hpl_kernel"
                   for p in doc["profiles"])

        flame = (tmp_path / "BENCH_profile.flame").read_text()
        assert "ep_hpl_kernel [vector]" in flame

        # the saved JSON re-renders through the prof CLI
        capsys.readouterr()
        assert prof_cli(["roofline", prefix + ".json"]) == 0
        assert "compute-bound" in capsys.readouterr().out

    def test_profile_flag_does_not_leak(self, clean_state):
        assert bench_main(["ep", "--profile"]) == 0
        # --profile enables the global profiler for the run only; a
        # later plain run must not silently keep collecting
        assert not prof.is_enabled()
        assert bench_main(["ep"]) == 0
        assert len(prof.get_profiler()) == 0
