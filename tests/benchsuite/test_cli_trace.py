"""The benchsuite CLI: ``--trace`` / ``--verbose`` / summarize pipeline.

This is the acceptance path of the observability issue: run the EP
benchmark under ``--trace``, then feed the output to
``python -m repro.trace summarize`` and to the Chrome-trace validator.
"""

from __future__ import annotations

import json

import pytest

from repro import trace
from repro.benchsuite.runner import main as bench_main
from repro.hpl import reset_runtime
from repro.trace.__main__ import main as trace_cli


@pytest.fixture()
def clean_state():
    """Reset runtime and restore the (disabled) global tracer."""
    old = trace.get_tracer()
    reset_runtime()
    yield
    trace.set_tracer(old)
    trace.disable()
    reset_runtime()


class TestBenchsuiteTraceFlag:
    def test_ep_with_jsonl_trace_then_summarize(self, clean_state,
                                                tmp_path, capsys):
        out = tmp_path / "ep.jsonl"
        assert bench_main(["ep", "--trace", str(out)]) == 0
        assert out.exists()

        spans = trace.read_spans(str(out))
        cats = {s.category for s in spans}
        assert {"benchsuite", "hpl", "clc", "simcl"} <= cats
        assert any(s.clock == "sim" for s in spans)

        capsys.readouterr()
        assert trace_cli(["summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "hpl.eval" in text
        assert "simcl.ndrange_kernel" in text

    def test_ep_with_chrome_trace_is_valid_catapult(self, clean_state,
                                                    tmp_path):
        out = tmp_path / "ep.json"
        assert bench_main(["ep", "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(pids) >= 2     # wall track + at least one device track

    def test_verbose_prints_metrics_summary(self, clean_state, capsys):
        assert bench_main(["ep", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "HPL runtime metrics" in out
        assert "kernel cache hit rate" in out
        assert "h2d traffic" in out
        assert "metrics registry" in out

    def test_trace_flag_does_not_leak_enabled_tracer(self, clean_state,
                                                     tmp_path):
        bench_main(["ep", "--trace", str(tmp_path / "t.jsonl")])
        # the CLI installed a fresh tracer; the fixture restores ours,
        # and the module-level default must not stay hot for importers
        assert trace.get_tracer() is not None
