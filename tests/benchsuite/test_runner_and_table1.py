"""Experiment runner smoke tests and Table I standalone programs."""

import runpy
import sys

import pytest

from repro.benchsuite import ep, runner
from repro.benchsuite.table1 import TABLE1_PAIRS, source_path
from repro.hpl import reset_runtime
from repro.benchsuite import report


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


class TestTable1:
    def test_rows_cover_all_benchmarks(self):
        rows = runner.run_table1()
        assert {r["benchmark"] for r in rows} == set(TABLE1_PAIRS)

    def test_hpl_is_always_smaller(self):
        for row in runner.run_table1():
            assert row["hpl_sloc"] < row["opencl_sloc"], row

    def test_substantial_reduction(self):
        """Every benchmark must shed at least a third of its SLOC."""
        for row in runner.run_table1():
            assert row["reduction_pct"] > 33.0, row

    def test_formatting(self):
        text = report.format_table1(runner.run_table1())
        assert "Table I" in text and "EP" in text

    @pytest.mark.parametrize("which", sorted(TABLE1_PAIRS))
    def test_standalone_programs_run_and_agree(self, which, capsys):
        """Each OpenCL/HPL program pair runs and prints identical
        result lines (bar the simulated-timing line)."""
        outputs = []
        for filename in TABLE1_PAIRS[which]:
            reset_runtime()
            mod = runpy.run_path(source_path(filename))
            rc = mod["main"]()
            assert rc == 0
            captured = capsys.readouterr().out
            result_lines = [ln for ln in captured.strip().split("\n")
                            if "kernel time" not in ln]
            outputs.append(result_lines)
        assert outputs[0] == outputs[1]


class TestWarmCache:
    def test_second_invocation_cheaper(self):
        row = runner.run_warm_cache("S")
        assert row["warm_slowdown_pct"] < row["cold_slowdown_pct"]
        assert row["warm_overhead_seconds"] < \
            row["cold_overhead_seconds"]

    def test_report_formatting(self):
        row = runner.run_warm_cache("S")
        text = report.format_warm_cache(row)
        assert "first call" in text and "second call" in text


class TestFigureRunners:
    def test_fig6_rows(self):
        rows = runner.run_fig6(classes=("S",))
        row = rows[0]
        assert row["opencl_speedup"] > 1
        assert row["hpl_speedup"] > 1
        assert row["hpl_speedup"] <= row["opencl_speedup"] * 1.05

    def test_fig8_structure(self):
        problems = {"Spmv": runner.spmv.spmv_problem(n_run=256)}
        rows = runner.run_fig8(problems=problems)
        assert rows[0]["hpl_overhead_seconds"] > 0
        text = report.format_fig8(rows)
        assert "Slowdown" in text

    def test_fig8_transfers_dilute_overhead(self):
        problems = {
            "Matrix transpose":
                runner.transpose.transpose_problem(n_run=64)}
        dry = runner.run_fig8(problems=problems)
        reset_runtime()
        wet = runner.run_fig8(include_transfers=True, problems=problems)
        # §V-B: counting transfers shrinks transpose's relative overhead
        assert abs(wet[0]["slowdown_pct"]) <= \
            abs(dry[0]["slowdown_pct"]) + 0.5


class TestEngineJit:
    def test_engine_jit_wiring(self, monkeypatch, tmp_path):
        """`run_engine_jit` plumbing on tiny problems: interleaved
        rounds, per-engine bests, identical checksums, JSON artifact.
        The real >= 2x perf gate runs on the full sizes in CI."""
        from repro.benchsuite import floyd

        monkeypatch.setattr(
            runner, "_problems_engine_jit",
            lambda: {"Floyd-Warshall": (floyd.floyd_problem(64, n_run=4), 2)})
        out = tmp_path / "engine_jit.json"
        row = runner.run_engine_jit(rounds=1, gate=None, output=str(out))
        leg = row["benchmarks"]["Floyd-Warshall"]
        assert leg["vector_seconds"] > 0 and leg["jit_seconds"] > 0
        assert row["checksums_identical"]
        assert out.exists()
        text = report.format_engine_jit(row)
        assert "geomean" in text and "jit" in text

    def test_engine_jit_gate_fires(self, monkeypatch):
        from repro.benchsuite import floyd

        monkeypatch.setattr(
            runner, "_problems_engine_jit",
            lambda: {"Floyd-Warshall": (floyd.floyd_problem(64, n_run=4), 2)})
        with pytest.raises(AssertionError, match="gate"):
            runner.run_engine_jit(rounds=1, gate=1e9, output=None)
