"""Every paper benchmark: both variants verify, and agree with each other."""

import numpy as np
import pytest

from repro.benchsuite import ep, floyd, reduction, spmv, transpose
from repro.hpl import reset_runtime


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


class TestEP:
    @pytest.fixture(scope="class")
    def problem(self):
        return ep.ep_problem("S", shift=10)   # 2^14 pairs

    def test_opencl_verifies(self, problem):
        assert ep.verify(ep.run_opencl(problem), problem)

    def test_hpl_verifies(self, problem):
        reset_runtime()
        assert ep.verify(ep.run_hpl(problem), problem)

    def test_variants_agree_bitwise(self, problem):
        reset_runtime()
        a = ep.run_opencl(problem)
        b = ep.run_hpl(problem)
        assert a.output[0] == b.output[0]
        assert a.output[1] == b.output[1]
        assert np.array_equal(a.output[2], b.output[2])

    def test_speedup_band(self, problem):
        """EP's GPU speedup must sit near the paper's 257x (±40%)."""
        run = ep.run_opencl(problem)
        speedup = ep.serial_seconds(run) / run.kernel_seconds
        assert 150 < speedup < 400

    def test_scale_invariance_of_extrapolation(self):
        """Two different scale factors must extrapolate to (almost) the
        same paper-size time — the property DESIGN.md asserts."""
        t = []
        for shift in (9, 10):
            run = ep.run_opencl(ep.ep_problem("S", shift=shift))
            t.append(run.kernel_seconds)
        # the per-item seed-jump is a fixed cost that amortises with nk,
        # so a ~10% drift between scales is expected; beyond that the
        # extrapolation would be broken
        assert t[0] == pytest.approx(t[1], rel=0.15)

    def test_requires_fp64_device(self):
        problem = ep.ep_problem("S", shift=10)
        with pytest.raises(RuntimeError, match="fp64|double"):
            ep.run_opencl(problem, device_name="Quadro")


class TestFloyd:
    @pytest.fixture(scope="class")
    def problem(self):
        return floyd.floyd_problem(n_paper=1024, n_run=48)

    def test_opencl_verifies(self, problem):
        assert floyd.verify(floyd.run_opencl(problem), problem)

    def test_hpl_verifies(self, problem):
        reset_runtime()
        assert floyd.verify(floyd.run_hpl(problem), problem)

    def test_variants_agree(self, problem):
        reset_runtime()
        a = floyd.run_opencl(problem)
        b = floyd.run_hpl(problem)
        assert np.array_equal(a.output, b.output)

    def test_launch_count_scales(self, problem):
        run = floyd.run_opencl(problem)
        assert run.params["launch_factor"] == 1024 / 48


class TestTranspose:
    @pytest.fixture(scope="class")
    def problem(self):
        return transpose.transpose_problem(n_run=64)

    def test_opencl_verifies(self, problem):
        assert transpose.verify(transpose.run_opencl(problem), problem)

    def test_hpl_verifies(self, problem):
        reset_runtime()
        assert transpose.verify(transpose.run_hpl(problem), problem)

    def test_variants_agree(self, problem):
        reset_runtime()
        a = transpose.run_opencl(problem)
        b = transpose.run_hpl(problem)
        assert np.array_equal(a.output, b.output)

    def test_non_block_multiple_rejected(self):
        with pytest.raises(ValueError):
            transpose.transpose_problem(n_run=60)

    def test_memory_bound_on_gpu(self, problem):
        run = transpose.run_opencl(problem)
        from repro.ocl import TESLA_C2050, kernel_time
        t = kernel_time(run.counters, TESLA_C2050)
        assert t.memory > t.compute


class TestSpmv:
    @pytest.fixture(scope="class")
    def problem(self):
        return spmv.spmv_problem(n_run=256)

    def test_opencl_verifies(self, problem):
        assert spmv.verify(spmv.run_opencl(problem), problem)

    def test_hpl_verifies(self, problem):
        reset_runtime()
        assert spmv.verify(spmv.run_hpl(problem), problem)

    def test_variants_agree(self, problem):
        reset_runtime()
        a = spmv.run_opencl(problem)
        b = spmv.run_hpl(problem)
        assert np.allclose(a.output, b.output, rtol=1e-6)

    def test_per_row_nnz_pinned_to_paper(self, problem):
        nnz_per_row = problem.params["nnz"] / problem.params["n_run"]
        assert nnz_per_row == round(0.01 * spmv.PAPER_SIZE)

    def test_spmv_speedup_band(self, problem):
        """spmv must land near the paper's 5.4x (the low end)."""
        run = spmv.run_opencl(problem)
        speedup = spmv.serial_seconds(run) / run.kernel_seconds
        assert 2 < speedup < 15


class TestReduction:
    @pytest.fixture(scope="class")
    def problem(self):
        return reduction.reduction_problem(n_run=1 << 14)

    def test_opencl_verifies(self, problem):
        assert reduction.verify(reduction.run_opencl(problem), problem)

    def test_hpl_verifies(self, problem):
        reset_runtime()
        assert reduction.verify(reduction.run_hpl(problem), problem)

    def test_variants_agree(self, problem):
        reset_runtime()
        a = reduction.run_opencl(problem)
        b = reduction.run_hpl(problem)
        assert np.isclose(a.output, b.output, rtol=1e-5)


class TestCrossBenchmarkShape:
    def test_speedup_ordering_matches_figure7(self):
        """EP must dominate; spmv must be the smallest speedup —
        the qualitative shape of Figure 7."""
        reset_runtime()
        ep_run = ep.run_opencl(ep.ep_problem("S", shift=10))
        ep_speedup = ep.serial_seconds(ep_run) / ep_run.kernel_seconds

        sp_prob = spmv.spmv_problem(n_run=256)
        sp_run = spmv.run_opencl(sp_prob)
        sp_speedup = spmv.serial_seconds(sp_run) / sp_run.kernel_seconds

        tr_prob = transpose.transpose_problem(n_run=64)
        tr_run = transpose.run_opencl(tr_prob)
        tr_speedup = transpose.serial_seconds(tr_run) \
            / tr_run.kernel_seconds

        assert ep_speedup > tr_speedup > sp_speedup
